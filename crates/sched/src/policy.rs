//! The scheduling policies.

use std::fmt;

/// How the hypervisor maps workload threads onto physical cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedulingPolicy {
    /// Spread each workload's threads across LLC banks (load balancing).
    RoundRobin,
    /// Pack each workload's threads into as few LLC banks as possible.
    Affinity,
    /// Round robin in pairs: at least two threads of a workload per bank.
    RrAffinity,
    /// Uniformly random core assignment (seeded).
    Random,
}

impl SchedulingPolicy {
    /// The four policies the paper sweeps.
    pub const PAPER_SET: [SchedulingPolicy; 4] = [
        SchedulingPolicy::RoundRobin,
        SchedulingPolicy::Affinity,
        SchedulingPolicy::RrAffinity,
        SchedulingPolicy::Random,
    ];

    /// Label used in reports, matching the paper's figures.
    pub fn label(self) -> &'static str {
        match self {
            SchedulingPolicy::RoundRobin => "rr",
            SchedulingPolicy::Affinity => "affinity",
            SchedulingPolicy::RrAffinity => "aff-rr",
            SchedulingPolicy::Random => "random",
        }
    }
}

impl fmt::Display for SchedulingPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_paper_figures() {
        assert_eq!(SchedulingPolicy::RoundRobin.label(), "rr");
        assert_eq!(SchedulingPolicy::Affinity.label(), "affinity");
        assert_eq!(SchedulingPolicy::RrAffinity.label(), "aff-rr");
        assert_eq!(SchedulingPolicy::Random.to_string(), "random");
    }

    #[test]
    fn paper_set_has_all_four() {
        assert_eq!(SchedulingPolicy::PAPER_SET.len(), 4);
    }
}
