//! Thread-to-core scheduling policies for consolidated CMP workloads.
//!
//! Whenever cores share last-level caches, the policy assigning threads to
//! cores also assigns them to caches (paper §III-D). The hypervisor policies
//! the paper evaluates:
//!
//! * **Round robin** — each workload's threads land in separate LLC banks,
//!   maximizing the cache capacity visible to the workload at the cost of
//!   replicating its shared data in every bank.
//! * **Affinity** — each workload's threads are packed into as few banks as
//!   possible, maximizing sharing and minimizing replication at the cost of
//!   capacity and local congestion.
//! * **RR-affinity hybrid** — threads spread round-robin but in pairs, so at
//!   least two threads of a workload share each bank.
//! * **Random** — the seemingly random assignment an over-committed
//!   virtual-machine monitor drifts toward (seeded, deterministic).
//!
//! [`place`] computes a [`Placement`] for any machine/mix combination; the
//! simulation engine then pins threads for the whole run, matching the
//! paper's static-binding methodology.
//!
//! # Examples
//!
//! ```
//! use consim_sched::{place, SchedulingPolicy};
//! use consim_types::config::{MachineConfig, SharingDegree};
//! use consim_types::SimRng;
//!
//! let machine = MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4));
//! // Four 4-thread workloads, affinity: each workload owns one bank.
//! let placement = place(
//!     SchedulingPolicy::Affinity,
//!     &machine,
//!     &[4, 4, 4, 4],
//!     &SimRng::from_seed(1),
//! )?;
//! assert_eq!(placement.banks_of_vm(consim_types::VmId::new(0), &machine).len(), 1);
//! # Ok::<(), consim_types::SimError>(())
//! ```

pub mod placement;
pub mod policy;

pub use placement::{place, Placement};
pub use policy::SchedulingPolicy;
