//! Computing and querying thread-to-core placements.

use crate::policy::SchedulingPolicy;
use consim_types::config::MachineConfig;
use consim_types::{BankId, CoreId, GlobalThreadId, SimError, SimRng, ThreadId, VmId};
use std::collections::BTreeSet;
use std::fmt;

/// A complete, validated assignment of every workload thread to a core.
///
/// Threads stay bound for the whole simulation (the paper statically binds
/// threads at checkpoint load).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Placement {
    /// `core_of[vm][thread]`.
    core_of: Vec<Vec<CoreId>>,
    policy: SchedulingPolicy,
}

impl Placement {
    /// Rebuilds a placement from its raw `core_of[vm][thread]` table, as
    /// stored in checkpoints and result journals. Callers decoding an
    /// untrusted table should follow up with [`Placement::validate`].
    pub fn from_parts(core_of: Vec<Vec<CoreId>>, policy: SchedulingPolicy) -> Self {
        Self { core_of, policy }
    }

    /// The policy that produced this placement.
    pub fn policy(&self) -> SchedulingPolicy {
        self.policy
    }

    /// The core running a thread.
    ///
    /// # Panics
    ///
    /// Panics if the thread is outside the placed mix.
    pub fn core_of(&self, thread: GlobalThreadId) -> CoreId {
        self.core_of[thread.vm.index()][thread.thread.index()]
    }

    /// Rebinds a thread to a new core (VM spawn or live migration under a
    /// churn policy). The caller is responsible for keeping the overall
    /// mapping injective.
    ///
    /// # Panics
    ///
    /// Panics if the thread is outside the placed mix.
    pub fn rebind(&mut self, thread: GlobalThreadId, core: CoreId) {
        self.core_of[thread.vm.index()][thread.thread.index()] = core;
    }

    /// Number of VMs placed.
    pub fn num_vms(&self) -> usize {
        self.core_of.len()
    }

    /// Threads of a VM.
    pub fn threads_of_vm(&self, vm: VmId) -> usize {
        self.core_of[vm.index()].len()
    }

    /// Iterates over `(thread, core)` pairs in VM-major order.
    pub fn iter(&self) -> impl Iterator<Item = (GlobalThreadId, CoreId)> + '_ {
        self.core_of.iter().enumerate().flat_map(|(vm, cores)| {
            cores
                .iter()
                .enumerate()
                .map(move |(t, &core)| (GlobalThreadId::new(VmId::new(vm), ThreadId::new(t)), core))
        })
    }

    /// The set of LLC banks a VM's threads touch under `machine`'s sharing
    /// degree.
    pub fn banks_of_vm(&self, vm: VmId, machine: &MachineConfig) -> BTreeSet<BankId> {
        self.core_of[vm.index()]
            .iter()
            .map(|&c| machine.bank_of_core(c))
            .collect()
    }

    /// How many placed threads share each LLC bank.
    pub fn threads_per_bank(&self, machine: &MachineConfig) -> Vec<usize> {
        let mut counts = vec![0usize; machine.llc_banks()];
        for (_, core) in self.iter() {
            counts[machine.bank_of_core(core).index()] += 1;
        }
        counts
    }

    /// Checks that no core is double-booked and every core is on the
    /// machine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Placement`] describing the first violation.
    pub fn validate(&self, machine: &MachineConfig) -> Result<(), SimError> {
        let mut used = vec![false; machine.num_cores];
        for (thread, core) in self.iter() {
            if core.index() >= machine.num_cores {
                return Err(SimError::placement(format!(
                    "{thread} assigned to nonexistent {core}"
                )));
            }
            if used[core.index()] {
                return Err(SimError::placement(format!("{core} double-booked")));
            }
            used[core.index()] = true;
        }
        Ok(())
    }
}

impl fmt::Display for Placement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:", self.policy)?;
        for (thread, core) in self.iter() {
            write!(f, " {thread}->{core}")?;
        }
        Ok(())
    }
}

/// Computes a placement of `vm_threads` (thread count per VM, in VM order)
/// onto `machine` under `policy`.
///
/// `rng` seeds the random policy; the deterministic policies ignore it.
///
/// # Errors
///
/// Returns [`SimError::Placement`] if the mix needs more cores than the
/// machine has, or (for [`SchedulingPolicy::RrAffinity`]) more capacity than
/// pairing can satisfy.
///
/// # Examples
///
/// ```
/// use consim_sched::{place, SchedulingPolicy};
/// use consim_types::config::{MachineConfig, SharingDegree};
/// use consim_types::SimRng;
///
/// let machine = MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4));
/// let p = place(SchedulingPolicy::RoundRobin, &machine, &[4], &SimRng::from_seed(0))?;
/// // Round robin spreads an isolated workload's 4 threads over all 4 banks.
/// assert_eq!(p.banks_of_vm(consim_types::VmId::new(0), &machine).len(), 4);
/// # Ok::<(), consim_types::SimError>(())
/// ```
pub fn place(
    policy: SchedulingPolicy,
    machine: &MachineConfig,
    vm_threads: &[usize],
    rng: &SimRng,
) -> Result<Placement, SimError> {
    let total: usize = vm_threads.iter().sum();
    if total > machine.num_cores {
        return Err(SimError::placement(format!(
            "{total} threads exceed {} cores",
            machine.num_cores
        )));
    }
    if vm_threads.contains(&0) {
        return Err(SimError::placement("every VM needs at least one thread"));
    }

    // Free cores per bank, lowest core index first.
    let num_banks = machine.llc_banks();
    let mut free: Vec<Vec<CoreId>> = (0..num_banks)
        .map(|b| {
            machine
                .cores_of_bank(BankId::new(b))
                .map(CoreId::new)
                .rev() // pop() yields the lowest index
                .collect()
        })
        .collect();

    let mut core_of: Vec<Vec<CoreId>> = vm_threads.iter().map(|&t| Vec::with_capacity(t)).collect();

    // Takes the next free core in `bank` or, failing that, scans forward
    // from `bank` for the first bank with space.
    let take_from = |free: &mut Vec<Vec<CoreId>>, bank: usize| -> Option<CoreId> {
        for off in 0..num_banks {
            let b = (bank + off) % num_banks;
            if let Some(core) = free[b].pop() {
                return Some(core);
            }
        }
        None
    };

    match policy {
        SchedulingPolicy::RoundRobin => {
            // Global cursor over banks: each workload's consecutive threads
            // land in consecutive (hence distinct, when capacity allows)
            // banks.
            let mut cursor = 0usize;
            for (vm, &threads) in vm_threads.iter().enumerate() {
                for _ in 0..threads {
                    let core = take_from(&mut free, cursor % num_banks)
                        .ok_or_else(|| SimError::placement("ran out of cores"))?;
                    core_of[vm].push(core);
                    cursor += 1;
                }
            }
        }
        SchedulingPolicy::Affinity => {
            // Fill banks sequentially so each workload occupies as few banks
            // as possible.
            let mut bank = 0usize;
            for (vm, &threads) in vm_threads.iter().enumerate() {
                for _ in 0..threads {
                    // Stay on the current bank while it has room.
                    while free[bank % num_banks].is_empty() {
                        bank += 1;
                    }
                    let core = free[bank % num_banks].pop().expect("checked nonempty");
                    core_of[vm].push(core);
                }
            }
        }
        SchedulingPolicy::RrAffinity => {
            // Pairs of threads round-robin across banks: at least two
            // threads of the workload share each bank (when the bank can
            // hold a pair; single-core banks degenerate to round robin).
            let pair = machine.cores_per_bank().min(2);
            let mut cursor = 0usize;
            for (vm, &threads) in vm_threads.iter().enumerate() {
                let mut placed = 0usize;
                while placed < threads {
                    let want = pair.min(threads - placed);
                    // Find a bank with room for the whole pair.
                    let mut chosen = None;
                    for off in 0..num_banks {
                        let b = (cursor + off) % num_banks;
                        if free[b].len() >= want {
                            chosen = Some(b);
                            break;
                        }
                    }
                    let b = match chosen {
                        Some(b) => b,
                        // No bank can hold a pair; fall back to singles.
                        None => {
                            let core = take_from(&mut free, cursor % num_banks)
                                .ok_or_else(|| SimError::placement("ran out of cores"))?;
                            core_of[vm].push(core);
                            placed += 1;
                            cursor += 1;
                            continue;
                        }
                    };
                    for _ in 0..want {
                        let core = free[b].pop().expect("capacity checked");
                        core_of[vm].push(core);
                        placed += 1;
                    }
                    cursor = b + 1;
                }
            }
        }
        SchedulingPolicy::Random => {
            let mut cores: Vec<CoreId> = (0..machine.num_cores).map(CoreId::new).collect();
            let mut rng = rng.derive("sched/random");
            rng.shuffle(&mut cores);
            let mut next = cores.into_iter();
            for (vm, &threads) in vm_threads.iter().enumerate() {
                for _ in 0..threads {
                    core_of[vm].push(next.next().expect("count checked"));
                }
            }
        }
    }

    let placement = Placement { core_of, policy };
    placement.validate(machine)?;
    Ok(placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use consim_types::config::SharingDegree;

    fn machine(sharing: SharingDegree) -> MachineConfig {
        MachineConfig::paper_default().with_sharing(sharing)
    }

    fn rng() -> SimRng {
        SimRng::from_seed(42)
    }

    #[test]
    fn round_robin_spreads_isolated_workload_across_banks() {
        let m = machine(SharingDegree::SharedBy(4));
        let p = place(SchedulingPolicy::RoundRobin, &m, &[4], &rng()).unwrap();
        assert_eq!(p.banks_of_vm(VmId::new(0), &m).len(), 4);
    }

    #[test]
    fn affinity_packs_isolated_workload_into_one_bank() {
        let m = machine(SharingDegree::SharedBy(4));
        let p = place(SchedulingPolicy::Affinity, &m, &[4], &rng()).unwrap();
        assert_eq!(p.banks_of_vm(VmId::new(0), &m).len(), 1);
    }

    #[test]
    fn affinity_on_shared8_uses_half_a_bank() {
        let m = machine(SharingDegree::SharedBy(8));
        let p = place(SchedulingPolicy::Affinity, &m, &[4], &rng()).unwrap();
        assert_eq!(p.banks_of_vm(VmId::new(0), &m).len(), 1);
    }

    #[test]
    fn full_mix_round_robin_gives_every_workload_every_bank() {
        let m = machine(SharingDegree::SharedBy(4));
        let p = place(SchedulingPolicy::RoundRobin, &m, &[4, 4, 4, 4], &rng()).unwrap();
        for vm in 0..4 {
            assert_eq!(p.banks_of_vm(VmId::new(vm), &m).len(), 4, "vm{vm}");
        }
        assert_eq!(p.threads_per_bank(&m), vec![4, 4, 4, 4]);
    }

    #[test]
    fn full_mix_affinity_gives_every_workload_its_own_bank() {
        let m = machine(SharingDegree::SharedBy(4));
        let p = place(SchedulingPolicy::Affinity, &m, &[4, 4, 4, 4], &rng()).unwrap();
        let mut seen = BTreeSet::new();
        for vm in 0..4 {
            let banks = p.banks_of_vm(VmId::new(vm), &m);
            assert_eq!(banks.len(), 1, "vm{vm}");
            seen.extend(banks);
        }
        assert_eq!(seen.len(), 4, "workloads must not share banks");
    }

    #[test]
    fn rr_affinity_pairs_threads() {
        let m = machine(SharingDegree::SharedBy(4));
        let p = place(SchedulingPolicy::RrAffinity, &m, &[4, 4, 4, 4], &rng()).unwrap();
        for vm in 0..4 {
            let banks = p.banks_of_vm(VmId::new(vm), &m);
            assert_eq!(banks.len(), 2, "4 threads in pairs -> 2 banks (vm{vm})");
            // Each bank hosts exactly 2 of this VM's threads.
            for bank in banks {
                let count = p
                    .iter()
                    .filter(|(t, c)| t.vm == VmId::new(vm) && m.bank_of_core(*c) == bank)
                    .count();
                assert_eq!(count, 2);
            }
        }
    }

    #[test]
    fn rr_affinity_degenerates_with_private_caches() {
        let m = machine(SharingDegree::Private);
        let p = place(SchedulingPolicy::RrAffinity, &m, &[4, 4, 4, 4], &rng()).unwrap();
        p.validate(&m).unwrap();
        assert_eq!(p.iter().count(), 16);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_varies_across_seeds() {
        let m = machine(SharingDegree::SharedBy(4));
        let a = place(
            SchedulingPolicy::Random,
            &m,
            &[4, 4, 4, 4],
            &SimRng::from_seed(1),
        )
        .unwrap();
        let b = place(
            SchedulingPolicy::Random,
            &m,
            &[4, 4, 4, 4],
            &SimRng::from_seed(1),
        )
        .unwrap();
        assert_eq!(a, b);
        let differs = (2..20).any(|s| {
            place(
                SchedulingPolicy::Random,
                &m,
                &[4, 4, 4, 4],
                &SimRng::from_seed(s),
            )
            .unwrap()
                != a
        });
        assert!(differs);
    }

    #[test]
    fn all_policies_produce_valid_full_placements() {
        for sharing in SharingDegree::paper_sweep() {
            let m = machine(sharing);
            for policy in SchedulingPolicy::PAPER_SET {
                let p = place(policy, &m, &[4, 4, 4, 4], &rng()).unwrap();
                p.validate(&m).unwrap();
                assert_eq!(p.iter().count(), 16, "{policy} {sharing}");
            }
        }
    }

    #[test]
    fn rejects_oversubscription() {
        let m = machine(SharingDegree::FullyShared);
        assert!(place(SchedulingPolicy::RoundRobin, &m, &[8, 8, 4], &rng()).is_err());
    }

    #[test]
    fn rejects_zero_thread_vm() {
        let m = machine(SharingDegree::FullyShared);
        assert!(place(SchedulingPolicy::Affinity, &m, &[4, 0], &rng()).is_err());
    }

    #[test]
    fn unequal_thread_counts_place_cleanly() {
        let m = machine(SharingDegree::SharedBy(4));
        let p = place(SchedulingPolicy::Affinity, &m, &[2, 6, 8], &rng()).unwrap();
        p.validate(&m).unwrap();
        assert_eq!(p.threads_of_vm(VmId::new(1)), 6);
        assert_eq!(p.iter().count(), 16);
    }

    #[test]
    fn display_lists_assignments() {
        let m = machine(SharingDegree::SharedBy(4));
        let p = place(SchedulingPolicy::Affinity, &m, &[4], &rng()).unwrap();
        let text = p.to_string();
        assert!(text.starts_with("affinity:"));
        assert!(text.contains("vm0.thread0->core"));
    }
}
