//! Protocol event counters.

use crate::directory::{DataSource, Outcome};
use consim_snap::{SectionBuf, SectionReader, Snapshot};
use consim_types::SimError;
use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated by a [`crate::Directory`].
///
/// The clean/dirty cache-to-cache split is the statistic the paper reports
/// in Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProtocolStats {
    /// Requests resolved by the directory.
    pub requests: u64,
    /// Requests served by a clean cache-to-cache transfer.
    pub clean_transfers: u64,
    /// Requests served by a dirty cache-to-cache transfer.
    pub dirty_transfers: u64,
    /// Requests satisfied below the private caches (LLC or memory).
    pub from_below: u64,
    /// Upgrades (exclusivity without data movement).
    pub upgrades: u64,
    /// Invalidation messages sent.
    pub invalidations: u64,
    /// Dirty writebacks triggered by reads of Modified lines.
    pub writebacks: u64,
}

impl ProtocolStats {
    /// Records the classification of one request outcome.
    pub fn record_outcome(&mut self, outcome: &Outcome) {
        match outcome.source {
            DataSource::CleanCache(_) => self.clean_transfers += 1,
            DataSource::DirtyCache(_) => self.dirty_transfers += 1,
            DataSource::Below => self.from_below += 1,
            DataSource::None => {}
        }
        self.invalidations += outcome.invalidate.len() as u64;
        if outcome.writeback {
            self.writebacks += 1;
        }
    }

    /// Total cache-to-cache transfers.
    pub fn cache_to_cache(&self) -> u64 {
        self.clean_transfers + self.dirty_transfers
    }

    /// Fraction of requests served cache-to-cache, in `[0, 1]`.
    pub fn cache_to_cache_fraction(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.cache_to_cache() as f64 / self.requests as f64
        }
    }

    /// Fraction of cache-to-cache transfers that were dirty, in `[0, 1]`.
    pub fn dirty_fraction(&self) -> f64 {
        let c2c = self.cache_to_cache();
        if c2c == 0 {
            0.0
        } else {
            self.dirty_transfers as f64 / c2c as f64
        }
    }
}

impl Snapshot for ProtocolStats {
    fn save(&self, w: &mut SectionBuf) {
        w.put_u64(self.requests);
        w.put_u64(self.clean_transfers);
        w.put_u64(self.dirty_transfers);
        w.put_u64(self.from_below);
        w.put_u64(self.upgrades);
        w.put_u64(self.invalidations);
        w.put_u64(self.writebacks);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        self.requests = r.get_u64()?;
        self.clean_transfers = r.get_u64()?;
        self.dirty_transfers = r.get_u64()?;
        self.from_below = r.get_u64()?;
        self.upgrades = r.get_u64()?;
        self.invalidations = r.get_u64()?;
        self.writebacks = r.get_u64()?;
        Ok(())
    }
}

impl AddAssign for ProtocolStats {
    fn add_assign(&mut self, rhs: ProtocolStats) {
        self.requests += rhs.requests;
        self.clean_transfers += rhs.clean_transfers;
        self.dirty_transfers += rhs.dirty_transfers;
        self.from_below += rhs.from_below;
        self.upgrades += rhs.upgrades;
        self.invalidations += rhs.invalidations;
        self.writebacks += rhs.writebacks;
    }
}

impl fmt::Display for ProtocolStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "requests={} c2c={} ({:.1}% of requests, {:.1}% dirty) below={} upgrades={} invals={} writebacks={}",
            self.requests,
            self.cache_to_cache(),
            self.cache_to_cache_fraction() * 100.0,
            self.dirty_fraction() * 100.0,
            self.from_below,
            self.upgrades,
            self.invalidations,
            self.writebacks,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CoreSet;
    use consim_types::CoreId;

    #[test]
    fn fractions_on_empty_stats() {
        let s = ProtocolStats::default();
        assert_eq!(s.cache_to_cache_fraction(), 0.0);
        assert_eq!(s.dirty_fraction(), 0.0);
    }

    #[test]
    fn record_outcome_classifies() {
        let mut s = ProtocolStats::default();
        s.record_outcome(&Outcome {
            source: DataSource::DirtyCache(CoreId::new(1)),
            invalidate: CoreSet::singleton(CoreId::new(1)),
            writeback: false,
            exclusive: true,
        });
        s.record_outcome(&Outcome {
            source: DataSource::CleanCache(CoreId::new(2)),
            invalidate: CoreSet::EMPTY,
            writeback: false,
            exclusive: false,
        });
        s.record_outcome(&Outcome {
            source: DataSource::Below,
            invalidate: CoreSet::EMPTY,
            writeback: false,
            exclusive: true,
        });
        assert_eq!(s.cache_to_cache(), 2);
        assert_eq!(s.dirty_fraction(), 0.5);
        assert_eq!(s.invalidations, 1);
        assert_eq!(s.from_below, 1);
    }

    #[test]
    fn add_assign_merges() {
        let mut a = ProtocolStats {
            requests: 1,
            clean_transfers: 2,
            dirty_transfers: 3,
            from_below: 4,
            upgrades: 5,
            invalidations: 6,
            writebacks: 7,
        };
        a += a;
        assert_eq!(a.requests, 2);
        assert_eq!(a.writebacks, 14);
    }

    #[test]
    fn display_mentions_c2c() {
        let s = ProtocolStats {
            requests: 10,
            clean_transfers: 3,
            dirty_transfers: 2,
            ..ProtocolStats::default()
        };
        let text = s.to_string();
        assert!(text.contains("c2c=5"));
        assert!(text.contains("40.0% dirty"));
    }
}
