//! The full-map MESI directory.
//!
//! One logical directory tracks, for every block with on-chip copies in a
//! private (L1) cache, either a single *owner* holding the block Modified or
//! a set of *sharers* holding it clean. Directory entries are striped across
//! the cores by block address (`home_of`), exactly as in the paper's SGI
//! Origin-style protocol; the simulation engine charges the NoC trip to the
//! home node for every request.
//!
//! [`Directory::handle`] is the protocol transition function: it updates the
//! entry and reports where the data comes from (a dirty owner, a clean
//! sharer, or below — the LLC / memory) plus which caches must be
//! invalidated. That classification is precisely what the paper's Table II
//! ("percent of accesses resulting in a cache-to-cache transfer, clean vs
//! dirty") measures.

use crate::coreset::CoreSet;
use crate::stats::ProtocolStats;
use consim_snap::{SectionBuf, SectionReader, Snapshot};
use consim_trace::{EventClass, TraceEvent, TraceSink};
use consim_types::{BlockAddr, CoreId, FastHashMap, NodeId, SimError, SnapshotErrorKind};
use std::sync::Arc;

/// The kind of private-cache miss being resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load miss: the requester wants a readable copy.
    Read,
    /// A store miss: the requester wants an exclusive, writable copy.
    Write,
    /// A store hit on a Shared line: the requester already has the data and
    /// only needs exclusivity (invalidation of other sharers).
    Upgrade,
}

/// Where the data for a request comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataSource {
    /// Forwarded from the owning cache, which held the line Modified.
    DirtyCache(CoreId),
    /// Forwarded from a cache holding the line clean (Shared/Exclusive).
    CleanCache(CoreId),
    /// No private cache can supply it — satisfied by the LLC or memory.
    Below,
    /// No data movement needed (upgrade: requester already holds the line).
    None,
}

impl DataSource {
    /// Whether this request was satisfied by a cache-to-cache transfer.
    pub fn is_cache_to_cache(self) -> bool {
        matches!(self, DataSource::DirtyCache(_) | DataSource::CleanCache(_))
    }

    /// Whether the request must be satisfied by the LLC or memory.
    pub fn is_below(self) -> bool {
        matches!(self, DataSource::Below)
    }
}

/// The directory's answer to one request.
///
/// `Copy`: the invalidation set is a [`CoreSet`] bitmask, so handling a
/// request allocates nothing — this sits on the engine's per-miss hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Outcome {
    /// Where the data comes from.
    pub source: DataSource,
    /// Caches that must invalidate their copies (excludes the requester).
    pub invalidate: CoreSet,
    /// Whether a dirty copy was written back toward the home (read of a
    /// Modified line downgrades the owner and pushes data down).
    pub writeback: bool,
    /// Whether the requester ends up with write permission.
    pub exclusive: bool,
}

/// A directory entry: either one owner (Modified) or a sharer set (clean).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct DirEntry {
    owner: Option<CoreId>,
    sharers: CoreSet,
}

impl DirEntry {
    fn is_empty(&self) -> bool {
        self.owner.is_none() && self.sharers.is_empty()
    }
}

/// The full-map directory for one machine.
///
/// # Examples
///
/// ```
/// use consim_coherence::{AccessKind, DataSource, Directory};
/// use consim_types::{BlockAddr, CoreId};
///
/// let mut dir = Directory::new(16);
/// let blk = BlockAddr::new(7);
/// dir.handle(CoreId::new(0), blk, AccessKind::Write);
/// // A read by another core is served dirty from core 0's cache.
/// let out = dir.handle(CoreId::new(1), blk, AccessKind::Read);
/// assert_eq!(out.source, DataSource::DirtyCache(CoreId::new(0)));
/// assert!(out.writeback);
/// ```
#[derive(Debug, Clone)]
pub struct Directory {
    num_cores: usize,
    entries: FastHashMap<BlockAddr, DirEntry>,
    stats: ProtocolStats,
    trace: Option<TraceHook>,
    /// Trace-sampling countdown restored from a snapshot before a sink was
    /// reattached; consumed by the next [`Directory::set_trace_sink`] so a
    /// resumed run samples the same protocol actions as an uninterrupted one.
    restored_countdown: Option<u64>,
}

/// Sampled coherence-action tracing: every `sample`-th protocol action is
/// recorded, keeping trace volume bounded on the per-miss hot path.
#[derive(Debug, Clone)]
struct TraceHook {
    sink: Arc<dyn TraceSink>,
    sample: u64,
    countdown: u64,
}

impl Directory {
    /// Creates an empty directory for a machine of `num_cores` cores.
    ///
    /// # Panics
    ///
    /// Panics if `num_cores` is 0 or exceeds [`CoreSet::MAX_CORES`].
    pub fn new(num_cores: usize) -> Self {
        assert!(
            (1..=CoreSet::MAX_CORES).contains(&num_cores),
            "core count out of range"
        );
        Self {
            num_cores,
            entries: FastHashMap::default(),
            stats: ProtocolStats::default(),
            trace: None,
            restored_countdown: None,
        }
    }

    /// Installs (or clears) a trace sink recording every `sample`-th
    /// protocol action as a [`TraceEvent::Coherence`] event. Sinks whose
    /// filter excludes [`EventClass::Coherence`] are not installed at all,
    /// so the hot path stays a single `None` check.
    pub fn set_trace_sink(&mut self, sink: Option<Arc<dyn TraceSink>>, sample: u64) {
        let countdown = self.restored_countdown.take().map_or(1, |c| c.max(1));
        self.trace = sink
            .filter(|s| s.wants(EventClass::Coherence))
            .map(|sink| TraceHook {
                sink,
                sample: sample.max(1),
                countdown,
            });
    }

    /// The home node whose directory slice owns `block` (striped by block
    /// address, as in the paper).
    pub fn home_of(&self, block: BlockAddr) -> NodeId {
        NodeId::new((block.raw() % self.num_cores as u64) as usize)
    }

    /// Resolves one private-cache miss (or upgrade), updating the sharer
    /// state and returning what must happen.
    ///
    /// # Panics
    ///
    /// Panics if `requester` is outside the machine.
    pub fn handle(&mut self, requester: CoreId, block: BlockAddr, kind: AccessKind) -> Outcome {
        assert!(
            requester.index() < self.num_cores,
            "requester outside machine"
        );
        self.stats.requests += 1;
        let entry = self.entries.entry(block).or_default();
        let outcome = match kind {
            AccessKind::Read => {
                if let Some(owner) = entry.owner {
                    debug_assert_ne!(owner, requester, "owner re-requesting read");
                    // Dirty c2c: owner forwards, both end up sharers; the
                    // dirty data is also written back toward the home.
                    entry.owner = None;
                    entry.sharers.insert(owner);
                    entry.sharers.insert(requester);
                    Outcome {
                        source: DataSource::DirtyCache(owner),
                        invalidate: CoreSet::EMPTY,
                        writeback: true,
                        exclusive: false,
                    }
                } else if !entry.sharers.is_empty() {
                    // Clean c2c from an existing sharer (the engine picks
                    // the nearest; we report the full candidate set via
                    // `sharers_of`). Representative: lowest-index sharer.
                    let supplier = entry
                        .sharers
                        .iter()
                        .find(|&c| c != requester)
                        .expect("non-requester sharer exists");
                    entry.sharers.insert(requester);
                    Outcome {
                        source: DataSource::CleanCache(supplier),
                        invalidate: CoreSet::EMPTY,
                        writeback: false,
                        exclusive: false,
                    }
                } else {
                    // First on-chip private copy: Exclusive.
                    entry.sharers.insert(requester);
                    Outcome {
                        source: DataSource::Below,
                        invalidate: CoreSet::EMPTY,
                        writeback: false,
                        exclusive: true,
                    }
                }
            }
            AccessKind::Write => {
                if let Some(owner) = entry.owner {
                    debug_assert_ne!(owner, requester, "owner re-requesting write");
                    entry.owner = Some(requester);
                    entry.sharers = CoreSet::EMPTY;
                    Outcome {
                        source: DataSource::DirtyCache(owner),
                        invalidate: CoreSet::singleton(owner),
                        writeback: false,
                        exclusive: true,
                    }
                } else if !entry.sharers.is_empty() {
                    let supplier = entry.sharers.iter().find(|&c| c != requester);
                    let mut invalidate = entry.sharers;
                    invalidate.remove(requester);
                    entry.sharers = CoreSet::EMPTY;
                    entry.owner = Some(requester);
                    match supplier {
                        Some(s) => Outcome {
                            source: DataSource::CleanCache(s),
                            invalidate,
                            writeback: false,
                            exclusive: true,
                        },
                        // Requester was the only sharer: silent upgrade.
                        None => Outcome {
                            source: DataSource::None,
                            invalidate,
                            writeback: false,
                            exclusive: true,
                        },
                    }
                } else {
                    entry.owner = Some(requester);
                    Outcome {
                        source: DataSource::Below,
                        invalidate: CoreSet::EMPTY,
                        writeback: false,
                        exclusive: true,
                    }
                }
            }
            AccessKind::Upgrade => {
                debug_assert!(
                    entry.sharers.contains(requester),
                    "upgrade from a non-sharer"
                );
                let mut invalidate = entry.sharers;
                invalidate.remove(requester);
                entry.owner = Some(requester);
                entry.sharers = CoreSet::EMPTY;
                self.stats.upgrades += 1;
                Outcome {
                    source: DataSource::None,
                    invalidate,
                    writeback: false,
                    exclusive: true,
                }
            }
        };
        self.stats.record_outcome(&outcome);
        if let Some(hook) = &mut self.trace {
            hook.countdown -= 1;
            if hook.countdown == 0 {
                hook.countdown = hook.sample;
                hook.sink.record(&TraceEvent::Coherence {
                    request: self.stats.requests,
                    requester: requester.index() as u32,
                    block: block.raw(),
                    kind: match kind {
                        AccessKind::Read => "read",
                        AccessKind::Write => "write",
                        AccessKind::Upgrade => "upgrade",
                    },
                    source: match outcome.source {
                        DataSource::DirtyCache(_) => "dirty_cache",
                        DataSource::CleanCache(_) => "clean_cache",
                        DataSource::Below => "below",
                        DataSource::None => "none",
                    },
                    invalidations: outcome.invalidate.len() as u32,
                    writeback: outcome.writeback,
                });
            }
        }
        outcome
    }

    /// Notifies the directory that `core` evicted its copy of `block`
    /// (replacement hint, keeps the full map exact).
    ///
    /// Returns `true` if the eviction removed a Modified copy (the caller
    /// must write the data back toward memory).
    pub fn evict(&mut self, core: CoreId, block: BlockAddr) -> bool {
        let Some(entry) = self.entries.get_mut(&block) else {
            return false;
        };
        let was_owner = entry.owner == Some(core);
        if was_owner {
            entry.owner = None;
        } else {
            entry.sharers.remove(core);
        }
        if entry.is_empty() {
            self.entries.remove(&block);
        }
        was_owner
    }

    /// Current sharer set for a block (owner included), for nearest-supplier
    /// selection and invariant checks.
    pub fn sharers_of(&self, block: BlockAddr) -> CoreSet {
        match self.entries.get(&block) {
            Some(e) => {
                let mut set = e.sharers;
                if let Some(o) = e.owner {
                    set.insert(o);
                }
                set
            }
            None => CoreSet::EMPTY,
        }
    }

    /// Current Modified owner of a block, if any.
    pub fn owner_of(&self, block: BlockAddr) -> Option<CoreId> {
        self.entries.get(&block).and_then(|e| e.owner)
    }

    /// Owner and full member set (owner included) in one lookup —
    /// equivalent to `(owner_of(b), sharers_of(b))` but touches the entry
    /// map once. Used by the engine's step-observation hook.
    pub fn state_of(&self, block: BlockAddr) -> (Option<CoreId>, CoreSet) {
        match self.entries.get(&block) {
            Some(e) => {
                let mut members = e.sharers;
                if let Some(o) = e.owner {
                    members.insert(o);
                }
                (e.owner, members)
            }
            None => (None, CoreSet::EMPTY),
        }
    }

    /// Number of blocks with tracked on-chip copies.
    pub fn tracked_blocks(&self) -> usize {
        self.entries.len()
    }

    /// Accumulated protocol statistics.
    pub fn stats(&self) -> &ProtocolStats {
        &self.stats
    }

    /// Resets the statistics (not the sharer state).
    pub fn reset_stats(&mut self) {
        self.stats = ProtocolStats::default();
    }

    /// Checks the directory's structural invariants; used by tests and
    /// debug assertions in the engine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invariant`] if an entry has both an owner and
    /// sharers, or references a core outside the machine.
    pub fn check_invariants(&self) -> Result<(), SimError> {
        for (block, entry) in &self.entries {
            if entry.owner.is_some() && !entry.sharers.is_empty() {
                return Err(SimError::invariant(format!(
                    "{block} has both an owner and sharers"
                )));
            }
            if entry.is_empty() {
                return Err(SimError::invariant(format!("{block} has an empty entry")));
            }
            let mut members = entry.sharers;
            if let Some(o) = entry.owner {
                members.insert(o);
            }
            for core in members.iter() {
                if core.index() >= self.num_cores {
                    return Err(SimError::invariant(format!(
                        "{block} tracks out-of-range {core}"
                    )));
                }
            }
        }
        Ok(())
    }
}

impl Snapshot for Directory {
    fn save(&self, w: &mut SectionBuf) {
        w.put_usize(self.num_cores);
        // FastHashMap iteration order is nondeterministic across processes;
        // sort by block address so identical state yields identical bytes.
        let mut blocks: Vec<(u64, DirEntry)> =
            self.entries.iter().map(|(b, e)| (b.raw(), *e)).collect();
        blocks.sort_unstable_by_key(|(b, _)| *b);
        w.put_usize(blocks.len());
        for (block, entry) in blocks {
            w.put_u64(block);
            w.put_opt_u64(entry.owner.map(|c| c.index() as u64));
            entry.sharers.save(w);
        }
        self.stats.save(w);
        w.put_opt_u64(self.trace.as_ref().map(|h| h.countdown));
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        let num_cores = r.get_usize()?;
        if num_cores != self.num_cores {
            return Err(SimError::snapshot(
                SnapshotErrorKind::Corrupt,
                format!(
                    "directory tracks {num_cores} cores, configuration builds {}",
                    self.num_cores
                ),
            ));
        }
        let count = r.get_usize()?;
        self.entries.clear();
        for _ in 0..count {
            let block = BlockAddr::new(r.get_u64()?);
            let owner = match r.get_opt_u64()? {
                Some(c) => {
                    let index = usize::try_from(c).unwrap_or(usize::MAX);
                    if index >= self.num_cores {
                        return Err(SimError::snapshot(
                            SnapshotErrorKind::Corrupt,
                            format!("directory entry owner {c} outside machine"),
                        ));
                    }
                    Some(CoreId::new(index))
                }
                None => None,
            };
            let mut sharers = CoreSet::EMPTY;
            sharers.restore(r)?;
            self.entries.insert(block, DirEntry { owner, sharers });
        }
        self.stats.restore(r)?;
        let countdown = r.get_opt_u64()?;
        match (&mut self.trace, countdown) {
            (Some(hook), Some(c)) => hook.countdown = c.max(1),
            _ => self.restored_countdown = countdown,
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> Directory {
        Directory::new(16)
    }

    fn blk(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }

    fn core(n: usize) -> CoreId {
        CoreId::new(n)
    }

    #[test]
    fn first_read_comes_from_below_exclusive() {
        let mut d = dir();
        let out = d.handle(core(0), blk(1), AccessKind::Read);
        assert_eq!(out.source, DataSource::Below);
        assert!(out.exclusive);
        assert!(out.invalidate.is_empty());
        assert_eq!(d.sharers_of(blk(1)).len(), 1);
    }

    #[test]
    fn second_read_is_clean_c2c() {
        let mut d = dir();
        d.handle(core(0), blk(1), AccessKind::Read);
        let out = d.handle(core(1), blk(1), AccessKind::Read);
        assert_eq!(out.source, DataSource::CleanCache(core(0)));
        assert!(!out.writeback);
        assert_eq!(d.sharers_of(blk(1)).len(), 2);
    }

    #[test]
    fn read_of_modified_line_is_dirty_c2c_with_writeback() {
        let mut d = dir();
        d.handle(core(0), blk(1), AccessKind::Write);
        let out = d.handle(core(1), blk(1), AccessKind::Read);
        assert_eq!(out.source, DataSource::DirtyCache(core(0)));
        assert!(out.writeback);
        assert!(!out.exclusive);
        assert_eq!(d.owner_of(blk(1)), None);
        assert_eq!(d.sharers_of(blk(1)).len(), 2);
    }

    #[test]
    fn write_invalidate_all_sharers() {
        let mut d = dir();
        for c in 0..4 {
            d.handle(core(c), blk(1), AccessKind::Read);
        }
        let out = d.handle(core(9), blk(1), AccessKind::Write);
        assert_eq!(out.invalidate.len(), 4);
        assert!(out.exclusive);
        assert_eq!(d.owner_of(blk(1)), Some(core(9)));
        assert_eq!(d.sharers_of(blk(1)).len(), 1);
    }

    #[test]
    fn write_steals_dirty_line_from_owner() {
        let mut d = dir();
        d.handle(core(0), blk(1), AccessKind::Write);
        let out = d.handle(core(5), blk(1), AccessKind::Write);
        assert_eq!(out.source, DataSource::DirtyCache(core(0)));
        assert_eq!(out.invalidate, CoreSet::singleton(core(0)));
        assert_eq!(d.owner_of(blk(1)), Some(core(5)));
    }

    #[test]
    fn upgrade_invalidates_other_sharers_without_data() {
        let mut d = dir();
        d.handle(core(0), blk(1), AccessKind::Read);
        d.handle(core(1), blk(1), AccessKind::Read);
        let out = d.handle(core(0), blk(1), AccessKind::Upgrade);
        assert_eq!(out.source, DataSource::None);
        assert_eq!(out.invalidate, CoreSet::singleton(core(1)));
        assert_eq!(d.owner_of(blk(1)), Some(core(0)));
    }

    #[test]
    fn sole_sharer_write_is_silent_upgrade() {
        let mut d = dir();
        d.handle(core(3), blk(1), AccessKind::Read);
        let out = d.handle(core(3), blk(1), AccessKind::Write);
        assert_eq!(out.source, DataSource::None);
        assert!(out.invalidate.is_empty());
        assert_eq!(d.owner_of(blk(1)), Some(core(3)));
    }

    #[test]
    fn eviction_of_owner_reports_writeback() {
        let mut d = dir();
        d.handle(core(0), blk(1), AccessKind::Write);
        assert!(d.evict(core(0), blk(1)));
        assert_eq!(d.tracked_blocks(), 0);
    }

    #[test]
    fn eviction_of_sharer_is_clean() {
        let mut d = dir();
        d.handle(core(0), blk(1), AccessKind::Read);
        d.handle(core(1), blk(1), AccessKind::Read);
        assert!(!d.evict(core(0), blk(1)));
        assert_eq!(d.sharers_of(blk(1)).len(), 1);
    }

    #[test]
    fn eviction_of_untracked_block_is_noop() {
        let mut d = dir();
        assert!(!d.evict(core(0), blk(42)));
    }

    #[test]
    fn homes_are_striped_across_all_cores() {
        let d = dir();
        let homes: std::collections::HashSet<_> = (0..64).map(|n| d.home_of(blk(n))).collect();
        assert_eq!(homes.len(), 16);
        assert_eq!(d.home_of(blk(17)), NodeId::new(1));
    }

    #[test]
    fn invariants_hold_under_mixed_traffic() {
        let mut d = dir();
        for i in 0..200u64 {
            let c = core((i % 16) as usize);
            let b = blk(i % 7);
            let kind = if i % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            // Writers that already share must upgrade instead; emulate the
            // engine's behavior.
            if kind == AccessKind::Write && d.sharers_of(b).contains(c) && d.owner_of(b) != Some(c)
            {
                d.handle(c, b, AccessKind::Upgrade);
            } else if d.owner_of(b) == Some(c) {
                // Hit in own cache; nothing to ask the directory.
            } else if kind == AccessKind::Read && d.sharers_of(b).contains(c) {
                // Read hit.
            } else {
                d.handle(c, b, kind);
            }
            d.check_invariants().unwrap();
        }
        assert!(d.stats().requests > 0);
    }

    #[test]
    fn stats_classify_c2c() {
        let mut d = dir();
        d.handle(core(0), blk(1), AccessKind::Write);
        d.handle(core(1), blk(1), AccessKind::Read); // dirty c2c
        d.handle(core(2), blk(1), AccessKind::Read); // clean c2c
        d.handle(core(3), blk(2), AccessKind::Read); // below
        let s = d.stats();
        assert_eq!(s.dirty_transfers, 1);
        assert_eq!(s.clean_transfers, 1);
        assert_eq!(s.from_below, 2);
        assert_eq!(s.cache_to_cache(), 2);
    }

    #[test]
    #[should_panic(expected = "outside machine")]
    fn out_of_range_requester_panics() {
        dir().handle(core(16), blk(0), AccessKind::Read);
    }

    #[test]
    fn trace_hook_samples_every_nth_action() {
        use consim_trace::RingBufferSink;
        use std::sync::Arc;

        let sink = Arc::new(RingBufferSink::new(64));
        let mut d = dir();
        d.set_trace_sink(Some(sink.clone()), 3);
        for i in 0..9u64 {
            d.handle(core((i % 16) as usize), blk(i), AccessKind::Read);
        }
        let events = sink.snapshot();
        assert_eq!(events.len(), 3, "every 3rd of 9 actions");
        match &events[0] {
            consim_trace::TraceEvent::Coherence {
                request,
                kind,
                source,
                ..
            } => {
                assert_eq!(*request, 1, "first sample is the first action");
                assert_eq!(*kind, "read");
                assert_eq!(*source, "below");
            }
            other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn snapshot_round_trip_preserves_entries_and_stats() {
        let mut d = dir();
        for i in 0..60u64 {
            let c = core((i % 16) as usize);
            let b = blk(i % 11);
            if d.owner_of(b) == Some(c) || d.sharers_of(b).contains(c) {
                continue;
            }
            let kind = if i % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            d.handle(c, b, kind);
        }
        let mut buf = consim_snap::SectionBuf::new();
        d.save(&mut buf);
        // Identical state twice in a row must serialize identically
        // (sorted entries, not map iteration order).
        let mut again = consim_snap::SectionBuf::new();
        d.save(&mut again);
        assert_eq!(buf.as_bytes(), again.as_bytes());

        let mut back = dir();
        back.restore(&mut consim_snap::SectionReader::new("coh", buf.as_bytes()))
            .unwrap();
        assert_eq!(back.stats(), d.stats());
        assert_eq!(back.tracked_blocks(), d.tracked_blocks());
        for b in 0..11u64 {
            assert_eq!(back.state_of(blk(b)), d.state_of(blk(b)), "block {b}");
        }
        back.check_invariants().unwrap();
    }

    #[test]
    fn snapshot_rejects_wrong_core_count() {
        let mut d = dir();
        d.handle(core(0), blk(1), AccessKind::Read);
        let mut buf = consim_snap::SectionBuf::new();
        d.save(&mut buf);
        let mut other = Directory::new(8);
        let err = other
            .restore(&mut consim_snap::SectionReader::new("coh", buf.as_bytes()))
            .unwrap_err();
        assert!(err.to_string().contains("cores"), "{err}");
    }

    #[test]
    fn trace_hook_skips_sinks_that_filter_coherence() {
        use consim_trace::NullSink;
        use std::sync::Arc;

        let mut d = dir();
        d.set_trace_sink(Some(Arc::new(NullSink)), 1);
        // NullSink wants nothing, so the hook must not be installed.
        d.handle(core(0), blk(0), AccessKind::Read);
        assert_eq!(d.stats().requests, 1);
    }
}
