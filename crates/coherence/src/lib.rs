//! Directory-based cache coherence for the `consim` CMP simulator.
//!
//! The paper's machine keeps its private caches coherent with an
//! "SGI Origin style directory protocol with directory entries striped
//! across the 16 cores by physical address", each core augmented with a
//! directory cache. This crate implements that protocol at the level the
//! characterization needs:
//!
//! * [`coreset`] — compact sharer bitmasks;
//! * [`directory`] — the full-map MESI directory: entry state, striped home
//!   nodes, and the transition function that classifies each L1 miss
//!   (clean/dirty cache-to-cache transfer, invalidations, memory fetch);
//! * [`dircache`] — per-home-node directory caches whose misses cost an
//!   off-chip access;
//! * [`stats`] — protocol event counters.
//!
//! The directory answers *what happens* for a request; the simulation engine
//! in the `consim` crate turns those outcomes into NoC messages and
//! latencies.
//!
//! # Examples
//!
//! ```
//! use consim_coherence::{AccessKind, Directory};
//! use consim_types::{BlockAddr, CoreId};
//!
//! let mut dir = Directory::new(16);
//! let block = BlockAddr::new(99);
//! // First reader gets the line exclusively from below.
//! let a = dir.handle(CoreId::new(0), block, AccessKind::Read);
//! assert!(a.source.is_below());
//! // Second reader is served by a clean cache-to-cache transfer.
//! let b = dir.handle(CoreId::new(1), block, AccessKind::Read);
//! assert!(b.source.is_cache_to_cache());
//! ```

pub mod coreset;
pub mod dircache;
pub mod directory;
pub mod stats;

pub use coreset::CoreSet;
pub use dircache::DirectoryCache;
pub use directory::{AccessKind, DataSource, Directory, Outcome};
pub use stats::ProtocolStats;
