//! Per-home-node directory caches.
//!
//! The paper: "Each core is augmented with a directory cache to reduce the
//! number of off-chip references." A directory's full map is conceptually
//! backed by memory; caching entries on chip makes the common case fast. A
//! lookup that misses costs an off-chip access (the engine charges the
//! memory latency) and then installs the entry.

use consim_cache::{LineState, ReplacementPolicy, SetAssocCache};
use consim_snap::{SectionBuf, SectionReader, Snapshot};
use consim_types::{BlockAddr, CacheGeometry, SimError};

/// One home node's cache of directory entries.
///
/// Internally reuses [`SetAssocCache`] with one "line" per directory entry
/// (the tag is what matters; no data is modeled).
///
/// # Examples
///
/// ```
/// use consim_coherence::DirectoryCache;
/// use consim_types::BlockAddr;
///
/// let mut dc = DirectoryCache::new(1024)?;
/// assert!(!dc.lookup(BlockAddr::new(5))); // cold miss, entry installed
/// assert!(dc.lookup(BlockAddr::new(5))); // now hits
/// # Ok::<(), consim_types::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DirectoryCache {
    cache: SetAssocCache,
}

/// Associativity used for directory caches.
const DIR_CACHE_WAYS: usize = 8;

impl DirectoryCache {
    /// Creates a directory cache holding `entries` entries.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `entries` is not a multiple of
    /// the internal associativity (8).
    pub fn new(entries: usize) -> Result<Self, SimError> {
        let geometry = CacheGeometry::new(entries * 64, DIR_CACHE_WAYS, 1)?;
        Ok(Self {
            cache: SetAssocCache::new(geometry, ReplacementPolicy::Lru),
        })
    }

    /// Looks up a block's directory entry; on a miss the entry is fetched
    /// (installed) and `false` is returned so the caller can charge the
    /// off-chip latency.
    pub fn lookup(&mut self, block: BlockAddr) -> bool {
        if self.cache.access(block).is_some() {
            true
        } else {
            self.cache.insert(block, LineState::Shared);
            false
        }
    }

    /// Number of lookups that hit.
    pub fn hits(&self) -> u64 {
        self.cache.stats().hits
    }

    /// Number of lookups that missed (and went off-chip).
    pub fn misses(&self) -> u64 {
        self.cache.stats().misses
    }

    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        1.0 - self.cache.stats().miss_rate()
    }

    /// Entry capacity.
    pub fn capacity(&self) -> usize {
        self.cache.capacity()
    }
}

impl Snapshot for DirectoryCache {
    fn save(&self, w: &mut SectionBuf) {
        self.cache.save(w);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        self.cache.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut dc = DirectoryCache::new(64).unwrap();
        let b = BlockAddr::new(3);
        assert!(!dc.lookup(b));
        assert!(dc.lookup(b));
        assert_eq!(dc.hits(), 1);
        assert_eq!(dc.misses(), 1);
    }

    #[test]
    fn capacity_eviction_causes_re_miss() {
        let mut dc = DirectoryCache::new(8).unwrap(); // one 8-way set
        for n in 0..8 {
            assert!(!dc.lookup(BlockAddr::new(n)));
        }
        // Entry 0 is LRU; a 9th entry evicts it.
        assert!(!dc.lookup(BlockAddr::new(100)));
        assert!(!dc.lookup(BlockAddr::new(0)), "evicted entry must re-miss");
    }

    #[test]
    fn hit_rate_tracks() {
        let mut dc = DirectoryCache::new(64).unwrap();
        dc.lookup(BlockAddr::new(1));
        dc.lookup(BlockAddr::new(1));
        dc.lookup(BlockAddr::new(1));
        assert!((dc.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rejects_bad_entry_count() {
        assert!(DirectoryCache::new(0).is_err());
        assert!(DirectoryCache::new(4).is_err()); // below one full set
        assert!(DirectoryCache::new(8192).is_ok());
    }

    #[test]
    fn capacity_reported() {
        assert_eq!(DirectoryCache::new(128).unwrap().capacity(), 128);
    }
}
