//! Compact sets of cores (sharer vectors).

use consim_snap::{SectionBuf, SectionReader, Snapshot};
use consim_types::{CoreId, SimError};
use std::fmt;

/// A set of cores, stored as a 64-bit mask — a full-map directory sharer
/// vector for machines of up to 64 cores.
///
/// # Examples
///
/// ```
/// use consim_coherence::CoreSet;
/// use consim_types::CoreId;
///
/// let mut set = CoreSet::EMPTY;
/// set.insert(CoreId::new(3));
/// set.insert(CoreId::new(7));
/// assert_eq!(set.len(), 2);
/// assert!(set.contains(CoreId::new(3)));
/// set.remove(CoreId::new(3));
/// assert_eq!(set.iter().collect::<Vec<_>>(), vec![CoreId::new(7)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CoreSet(u64);

impl CoreSet {
    /// The empty set.
    pub const EMPTY: CoreSet = CoreSet(0);

    /// Maximum representable core index.
    pub const MAX_CORES: usize = 64;

    /// A set containing a single core.
    pub fn singleton(core: CoreId) -> Self {
        let mut s = Self::EMPTY;
        s.insert(core);
        s
    }

    /// Adds a core; returns `true` if it was newly inserted.
    ///
    /// # Panics
    ///
    /// Panics if the core index is 64 or larger.
    pub fn insert(&mut self, core: CoreId) -> bool {
        assert!(core.index() < Self::MAX_CORES, "core index out of range");
        let bit = 1u64 << core.index();
        let new = self.0 & bit == 0;
        self.0 |= bit;
        new
    }

    /// Removes a core; returns `true` if it was present.
    pub fn remove(&mut self, core: CoreId) -> bool {
        if core.index() >= Self::MAX_CORES {
            return false;
        }
        let bit = 1u64 << core.index();
        let was = self.0 & bit != 0;
        self.0 &= !bit;
        was
    }

    /// Whether the set contains `core`.
    pub fn contains(&self, core: CoreId) -> bool {
        core.index() < Self::MAX_CORES && self.0 & (1u64 << core.index()) != 0
    }

    /// Number of cores in the set.
    pub fn len(&self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0 == 0
    }

    /// Iterates over members in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = CoreId> + '_ {
        let bits = self.0;
        (0..Self::MAX_CORES).filter_map(move |i| {
            if bits & (1u64 << i) != 0 {
                Some(CoreId::new(i))
            } else {
                None
            }
        })
    }

    /// Removes every core and returns the previous members.
    pub fn drain(&mut self) -> Vec<CoreId> {
        let members: Vec<CoreId> = self.iter().collect();
        self.0 = 0;
        members
    }

    /// The raw sharer-vector bitmask, for checkpointing.
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Rebuilds a set from [`CoreSet::bits`].
    pub const fn from_bits(bits: u64) -> Self {
        Self(bits)
    }
}

impl Snapshot for CoreSet {
    fn save(&self, w: &mut SectionBuf) {
        w.put_u64(self.0);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        self.0 = r.get_u64()?;
        Ok(())
    }
}

impl FromIterator<CoreId> for CoreSet {
    fn from_iter<I: IntoIterator<Item = CoreId>>(iter: I) -> Self {
        let mut set = CoreSet::EMPTY;
        for core in iter {
            set.insert(core);
        }
        set
    }
}

impl Extend<CoreId> for CoreSet {
    fn extend<I: IntoIterator<Item = CoreId>>(&mut self, iter: I) {
        for core in iter {
            self.insert(core);
        }
    }
}

impl fmt::Display for CoreSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, core) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{}", core.index())?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = CoreSet::EMPTY;
        assert!(s.insert(CoreId::new(5)));
        assert!(!s.insert(CoreId::new(5)));
        assert!(s.contains(CoreId::new(5)));
        assert!(s.remove(CoreId::new(5)));
        assert!(!s.remove(CoreId::new(5)));
        assert!(s.is_empty());
    }

    #[test]
    fn len_counts_members() {
        let s: CoreSet = [0, 1, 2, 63].into_iter().map(CoreId::new).collect();
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn iter_is_sorted() {
        let s: CoreSet = [9, 1, 4].into_iter().map(CoreId::new).collect();
        let v: Vec<usize> = s.iter().map(CoreId::index).collect();
        assert_eq!(v, vec![1, 4, 9]);
    }

    #[test]
    fn drain_empties() {
        let mut s = CoreSet::singleton(CoreId::new(2));
        s.insert(CoreId::new(8));
        let drained = s.drain();
        assert_eq!(drained.len(), 2);
        assert!(s.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn insert_out_of_range_panics() {
        let mut set = CoreSet::EMPTY;
        set.insert(CoreId::new(64));
    }

    #[test]
    fn display() {
        let s: CoreSet = [1, 3].into_iter().map(CoreId::new).collect();
        assert_eq!(s.to_string(), "{1,3}");
        assert_eq!(CoreSet::EMPTY.to_string(), "{}");
    }

    #[test]
    fn extend_adds_members() {
        let mut s = CoreSet::EMPTY;
        s.extend([CoreId::new(1), CoreId::new(2)]);
        assert_eq!(s.len(), 2);
    }
}
