//! Randomized property tests for the directory protocol, driven by seeded
//! `SimRng` streams so every run is reproducible.

use consim_coherence::{AccessKind, DataSource, Directory};
use consim_types::{BlockAddr, CoreId, SimRng};

/// A requester action the tests drive against the directory, mirroring how
/// the engine uses it (writers that already share a line upgrade; cores that
/// already hold sufficient permission don't re-request).
#[derive(Debug, Clone, Copy)]
struct Action {
    core: usize,
    block: u64,
    write: bool,
    evict: bool,
}

fn random_action(rng: &mut SimRng) -> Action {
    Action {
        core: rng.index(16),
        block: rng.below(12),
        write: rng.chance(0.5),
        evict: rng.chance(0.2),
    }
}

fn drive(dir: &mut Directory, a: Action) {
    let core = CoreId::new(a.core);
    let block = BlockAddr::new(a.block);
    if a.evict {
        dir.evict(core, block);
        return;
    }
    let holds = dir.sharers_of(block).contains(core);
    let owns = dir.owner_of(block) == Some(core);
    if a.write {
        if owns {
            // Write hit on Modified: nothing to do.
        } else if holds {
            dir.handle(core, block, AccessKind::Upgrade);
        } else {
            dir.handle(core, block, AccessKind::Write);
        }
    } else if !holds && !owns {
        dir.handle(core, block, AccessKind::Read);
    }
}

/// Structural invariants hold under arbitrary request/evict interleaving:
/// never both an owner and sharers; no empty or out-of-range entries.
#[test]
fn invariants_under_arbitrary_traffic() {
    let mut rng = SimRng::from_seed(0xD1A1);
    for _case in 0..128 {
        let mut dir = Directory::new(16);
        for _ in 0..1 + rng.index(300) {
            drive(&mut dir, random_action(&mut rng));
            dir.check_invariants().unwrap();
        }
    }
}

/// After a write, the writer is the sole tracked holder.
#[test]
fn writes_serialize_ownership() {
    let mut rng = SimRng::from_seed(0xD1A2);
    for _case in 0..128 {
        let mut dir = Directory::new(16);
        for _ in 0..rng.index(101) {
            drive(&mut dir, random_action(&mut rng));
        }
        let writer = rng.index(16);
        let block = rng.below(12);
        let core = CoreId::new(writer);
        let blk = BlockAddr::new(block);
        drive(
            &mut dir,
            Action {
                core: writer,
                block,
                write: true,
                evict: false,
            },
        );
        assert_eq!(dir.owner_of(blk), Some(core));
        let sharers = dir.sharers_of(blk);
        assert_eq!(sharers.len(), 1);
        assert!(sharers.contains(core));
    }
}

/// A dirty transfer is only ever sourced from the previous owner, and a
/// clean transfer only from a previous sharer.
#[test]
fn transfer_sources_are_real_holders() {
    let mut rng = SimRng::from_seed(0xD1A3);
    for _case in 0..128 {
        let mut dir = Directory::new(16);
        for _ in 0..1 + rng.index(200) {
            let a = random_action(&mut rng);
            if a.evict {
                dir.evict(CoreId::new(a.core), BlockAddr::new(a.block));
                continue;
            }
            let core = CoreId::new(a.core);
            let block = BlockAddr::new(a.block);
            let holders_before = dir.sharers_of(block);
            let owner_before = dir.owner_of(block);
            let holds = holders_before.contains(core);
            let owns = owner_before == Some(core);
            if a.write && owns {
                continue;
            }
            let outcome = if a.write {
                if holds {
                    dir.handle(core, block, AccessKind::Upgrade)
                } else {
                    dir.handle(core, block, AccessKind::Write)
                }
            } else {
                if holds || owns {
                    continue;
                }
                dir.handle(core, block, AccessKind::Read)
            };
            match outcome.source {
                DataSource::DirtyCache(src) => assert_eq!(Some(src), owner_before),
                DataSource::CleanCache(src) => {
                    assert!(holders_before.contains(src));
                    assert_ne!(src, core);
                }
                DataSource::Below => assert!(holders_before.is_empty()),
                DataSource::None => {}
            }
        }
    }
}

/// Request accounting balances: every request lands in exactly one of
/// clean/dirty/below/none buckets.
#[test]
fn stats_partition_requests() {
    let mut rng = SimRng::from_seed(0xD1A4);
    for _case in 0..128 {
        let mut dir = Directory::new(16);
        let mut handled = 0u64;
        let mut none_sourced = 0u64;
        for _ in 0..1 + rng.index(200) {
            let a = random_action(&mut rng);
            if a.evict {
                dir.evict(CoreId::new(a.core), BlockAddr::new(a.block));
                continue;
            }
            let core = CoreId::new(a.core);
            let block = BlockAddr::new(a.block);
            let holds = dir.sharers_of(block).contains(core);
            let owns = dir.owner_of(block) == Some(core);
            let outcome = if a.write {
                if owns {
                    continue;
                }
                if holds {
                    dir.handle(core, block, AccessKind::Upgrade)
                } else {
                    dir.handle(core, block, AccessKind::Write)
                }
            } else {
                if holds || owns {
                    continue;
                }
                dir.handle(core, block, AccessKind::Read)
            };
            handled += 1;
            if outcome.source == DataSource::None {
                none_sourced += 1;
            }
        }
        let s = dir.stats();
        assert_eq!(s.requests, handled);
        assert_eq!(
            s.clean_transfers + s.dirty_transfers + s.from_below + none_sourced,
            handled
        );
    }
}
