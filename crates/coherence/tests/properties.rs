//! Property-based tests for the directory protocol.

use consim_coherence::{AccessKind, DataSource, Directory};
use consim_types::{BlockAddr, CoreId};
use proptest::prelude::*;

/// A requester action proptest can drive against the directory, mirroring
/// how the engine uses it (writers that already share a line upgrade; cores
/// that already hold sufficient permission don't re-request).
#[derive(Debug, Clone, Copy)]
struct Action {
    core: usize,
    block: u64,
    write: bool,
    evict: bool,
}

fn any_action() -> impl Strategy<Value = Action> {
    (0usize..16, 0u64..12, any::<bool>(), prop::bool::weighted(0.2)).prop_map(
        |(core, block, write, evict)| Action {
            core,
            block,
            write,
            evict,
        },
    )
}

fn drive(dir: &mut Directory, a: Action) {
    let core = CoreId::new(a.core);
    let block = BlockAddr::new(a.block);
    if a.evict {
        dir.evict(core, block);
        return;
    }
    let holds = dir.sharers_of(block).contains(core);
    let owns = dir.owner_of(block) == Some(core);
    if a.write {
        if owns {
            // Write hit on Modified: nothing to do.
        } else if holds {
            dir.handle(core, block, AccessKind::Upgrade);
        } else {
            dir.handle(core, block, AccessKind::Write);
        }
    } else if !holds && !owns {
        dir.handle(core, block, AccessKind::Read);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Structural invariants hold under arbitrary request/evict interleaving:
    /// never both an owner and sharers; no empty or out-of-range entries.
    #[test]
    fn invariants_under_arbitrary_traffic(actions in prop::collection::vec(any_action(), 1..300)) {
        let mut dir = Directory::new(16);
        for a in actions {
            drive(&mut dir, a);
            dir.check_invariants().unwrap();
        }
    }

    /// After a write, the writer is the sole tracked holder.
    #[test]
    fn writes_serialize_ownership(
        setup in prop::collection::vec(any_action(), 0..100),
        writer in 0usize..16,
        block in 0u64..12,
    ) {
        let mut dir = Directory::new(16);
        for a in setup {
            drive(&mut dir, a);
        }
        let core = CoreId::new(writer);
        let blk = BlockAddr::new(block);
        drive(&mut dir, Action { core: writer, block, write: true, evict: false });
        prop_assert_eq!(dir.owner_of(blk), Some(core));
        let sharers = dir.sharers_of(blk);
        prop_assert_eq!(sharers.len(), 1);
        prop_assert!(sharers.contains(core));
    }

    /// A dirty transfer is only ever sourced from the previous owner, and a
    /// clean transfer only from a previous sharer.
    #[test]
    fn transfer_sources_are_real_holders(actions in prop::collection::vec(any_action(), 1..200)) {
        let mut dir = Directory::new(16);
        for a in actions {
            if a.evict {
                dir.evict(CoreId::new(a.core), BlockAddr::new(a.block));
                continue;
            }
            let core = CoreId::new(a.core);
            let block = BlockAddr::new(a.block);
            let holders_before = dir.sharers_of(block);
            let owner_before = dir.owner_of(block);
            let holds = holders_before.contains(core);
            let owns = owner_before == Some(core);
            if a.write && owns { continue; }
            let outcome = if a.write {
                if holds {
                    dir.handle(core, block, AccessKind::Upgrade)
                } else {
                    dir.handle(core, block, AccessKind::Write)
                }
            } else {
                if holds || owns { continue; }
                dir.handle(core, block, AccessKind::Read)
            };
            match outcome.source {
                DataSource::DirtyCache(src) => prop_assert_eq!(Some(src), owner_before),
                DataSource::CleanCache(src) => {
                    prop_assert!(holders_before.contains(src));
                    prop_assert_ne!(src, core);
                }
                DataSource::Below => prop_assert!(holders_before.is_empty()),
                DataSource::None => {}
            }
        }
    }

    /// Request accounting balances: every request lands in exactly one of
    /// clean/dirty/below/none buckets.
    #[test]
    fn stats_partition_requests(actions in prop::collection::vec(any_action(), 1..200)) {
        let mut dir = Directory::new(16);
        let mut handled = 0u64;
        let mut none_sourced = 0u64;
        for a in actions {
            if a.evict {
                dir.evict(CoreId::new(a.core), BlockAddr::new(a.block));
                continue;
            }
            let core = CoreId::new(a.core);
            let block = BlockAddr::new(a.block);
            let holds = dir.sharers_of(block).contains(core);
            let owns = dir.owner_of(block) == Some(core);
            let outcome = if a.write {
                if owns { continue; }
                if holds {
                    dir.handle(core, block, AccessKind::Upgrade)
                } else {
                    dir.handle(core, block, AccessKind::Write)
                }
            } else {
                if holds || owns { continue; }
                dir.handle(core, block, AccessKind::Read)
            };
            handled += 1;
            if outcome.source == DataSource::None {
                none_sourced += 1;
            }
        }
        let s = dir.stats();
        prop_assert_eq!(s.requests, handled);
        prop_assert_eq!(s.clean_transfers + s.dirty_transfers + s.from_below + none_sourced, handled);
    }
}
