//! The trace event vocabulary and its JSONL serialization.

use std::fmt;

/// Coarse event category, used by sinks to filter high-volume classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// Run start/end and audit results — a handful per simulation.
    Lifecycle,
    /// Per-epoch time-series snapshots — tens to hundreds per simulation.
    Epoch,
    /// Per-coherence-action events (sampled) — potentially millions.
    Coherence,
    /// Per-packet contention stalls — potentially millions.
    NocStall,
    /// Experiment-runner cell/batch timings — one per (cell, seed).
    Runner,
}

impl EventClass {
    /// Every class, in declaration order.
    pub const ALL: [EventClass; 5] = [
        EventClass::Lifecycle,
        EventClass::Epoch,
        EventClass::Coherence,
        EventClass::NocStall,
        EventClass::Runner,
    ];

    const fn bit(self) -> u8 {
        match self {
            EventClass::Lifecycle => 1 << 0,
            EventClass::Epoch => 1 << 1,
            EventClass::Coherence => 1 << 2,
            EventClass::NocStall => 1 << 3,
            EventClass::Runner => 1 << 4,
        }
    }
}

/// A set of [`EventClass`]es, used to configure sink filters.
///
/// # Examples
///
/// ```
/// use consim_trace::{ClassMask, EventClass};
///
/// let low_volume = ClassMask::LOW_VOLUME;
/// assert!(low_volume.contains(EventClass::Lifecycle));
/// assert!(!low_volume.contains(EventClass::Coherence));
/// let all = low_volume.with(EventClass::Coherence).with(EventClass::NocStall);
/// assert_eq!(all, ClassMask::ALL);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClassMask(u8);

impl ClassMask {
    /// No classes.
    pub const NONE: ClassMask = ClassMask(0);
    /// Every class, including the per-action firehose.
    pub const ALL: ClassMask = ClassMask(0b1_1111);
    /// The bounded-volume classes: lifecycle, epoch series, runner timings.
    /// This is the default for file sinks; the per-action classes
    /// ([`EventClass::Coherence`], [`EventClass::NocStall`]) are opt-in.
    pub const LOW_VOLUME: ClassMask =
        ClassMask(EventClass::Lifecycle.bit() | EventClass::Epoch.bit() | EventClass::Runner.bit());

    /// This mask plus `class`.
    #[must_use]
    pub const fn with(self, class: EventClass) -> ClassMask {
        ClassMask(self.0 | class.bit())
    }

    /// This mask minus `class`.
    #[must_use]
    pub const fn without(self, class: EventClass) -> ClassMask {
        ClassMask(self.0 & !class.bit())
    }

    /// Whether `class` is in the mask.
    pub const fn contains(self, class: EventClass) -> bool {
        self.0 & class.bit() != 0
    }
}

impl Default for ClassMask {
    fn default() -> Self {
        ClassMask::LOW_VOLUME
    }
}

/// One structured observability event.
///
/// Every variant serializes to a single JSON object with an `"event"` tag
/// (see [`TraceEvent::to_json`]), so a trace file is plain JSONL.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// Measurement began (after warmup) for one simulation.
    RunStarted {
        /// Root seed of the simulation.
        seed: u64,
        /// Number of VMs in the mix.
        vms: u32,
        /// Measured reference quota per VM.
        refs_per_vm: u64,
        /// Warmup reference quota per VM.
        warmup_refs_per_vm: u64,
    },
    /// Measurement finished for one simulation.
    RunCompleted {
        /// Root seed of the simulation.
        seed: u64,
        /// Length of the measurement interval in cycles.
        measured_cycles: u64,
        /// Total LLC-level requests (L1 misses) across VMs.
        l1_misses: u64,
        /// Total off-chip fetches across VMs.
        memory_fetches: u64,
    },
    /// The end-of-run counter audit passed.
    AuditPassed {
        /// Root seed of the simulation.
        seed: u64,
        /// Number of invariants checked.
        checks: u32,
    },
    /// A VM arrived at a churn boundary and was bound to cores.
    VmSpawned {
        /// Simulation cycle of the churn boundary.
        cycle: u64,
        /// VM index.
        vm: u32,
        /// Cores bound, thread `t` on `cores[t]`.
        cores: Vec<u64>,
    },
    /// A VM departed at a churn boundary; its private caches were scrubbed.
    VmRetired {
        /// Simulation cycle of the churn boundary.
        cycle: u64,
        /// VM index.
        vm: u32,
        /// Cores released, ascending.
        cores: Vec<u64>,
        /// L0 lines invalidated by the scrub.
        invalidated_l0: u64,
        /// L1 lines invalidated by the scrub.
        invalidated_l1: u64,
        /// Dirty L1 lines written back (content-only) into LLC banks.
        writebacks: u64,
    },
    /// A VM live-migrated between core sets at a churn boundary.
    VmMigrated {
        /// Simulation cycle of the churn boundary.
        cycle: u64,
        /// VM index.
        vm: u32,
        /// Cores vacated, ascending.
        from: Vec<u64>,
        /// Cores newly bound, thread `t` on `to[t]`.
        to: Vec<u64>,
        /// L0 lines invalidated by the scrub.
        invalidated_l0: u64,
        /// L1 lines invalidated by the scrub.
        invalidated_l1: u64,
        /// Dirty L1 lines written back (content-only) into LLC banks.
        writebacks: u64,
    },
    /// Per-VM snapshot of the cumulative measurement counters at an epoch
    /// boundary.
    Epoch {
        /// Simulation cycle of the snapshot.
        cycle: u64,
        /// VM index.
        vm: u32,
        /// References issued so far.
        refs: u64,
        /// LLC-level requests so far.
        l1_misses: u64,
        /// Off-chip fraction of LLC-level requests so far.
        llc_miss_rate: f64,
        /// Mean L1-miss latency (cycles) so far.
        mean_miss_latency: f64,
    },
    /// Machine-wide snapshot at an epoch boundary.
    EpochMachine {
        /// Simulation cycle of the snapshot.
        cycle: u64,
        /// Mean utilization across mesh links since measurement start.
        noc_mean_utilization: f64,
        /// Utilization of the busiest mesh link.
        noc_peak_utilization: f64,
        /// Fraction of LLC capacity holding valid lines.
        llc_occupancy: f64,
    },
    /// The dynamic QoS controller changed the per-VM LLC way split at an
    /// epoch boundary (emitted only for decisions that moved ways).
    Repartition {
        /// Simulation cycle of the decision.
        cycle: u64,
        /// 1-based decision index within the measurement phase.
        epoch: u64,
        /// Per-VM allowed-way bitmasks before the decision.
        old_masks: Vec<u64>,
        /// Per-VM allowed-way bitmasks after the decision.
        new_masks: Vec<u64>,
        /// Per-VM classification labels (`"light"`, `"streaming"`,
        /// `"cache_sensitive"`) used for the decision.
        classes: Vec<&'static str>,
        /// Per-VM EWMA slowdown in milli units (1000 = no slowdown).
        ewma_milli: Vec<u64>,
    },
    /// One (sampled) directory protocol action.
    Coherence {
        /// Ordinal of the request at the directory (1-based).
        request: u64,
        /// Requesting core.
        requester: u32,
        /// Block address.
        block: u64,
        /// Access kind: `"read"`, `"write"`, or `"upgrade"`.
        kind: &'static str,
        /// Data source: `"dirty_cache"`, `"clean_cache"`, `"below"`, or
        /// `"none"`.
        source: &'static str,
        /// Caches invalidated by this action.
        invalidations: u32,
        /// Whether a dirty copy was written back toward the home.
        writeback: bool,
    },
    /// A packet queued behind earlier link reservations.
    NocStall {
        /// Departure cycle of the stalled packet.
        at: u64,
        /// Source node.
        src: u32,
        /// Destination node.
        dst: u32,
        /// Cycles spent waiting for link slots, summed over the path.
        stall_cycles: u64,
    },
    /// One (cell, seed) simulation job finished in the experiment runner.
    CellCompleted {
        /// Cell index within the submitted batch.
        cell: u32,
        /// Seed of the finished job.
        seed: u64,
        /// Wall-clock time of the job in milliseconds.
        wall_ms: f64,
    },
    /// A whole `run_cells` batch finished.
    BatchCompleted {
        /// Jobs in the batch (cells x seeds).
        jobs: u32,
        /// Worker threads used.
        workers: u32,
        /// Wall-clock time of the batch in seconds.
        wall_seconds: f64,
        /// Summed per-job wall time in seconds.
        busy_seconds: f64,
        /// `busy / (workers * wall)`, in `[0, 1]` — worker-pool utilization.
        worker_utilization: f64,
    },
}

impl TraceEvent {
    /// The event's class, for sink filtering.
    pub fn class(&self) -> EventClass {
        match self {
            TraceEvent::RunStarted { .. }
            | TraceEvent::RunCompleted { .. }
            | TraceEvent::AuditPassed { .. }
            | TraceEvent::VmSpawned { .. }
            | TraceEvent::VmRetired { .. }
            | TraceEvent::VmMigrated { .. } => EventClass::Lifecycle,
            TraceEvent::Epoch { .. }
            | TraceEvent::EpochMachine { .. }
            | TraceEvent::Repartition { .. } => EventClass::Epoch,
            TraceEvent::Coherence { .. } => EventClass::Coherence,
            TraceEvent::NocStall { .. } => EventClass::NocStall,
            TraceEvent::CellCompleted { .. } | TraceEvent::BatchCompleted { .. } => {
                EventClass::Runner
            }
        }
    }

    /// Serializes the event as one JSON object (no trailing newline).
    ///
    /// Non-finite floats serialize as `null` so the output is always valid
    /// JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128);
        self.write_json(&mut out)
            .expect("writing to a String cannot fail");
        out
    }

    fn write_json(&self, f: &mut impl fmt::Write) -> fmt::Result {
        match self {
            TraceEvent::RunStarted {
                seed,
                vms,
                refs_per_vm,
                warmup_refs_per_vm,
            } => write!(
                f,
                "{{\"event\":\"run_started\",\"seed\":{seed},\"vms\":{vms},\
                 \"refs_per_vm\":{refs_per_vm},\"warmup_refs_per_vm\":{warmup_refs_per_vm}}}"
            ),
            TraceEvent::RunCompleted {
                seed,
                measured_cycles,
                l1_misses,
                memory_fetches,
            } => write!(
                f,
                "{{\"event\":\"run_completed\",\"seed\":{seed},\
                 \"measured_cycles\":{measured_cycles},\"l1_misses\":{l1_misses},\
                 \"memory_fetches\":{memory_fetches}}}"
            ),
            TraceEvent::AuditPassed { seed, checks } => write!(
                f,
                "{{\"event\":\"audit_passed\",\"seed\":{seed},\"checks\":{checks}}}"
            ),
            TraceEvent::VmSpawned { cycle, vm, cores } => {
                write!(
                    f,
                    "{{\"event\":\"vm_spawned\",\"cycle\":{cycle},\"vm\":{vm},\"cores\":"
                )?;
                json_u64_array(f, cores)?;
                f.write_str("}")
            }
            TraceEvent::VmRetired {
                cycle,
                vm,
                cores,
                invalidated_l0,
                invalidated_l1,
                writebacks,
            } => {
                write!(
                    f,
                    "{{\"event\":\"vm_retired\",\"cycle\":{cycle},\"vm\":{vm},\"cores\":"
                )?;
                json_u64_array(f, cores)?;
                write!(
                    f,
                    ",\"invalidated_l0\":{invalidated_l0},\"invalidated_l1\":{invalidated_l1},\
                     \"writebacks\":{writebacks}}}"
                )
            }
            TraceEvent::VmMigrated {
                cycle,
                vm,
                from,
                to,
                invalidated_l0,
                invalidated_l1,
                writebacks,
            } => {
                write!(
                    f,
                    "{{\"event\":\"vm_migrated\",\"cycle\":{cycle},\"vm\":{vm},\"from\":"
                )?;
                json_u64_array(f, from)?;
                f.write_str(",\"to\":")?;
                json_u64_array(f, to)?;
                write!(
                    f,
                    ",\"invalidated_l0\":{invalidated_l0},\"invalidated_l1\":{invalidated_l1},\
                     \"writebacks\":{writebacks}}}"
                )
            }
            TraceEvent::Epoch {
                cycle,
                vm,
                refs,
                l1_misses,
                llc_miss_rate,
                mean_miss_latency,
            } => write!(
                f,
                "{{\"event\":\"epoch\",\"cycle\":{cycle},\"vm\":{vm},\"refs\":{refs},\
                 \"l1_misses\":{l1_misses},\"llc_miss_rate\":{},\"mean_miss_latency\":{}}}",
                json_f64(*llc_miss_rate),
                json_f64(*mean_miss_latency),
            ),
            TraceEvent::EpochMachine {
                cycle,
                noc_mean_utilization,
                noc_peak_utilization,
                llc_occupancy,
            } => write!(
                f,
                "{{\"event\":\"epoch_machine\",\"cycle\":{cycle},\
                 \"noc_mean_utilization\":{},\"noc_peak_utilization\":{},\
                 \"llc_occupancy\":{}}}",
                json_f64(*noc_mean_utilization),
                json_f64(*noc_peak_utilization),
                json_f64(*llc_occupancy),
            ),
            TraceEvent::Repartition {
                cycle,
                epoch,
                old_masks,
                new_masks,
                classes,
                ewma_milli,
            } => {
                write!(
                    f,
                    "{{\"event\":\"repartition\",\"cycle\":{cycle},\"epoch\":{epoch},\
                     \"old_masks\":"
                )?;
                json_u64_array(f, old_masks)?;
                f.write_str(",\"new_masks\":")?;
                json_u64_array(f, new_masks)?;
                f.write_str(",\"classes\":[")?;
                for (i, class) in classes.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "\"{class}\"")?;
                }
                f.write_str("],\"ewma_milli\":")?;
                json_u64_array(f, ewma_milli)?;
                f.write_str("}")
            }
            TraceEvent::Coherence {
                request,
                requester,
                block,
                kind,
                source,
                invalidations,
                writeback,
            } => write!(
                f,
                "{{\"event\":\"coherence\",\"request\":{request},\"requester\":{requester},\
                 \"block\":{block},\"kind\":\"{kind}\",\"source\":\"{source}\",\
                 \"invalidations\":{invalidations},\"writeback\":{writeback}}}"
            ),
            TraceEvent::NocStall {
                at,
                src,
                dst,
                stall_cycles,
            } => write!(
                f,
                "{{\"event\":\"noc_stall\",\"at\":{at},\"src\":{src},\"dst\":{dst},\
                 \"stall_cycles\":{stall_cycles}}}"
            ),
            TraceEvent::CellCompleted {
                cell,
                seed,
                wall_ms,
            } => write!(
                f,
                "{{\"event\":\"cell_completed\",\"cell\":{cell},\"seed\":{seed},\
                 \"wall_ms\":{}}}",
                json_f64(*wall_ms)
            ),
            TraceEvent::BatchCompleted {
                jobs,
                workers,
                wall_seconds,
                busy_seconds,
                worker_utilization,
            } => write!(
                f,
                "{{\"event\":\"batch_completed\",\"jobs\":{jobs},\"workers\":{workers},\
                 \"wall_seconds\":{},\"busy_seconds\":{},\"worker_utilization\":{}}}",
                json_f64(*wall_seconds),
                json_f64(*busy_seconds),
                json_f64(*worker_utilization),
            ),
        }
    }
}

/// Writes a `u64` slice as a JSON array.
fn json_u64_array(f: &mut impl fmt::Write, vs: &[u64]) -> fmt::Result {
    f.write_str("[")?;
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            f.write_str(",")?;
        }
        write!(f, "{v}")?;
    }
    f.write_str("]")
}

/// Formats a float as a JSON value (`null` if non-finite).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_masks_compose() {
        assert!(ClassMask::ALL.contains(EventClass::Coherence));
        assert!(!ClassMask::NONE.contains(EventClass::Lifecycle));
        let m = ClassMask::NONE.with(EventClass::Epoch);
        assert!(m.contains(EventClass::Epoch));
        assert!(!m.without(EventClass::Epoch).contains(EventClass::Epoch));
        for class in EventClass::ALL {
            assert!(ClassMask::ALL.contains(class));
        }
    }

    #[test]
    fn default_mask_excludes_firehose_classes() {
        let m = ClassMask::default();
        assert!(m.contains(EventClass::Lifecycle));
        assert!(m.contains(EventClass::Epoch));
        assert!(m.contains(EventClass::Runner));
        assert!(!m.contains(EventClass::Coherence));
        assert!(!m.contains(EventClass::NocStall));
    }

    #[test]
    fn every_variant_serializes_with_its_tag() {
        let cases: Vec<(TraceEvent, &str)> = vec![
            (
                TraceEvent::RunStarted {
                    seed: 1,
                    vms: 4,
                    refs_per_vm: 10,
                    warmup_refs_per_vm: 5,
                },
                "run_started",
            ),
            (
                TraceEvent::RunCompleted {
                    seed: 1,
                    measured_cycles: 99,
                    l1_misses: 7,
                    memory_fetches: 3,
                },
                "run_completed",
            ),
            (
                TraceEvent::AuditPassed { seed: 1, checks: 9 },
                "audit_passed",
            ),
            (
                TraceEvent::VmSpawned {
                    cycle: 5_000,
                    vm: 2,
                    cores: vec![4, 5],
                },
                "vm_spawned",
            ),
            (
                TraceEvent::VmRetired {
                    cycle: 10_000,
                    vm: 1,
                    cores: vec![2, 3],
                    invalidated_l0: 12,
                    invalidated_l1: 64,
                    writebacks: 9,
                },
                "vm_retired",
            ),
            (
                TraceEvent::VmMigrated {
                    cycle: 15_000,
                    vm: 0,
                    from: vec![0, 1],
                    to: vec![6, 7],
                    invalidated_l0: 8,
                    invalidated_l1: 32,
                    writebacks: 4,
                },
                "vm_migrated",
            ),
            (
                TraceEvent::Epoch {
                    cycle: 100,
                    vm: 0,
                    refs: 50,
                    l1_misses: 5,
                    llc_miss_rate: 0.25,
                    mean_miss_latency: 40.5,
                },
                "epoch",
            ),
            (
                TraceEvent::EpochMachine {
                    cycle: 100,
                    noc_mean_utilization: 0.1,
                    noc_peak_utilization: 0.4,
                    llc_occupancy: 0.9,
                },
                "epoch_machine",
            ),
            (
                TraceEvent::Repartition {
                    cycle: 200,
                    epoch: 2,
                    old_masks: vec![0xff, 0xff00],
                    new_masks: vec![0x1ff, 0xfe00],
                    classes: vec!["cache_sensitive", "light"],
                    ewma_milli: vec![1500, 1000],
                },
                "repartition",
            ),
            (
                TraceEvent::Coherence {
                    request: 1,
                    requester: 2,
                    block: 3,
                    kind: "read",
                    source: "below",
                    invalidations: 0,
                    writeback: false,
                },
                "coherence",
            ),
            (
                TraceEvent::NocStall {
                    at: 10,
                    src: 0,
                    dst: 5,
                    stall_cycles: 3,
                },
                "noc_stall",
            ),
            (
                TraceEvent::CellCompleted {
                    cell: 0,
                    seed: 2,
                    wall_ms: 12.5,
                },
                "cell_completed",
            ),
            (
                TraceEvent::BatchCompleted {
                    jobs: 8,
                    workers: 4,
                    wall_seconds: 1.0,
                    busy_seconds: 3.5,
                    worker_utilization: 0.875,
                },
                "batch_completed",
            ),
        ];
        for (event, tag) in cases {
            let json = event.to_json();
            assert!(
                json.starts_with(&format!("{{\"event\":\"{tag}\"")),
                "{json}"
            );
            assert!(json.ends_with('}'), "{json}");
            // Balanced braces and no raw NaN tokens.
            assert_eq!(json.matches('{').count(), json.matches('}').count());
            assert!(!json.contains("NaN"));
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = TraceEvent::Epoch {
            cycle: 1,
            vm: 0,
            refs: 0,
            l1_misses: 0,
            llc_miss_rate: f64::NAN,
            mean_miss_latency: f64::INFINITY,
        };
        let json = e.to_json();
        assert!(json.contains("\"llc_miss_rate\":null"));
        assert!(json.contains("\"mean_miss_latency\":null"));
    }

    #[test]
    fn repartition_serializes_arrays() {
        let e = TraceEvent::Repartition {
            cycle: 50_000,
            epoch: 1,
            old_masks: vec![0xff, 0xff00],
            new_masks: vec![0x1ff, 0xfe00],
            classes: vec!["cache_sensitive", "streaming"],
            ewma_milli: vec![2000, 1000],
        };
        assert_eq!(
            e.to_json(),
            "{\"event\":\"repartition\",\"cycle\":50000,\"epoch\":1,\
             \"old_masks\":[255,65280],\"new_masks\":[511,65024],\
             \"classes\":[\"cache_sensitive\",\"streaming\"],\
             \"ewma_milli\":[2000,1000]}"
        );
        assert_eq!(e.class(), EventClass::Epoch);
    }

    #[test]
    fn classes_match_variants() {
        assert_eq!(
            TraceEvent::AuditPassed { seed: 0, checks: 0 }.class(),
            EventClass::Lifecycle
        );
        assert_eq!(
            TraceEvent::NocStall {
                at: 0,
                src: 0,
                dst: 1,
                stall_cycles: 1
            }
            .class(),
            EventClass::NocStall
        );
        assert_eq!(
            TraceEvent::CellCompleted {
                cell: 0,
                seed: 0,
                wall_ms: 0.0
            }
            .class(),
            EventClass::Runner
        );
    }
}
