//! Trace sinks: where events go.
//!
//! Producers hold an `Option<Arc<dyn TraceSink>>` and call
//! [`TraceSink::record`] behind a single `if let Some(..)` branch, so the
//! disabled path costs one predictable branch and no allocation.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::event::{ClassMask, EventClass, TraceEvent};

/// Destination for [`TraceEvent`]s.
///
/// Implementations must be thread-safe: the experiment runner records from
/// multiple worker threads into one shared sink. `Debug` is a supertrait so
/// configs holding `Arc<dyn TraceSink>` can keep `#[derive(Debug)]`.
pub trait TraceSink: Send + Sync + fmt::Debug {
    /// Records one event. Must not panic on I/O failure — degrade by
    /// dropping the event and counting it instead.
    fn record(&self, event: &TraceEvent);

    /// Whether the sink wants events of `class` at all. Producers on hot
    /// paths may check this once and skip constructing events entirely.
    fn wants(&self, class: EventClass) -> bool {
        let _ = class;
        true
    }
}

/// A sink that discards everything; useful as an explicit "off" value.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&self, _event: &TraceEvent) {}

    fn wants(&self, _class: EventClass) -> bool {
        false
    }
}

/// A bounded in-memory recorder keeping the most recent events.
///
/// When full, the oldest event is evicted and counted in
/// [`RingBufferSink::dropped`]. Intended for tests and interactive
/// debugging, not for full-run capture.
#[derive(Debug)]
pub struct RingBufferSink {
    inner: Mutex<Ring>,
    capacity: usize,
}

#[derive(Debug, Default)]
struct Ring {
    events: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingBufferSink {
    /// Creates a ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        RingBufferSink {
            inner: Mutex::new(Ring::default()),
            capacity: capacity.max(1),
        }
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("ring sink poisoned").events.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().expect("ring sink poisoned").dropped
    }

    /// Copies the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner
            .lock()
            .expect("ring sink poisoned")
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Removes and returns all buffered events, oldest first.
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.inner
            .lock()
            .expect("ring sink poisoned")
            .events
            .drain(..)
            .collect()
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, event: &TraceEvent) {
        let mut ring = self.inner.lock().expect("ring sink poisoned");
        if ring.events.len() == self.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(event.clone());
    }
}

/// An append-only JSONL file writer with a per-class filter.
///
/// Each recorded event becomes one line of JSON. High-volume classes
/// ([`EventClass::Coherence`], [`EventClass::NocStall`]) are excluded by the
/// default mask; pass [`ClassMask::ALL`] to capture them. I/O errors never
/// panic — failed writes are counted and reported by [`JsonlSink::errors`].
#[derive(Debug)]
pub struct JsonlSink {
    writer: Mutex<Writer>,
    mask: ClassMask,
}

#[derive(Debug)]
struct Writer {
    out: BufWriter<File>,
    lines: u64,
    errors: u64,
}

impl JsonlSink {
    /// Creates (truncating) `path` with the default low-volume mask.
    pub fn create(path: &Path) -> io::Result<Self> {
        Self::with_mask(path, ClassMask::default())
    }

    /// Creates (truncating) `path` recording only classes in `mask`.
    pub fn with_mask(path: &Path, mask: ClassMask) -> io::Result<Self> {
        let file = File::create(path)?;
        Ok(JsonlSink {
            writer: Mutex::new(Writer {
                out: BufWriter::new(file),
                lines: 0,
                errors: 0,
            }),
            mask,
        })
    }

    /// Lines successfully written so far.
    pub fn lines(&self) -> u64 {
        self.writer.lock().expect("jsonl sink poisoned").lines
    }

    /// Write failures so far (events dropped, never panicked on).
    pub fn errors(&self) -> u64 {
        self.writer.lock().expect("jsonl sink poisoned").errors
    }

    /// Flushes buffered lines to the file.
    pub fn flush(&self) -> io::Result<()> {
        self.writer.lock().expect("jsonl sink poisoned").out.flush()
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, event: &TraceEvent) {
        if !self.mask.contains(event.class()) {
            return;
        }
        let line = event.to_json();
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        match writeln!(w.out, "{line}") {
            Ok(()) => w.lines += 1,
            Err(_) => w.errors += 1,
        }
    }

    fn wants(&self, class: EventClass) -> bool {
        self.mask.contains(class)
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        if let Ok(w) = self.writer.get_mut() {
            let _ = w.out.flush();
        }
    }
}

/// A fan-out sink whose subscriber set changes at runtime.
///
/// A long-running producer (a daemon executing jobs on a worker pool) can
/// attach one `BroadcastSink` per job up front and let observers come and
/// go mid-run: [`BroadcastSink::subscribe`] registers a downstream sink,
/// the returned token [`BroadcastSink::unsubscribe`]s it. With no
/// subscribers [`TraceSink::wants`] reports `false` for every class, so
/// producers that re-check `wants` at slice boundaries keep their
/// non-instrumented fast path until someone is actually listening.
#[derive(Debug, Default)]
pub struct BroadcastSink {
    inner: Mutex<Broadcast>,
}

#[derive(Debug, Default)]
struct Broadcast {
    subscribers: Vec<(u64, std::sync::Arc<dyn TraceSink>)>,
    next_token: u64,
}

impl BroadcastSink {
    /// An empty broadcast (wants nothing until someone subscribes).
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers `sink` to receive every subsequently recorded event it
    /// wants; returns a token for [`BroadcastSink::unsubscribe`].
    pub fn subscribe(&self, sink: std::sync::Arc<dyn TraceSink>) -> u64 {
        let mut inner = self.inner.lock().expect("broadcast sink poisoned");
        let token = inner.next_token;
        inner.next_token += 1;
        inner.subscribers.push((token, sink));
        token
    }

    /// Removes the subscriber registered under `token`; unknown tokens
    /// are a no-op (a completion race may remove it first).
    pub fn unsubscribe(&self, token: u64) {
        self.inner
            .lock()
            .expect("broadcast sink poisoned")
            .subscribers
            .retain(|(t, _)| *t != token);
    }

    /// Subscribers currently attached.
    pub fn subscriber_count(&self) -> usize {
        self.inner
            .lock()
            .expect("broadcast sink poisoned")
            .subscribers
            .len()
    }
}

impl TraceSink for BroadcastSink {
    fn record(&self, event: &TraceEvent) {
        // Clone the subscriber list out of the lock so a slow downstream
        // sink can't block subscribe/unsubscribe (or other recorders).
        let subscribers: Vec<std::sync::Arc<dyn TraceSink>> = self
            .inner
            .lock()
            .expect("broadcast sink poisoned")
            .subscribers
            .iter()
            .map(|(_, s)| std::sync::Arc::clone(s))
            .collect();
        let class = event.class();
        for sink in subscribers {
            if sink.wants(class) {
                sink.record(event);
            }
        }
    }

    fn wants(&self, class: EventClass) -> bool {
        self.inner
            .lock()
            .expect("broadcast sink poisoned")
            .subscribers
            .iter()
            .any(|(_, s)| s.wants(class))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn lifecycle(seed: u64) -> TraceEvent {
        TraceEvent::AuditPassed { seed, checks: 1 }
    }

    #[test]
    fn null_sink_wants_nothing() {
        let sink = NullSink;
        assert!(!sink.wants(EventClass::Lifecycle));
        sink.record(&lifecycle(0)); // no-op, must not panic
    }

    #[test]
    fn ring_buffer_keeps_most_recent_and_counts_drops() {
        let sink = RingBufferSink::new(3);
        assert!(sink.is_empty());
        for seed in 0..5 {
            sink.record(&lifecycle(seed));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let seeds: Vec<u64> = sink
            .snapshot()
            .into_iter()
            .map(|e| match e {
                TraceEvent::AuditPassed { seed, .. } => seed,
                other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(seeds, vec![2, 3, 4]);
        assert_eq!(sink.drain().len(), 3);
        assert!(sink.is_empty());
    }

    #[test]
    fn ring_buffer_capacity_floor_is_one() {
        let sink = RingBufferSink::new(0);
        sink.record(&lifecycle(1));
        sink.record(&lifecycle(2));
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.dropped(), 1);
    }

    #[test]
    fn ring_buffer_is_shareable_across_threads() {
        let sink = Arc::new(RingBufferSink::new(1024));
        std::thread::scope(|scope| {
            for t in 0..4 {
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    for i in 0..50 {
                        sink.record(&lifecycle(t * 100 + i));
                    }
                });
            }
        });
        assert_eq!(sink.len(), 200);
        assert_eq!(sink.dropped(), 0);
    }

    #[test]
    fn broadcast_sink_wants_nothing_until_subscribed() {
        let b = BroadcastSink::new();
        assert!(!b.wants(EventClass::Epoch));
        b.record(&lifecycle(1)); // no subscribers: must not panic
        let ring = Arc::new(RingBufferSink::new(8));
        let token = b.subscribe(Arc::clone(&ring) as Arc<dyn TraceSink>);
        assert!(b.wants(EventClass::Epoch));
        assert_eq!(b.subscriber_count(), 1);
        b.record(&lifecycle(2));
        assert_eq!(ring.len(), 1);
        b.unsubscribe(token);
        assert!(!b.wants(EventClass::Epoch));
        b.record(&lifecycle(3));
        assert_eq!(ring.len(), 1, "unsubscribed sinks stop receiving");
        b.unsubscribe(token); // idempotent
    }

    #[test]
    fn broadcast_sink_filters_per_subscriber_class() {
        let b = BroadcastSink::new();
        b.subscribe(Arc::new(NullSink) as Arc<dyn TraceSink>);
        assert!(
            !b.wants(EventClass::Lifecycle),
            "a subscriber that wants nothing must not force instrumentation on"
        );
        let ring = Arc::new(RingBufferSink::new(8));
        b.subscribe(Arc::clone(&ring) as Arc<dyn TraceSink>);
        b.record(&lifecycle(5));
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn jsonl_sink_writes_filtered_lines() {
        let dir = std::env::temp_dir().join("consim-trace-test-jsonl");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        assert!(sink.wants(EventClass::Epoch));
        assert!(!sink.wants(EventClass::Coherence));

        sink.record(&lifecycle(7));
        // Filtered out by the default mask:
        sink.record(&TraceEvent::NocStall {
            at: 1,
            src: 0,
            dst: 1,
            stall_cycles: 2,
        });
        sink.flush().unwrap();
        assert_eq!(sink.lines(), 1);
        assert_eq!(sink.errors(), 0);

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("\"audit_passed\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn jsonl_sink_full_mask_records_firehose_classes() {
        let dir = std::env::temp_dir().join("consim-trace-test-jsonl-full");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let sink = JsonlSink::with_mask(&path, ClassMask::ALL).unwrap();
        sink.record(&TraceEvent::Coherence {
            request: 1,
            requester: 0,
            block: 42,
            kind: "write",
            source: "dirty_cache",
            invalidations: 1,
            writeback: true,
        });
        sink.flush().unwrap();
        assert_eq!(sink.lines(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
