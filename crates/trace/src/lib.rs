//! Observability for the `consim` workspace.
//!
//! The paper's results are entirely counter-derived (miss classification,
//! latency composition, replication, occupancy), so a silent counter drift
//! corrupts every figure without failing a test. This crate provides the
//! instrumentation backbone the rest of the workspace threads through its
//! hot paths:
//!
//! * [`TraceEvent`] — the structured event vocabulary (run lifecycle,
//!   per-epoch time series, coherence actions, NoC stalls, experiment-runner
//!   cell timings), each serializable to one JSON line;
//! * [`TraceSink`] — the recording trait. Producers hold an
//!   `Option<Arc<dyn TraceSink>>`; the disabled path is a single branch, so
//!   tracing costs nothing when off;
//! * [`RingBufferSink`] — a bounded in-memory recorder for tests and
//!   interactive debugging;
//! * [`JsonlSink`] — an append-only JSONL file writer with a per-class
//!   filter (high-volume classes are opt-in);
//! * [`Manifest`] — the `manifest.json` written next to a trace, recording
//!   everything needed to reproduce the run (config digest, seeds, thread
//!   count, crate version, wall time).
//!
//! # Examples
//!
//! ```
//! use consim_trace::{RingBufferSink, TraceEvent, TraceSink};
//! use std::sync::Arc;
//!
//! let sink = Arc::new(RingBufferSink::new(128));
//! sink.record(&TraceEvent::RunStarted {
//!     seed: 1,
//!     vms: 4,
//!     refs_per_vm: 1_000,
//!     warmup_refs_per_vm: 500,
//! });
//! assert_eq!(sink.len(), 1);
//! assert!(sink.snapshot()[0].to_json().contains("\"run_started\""));
//! ```

pub mod event;
pub mod manifest;
pub mod sink;

pub use event::{ClassMask, EventClass, TraceEvent};
pub use manifest::{digest_of, Manifest};
pub use sink::{BroadcastSink, JsonlSink, NullSink, RingBufferSink, TraceSink};
