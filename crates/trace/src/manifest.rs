//! Run manifests: the `manifest.json` written next to a JSONL trace.
//!
//! A manifest records everything needed to reproduce and cross-check the
//! run that produced a trace: which binary, a digest of the effective
//! configuration, the seeds, the worker-thread count, and wall time. Bins
//! write it at exit via [`Manifest::write_to`].

use std::fmt::Write as _;
use std::fs;
use std::hash::{Hash, Hasher};
use std::io;
use std::path::{Path, PathBuf};

use consim_types::hash::FastHasher;

/// Stable 64-bit digest of any hashable configuration value, rendered as
/// fixed-width hex. Used to tie a manifest to the exact config that ran.
///
/// # Examples
///
/// ```
/// use consim_trace::digest_of;
///
/// let a = digest_of(&("sweep", 16u32, 42u64));
/// let b = digest_of(&("sweep", 16u32, 42u64));
/// assert_eq!(a, b);
/// assert_eq!(a.len(), 16);
/// assert_ne!(a, digest_of(&("sweep", 16u32, 43u64)));
/// ```
pub fn digest_of<T: Hash + ?Sized>(value: &T) -> String {
    let mut hasher = FastHasher::default();
    value.hash(&mut hasher);
    format!("{:016x}", hasher.finish())
}

/// Metadata describing one traced run.
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Which binary produced the trace (`run_all`, `sweep`, `throughput`).
    pub bin: &'static str,
    /// Workspace crate version (`CARGO_PKG_VERSION` of the bin crate).
    pub crate_version: &'static str,
    /// Digest of the effective run configuration (see [`digest_of`]).
    pub config_digest: String,
    /// Seeds the run covered.
    pub seeds: Vec<u64>,
    /// LLC way-partitioning policy label of the machine (e.g. `none`,
    /// `equal-ways`, `ways-8/4/2/2`).
    pub llc_partitioning: String,
    /// Worker threads used by the experiment runner.
    pub threads: usize,
    /// Whether the counter audit was enabled.
    pub audit: bool,
    /// Total wall-clock time of the run in seconds.
    pub wall_seconds: f64,
    /// Trace JSONL lines written (0 if the trace was disabled).
    pub trace_lines: u64,
    /// Trace write failures (events dropped on I/O error).
    pub trace_errors: u64,
    /// Journal directory this run resumed from (`--resume`), if any.
    pub resumed_from: Option<String>,
    /// Per-job configuration digests of the journal's committed outcome
    /// records (the `job-<digest>.bin` names, sorted): exactly which jobs
    /// the journal vouches for, independent of how they were batched.
    pub jobs: Vec<String>,
    /// Digests of the journal/checkpoint records involved in the run
    /// (sorted by file name), tying the manifest to the exact on-disk
    /// records it trusted or produced.
    pub checkpoints: Vec<String>,
}

impl Manifest {
    /// Serializes the manifest as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\n");
        let _ = writeln!(out, "  \"bin\": {},", json_string(self.bin));
        let _ = writeln!(
            out,
            "  \"crate_version\": {},",
            json_string(self.crate_version)
        );
        let _ = writeln!(
            out,
            "  \"config_digest\": {},",
            json_string(&self.config_digest)
        );
        let seeds: Vec<String> = self.seeds.iter().map(u64::to_string).collect();
        let _ = writeln!(out, "  \"seeds\": [{}],", seeds.join(", "));
        let _ = writeln!(
            out,
            "  \"llc_partitioning\": {},",
            json_string(&self.llc_partitioning)
        );
        let _ = writeln!(out, "  \"threads\": {},", self.threads);
        let _ = writeln!(out, "  \"audit\": {},", self.audit);
        let _ = writeln!(out, "  \"wall_seconds\": {},", json_f64(self.wall_seconds));
        let _ = writeln!(out, "  \"trace_lines\": {},", self.trace_lines);
        let _ = writeln!(out, "  \"trace_errors\": {},", self.trace_errors);
        let _ = writeln!(
            out,
            "  \"resumed_from\": {},",
            match &self.resumed_from {
                Some(dir) => json_string(dir),
                None => "null".to_string(),
            }
        );
        let jobs: Vec<String> = self.jobs.iter().map(|d| json_string(d)).collect();
        let _ = writeln!(out, "  \"jobs\": [{}],", jobs.join(", "));
        let checkpoints: Vec<String> = self.checkpoints.iter().map(|d| json_string(d)).collect();
        let _ = writeln!(out, "  \"checkpoints\": [{}]", checkpoints.join(", "));
        out.push('}');
        out
    }

    /// Writes `manifest.json` into `dir`, creating the directory if needed.
    /// Returns the path written.
    pub fn write_to(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join("manifest.json");
        fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

/// Escapes and quotes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest {
            bin: "run_all",
            crate_version: "0.1.0",
            config_digest: digest_of(&("figures", 42u64)),
            seeds: vec![42, 43],
            llc_partitioning: "none".to_string(),
            threads: 4,
            audit: true,
            wall_seconds: 1.25,
            trace_lines: 321,
            trace_errors: 0,
            resumed_from: None,
            jobs: Vec::new(),
            checkpoints: Vec::new(),
        }
    }

    #[test]
    fn digest_is_stable_and_hex() {
        let d = digest_of(&"config");
        assert_eq!(d, digest_of(&"config"));
        assert_eq!(d.len(), 16);
        assert!(d.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn json_has_all_fields() {
        let json = sample().to_json();
        for key in [
            "\"bin\": \"run_all\"",
            "\"crate_version\": \"0.1.0\"",
            "\"config_digest\"",
            "\"seeds\": [42, 43]",
            "\"llc_partitioning\": \"none\"",
            "\"threads\": 4",
            "\"audit\": true",
            "\"wall_seconds\": 1.25",
            "\"trace_lines\": 321",
            "\"trace_errors\": 0",
            "\"resumed_from\": null",
            "\"jobs\": []",
            "\"checkpoints\": []",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }

    #[test]
    fn write_to_creates_dir_and_file() {
        let dir = std::env::temp_dir().join("consim-trace-test-manifest");
        std::fs::remove_dir_all(&dir).ok();
        let path = sample().write_to(&dir).unwrap();
        assert_eq!(path.file_name().unwrap(), "manifest.json");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"bin\": \"run_all\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_wall_time_serializes_as_null() {
        let mut m = sample();
        m.wall_seconds = f64::NAN;
        assert!(m.to_json().contains("\"wall_seconds\": null"));
    }

    #[test]
    fn resume_provenance_serializes() {
        let mut m = sample();
        m.resumed_from = Some("out/journal".to_string());
        m.jobs = vec!["0011223344556677".to_string()];
        m.checkpoints = vec!["aa".to_string(), "bb".to_string()];
        let json = m.to_json();
        assert!(json.contains("\"resumed_from\": \"out/journal\""));
        assert!(json.contains("\"jobs\": [\"0011223344556677\"]"));
        assert!(json.contains("\"checkpoints\": [\"aa\", \"bb\"]"));
    }
}
