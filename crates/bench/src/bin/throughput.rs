//! Engine throughput probe: simulated references per wall-clock second.
//!
//! Runs the paper's shared-4-way affinity configuration with a four-VM
//! heterogeneous mix — the shape that dominates `run_all` — first serially,
//! then with the full worker pool, and reports refs/sec plus the parallel
//! speedup. Results land on stdout and in `BENCH_engine.json` (hand-rolled
//! JSON; the workspace is dependency-free); `--json <path>` redirects the
//! JSON report, so CI smoke probes can write a scratch file without
//! clobbering the committed baseline.
//!
//! Knobs: `CONSIM_REFS` / `CONSIM_WARMUP` scale the per-VM quotas,
//! `CONSIM_SEEDS` the seed fan-out, `CONSIM_THREADS` the parallel pool.
//! Observability flags: `--audit` / `--trace <dir>` (see
//! `consim_bench::cli`) — note tracing adds work to the measured loop, so
//! regression comparisons should run without `--trace`.

use consim_bench::cli::BenchFlags;
use consim_job::runner::{ExperimentCell, ExperimentRunner, RunOptions};
use consim_sched::SchedulingPolicy;
use consim_trace::digest_of;
use consim_types::config::{LlcPartitioning, SharingDegree};
use consim_workload::WorkloadKind;
use std::time::Instant;

fn options() -> RunOptions {
    RunOptions {
        refs_per_vm: 60_000,
        warmup_refs_per_vm: 60_000,
        seeds: (1..=8).collect(),
        track_footprint: false,
        prewarm_llc: false,
    }
    .from_env()
}

/// Total references simulated by one batch: per-VM quota (measured +
/// warmup) times VMs per cell times seeds.
fn total_refs(opts: &RunOptions, cells: &[ExperimentCell]) -> u64 {
    let per_vm = opts.refs_per_vm + opts.warmup_refs_per_vm;
    let vms: u64 = cells.iter().map(|c| c.profiles.len() as u64).sum();
    per_vm * vms * opts.seeds.len() as u64
}

fn main() {
    let mut flags = BenchFlags::from_env("throughput");
    let json_path = match flags.take_path("--json") {
        Ok(path) => path.unwrap_or_else(|| "BENCH_engine.json".into()),
        Err(msg) => {
            eprintln!("throughput: {msg}");
            eprintln!("usage: throughput [--json <path>] [--audit] [--trace <dir>]");
            std::process::exit(2);
        }
    };
    let session = flags.trace_session().expect("open trace directory");
    let opts = options();
    let mix = [
        WorkloadKind::TpcH,
        WorkloadKind::TpcW,
        WorkloadKind::SpecJbb,
        WorkloadKind::SpecWeb,
    ];
    let cells = vec![ExperimentCell::of_kinds(
        &mix,
        SchedulingPolicy::Affinity,
        SharingDegree::SharedBy(4),
    )];
    let refs = total_refs(&opts, &cells);

    let mut serial_runner = ExperimentRunner::new(opts.clone())
        .with_threads(1)
        .with_audit(flags.audit);
    let mut parallel_runner = ExperimentRunner::new(opts.clone()).with_audit(flags.audit);
    if let Some(session) = &session {
        serial_runner = serial_runner.with_sink(session.sink());
        parallel_runner = parallel_runner.with_sink(session.sink());
    }

    let t0 = Instant::now();
    serial_runner.run_cells(&cells).expect("serial batch");
    let serial_s = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    parallel_runner.run_cells(&cells).expect("parallel batch");
    let parallel_s = t1.elapsed().as_secs_f64();

    let serial_rps = refs as f64 / serial_s;
    let parallel_rps = refs as f64 / parallel_s;
    let speedup = serial_s / parallel_s;
    println!(
        "engine throughput: {refs} refs x {} seeds",
        opts.seeds.len()
    );
    println!("  serial:   {serial_s:8.2}s  {serial_rps:12.0} refs/sec");
    println!("  parallel: {parallel_s:8.2}s  {parallel_rps:12.0} refs/sec");
    println!("  speedup:  {speedup:8.2}x");

    let json = format!(
        "{{\n  \"benchmark\": \"engine_throughput\",\n  \"total_refs\": {refs},\n  \
         \"seeds\": {},\n  \"serial_seconds\": {serial_s:.4},\n  \
         \"parallel_seconds\": {parallel_s:.4},\n  \
         \"serial_refs_per_sec\": {serial_rps:.0},\n  \
         \"parallel_refs_per_sec\": {parallel_rps:.0},\n  \
         \"speedup\": {speedup:.3}\n}}\n",
        opts.seeds.len()
    );
    std::fs::write(&json_path, json)
        .unwrap_or_else(|e| panic!("write {}: {e}", json_path.display()));
    eprintln!("wrote {}", json_path.display());

    if let Some(session) = session {
        let path = session
            .finish(
                "throughput",
                digest_of(&opts),
                opts.seeds,
                LlcPartitioning::None.label(),
                flags.audit,
            )
            .expect("write manifest.json");
        eprintln!("throughput: wrote {}", path.display());
    }
}
