//! Latency-composition diagnostic: isolated vs consolidated runs.

use consim::engine::SimulationConfig;
use consim::Simulation;
use consim_sched::SchedulingPolicy;
use consim_types::config::{MachineConfig, SharingDegree};
use consim_workload::WorkloadKind;

fn run(label: &str, kinds: &[WorkloadKind]) {
    let mut b = SimulationConfig::builder();
    b.machine(MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4)))
        .policy(SchedulingPolicy::Affinity)
        .refs_per_vm(60_000)
        .warmup_refs_per_vm(250_000)
        .seed(1);
    for k in kinds {
        b.workload(k.profile());
    }
    let out = Simulation::new(b.build().unwrap()).unwrap().run().unwrap();
    println!("--- {label} ---");
    println!(
        "dircache hit rate: {:.1}%  noc mean latency: {:.1}cy  noc packets: {}",
        out.dircache_hit_rate * 100.0,
        out.noc.mean_latency(),
        out.noc.packets
    );
    println!(
        "noc utilization: mean {:.2}% peak {:.2}%  pkt latency min {} max {}",
        out.noc_mean_utilization * 100.0,
        out.noc_peak_utilization * 100.0,
        out.noc.latency.min(),
        out.noc.latency.max()
    );
    for (i, m) in out.vm_metrics.iter().enumerate() {
        println!(
            "  vm{i}: {m}  upgrades={} inv_recv={} mem={} runtime={}",
            m.upgrades,
            m.invalidations_received,
            m.memory_fetches,
            m.runtime_cycles()
        );
    }
}

fn main() {
    run("TPC-H isolated", &[WorkloadKind::TpcH]);
    run("TPC-W isolated", &[WorkloadKind::TpcW]);
    run(
        "Mix 1 (3x TPC-W + TPC-H)",
        &[
            WorkloadKind::TpcW,
            WorkloadKind::TpcW,
            WorkloadKind::TpcW,
            WorkloadKind::TpcH,
        ],
    );
    run("Mix B (4x TPC-H)", &[WorkloadKind::TpcH; 4]);
}
