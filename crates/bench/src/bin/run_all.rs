//! Regenerates every paper exhibit in one invocation.
//!
//! All experiment cells are prefetched in one parallel batch across the
//! worker pool before any table is printed. Run-length knobs:
//! `CONSIM_REFS`, `CONSIM_WARMUP`, `CONSIM_SEEDS`; worker count:
//! `CONSIM_THREADS` (defaults to the machine's available parallelism).
//!
//! Observability flags: `--audit` cross-checks every simulation's counters
//! at end of run; `--trace <dir>` streams trace events to
//! `<dir>/events.jsonl` and writes `<dir>/manifest.json` on exit (see
//! `consim_bench::cli`).

use consim::runner::ExperimentRunner;
use consim_bench::{cli::BenchFlags, figures, FigureContext};
use consim_trace::digest_of;
use consim_types::config::LlcPartitioning;
use std::time::Instant;

fn main() {
    let flags = BenchFlags::from_env("run_all");
    let session = flags.trace_session().expect("open trace directory");
    let options = FigureContext::figure_options();
    let mut runner = ExperimentRunner::new(options.clone()).with_audit(flags.audit);
    if let Some(session) = &session {
        runner = runner.with_sink(session.sink());
    }

    let started = Instant::now();
    let ctx = FigureContext::with_runner(runner);
    figures::run_all(&ctx).expect("figure regeneration failed");
    eprintln!(
        "run_all: {} cells in {:.1}s",
        ctx.cached_cells(),
        started.elapsed().as_secs_f64()
    );

    if let Some(session) = session {
        let path = session
            .finish(
                "run_all",
                digest_of(&options),
                options.seeds,
                LlcPartitioning::None.label(),
                flags.audit,
            )
            .expect("write manifest.json");
        eprintln!("run_all: wrote {}", path.display());
    }
}
