//! Regenerates every paper exhibit in one invocation.
//!
//! All experiment cells are prefetched in one parallel batch across the
//! worker pool before any table is printed. Run-length knobs:
//! `CONSIM_REFS`, `CONSIM_WARMUP`, `CONSIM_SEEDS`; worker count:
//! `CONSIM_THREADS` (defaults to the machine's available parallelism).
//!
//! Observability flags: `--audit` cross-checks every simulation's counters
//! at end of run; `--trace <dir>` streams trace events to
//! `<dir>/events.jsonl` and writes `<dir>/manifest.json` on exit (see
//! `consim_bench::cli`).
//!
//! Crash recovery: `--resume <dir>` journals every completed cell into
//! `<dir>` and, on a later invocation, loads journaled cells instead of
//! re-simulating them; `--checkpoint-every <accesses>` additionally
//! snapshots in-flight cells so a crash loses at most that much work.
//! Resumed runs are bit-identical to uninterrupted ones.
//! `CONSIM_FAULT=cell:K` aborts the batch after `K` completed cells (for
//! recovery tests). A `--trace`/`--resume` directory left by a run with a
//! different configuration digest is refused rather than clobbered.

use consim_bench::{cli, cli::BenchFlags, figures, FigureContext};
use consim_job::runner::ExperimentRunner;
use consim_trace::digest_of;
use consim_types::config::LlcPartitioning;
use std::time::Instant;

fn main() {
    let flags = BenchFlags::from_env("run_all");
    let options = FigureContext::figure_options();
    let digest = digest_of(&options);
    for dir in [&flags.trace_dir, &flags.resume_dir].into_iter().flatten() {
        if let Err(msg) = cli::guard_manifest_digest(dir, &digest) {
            eprintln!("run_all: {msg}");
            std::process::exit(2);
        }
    }
    let fault = match cli::fault_from_env() {
        Ok(fault) => fault,
        Err(msg) => {
            eprintln!("run_all: {msg}");
            std::process::exit(2);
        }
    };
    let session = flags.trace_session().expect("open trace directory");
    let mut runner = ExperimentRunner::new(options.clone()).with_audit(flags.audit);
    if let Some(session) = &session {
        runner = runner.with_sink(session.sink());
    }
    if let Some(dir) = &flags.resume_dir {
        runner = runner.with_journal(dir.clone());
    }
    if let Some(every) = flags.checkpoint_every {
        runner = runner.with_checkpoint_every(every);
    }
    if let Some(after) = fault {
        runner = runner.with_fault_after(after);
    }

    let started = Instant::now();
    let ctx = FigureContext::with_runner(runner);
    if let Err(err) = figures::run_all(&ctx) {
        // An injected fault (or a real failure) is an orderly exit, not a
        // panic: completed cells are already journaled, so a later
        // `--resume` invocation picks up exactly where this one stopped.
        eprintln!("run_all: {err}");
        std::process::exit(1);
    }
    eprintln!(
        "run_all: {} cells in {:.1}s",
        ctx.cached_cells(),
        started.elapsed().as_secs_f64()
    );

    if let Some(mut session) = session {
        if let Some(dir) = &flags.resume_dir {
            session.note_journal(dir);
        }
        let path = session
            .finish(
                "run_all",
                digest,
                options.seeds,
                LlcPartitioning::None.label(),
                flags.audit,
            )
            .expect("write manifest.json");
        eprintln!("run_all: wrote {}", path.display());
    }
}
