//! Regenerates every paper exhibit in one invocation.
//!
//! All experiment cells are prefetched in one parallel batch across the
//! worker pool before any table is printed. Run-length knobs:
//! `CONSIM_REFS`, `CONSIM_WARMUP`, `CONSIM_SEEDS`; worker count:
//! `CONSIM_THREADS` (defaults to the machine's available parallelism).

use consim_bench::{figures, FigureContext};
use std::time::Instant;

fn main() {
    let started = Instant::now();
    let ctx = FigureContext::for_figures();
    figures::run_all(&ctx).expect("figure regeneration failed");
    eprintln!(
        "run_all: {} cells in {:.1}s",
        ctx.cached_cells(),
        started.elapsed().as_secs_f64()
    );
}
