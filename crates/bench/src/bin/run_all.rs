//! Regenerates every paper exhibit in one invocation.
//!
//! Run-length knobs: `CONSIM_REFS`, `CONSIM_WARMUP`, `CONSIM_SEEDS`.

use consim_bench::{figures, FigureContext};

fn main() {
    let ctx = FigureContext::for_figures();
    figures::run_all(&ctx).expect("figure regeneration failed");
}
