//! Demonstrates the job execution layer end to end, beyond what the
//! batch-oriented `ExperimentRunner` facade exercises: an *open-ended*
//! [`LiveQueue`] fed while workers run, time-sliced execution with several
//! simulations interleaved per worker, mid-queue cancellation, an injected
//! mid-run fault, and a resume that loses zero completed jobs — all while
//! every outcome stays bit-identical to a serial reference run.
//!
//! The workload is the Fig. 14 grid: the first heterogeneous mix under
//! round-robin scheduling on shared-4-way banks, with the LLC
//! unpartitioned, split equally, and split 8/4/2/2 — one job per
//! (partitioning scheme, seed).
//!
//! Run-length knobs: `CONSIM_REFS`, `CONSIM_WARMUP`, `CONSIM_SEEDS`.
//! `--resume <dir>` keeps the journal in a named directory (default: a
//! scratch directory wiped at start). Exits non-zero on any mismatch.

use consim::engine::{Simulation, SimulationConfig};
use consim::mix::Mix;
use consim_bench::cli::BenchFlags;
use consim_job::runner::RunOptions;
use consim_job::{
    CollectingSink, JobJournal, JobOutput, JobQueue, JobSource, LiveQueue, PoolConfig,
    PrewarmCache, ResultSink, WorkerPool,
};
use consim_sched::SchedulingPolicy::RoundRobin;
use consim_types::config::{LlcPartitioning, MachineConfig, SharingDegree};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::Arc;

/// One (scheme, seed) job of the Fig. 14 grid.
fn job_config(scheme: &LlcPartitioning, seed: u64, options: &RunOptions) -> SimulationConfig {
    let mix = Mix::all_heterogeneous()
        .into_iter()
        .next()
        .expect("at least one heterogeneous mix");
    let machine = MachineConfig::paper_default()
        .with_llc_partitioning(scheme.clone())
        .with_sharing(SharingDegree::SharedBy(4));
    let mut b = SimulationConfig::builder();
    b.machine(machine)
        .policy(RoundRobin)
        .seed(seed)
        .refs_per_vm(options.refs_per_vm)
        .warmup_refs_per_vm(options.warmup_refs_per_vm);
    for kind in mix.instances() {
        b.workload(kind.profile());
    }
    b.build()
        .expect("the Fig. 14 grid is a valid configuration")
}

/// Runs the queue's jobs on a time-slicing pool and returns the pool
/// report plus the drained per-index results.
fn drain(
    queue: Arc<LiveQueue>,
    journal: &JobJournal,
    workers: usize,
    fault_after: Option<u64>,
    feed: impl FnOnce(&LiveQueue, &WorkerPool),
) -> (
    consim_job::PoolReport,
    BTreeMap<usize, Result<JobOutput, consim_types::SimError>>,
) {
    let sink = Arc::new(CollectingSink::new());
    let pool = WorkerPool::start(
        PoolConfig {
            workers,
            // Aggressively small slices: each worker interleaves two live
            // simulations, pausing and resuming them mid-run — the
            // schedule the determinism argument says is invisible.
            time_slice: Some(2_000),
            max_live: 2,
            checkpoint_every: None,
            fault_after,
        },
        Arc::clone(&queue) as Arc<dyn JobQueue>,
        Arc::clone(&sink) as Arc<dyn ResultSink>,
        Some(journal.clone()),
        PrewarmCache::default(),
        None,
    );
    feed(&queue, &pool);
    queue.close();
    let report = pool.join();
    (report, sink.take())
}

fn main() {
    let flags = BenchFlags::from_env("jobs");
    let options = RunOptions::quick().from_env();

    let scratch = flags.resume_dir.is_none();
    let journal_dir: PathBuf = flags.resume_dir.clone().unwrap_or_else(|| {
        let dir = std::env::temp_dir().join(format!("consim-jobs-demo-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    });
    let journal = JobJournal::open(&journal_dir).expect("open journal");

    let schemes: [(&str, LlcPartitioning); 3] = [
        ("none", LlcPartitioning::None),
        ("equal", LlcPartitioning::EqualWays),
        ("8/4/2/2", LlcPartitioning::ExplicitWays(vec![8, 4, 2, 2])),
    ];
    let mut grid: Vec<(usize, SimulationConfig)> = Vec::new();
    for (si, (_, scheme)) in schemes.iter().enumerate() {
        for &seed in &options.seeds {
            grid.push((si, job_config(scheme, seed, &options)));
        }
    }
    // Trip the fault roughly halfway through so the resume phase always
    // has both journaled jobs to load and missing jobs to run.
    let fault_after = (grid.len() as u64 / 2).max(1);

    // Serial reference: the exact outcomes the pooled runs must reproduce.
    // Debug formatting round-trips every counter and float, so string
    // equality below is bit-for-bit outcome equality.
    eprintln!("jobs: serial reference ({} jobs)...", grid.len());
    let reference: Vec<String> = grid
        .iter()
        .map(|(_, cfg)| {
            let outcome = Simulation::new(cfg.clone())
                .and_then(Simulation::run)
                .expect("serial reference run");
            format!("{outcome:?}")
        })
        .collect();

    // Phase A: open-ended queue, one cancelled job, and a fault injected
    // after `fault_after` completions. In-flight jobs finish and journal;
    // the rest of the queue is dropped.
    eprintln!("jobs: phase A — live queue, cancellation, fault after {fault_after} jobs");
    let queue_a = Arc::new(LiveQueue::new());
    let grid_a = grid.clone();
    let mut victim_options = options.clone();
    victim_options.refs_per_vm = options.refs_per_vm.saturating_mul(200);
    victim_options.warmup_refs_per_vm = options.warmup_refs_per_vm.saturating_mul(200);
    let victim_cfg = job_config(&LlcPartitioning::None, 999, &victim_options);
    // One worker interleaving two live simulations: in-flight work at the
    // moment the fault trips is bounded, so the resume phase always has
    // jobs left to prove itself on.
    let (report_a, mut results_a) = drain(Arc::clone(&queue_a), &journal, 1, Some(fault_after), {
        let queue = Arc::clone(&queue_a);
        move |_, pool| {
            // The victim goes in first with a 200x quota, gets cancelled
            // right away, and must neither complete nor block the rest.
            let victim = queue.push(usize::MAX, victim_cfg).expect("queue open");
            pool.cancel(victim);
            for (si, cfg) in grid_a {
                queue.push(si, cfg).expect("queue open");
            }
        }
    });
    assert!(report_a.faulted, "phase A must trip the injected fault");
    assert!(
        matches!(results_a.remove(&0), Some(Ok(JobOutput::Cancelled))),
        "the victim must report Cancelled"
    );
    let journaled = journal.completed().expect("list journal").len() as u64;
    assert_eq!(
        journaled, report_a.simulated,
        "every completed job must be journaled — zero lost jobs"
    );
    eprintln!(
        "jobs: phase A done — {} simulated, {} journaled, victim cancelled",
        report_a.simulated, journaled
    );

    // Phase B: resume. The same grid goes through a fresh queue; journaled
    // jobs load instead of re-simulating, the rest run now.
    eprintln!("jobs: phase B — resume from {}", journal_dir.display());
    let queue_b = Arc::new(LiveQueue::new());
    let grid_b = grid.clone();
    let (report_b, results_b) = drain(Arc::clone(&queue_b), &journal, 2, None, move |queue, _| {
        for (si, cfg) in grid_b {
            queue.push(si, cfg).expect("queue open");
        }
    });
    assert!(!report_b.faulted);
    let mut loaded = 0u64;
    let mut mismatches = 0usize;
    let mut runtimes: Vec<Vec<f64>> = vec![Vec::new(); schemes.len()];
    for (index, (si, _)) in grid.iter().enumerate() {
        match results_b.get(&index) {
            Some(Ok(JobOutput::Completed { outcome, source })) => {
                if *source == JobSource::Journal {
                    loaded += 1;
                }
                if format!("{outcome:?}") != reference[index] {
                    eprintln!("jobs: MISMATCH on job {index} (scheme {})", schemes[*si].0);
                    mismatches += 1;
                }
                let mean = outcome
                    .vm_metrics
                    .iter()
                    .map(|m| m.runtime_cycles() as f64)
                    .sum::<f64>()
                    / outcome.vm_metrics.len().max(1) as f64;
                runtimes[*si].push(mean);
            }
            other => {
                eprintln!("jobs: job {index} did not complete: {other:?}");
                mismatches += 1;
            }
        }
    }
    assert_eq!(
        loaded, report_a.simulated,
        "phase B must load exactly phase A's completed jobs from the journal"
    );
    assert_eq!(
        report_a.simulated + report_b.simulated,
        grid.len() as u64,
        "across both phases every job simulates exactly once — zero lost, zero repeated"
    );
    if mismatches > 0 {
        eprintln!("jobs: FAIL — {mismatches} outcomes differ from the serial reference");
        std::process::exit(1);
    }

    println!("Fig 14 grid via the job layer (mean runtime, normalized to unpartitioned):");
    let base = runtimes[0].iter().sum::<f64>() / runtimes[0].len().max(1) as f64;
    for ((label, _), rts) in schemes.iter().zip(&runtimes) {
        let mean = rts.iter().sum::<f64>() / rts.len().max(1) as f64;
        println!("  {label:>8}: {:.4}", mean / base.max(1e-9));
    }
    println!(
        "jobs: PASS — {} jobs ({} resumed from journal, {} simulated after fault), \
         time-sliced x2 interleave, 1 cancelled, all bit-identical to serial",
        grid.len(),
        loaded,
        report_b.simulated
    );

    if scratch {
        std::fs::remove_dir_all(&journal_dir).ok();
    }
}
