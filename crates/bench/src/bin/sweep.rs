//! Calibration sweep: searches workload-profile knobs so the engine's
//! Table II statistics approach the paper's targets.
//!
//! Accepts the shared observability flags: `--audit` enables the counter
//! audit on every candidate run; `--trace <dir>` records trace events and
//! a run manifest (see `consim_bench::cli`).

use consim_bench::cli::BenchFlags;
use consim_job::runner::{ExperimentCell, ExperimentRunner, MixRun, RunOptions};
use consim_sched::SchedulingPolicy;
use consim_trace::digest_of;
use consim_types::config::{LlcPartitioning, SharingDegree};
use consim_workload::{WorkloadKind, WorkloadProfile};

fn extract(run: &MixRun) -> (f64, f64, f64) {
    let v = &run.vms[0];
    (
        v.c2c_of_hierarchy_misses.mean,
        v.c2c_dirty_fraction.mean,
        v.llc_miss_rate.mean,
    )
}

fn main() {
    let flags = BenchFlags::from_env("sweep");
    let session = flags.trace_session().expect("open trace directory");
    let options = RunOptions {
        refs_per_vm: 50_000,
        warmup_refs_per_vm: 30_000,
        seeds: vec![1],
        track_footprint: false,
        prewarm_llc: false,
    }
    .from_env();
    let mut runner = ExperimentRunner::new(options.clone()).with_audit(flags.audit);
    if let Some(session) = &session {
        runner = runner.with_sink(session.sink());
    }
    let which: Vec<WorkloadKind> = match flags.rest.first().map(String::as_str) {
        Some("tpcw") => vec![WorkloadKind::TpcW],
        Some("jbb") => vec![WorkloadKind::SpecJbb],
        Some("tpch") => vec![WorkloadKind::TpcH],
        Some("web") => vec![WorkloadKind::SpecWeb],
        _ => WorkloadKind::PAPER_SET.to_vec(),
    };
    for kind in &which {
        let base = kind.profile();
        let t = base.paper_targets.unwrap();
        println!(
            "== {} target c2c={:.0}% dirty={:.0}% ==",
            kind,
            t.c2c_fraction * 100.0,
            t.dirty_fraction * 100.0
        );
        // Enumerate every candidate, then simulate the whole grid in one
        // parallel batch; candidates are scored in submission order, so
        // the printed search trace is identical to the old serial sweep.
        let mut candidates: Vec<WorkloadProfile> = Vec::new();
        for sz in [0.80f64, 0.88, 0.93] {
            for pz in [0.70f64, 0.85, 0.93] {
                for sa in [-0.1, 0.0, 0.12] {
                    for sw in [0.6, 1.0, 1.6] {
                        let mut p = base.clone();
                        p.shared_zipf = sz.min(0.98);
                        p.private_zipf = pz.min(0.98);
                        p.shared_access_prob = (p.shared_access_prob + sa).clamp(0.05, 0.95);
                        p.shared_write_prob = (p.shared_write_prob * sw).clamp(0.0, 0.9);
                        candidates.push(p);
                    }
                }
            }
        }
        let cells: Vec<ExperimentCell> = candidates
            .iter()
            .map(|p| {
                ExperimentCell::new(
                    vec![p.clone()],
                    SchedulingPolicy::RoundRobin,
                    SharingDegree::Private,
                )
            })
            .collect();
        let runs = runner.run_cells(&cells).expect("sweep batch");
        let mut best: Option<(f64, String)> = None;
        for (p, run) in candidates.iter().zip(&runs) {
            let (c2c, dirty, miss) = extract(run);
            let score = (c2c - t.c2c_fraction).abs() * 2.0 + (dirty - t.dirty_fraction).abs();
            let line = format!(
                "sz={:.2} pz={:.2} sa={:.2} sw={:.3} -> c2c={:5.1}% dirty={:5.1}% miss={:5.1}%",
                p.shared_zipf,
                p.private_zipf,
                p.shared_access_prob,
                p.shared_write_prob,
                c2c * 100.0,
                dirty * 100.0,
                miss * 100.0
            );
            if best.as_ref().map(|(s, _)| score < *s).unwrap_or(true) {
                println!("  BEST {score:.3} {line}");
                best = Some((score, line));
            }
        }
    }
    if let Some(session) = session {
        let path = session
            .finish(
                "sweep",
                digest_of(&(&options, &which)),
                options.seeds,
                LlcPartitioning::None.label(),
                flags.audit,
            )
            .expect("write manifest.json");
        eprintln!("sweep: wrote {}", path.display());
    }
}
