//! Calibration scratch harness: Table II statistics per workload in the
//! paper's private-cache configuration, plus run-speed measurement.

use consim_job::runner::{ExperimentRunner, RunOptions};
use consim_sched::SchedulingPolicy;
use consim_types::config::SharingDegree;
use consim_workload::WorkloadKind;
use std::time::Instant;

fn main() {
    let options = RunOptions {
        refs_per_vm: 60_000,
        warmup_refs_per_vm: 30_000,
        seeds: vec![1],
        track_footprint: true,
        prewarm_llc: false,
    }
    .from_env();
    let runner = ExperimentRunner::new(options);

    println!("workload   c2c%   target  dirty%  target  missrate  misslat  runtime");
    for kind in WorkloadKind::PAPER_SET {
        let start = Instant::now();
        let run = runner
            .isolated(kind, SchedulingPolicy::RoundRobin, SharingDegree::Private)
            .expect("run");
        let v = &run.vms[0];
        let t = kind.profile().paper_targets.unwrap();
        println!(
            "{:10} {:5.1}% {:6.1}% {:6.1}% {:6.1}%  {:7.1}%  {:7.1}  {:9.0}  ({:.1}s)",
            kind.name(),
            v.c2c_of_hierarchy_misses.mean * 100.0,
            t.c2c_fraction * 100.0,
            v.c2c_dirty_fraction.mean * 100.0,
            t.dirty_fraction * 100.0,
            v.llc_miss_rate.mean * 100.0,
            v.miss_latency.mean,
            v.runtime_cycles.mean,
            start.elapsed().as_secs_f64(),
        );
    }
}
