//! Regenerators for every table and figure in the paper's evaluation.
//!
//! Each function produces a [`TextTable`] whose rows/series correspond to
//! the paper's exhibit. Normalization baselines follow the paper's §V:
//!
//! * runtimes are normalized to the workload run *in isolation with four
//!   cores and a fully shared 16 MB LLC*;
//! * miss latencies are normalized to the workload in isolation with
//!   affinity scheduling on shared-4-way caches (the paper's Figs. 6/10/11
//!   baseline);
//! * miss rates for the relative figures use the same shared-4-way affinity
//!   isolation baseline (the paper's text says "relative to workloads run in
//!   isolation" without pinning the cache configuration; the fully-shared
//!   baseline's near-zero miss rates would make ratios unstable, so the
//!   shared-4-way baseline is the interpretable choice — recorded in
//!   EXPERIMENTS.md).

use crate::context::FigureContext;
use consim::mix::Mix;
use consim::report::TextTable;
use consim_job::runner::{ExperimentCell, RunOptions, VmAggregate};
use consim_sched::SchedulingPolicy;
use consim_types::config::{
    ChurnPolicy, DynamicPolicy, LlcPartitioning, MachineConfig, SharingDegree,
};
use consim_types::SimError;
use consim_workload::WorkloadKind;

use SchedulingPolicy::{Affinity, Random, RoundRobin, RrAffinity};
use SharingDegree::{FullyShared, Private, SharedBy};

/// The isolated-workload configuration sweep of Figs. 2 and 3: LLC
/// arrangement (columns match the paper's "shared / 2-LL$ / 4-LL$ /
/// private") crossed with scheduling.
const ISOLATED_SWEEP: [(&str, SharingDegree, SchedulingPolicy); 7] = [
    ("shared", FullyShared, Affinity),
    ("2LL$ rr", SharedBy(8), RoundRobin),
    ("2LL$ aff", SharedBy(8), Affinity),
    ("4LL$ rr", SharedBy(4), RoundRobin),
    ("4LL$ aff", SharedBy(4), Affinity),
    ("priv rr", Private, RoundRobin),
    ("priv aff", Private, Affinity),
];

/// All four scheduling policies, in the paper's figure order.
const POLICIES: [SchedulingPolicy; 4] = [RoundRobin, Affinity, RrAffinity, Random];

fn homogeneous_instances(kind: WorkloadKind) -> [WorkloadKind; 4] {
    [kind; 4]
}

/// Mean runtime of `kind` instances in a run.
fn runtime_of(run: &consim_job::runner::MixRun, kind: WorkloadKind) -> f64 {
    run.mean_over_kind(kind, |v: &VmAggregate| v.runtime_cycles.mean)
}

fn missrate_of(run: &consim_job::runner::MixRun, kind: WorkloadKind) -> f64 {
    run.mean_over_kind(kind, |v| v.llc_miss_rate.mean)
}

fn misslat_of(run: &consim_job::runner::MixRun, kind: WorkloadKind) -> f64 {
    run.mean_over_kind(kind, |v| v.miss_latency.mean)
}

/// Table II: per-workload sharing statistics in the paper's private-cache
/// configuration — % of private-hierarchy misses served cache-to-cache
/// (all / clean / dirty split) and blocks touched (thousands).
///
/// # Errors
///
/// Propagates engine errors.
pub fn table2(ctx: &FigureContext) -> Result<TextTable, SimError> {
    // Footprint tracking costs memory, so Table II uses its own runner —
    // cloned from the context's so an installed trace sink or audit
    // setting carries over.
    let mut options = ctx.runner().options().clone();
    options.track_footprint = true;
    let runner = ctx.runner().clone().with_options(options);
    let mut t = TextTable::new(
        "Table II: workload statistics (private LLC, isolated)",
        &["c2c %", "clean %", "dirty %", "blocks (K)"],
    );
    // One batch: all workloads simulate in parallel on the worker pool.
    let cells: Vec<ExperimentCell> = WorkloadKind::PAPER_SET
        .into_iter()
        .map(|kind| ExperimentCell::of_kinds(&[kind], RoundRobin, Private))
        .collect();
    let runs = runner.run_cells(&cells)?;
    for (kind, run) in WorkloadKind::PAPER_SET.into_iter().zip(runs) {
        let v = &run.vms[0];
        let dirty = v.c2c_dirty_fraction.mean;
        t.row(
            kind.name(),
            &[
                v.c2c_of_hierarchy_misses.mean * 100.0,
                (1.0 - dirty) * 100.0,
                dirty * 100.0,
                v.footprint_blocks.mean / 1000.0,
            ],
        );
    }
    Ok(t)
}

/// Table IV: the experimental mixes (static enumeration, verified
/// programmatically by the mix module's tests).
pub fn table4() -> String {
    let mut out = String::from("=== Table IV: experimental runs ===\n");
    out.push_str("Heterogeneous mixes:\n");
    for mix in Mix::all_heterogeneous() {
        out.push_str(&format!("  {mix}\n"));
    }
    out.push_str("Homogeneous mixes:\n");
    for mix in Mix::all_homogeneous() {
        out.push_str(&format!("  {mix}\n"));
    }
    out
}

/// Fig. 2: isolated workload runtime across LLC arrangements and policies,
/// normalized to the fully shared baseline.
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig02_isolated_performance(ctx: &FigureContext) -> Result<TextTable, SimError> {
    let cols: Vec<&str> = ISOLATED_SWEEP.iter().map(|(l, _, _)| *l).collect();
    let mut t = TextTable::new(
        "Fig 2: isolated performance (runtime / fully-shared baseline)",
        &cols,
    );
    for kind in WorkloadKind::PAPER_SET {
        let base = runtime_of(ctx.baseline(kind)?.as_ref(), kind);
        let mut row = Vec::new();
        for (_, sharing, policy) in ISOLATED_SWEEP {
            let run = ctx.run(&[kind], policy, sharing)?;
            row.push(runtime_of(&run, kind) / base);
        }
        t.row(kind.name(), &row);
    }
    Ok(t)
}

/// Fig. 3: isolated LLC miss rates (percent) across the same sweep.
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig03_isolated_missrate(ctx: &FigureContext) -> Result<TextTable, SimError> {
    let cols: Vec<&str> = ISOLATED_SWEEP.iter().map(|(l, _, _)| *l).collect();
    let mut t = TextTable::new("Fig 3: isolated miss rates (%)", &cols);
    for kind in WorkloadKind::PAPER_SET {
        let mut row = Vec::new();
        for (_, sharing, policy) in ISOLATED_SWEEP {
            let run = ctx.run(&[kind], policy, sharing)?;
            row.push(missrate_of(&run, kind) * 100.0);
        }
        t.row(kind.name(), &row);
    }
    Ok(t)
}

/// Fig. 4: isolated average miss latency (cycles) for shared, shared-4-way,
/// and private arrangements under both schedulers.
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig04_isolated_misslatency(ctx: &FigureContext) -> Result<TextTable, SimError> {
    let sweep: [(&str, SharingDegree, SchedulingPolicy); 5] = [
        ("shared", FullyShared, Affinity),
        ("4LL$ rr", SharedBy(4), RoundRobin),
        ("4LL$ aff", SharedBy(4), Affinity),
        ("priv rr", Private, RoundRobin),
        ("priv aff", Private, Affinity),
    ];
    let cols: Vec<&str> = sweep.iter().map(|(l, _, _)| *l).collect();
    let mut t = TextTable::new("Fig 4: isolated miss latencies (cycles)", &cols);
    for kind in WorkloadKind::PAPER_SET {
        let mut row = Vec::new();
        for (_, sharing, policy) in sweep {
            let run = ctx.run(&[kind], policy, sharing)?;
            row.push(misslat_of(&run, kind));
        }
        t.row(kind.name(), &row);
    }
    Ok(t)
}

/// Fig. 5: homogeneous-mix per-workload runtime under each policy
/// (shared-4-way), relative to the fully-shared isolation baseline.
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig05_homogeneous_performance(ctx: &FigureContext) -> Result<TextTable, SimError> {
    let cols: Vec<&str> = POLICIES.iter().map(|p| p.label()).collect();
    let mut t = TextTable::new(
        "Fig 5: homogeneous-mix performance (runtime / isolation)",
        &cols,
    );
    for kind in WorkloadKind::PAPER_SET {
        let base = runtime_of(ctx.baseline(kind)?.as_ref(), kind);
        let mut row = Vec::new();
        for policy in POLICIES {
            let run = ctx.run(&homogeneous_instances(kind), policy, SharedBy(4))?;
            row.push(runtime_of(&run, kind) / base);
        }
        t.row(kind.name(), &row);
    }
    Ok(t)
}

/// Fig. 6: homogeneous-mix miss latency under each policy, normalized to
/// the workload in isolation with affinity scheduling (shared-4-way).
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig06_homogeneous_misslatency(ctx: &FigureContext) -> Result<TextTable, SimError> {
    let cols: Vec<&str> = POLICIES.iter().map(|p| p.label()).collect();
    let mut t = TextTable::new(
        "Fig 6: homogeneous-mix miss latency (relative to isolation/affinity)",
        &cols,
    );
    for kind in WorkloadKind::PAPER_SET {
        let base = misslat_of(ctx.run(&[kind], Affinity, SharedBy(4))?.as_ref(), kind);
        let mut row = Vec::new();
        for policy in POLICIES {
            let run = ctx.run(&homogeneous_instances(kind), policy, SharedBy(4))?;
            row.push(misslat_of(&run, kind) / base);
        }
        t.row(kind.name(), &row);
    }
    Ok(t)
}

/// Fig. 7: homogeneous-mix miss rates relative to isolation
/// (shared-4-way affinity baseline).
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig07_homogeneous_missrate(ctx: &FigureContext) -> Result<TextTable, SimError> {
    let cols: Vec<&str> = POLICIES.iter().map(|p| p.label()).collect();
    let mut t = TextTable::new(
        "Fig 7: homogeneous-mix miss rates (relative to isolation)",
        &cols,
    );
    for kind in WorkloadKind::PAPER_SET {
        let base = missrate_of(ctx.run(&[kind], Affinity, SharedBy(4))?.as_ref(), kind);
        let mut row = Vec::new();
        for policy in POLICIES {
            let run = ctx.run(&homogeneous_instances(kind), policy, SharedBy(4))?;
            row.push(missrate_of(&run, kind) / base.max(1e-9));
        }
        t.row(kind.name(), &row);
    }
    Ok(t)
}

/// Rows of the heterogeneous figures: every (mix, distinct workload) pair.
fn heterogeneous_rows() -> Vec<(Mix, WorkloadKind)> {
    Mix::all_heterogeneous()
        .into_iter()
        .flat_map(|mix| {
            mix.distinct_workloads()
                .into_iter()
                .map(move |kind| (mix.clone(), kind))
                .collect::<Vec<_>>()
        })
        .collect()
}

/// Fig. 8: heterogeneous-mix per-workload runtime (affinity and round robin
/// on shared-4-way), normalized to the fully-shared isolation baseline. The
/// paper also plots the shared-4-way isolation points as references; they
/// appear as `iso <workload>` rows.
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig08_heterogeneous_performance(ctx: &FigureContext) -> Result<TextTable, SimError> {
    let mut t = TextTable::new(
        "Fig 8: heterogeneous-mix performance (runtime / isolation)",
        &["affinity", "rr"],
    );
    for kind in WorkloadKind::PAPER_SET
        .into_iter()
        .filter(|k| *k != WorkloadKind::SpecWeb)
    {
        let base = runtime_of(ctx.baseline(kind)?.as_ref(), kind);
        let aff = runtime_of(ctx.run(&[kind], Affinity, SharedBy(4))?.as_ref(), kind) / base;
        let rr = runtime_of(ctx.run(&[kind], RoundRobin, SharedBy(4))?.as_ref(), kind) / base;
        t.row(format!("iso {}", kind.name()), &[aff, rr]);
    }
    for (mix, kind) in heterogeneous_rows() {
        let base = runtime_of(ctx.baseline(kind)?.as_ref(), kind);
        let mut row = Vec::new();
        for policy in [Affinity, RoundRobin] {
            let run = ctx.run(mix.instances(), policy, SharedBy(4))?;
            row.push(runtime_of(&run, kind) / base);
        }
        t.row(format!("{} {}", mix.id(), kind.name()), &row);
    }
    Ok(t)
}

/// Fig. 9: heterogeneous-mix miss rates relative to isolation
/// (shared-4-way affinity baseline).
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig09_heterogeneous_missrate(ctx: &FigureContext) -> Result<TextTable, SimError> {
    let mut t = TextTable::new(
        "Fig 9: heterogeneous-mix miss rates (relative to isolation)",
        &["affinity", "rr"],
    );
    for (mix, kind) in heterogeneous_rows() {
        let base = missrate_of(ctx.run(&[kind], Affinity, SharedBy(4))?.as_ref(), kind);
        let mut row = Vec::new();
        for policy in [Affinity, RoundRobin] {
            let run = ctx.run(mix.instances(), policy, SharedBy(4))?;
            row.push(missrate_of(&run, kind) / base.max(1e-9));
        }
        t.row(format!("{} {}", mix.id(), kind.name()), &row);
    }
    Ok(t)
}

/// Fig. 10: heterogeneous-mix miss latencies, normalized to the workload in
/// isolation with affinity scheduling on shared-4-way caches.
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig10_heterogeneous_misslatency(ctx: &FigureContext) -> Result<TextTable, SimError> {
    let mut t = TextTable::new(
        "Fig 10: heterogeneous-mix miss latency (relative to isolation/affinity)",
        &["affinity", "rr"],
    );
    for (mix, kind) in heterogeneous_rows() {
        let base = misslat_of(ctx.run(&[kind], Affinity, SharedBy(4))?.as_ref(), kind);
        let mut row = Vec::new();
        for policy in [Affinity, RoundRobin] {
            let run = ctx.run(mix.instances(), policy, SharedBy(4))?;
            row.push(misslat_of(&run, kind) / base);
        }
        t.row(format!("{} {}", mix.id(), kind.name()), &row);
    }
    Ok(t)
}

/// Fig. 11: miss latency of the heterogeneous mixes as the LLC sharing
/// degree varies (affinity scheduling, normalized to the shared-4-way
/// isolation latencies).
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig11_sharing_degree(ctx: &FigureContext) -> Result<TextTable, SimError> {
    let degrees: [(&str, SharingDegree); 4] = [
        ("8x2MB", SharedBy(2)),
        ("4x4MB", SharedBy(4)),
        ("2x8MB", SharedBy(8)),
        ("1x16MB", FullyShared),
    ];
    let cols: Vec<&str> = degrees.iter().map(|(l, _)| *l).collect();
    let mut t = TextTable::new(
        "Fig 11: miss latency vs sharing degree (affinity, relative to shared-4 isolation)",
        &cols,
    );
    for (mix, kind) in heterogeneous_rows() {
        let base = misslat_of(ctx.run(&[kind], Affinity, SharedBy(4))?.as_ref(), kind);
        let mut row = Vec::new();
        for (_, sharing) in degrees {
            let run = ctx.run(mix.instances(), Affinity, sharing)?;
            row.push(misslat_of(&run, kind) / base);
        }
        t.row(format!("{} {}", mix.id(), kind.name()), &row);
    }
    Ok(t)
}

/// Fig. 12: percentage of LLC lines replicated across banks for the
/// homogeneous mixes — the three spreading policies on shared-4-way caches
/// plus the private arrangement's maximum. (Affinity is omitted, as in the
/// paper: one bank per workload means nothing replicates.)
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig12_replication(ctx: &FigureContext) -> Result<TextTable, SimError> {
    let mut t = TextTable::new(
        "Fig 12: replicated LLC lines (%), homogeneous mixes",
        &["rr", "aff-rr", "random", "private (max)"],
    );
    for kind in WorkloadKind::PAPER_SET {
        let instances = homogeneous_instances(kind);
        let mut row = Vec::new();
        for policy in [RoundRobin, RrAffinity, Random] {
            let run = ctx.run(&instances, policy, SharedBy(4))?;
            row.push(run.replication.mean * 100.0);
        }
        let private = ctx.run(&instances, RoundRobin, Private)?;
        row.push(private.replication.mean * 100.0);
        t.row(kind.name(), &row);
    }
    Ok(t)
}

/// Fig. 13: per-workload share of each LLC bank's capacity for the
/// heterogeneous mixes (round robin, shared-4-way snapshot).
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig13_occupancy(ctx: &FigureContext) -> Result<TextTable, SimError> {
    let mut t = TextTable::new(
        "Fig 13: LLC capacity share per VM (%, rr, shared-4-way)",
        &["bank0", "bank1", "bank2", "bank3", "mean"],
    );
    for mix in Mix::all_heterogeneous() {
        let run = ctx.run(mix.instances(), RoundRobin, SharedBy(4))?;
        for (vm, kind) in mix.instances().iter().enumerate() {
            let shares: Vec<f64> = run.occupancy.iter().map(|bank| bank[vm] * 100.0).collect();
            let mean = shares.iter().sum::<f64>() / shares.len().max(1) as f64;
            let mut row = shares;
            row.resize(4, 0.0);
            row.push(mean);
            t.row(format!("{} vm{vm} {}", mix.id(), kind.name()), &row);
        }
    }
    Ok(t)
}

/// Fig. 14 (extension): per-VM quality of service under LLC way
/// partitioning — the first heterogeneous mix, round robin on shared-4-way
/// banks, with the LLC unpartitioned, split equally, and split 8/4/2/2
/// across the four VMs. Row groups give runtime (normalized to the
/// unpartitioned column), absolute LLC miss rate, and mean bank-capacity
/// share, per VM — the partitioned analogue of Figs. 8-10 and 13.
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig14_partitioning(ctx: &FigureContext) -> Result<TextTable, SimError> {
    let mix = Mix::all_heterogeneous()
        .into_iter()
        .next()
        .expect("at least one heterogeneous mix");
    let schemes: [(&str, LlcPartitioning); 3] = [
        ("none", LlcPartitioning::None),
        ("equal", LlcPartitioning::EqualWays),
        ("8/4/2/2", LlcPartitioning::ExplicitWays(vec![8, 4, 2, 2])),
    ];
    // The unpartitioned column reuses the context's cached cell (it is the
    // same run Fig. 13 reads); the partitioned columns change the machine
    // itself, which the cell cache does not key on, so they run on
    // dedicated runners cloned from the context's (keeping its audit
    // setting and trace sink).
    let mut runs = Vec::new();
    for (_, scheme) in &schemes {
        runs.push(match scheme {
            LlcPartitioning::None => ctx.run(mix.instances(), RoundRobin, SharedBy(4))?,
            _ => {
                let machine = MachineConfig::paper_default().with_llc_partitioning(scheme.clone());
                let runner = ctx.runner().clone().on_machine(machine);
                let cell = ExperimentCell::of_kinds(mix.instances(), RoundRobin, SharedBy(4));
                let run = runner
                    .run_cells(std::slice::from_ref(&cell))?
                    .pop()
                    .expect("one cell in, one run out");
                std::sync::Arc::new(run)
            }
        });
    }
    let cols: Vec<&str> = schemes.iter().map(|(l, _)| *l).collect();
    let mut t = TextTable::new(
        format!(
            "Fig 14: way-partitioning QoS ({}, rr, shared-4-way)",
            mix.id()
        ),
        &cols,
    );
    for (vm, kind) in mix.instances().iter().enumerate() {
        let base = runs[0].vms[vm].runtime_cycles.mean.max(1e-9);
        let row: Vec<f64> = runs
            .iter()
            .map(|r| r.vms[vm].runtime_cycles.mean / base)
            .collect();
        t.row(format!("runtime vm{vm} {}", kind.name()), &row);
    }
    for (vm, kind) in mix.instances().iter().enumerate() {
        let row: Vec<f64> = runs
            .iter()
            .map(|r| r.vms[vm].llc_miss_rate.mean * 100.0)
            .collect();
        t.row(format!("miss% vm{vm} {}", kind.name()), &row);
    }
    for (vm, kind) in mix.instances().iter().enumerate() {
        let row: Vec<f64> = runs
            .iter()
            .map(|r| {
                let banks = r.occupancy.len().max(1) as f64;
                r.occupancy.iter().map(|bank| bank[vm]).sum::<f64>() / banks * 100.0
            })
            .collect();
        t.row(format!("occ% vm{vm} {}", kind.name()), &row);
    }
    Ok(t)
}

/// Fig. 15 (extension): closing the QoS loop — the Fig. 14 mix under the
/// *dynamic* fairness-aware repartitioning controller, against the static
/// alternatives. Columns: unpartitioned, equal static split, the explicit
/// 8/4/2/2 split, and the dynamic controller at a responsive tuning
/// (10k-cycle epochs, 1-way steps, no dead-band — the default 50k/5%
/// tuning barely wakes up inside a short run, so the figure tightens it
/// to exercise the feedback loop). Row groups match Fig. 14: per-VM
/// runtime normalized to the unpartitioned column, absolute LLC miss
/// rate, and mean bank-capacity share. The dynamic column should track
/// the equal split for symmetric demand and shift ways toward
/// cache-sensitive VMs when the mix is skewed.
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig15_dynamic_partitioning(ctx: &FigureContext) -> Result<TextTable, SimError> {
    let mix = Mix::all_heterogeneous()
        .into_iter()
        .next()
        .expect("at least one heterogeneous mix");
    let schemes: [(&str, LlcPartitioning); 4] = [
        ("none", LlcPartitioning::None),
        ("equal", LlcPartitioning::EqualWays),
        ("8/4/2/2", LlcPartitioning::ExplicitWays(vec![8, 4, 2, 2])),
        (
            "dynamic",
            LlcPartitioning::Dynamic(DynamicPolicy {
                epoch_interval: 10_000,
                deadband_milli: 0,
                ..DynamicPolicy::default()
            }),
        ),
    ];
    // Same cell-cache caveat as Fig. 14: partitioning lives on the machine,
    // which the context's cell cache does not key on, so every partitioned
    // column runs on a dedicated runner cloned from the context's.
    let mut runs = Vec::new();
    for (_, scheme) in &schemes {
        runs.push(match scheme {
            LlcPartitioning::None => ctx.run(mix.instances(), RoundRobin, SharedBy(4))?,
            _ => {
                let machine = MachineConfig::paper_default().with_llc_partitioning(scheme.clone());
                let runner = ctx.runner().clone().on_machine(machine);
                let cell = ExperimentCell::of_kinds(mix.instances(), RoundRobin, SharedBy(4));
                let run = runner
                    .run_cells(std::slice::from_ref(&cell))?
                    .pop()
                    .expect("one cell in, one run out");
                std::sync::Arc::new(run)
            }
        });
    }
    let cols: Vec<&str> = schemes.iter().map(|(l, _)| *l).collect();
    let mut t = TextTable::new(
        format!(
            "Fig 15: dynamic QoS repartitioning ({}, rr, shared-4-way)",
            mix.id()
        ),
        &cols,
    );
    for (vm, kind) in mix.instances().iter().enumerate() {
        let base = runs[0].vms[vm].runtime_cycles.mean.max(1e-9);
        let row: Vec<f64> = runs
            .iter()
            .map(|r| r.vms[vm].runtime_cycles.mean / base)
            .collect();
        t.row(format!("runtime vm{vm} {}", kind.name()), &row);
    }
    for (vm, kind) in mix.instances().iter().enumerate() {
        let row: Vec<f64> = runs
            .iter()
            .map(|r| r.vms[vm].llc_miss_rate.mean * 100.0)
            .collect();
        t.row(format!("miss% vm{vm} {}", kind.name()), &row);
    }
    for (vm, kind) in mix.instances().iter().enumerate() {
        let row: Vec<f64> = runs
            .iter()
            .map(|r| {
                let banks = r.occupancy.len().max(1) as f64;
                r.occupancy.iter().map(|bank| bank[vm]).sum::<f64>() / banks * 100.0
            })
            .collect();
        t.row(format!("occ% vm{vm} {}", kind.name()), &row);
    }
    Ok(t)
}

/// Fig. 16 (extension): consolidation under VM lifecycle churn — the
/// Fig. 14 mix, round robin on shared-4-way banks, with a static
/// population against two birth–death regimes: arrivals and departures
/// only, and the same regime with live migration enabled. Row groups:
/// per-VM runtime normalized to the static column (a VM retired before
/// meeting its quota completes at the retirement boundary, so churned
/// runtimes can drop *below* 1.0 — that truncation is the lifecycle
/// effect, not an artifact), per-VM mean miss latency relative to the
/// static column (interference from re-warming after spawns and
/// migrations), per-VM *tail* (worst single) miss latency in cycles, and
/// a churn-activity footer (mean spawns / retires / migrations /
/// scrubbed dirty writebacks per run). Churn rates are permille-per-epoch
/// draws, so the activity rows also pin the deterministic decision
/// sequence in the golden.
///
/// # Errors
///
/// Propagates engine errors.
pub fn fig16_lifecycle_churn(ctx: &FigureContext) -> Result<TextTable, SimError> {
    let mix = Mix::all_heterogeneous()
        .into_iter()
        .next()
        .expect("at least one heterogeneous mix");
    let vms = mix.instances().len();
    // Every VM starts active (so each has a real measured quota), epochs
    // fire many times inside even the quick run, and departures leave at
    // least half the population standing.
    let birth_death = ChurnPolicy {
        interval: 4_000,
        arrival_permille: vec![500; vms],
        departure_permille: vec![300; vms],
        migration_permille: 0,
        initial_active: vms,
        min_active: (vms / 2).max(1),
        migration_targets: None,
    };
    let with_migration = ChurnPolicy {
        migration_permille: 400,
        ..birth_death.clone()
    };
    let schemes: [(&str, Option<ChurnPolicy>); 3] = [
        ("static", None),
        ("birth-death", Some(birth_death)),
        ("+migration", Some(with_migration)),
    ];
    // Same cell-cache caveat as Figs. 14/15: churn lives on the machine,
    // which the context's cell cache does not key on, so the churned
    // columns run on dedicated runners cloned from the context's.
    let mut runs = Vec::new();
    for (_, policy) in &schemes {
        runs.push(match policy {
            None => ctx.run(mix.instances(), RoundRobin, SharedBy(4))?,
            Some(churn) => {
                let machine = MachineConfig::paper_default().with_churn(churn.clone());
                let runner = ctx.runner().clone().on_machine(machine);
                let cell = ExperimentCell::of_kinds(mix.instances(), RoundRobin, SharedBy(4));
                let run = runner
                    .run_cells(std::slice::from_ref(&cell))?
                    .pop()
                    .expect("one cell in, one run out");
                std::sync::Arc::new(run)
            }
        });
    }
    let cols: Vec<&str> = schemes.iter().map(|(l, _)| *l).collect();
    let mut t = TextTable::new(
        format!(
            "Fig 16: VM lifecycle churn ({}, rr, shared-4-way)",
            mix.id()
        ),
        &cols,
    );
    for (vm, kind) in mix.instances().iter().enumerate() {
        let base = runs[0].vms[vm].runtime_cycles.mean.max(1e-9);
        let row: Vec<f64> = runs
            .iter()
            .map(|r| r.vms[vm].runtime_cycles.mean / base)
            .collect();
        t.row(format!("runtime vm{vm} {}", kind.name()), &row);
    }
    for (vm, kind) in mix.instances().iter().enumerate() {
        let base = runs[0].vms[vm].miss_latency.mean.max(1e-9);
        let row: Vec<f64> = runs
            .iter()
            .map(|r| r.vms[vm].miss_latency.mean / base)
            .collect();
        t.row(format!("misslat vm{vm} {}", kind.name()), &row);
    }
    for (vm, kind) in mix.instances().iter().enumerate() {
        let row: Vec<f64> = runs
            .iter()
            .map(|r| r.vms[vm].miss_latency_max.mean)
            .collect();
        t.row(format!("tail vm{vm} {}", kind.name()), &row);
    }
    type ActivityStat = fn(&consim_job::runner::MixRun) -> f64;
    let activity: [(&str, ActivityStat); 4] = [
        ("spawns", |r| r.churn.spawns.mean),
        ("retires", |r| r.churn.retires.mean),
        ("migrations", |r| r.churn.migrations.mean),
        ("scrub wb", |r| r.churn.scrub_writebacks.mean),
    ];
    for (label, f) in activity {
        let row: Vec<f64> = runs.iter().map(|r| f(r)).collect();
        t.row(label, &row);
    }
    Ok(t)
}

/// Every experiment cell the figure regenerators will request, so
/// [`run_all`] can prefetch them in one parallel batch. Duplicates are
/// fine; [`FigureContext::prefetch`] collapses them.
pub fn run_all_cells() -> Vec<(Vec<WorkloadKind>, SchedulingPolicy, SharingDegree)> {
    let mut cells = Vec::new();
    for kind in WorkloadKind::PAPER_SET {
        // Figs. 2-4 isolated sweep (includes every isolation baseline).
        for (_, sharing, policy) in ISOLATED_SWEEP {
            cells.push((vec![kind], policy, sharing));
        }
        // Figs. 5-7 and 12: homogeneous mixes under every policy, plus the
        // private-LLC replication maximum.
        for policy in POLICIES {
            cells.push((vec![kind; 4], policy, SharedBy(4)));
        }
        cells.push((vec![kind; 4], RoundRobin, Private));
    }
    // Figs. 8-11 and 13: heterogeneous mixes, both schedulers at the
    // paper's shared-4-way point and the Fig. 11 sharing-degree sweep.
    for mix in Mix::all_heterogeneous() {
        let instances = mix.instances().to_vec();
        for policy in [Affinity, RoundRobin] {
            cells.push((instances.clone(), policy, SharedBy(4)));
        }
        for sharing in [SharedBy(2), SharedBy(8), FullyShared] {
            cells.push((instances.clone(), Affinity, sharing));
        }
    }
    cells
}

/// Regenerates every exhibit, printing each table (used by the `run_all`
/// binary). All cells are prefetched through the context's parallel batch
/// API first, so the figure code below only reads cached results.
///
/// # Errors
///
/// Propagates engine errors.
pub fn run_all(ctx: &FigureContext) -> Result<(), SimError> {
    ctx.prefetch(&run_all_cells())?;
    println!("{}", table4());
    println!("{}", table2(ctx)?);
    println!("{}", fig02_isolated_performance(ctx)?);
    println!("{}", fig03_isolated_missrate(ctx)?);
    println!("{}", fig04_isolated_misslatency(ctx)?);
    println!("{}", fig05_homogeneous_performance(ctx)?);
    println!("{}", fig06_homogeneous_misslatency(ctx)?);
    println!("{}", fig07_homogeneous_missrate(ctx)?);
    println!("{}", fig08_heterogeneous_performance(ctx)?);
    println!("{}", fig09_heterogeneous_missrate(ctx)?);
    println!("{}", fig10_heterogeneous_misslatency(ctx)?);
    println!("{}", fig11_sharing_degree(ctx)?);
    println!("{}", fig12_replication(ctx)?);
    println!("{}", fig13_occupancy(ctx)?);
    println!("{}", fig14_partitioning(ctx)?);
    println!("{}", fig15_dynamic_partitioning(ctx)?);
    println!("{}", fig16_lifecycle_churn(ctx)?);
    Ok(())
}

/// Convenience used by tests and benches: quick context with short runs.
pub fn quick_context() -> FigureContext {
    FigureContext::new(RunOptions::quick())
}
