//! Shared `--audit` / `--trace <dir>` plumbing for the helper binaries.
//!
//! Every bin that runs experiments (`run_all`, `sweep`, `throughput`)
//! accepts the same two observability flags:
//!
//! * `--audit` — enable the end-of-run counter audit on every simulation
//!   (release builds only; debug builds always audit);
//! * `--trace <dir>` — stream trace events to `<dir>/events.jsonl` and
//!   write a `manifest.json` describing the run on exit.
//!
//! By default the JSONL trace carries the low-volume classes (lifecycle,
//! epoch snapshots, runner timing); set `CONSIM_TRACE_FULL=1` to also
//! record the per-transaction coherence and NoC-stall firehose.

use consim_trace::{digest_of, ClassMask, JsonlSink, Manifest, TraceSink};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Observability and recovery flags shared by the experiment bins, plus
/// whatever arguments the bin interprets itself.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct BenchFlags {
    /// `--audit`: cross-check counters at the end of every simulation.
    pub audit: bool,
    /// `--trace <dir>`: trace output directory, if requested.
    pub trace_dir: Option<PathBuf>,
    /// `--resume <dir>`: results-journal directory. Completed cells found
    /// there are loaded instead of re-simulated; cells this run completes
    /// are recorded there.
    pub resume_dir: Option<PathBuf>,
    /// `--checkpoint-every <accesses>`: mid-cell checkpoint interval
    /// (effective only with `--resume`).
    pub checkpoint_every: Option<u64>,
    /// Positional/unrecognized arguments, in order, for the bin to parse.
    pub rest: Vec<String>,
}

impl BenchFlags {
    /// Parses `--audit`, `--trace <dir>`, `--resume <dir>`, and
    /// `--checkpoint-every <accesses>` out of `args` (the iterator should
    /// *not* include the program name). Everything else is passed through
    /// in [`BenchFlags::rest`].
    ///
    /// # Errors
    ///
    /// Returns a usage message when a flag is missing or has a malformed
    /// value.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut flags = Self::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            if arg == "--audit" {
                flags.audit = true;
            } else if arg == "--trace" || arg == "--resume" {
                let dir = args
                    .next()
                    .ok_or_else(|| format!("{arg} requires a directory argument"))?;
                *flags.dir_slot(&arg) = Some(PathBuf::from(dir));
            } else if let Some((name, dir)) = ["--trace", "--resume"]
                .iter()
                .find_map(|n| arg.strip_prefix(&format!("{n}=")).map(|d| (*n, d)))
            {
                if dir.is_empty() {
                    return Err(format!("{name} requires a directory argument"));
                }
                *flags.dir_slot(name) = Some(PathBuf::from(dir));
            } else {
                flags.rest.push(arg);
            }
        }
        flags.checkpoint_every = flags.take_u64("--checkpoint-every")?;
        Ok(flags)
    }

    /// The flag's destination field (`--trace` or `--resume`).
    fn dir_slot(&mut self, name: &str) -> &mut Option<PathBuf> {
        if name == "--resume" {
            &mut self.resume_dir
        } else {
            &mut self.trace_dir
        }
    }

    /// Parses the process arguments, printing the error and exiting with
    /// status 2 on a malformed command line.
    pub fn from_env(bin: &str) -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(flags) => flags,
            Err(msg) => {
                eprintln!("{bin}: {msg}");
                eprintln!(
                    "usage: {bin} [--audit] [--trace <dir>] [--resume <dir>] \
                     [--checkpoint-every <accesses>] ..."
                );
                std::process::exit(2);
            }
        }
    }

    /// Extracts a `--name N` / `--name=N` integer option from
    /// [`BenchFlags::rest`], removing the consumed tokens. Returns
    /// `Ok(None)` when the flag is absent.
    ///
    /// # Errors
    ///
    /// Returns a usage message when the flag is present without a value or
    /// with a non-numeric one.
    pub fn take_u64(&mut self, name: &str) -> Result<Option<u64>, String> {
        let eq_prefix = format!("{name}=");
        let Some(pos) = self
            .rest
            .iter()
            .position(|a| a == name || a.starts_with(&eq_prefix))
        else {
            return Ok(None);
        };
        let raw = if let Some(v) = self.rest[pos].strip_prefix(&eq_prefix) {
            let v = v.to_string();
            self.rest.remove(pos);
            v
        } else {
            if pos + 1 >= self.rest.len() {
                return Err(format!("{name} requires an integer argument"));
            }
            let v = self.rest.remove(pos + 1);
            self.rest.remove(pos);
            v
        };
        raw.trim()
            .parse()
            .map(Some)
            .map_err(|_| format!("{name} requires an integer argument, got {raw:?}"))
    }

    /// Extracts a `--name PATH` / `--name=PATH` path option from
    /// [`BenchFlags::rest`], removing the consumed tokens. Returns
    /// `Ok(None)` when the flag is absent.
    ///
    /// # Errors
    ///
    /// Returns a usage message when the flag is present without a value.
    pub fn take_path(&mut self, name: &str) -> Result<Option<PathBuf>, String> {
        let eq_prefix = format!("{name}=");
        let Some(pos) = self
            .rest
            .iter()
            .position(|a| a == name || a.starts_with(&eq_prefix))
        else {
            return Ok(None);
        };
        let raw = if let Some(v) = self.rest[pos].strip_prefix(&eq_prefix) {
            let v = v.to_string();
            self.rest.remove(pos);
            v
        } else {
            if pos + 1 >= self.rest.len() {
                return Err(format!("{name} requires a path argument"));
            }
            let v = self.rest.remove(pos + 1);
            self.rest.remove(pos);
            v
        };
        if raw.is_empty() {
            return Err(format!("{name} requires a path argument"));
        }
        Ok(Some(PathBuf::from(raw)))
    }

    /// Opens the trace session when `--trace` was given.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors creating the directory or the JSONL file.
    pub fn trace_session(&self) -> io::Result<Option<TraceSession>> {
        self.trace_dir
            .as_deref()
            .map(TraceSession::create)
            .transpose()
    }
}

/// Parses the `CONSIM_FAULT` fault-injection variable (`cell:K`: abort the
/// batch once `K` jobs have completed). Unset returns `None`; a set but
/// malformed value is an error — a typo'd fault spec silently ignored
/// would make a crash-recovery test pass vacuously.
pub fn fault_from_env() -> Result<Option<u64>, String> {
    fault_from_env_with("cell")
}

/// [`fault_from_env`] with a caller-chosen unit keyword: batch bins abort
/// after `cell:K` completions, the serve daemon after `jobs:K`. Keeping
/// the units distinct means a fault spec aimed at one kind of process
/// is a loud error — not a silently different trip point — in the other.
pub fn fault_from_env_with(kind: &str) -> Result<Option<u64>, String> {
    match std::env::var("CONSIM_FAULT") {
        Err(_) => Ok(None),
        Ok(raw) => raw
            .trim()
            .strip_prefix(kind)
            .and_then(|rest| rest.trim_start().strip_prefix(':'))
            .and_then(|k| k.trim().parse().ok())
            .map(Some)
            .ok_or_else(|| format!("CONSIM_FAULT={raw:?} is malformed; expected {kind}:<K>")),
    }
}

/// Extracts the `config_digest` value from rendered `manifest.json` text.
pub fn manifest_digest(text: &str) -> Option<String> {
    let key = "\"config_digest\": \"";
    let start = text.find(key)? + key.len();
    let end = text[start..].find('"')? + start;
    Some(text[start..end].to_string())
}

/// Refuses to reuse a `--trace`/`--resume` directory whose `manifest.json`
/// was written by a run with a different configuration digest: mixing
/// journal records or traces across configurations would silently corrupt
/// results. A missing or digest-matching manifest passes.
///
/// # Errors
///
/// Returns a message naming both digests on a mismatch.
pub fn guard_manifest_digest(dir: &Path, digest: &str) -> Result<(), String> {
    let path = dir.join("manifest.json");
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Ok(());
    };
    match manifest_digest(&text) {
        Some(previous) if previous != digest => Err(format!(
            "{} already holds results for config digest {previous}, but this run's \
             digest is {digest}; refusing to mix them — use a fresh directory or \
             rerun with the original configuration",
            dir.display()
        )),
        _ => Ok(()),
    }
}

/// The worker-thread count the runner will resolve to, for the manifest:
/// `CONSIM_THREADS` if set and valid, else the machine's parallelism.
pub fn thread_count() -> usize {
    std::env::var("CONSIM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// One `--trace` run: a JSONL sink streaming to `<dir>/events.jsonl`, and
/// the bookkeeping needed to write `manifest.json` when the bin finishes.
#[derive(Debug)]
pub struct TraceSession {
    dir: PathBuf,
    sink: Arc<JsonlSink>,
    started: Instant,
    resumed_from: Option<String>,
    jobs: Vec<String>,
    checkpoints: Vec<String>,
}

impl TraceSession {
    /// Creates `dir` (if needed) and opens `events.jsonl` inside it. The
    /// event mask defaults to the low-volume classes; `CONSIM_TRACE_FULL=1`
    /// records everything.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn create(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let full = std::env::var("CONSIM_TRACE_FULL").is_ok_and(|v| v.trim() == "1");
        let mask = if full {
            ClassMask::ALL
        } else {
            ClassMask::default()
        };
        let sink = Arc::new(JsonlSink::with_mask(&dir.join("events.jsonl"), mask)?);
        Ok(TraceSession {
            dir: dir.to_path_buf(),
            sink,
            started: Instant::now(),
            resumed_from: None,
            jobs: Vec::new(),
            checkpoints: Vec::new(),
        })
    }

    /// The sink to install on an experiment runner.
    pub fn sink(&self) -> Arc<dyn TraceSink> {
        Arc::clone(&self.sink) as Arc<dyn TraceSink>
    }

    /// Records journal provenance for the manifest: the `--resume`
    /// directory, the per-job configuration digests of its committed
    /// `job-<digest>.bin` records, and a content digest of every
    /// journal/checkpoint record (sorted by path, so the manifest is
    /// deterministic). The journal namespace is flat; legacy per-batch
    /// subdirectories from pre-job-layer runs are still digested. Call
    /// after the run, when the journal holds its final records.
    pub fn note_journal(&mut self, dir: &Path) {
        self.resumed_from = Some(dir.display().to_string());
        let mut records: Vec<(PathBuf, String)> = Vec::new();
        let mut jobs: Vec<String> = Vec::new();
        let mut digest_records_in = |dir: &Path| {
            let Ok(files) = std::fs::read_dir(dir) else {
                return;
            };
            for file in files.filter_map(Result::ok) {
                let path = file.path();
                let is_record = path.extension().is_some_and(|x| x == "bin" || x == "ckpt");
                if !is_record {
                    continue;
                }
                if let Ok(bytes) = std::fs::read(&path) {
                    records.push((path, digest_of(bytes.as_slice())));
                }
            }
        };
        digest_records_in(dir);
        let entries = match std::fs::read_dir(dir) {
            Ok(entries) => entries,
            Err(_) => return,
        };
        for entry in entries.filter_map(Result::ok) {
            let path = entry.path();
            if path.is_dir() {
                digest_records_in(&path);
            } else if let Some(digest) = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_prefix("job-"))
                .and_then(|n| n.strip_suffix(".bin"))
            {
                jobs.push(digest.to_string());
            }
        }
        records.sort();
        jobs.sort();
        self.checkpoints = records.into_iter().map(|(_, d)| d).collect();
        self.jobs = jobs;
    }

    /// Flushes the trace and writes `manifest.json`; returns its path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors flushing or writing the manifest.
    pub fn finish(
        self,
        bin: &'static str,
        config_digest: String,
        seeds: Vec<u64>,
        llc_partitioning: String,
        audit: bool,
    ) -> io::Result<PathBuf> {
        self.sink.flush()?;
        let manifest = Manifest {
            bin,
            crate_version: env!("CARGO_PKG_VERSION"),
            config_digest,
            seeds,
            llc_partitioning,
            threads: thread_count(),
            audit,
            wall_seconds: self.started.elapsed().as_secs_f64(),
            trace_lines: self.sink.lines(),
            trace_errors: self.sink.errors(),
            resumed_from: self.resumed_from,
            jobs: self.jobs,
            checkpoints: self.checkpoints,
        };
        manifest.write_to(&self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<BenchFlags, String> {
        BenchFlags::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_audit_and_trace() {
        let flags = parse(&["--audit", "--trace", "out/traces", "jbb"]).unwrap();
        assert!(flags.audit);
        assert_eq!(flags.trace_dir.as_deref(), Some(Path::new("out/traces")));
        assert_eq!(flags.rest, vec!["jbb".to_string()]);
    }

    #[test]
    fn parses_trace_equals_form() {
        let flags = parse(&["--trace=t"]).unwrap();
        assert_eq!(flags.trace_dir.as_deref(), Some(Path::new("t")));
        assert!(!flags.audit);
    }

    #[test]
    fn trace_without_dir_is_an_error() {
        assert!(parse(&["--trace"]).is_err());
        assert!(parse(&["--trace="]).is_err());
    }

    #[test]
    fn unknown_args_pass_through_in_order() {
        let flags = parse(&["tpch", "--audit", "extra"]).unwrap();
        assert_eq!(flags.rest, vec!["tpch".to_string(), "extra".to_string()]);
    }

    #[test]
    fn take_u64_consumes_both_forms() {
        let mut flags = parse(&["--cases", "500", "--seed=42", "extra"]).unwrap();
        assert_eq!(flags.take_u64("--cases"), Ok(Some(500)));
        assert_eq!(flags.take_u64("--seed"), Ok(Some(42)));
        assert_eq!(flags.take_u64("--replay"), Ok(None));
        assert_eq!(flags.rest, vec!["extra".to_string()]);
    }

    #[test]
    fn take_path_consumes_both_forms() {
        let mut flags = parse(&["--json", "out/b.json", "--log=run.txt", "extra"]).unwrap();
        assert_eq!(
            flags.take_path("--json"),
            Ok(Some(PathBuf::from("out/b.json")))
        );
        assert_eq!(flags.take_path("--log"), Ok(Some(PathBuf::from("run.txt"))));
        assert_eq!(flags.take_path("--other"), Ok(None));
        assert_eq!(flags.rest, vec!["extra".to_string()]);
        assert!(parse(&["--json"]).unwrap().take_path("--json").is_err());
        assert!(parse(&["--json="]).unwrap().take_path("--json").is_err());
    }

    #[test]
    fn take_u64_rejects_missing_or_bad_values() {
        let mut flags = parse(&["--cases"]).unwrap();
        assert!(flags.take_u64("--cases").is_err());
        let mut flags = parse(&["--cases", "many"]).unwrap();
        assert!(flags.take_u64("--cases").is_err());
    }

    #[test]
    fn session_writes_jsonl_and_manifest() {
        use consim_trace::TraceEvent;

        let dir = std::env::temp_dir().join("consim-bench-cli-session");
        std::fs::remove_dir_all(&dir).ok();
        let session = TraceSession::create(&dir).unwrap();
        session.sink().record(&TraceEvent::RunStarted {
            seed: 7,
            vms: 1,
            refs_per_vm: 10,
            warmup_refs_per_vm: 0,
        });
        let path = session
            .finish(
                "run_all",
                "0123456789abcdef".to_string(),
                vec![7],
                "none".to_string(),
                true,
            )
            .unwrap();
        let manifest = std::fs::read_to_string(&path).unwrap();
        assert!(manifest.contains("\"bin\": \"run_all\""));
        assert!(manifest.contains("\"trace_lines\": 1"));
        let events = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
        assert!(events.lines().next().unwrap().contains("\"run_started\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }

    #[test]
    fn parses_resume_and_checkpoint_every() {
        let flags = parse(&["--resume", "out/j", "--checkpoint-every", "50000", "x"]).unwrap();
        assert_eq!(flags.resume_dir.as_deref(), Some(Path::new("out/j")));
        assert_eq!(flags.checkpoint_every, Some(50_000));
        assert_eq!(flags.rest, vec!["x".to_string()]);
        let flags = parse(&["--resume=j2", "--checkpoint-every=9"]).unwrap();
        assert_eq!(flags.resume_dir.as_deref(), Some(Path::new("j2")));
        assert_eq!(flags.checkpoint_every, Some(9));
        assert!(parse(&["--resume"]).is_err());
        assert!(parse(&["--resume="]).is_err());
        assert!(parse(&["--checkpoint-every", "soon"]).is_err());
    }

    #[test]
    fn fault_spec_parses_or_rejects() {
        // Parse the spec format directly (the env-reading wrapper is a
        // thin shell around it; mutating the process environment here
        // would race against parallel tests).
        let parse_spec = |raw: &str| {
            raw.trim()
                .strip_prefix("cell:")
                .and_then(|k| k.trim().parse::<u64>().ok())
        };
        assert_eq!(parse_spec("cell:3"), Some(3));
        assert_eq!(parse_spec(" cell: 12 "), Some(12));
        assert_eq!(parse_spec("3"), None);
        assert_eq!(parse_spec("cell:many"), None);
    }

    #[test]
    fn digest_guard_refuses_mismatched_journal() {
        let dir = std::env::temp_dir().join(format!("consim-cli-guard-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // No manifest yet: anything goes.
        assert!(guard_manifest_digest(&dir, "aaaa").is_ok());
        std::fs::write(
            dir.join("manifest.json"),
            "{\n  \"bin\": \"run_all\",\n  \"config_digest\": \"aaaa\"\n}",
        )
        .unwrap();
        // Same digest: resume allowed.
        assert!(guard_manifest_digest(&dir, "aaaa").is_ok());
        // Different digest: refused, naming both digests.
        let err = guard_manifest_digest(&dir, "bbbb").unwrap_err();
        assert!(err.contains("aaaa") && err.contains("bbbb"), "{err}");
        assert!(err.contains("refusing"), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn note_journal_digests_records_deterministically() {
        let dir = std::env::temp_dir().join(format!("consim-cli-journal-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // Flat job-layer layout: records named by per-job config digest.
        std::fs::write(dir.join("job-00000000000000bb.bin"), b"one").unwrap();
        std::fs::write(dir.join("job-00000000000000aa.ckpt"), b"zero").unwrap();
        std::fs::write(dir.join("notes.txt"), b"ignored").unwrap();
        // Legacy per-batch subdirectory: still digested, but its records
        // don't contribute per-job digests (different naming scheme).
        let batch = dir.join("batch-0123");
        std::fs::create_dir_all(&batch).unwrap();
        std::fs::write(batch.join("job-0001.bin"), b"legacy").unwrap();
        let mut session = TraceSession::create(&dir.join("trace")).unwrap();
        session.note_journal(&dir);
        assert_eq!(
            session.checkpoints.len(),
            3,
            "only .bin/.ckpt records count"
        );
        let expected = vec![
            digest_of(b"legacy".as_slice()),
            digest_of(b"zero".as_slice()),
            digest_of(b"one".as_slice()),
        ];
        assert_eq!(session.checkpoints, expected, "sorted by path");
        assert_eq!(
            session.jobs,
            vec!["00000000000000bb".to_string()],
            "per-job digests come from committed .bin names at the top level"
        );
        assert_eq!(
            session.resumed_from.as_deref(),
            Some(&*dir.display().to_string())
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
