//! Shared `--audit` / `--trace <dir>` plumbing for the helper binaries.
//!
//! Every bin that runs experiments (`run_all`, `sweep`, `throughput`)
//! accepts the same two observability flags:
//!
//! * `--audit` — enable the end-of-run counter audit on every simulation
//!   (release builds only; debug builds always audit);
//! * `--trace <dir>` — stream trace events to `<dir>/events.jsonl` and
//!   write a `manifest.json` describing the run on exit.
//!
//! By default the JSONL trace carries the low-volume classes (lifecycle,
//! epoch snapshots, runner timing); set `CONSIM_TRACE_FULL=1` to also
//! record the per-transaction coherence and NoC-stall firehose.

use consim_trace::{ClassMask, JsonlSink, Manifest, TraceSink};
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Instant;

/// Observability flags shared by the experiment bins, plus whatever
/// arguments the bin interprets itself.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct BenchFlags {
    /// `--audit`: cross-check counters at the end of every simulation.
    pub audit: bool,
    /// `--trace <dir>`: trace output directory, if requested.
    pub trace_dir: Option<PathBuf>,
    /// Positional/unrecognized arguments, in order, for the bin to parse.
    pub rest: Vec<String>,
}

impl BenchFlags {
    /// Parses `--audit` and `--trace <dir>` out of `args` (the iterator
    /// should *not* include the program name). Everything else is passed
    /// through in [`BenchFlags::rest`].
    ///
    /// # Errors
    ///
    /// Returns a usage message when `--trace` is missing its directory.
    pub fn parse(args: impl Iterator<Item = String>) -> Result<Self, String> {
        let mut flags = Self::default();
        let mut args = args.peekable();
        while let Some(arg) = args.next() {
            if arg == "--audit" {
                flags.audit = true;
            } else if arg == "--trace" {
                let dir = args
                    .next()
                    .ok_or_else(|| "--trace requires a directory argument".to_string())?;
                flags.trace_dir = Some(PathBuf::from(dir));
            } else if let Some(dir) = arg.strip_prefix("--trace=") {
                if dir.is_empty() {
                    return Err("--trace requires a directory argument".to_string());
                }
                flags.trace_dir = Some(PathBuf::from(dir));
            } else {
                flags.rest.push(arg);
            }
        }
        Ok(flags)
    }

    /// Parses the process arguments, printing the error and exiting with
    /// status 2 on a malformed command line.
    pub fn from_env(bin: &str) -> Self {
        match Self::parse(std::env::args().skip(1)) {
            Ok(flags) => flags,
            Err(msg) => {
                eprintln!("{bin}: {msg}");
                eprintln!("usage: {bin} [--audit] [--trace <dir>] ...");
                std::process::exit(2);
            }
        }
    }

    /// Extracts a `--name N` / `--name=N` integer option from
    /// [`BenchFlags::rest`], removing the consumed tokens. Returns
    /// `Ok(None)` when the flag is absent.
    ///
    /// # Errors
    ///
    /// Returns a usage message when the flag is present without a value or
    /// with a non-numeric one.
    pub fn take_u64(&mut self, name: &str) -> Result<Option<u64>, String> {
        let eq_prefix = format!("{name}=");
        let Some(pos) = self
            .rest
            .iter()
            .position(|a| a == name || a.starts_with(&eq_prefix))
        else {
            return Ok(None);
        };
        let raw = if let Some(v) = self.rest[pos].strip_prefix(&eq_prefix) {
            let v = v.to_string();
            self.rest.remove(pos);
            v
        } else {
            if pos + 1 >= self.rest.len() {
                return Err(format!("{name} requires an integer argument"));
            }
            let v = self.rest.remove(pos + 1);
            self.rest.remove(pos);
            v
        };
        raw.trim()
            .parse()
            .map(Some)
            .map_err(|_| format!("{name} requires an integer argument, got {raw:?}"))
    }

    /// Opens the trace session when `--trace` was given.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors creating the directory or the JSONL file.
    pub fn trace_session(&self) -> io::Result<Option<TraceSession>> {
        self.trace_dir
            .as_deref()
            .map(TraceSession::create)
            .transpose()
    }
}

/// The worker-thread count the runner will resolve to, for the manifest:
/// `CONSIM_THREADS` if set and valid, else the machine's parallelism.
pub fn thread_count() -> usize {
    std::env::var("CONSIM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// One `--trace` run: a JSONL sink streaming to `<dir>/events.jsonl`, and
/// the bookkeeping needed to write `manifest.json` when the bin finishes.
#[derive(Debug)]
pub struct TraceSession {
    dir: PathBuf,
    sink: Arc<JsonlSink>,
    started: Instant,
}

impl TraceSession {
    /// Creates `dir` (if needed) and opens `events.jsonl` inside it. The
    /// event mask defaults to the low-volume classes; `CONSIM_TRACE_FULL=1`
    /// records everything.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn create(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let full = std::env::var("CONSIM_TRACE_FULL").is_ok_and(|v| v.trim() == "1");
        let mask = if full {
            ClassMask::ALL
        } else {
            ClassMask::default()
        };
        let sink = Arc::new(JsonlSink::with_mask(&dir.join("events.jsonl"), mask)?);
        Ok(TraceSession {
            dir: dir.to_path_buf(),
            sink,
            started: Instant::now(),
        })
    }

    /// The sink to install on an experiment runner.
    pub fn sink(&self) -> Arc<dyn TraceSink> {
        Arc::clone(&self.sink) as Arc<dyn TraceSink>
    }

    /// Flushes the trace and writes `manifest.json`; returns its path.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors flushing or writing the manifest.
    pub fn finish(
        self,
        bin: &'static str,
        config_digest: String,
        seeds: Vec<u64>,
        llc_partitioning: String,
        audit: bool,
    ) -> io::Result<PathBuf> {
        self.sink.flush()?;
        let manifest = Manifest {
            bin,
            crate_version: env!("CARGO_PKG_VERSION"),
            config_digest,
            seeds,
            llc_partitioning,
            threads: thread_count(),
            audit,
            wall_seconds: self.started.elapsed().as_secs_f64(),
            trace_lines: self.sink.lines(),
            trace_errors: self.sink.errors(),
        };
        manifest.write_to(&self.dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<BenchFlags, String> {
        BenchFlags::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_audit_and_trace() {
        let flags = parse(&["--audit", "--trace", "out/traces", "jbb"]).unwrap();
        assert!(flags.audit);
        assert_eq!(flags.trace_dir.as_deref(), Some(Path::new("out/traces")));
        assert_eq!(flags.rest, vec!["jbb".to_string()]);
    }

    #[test]
    fn parses_trace_equals_form() {
        let flags = parse(&["--trace=t"]).unwrap();
        assert_eq!(flags.trace_dir.as_deref(), Some(Path::new("t")));
        assert!(!flags.audit);
    }

    #[test]
    fn trace_without_dir_is_an_error() {
        assert!(parse(&["--trace"]).is_err());
        assert!(parse(&["--trace="]).is_err());
    }

    #[test]
    fn unknown_args_pass_through_in_order() {
        let flags = parse(&["tpch", "--audit", "extra"]).unwrap();
        assert_eq!(flags.rest, vec!["tpch".to_string(), "extra".to_string()]);
    }

    #[test]
    fn take_u64_consumes_both_forms() {
        let mut flags = parse(&["--cases", "500", "--seed=42", "extra"]).unwrap();
        assert_eq!(flags.take_u64("--cases"), Ok(Some(500)));
        assert_eq!(flags.take_u64("--seed"), Ok(Some(42)));
        assert_eq!(flags.take_u64("--replay"), Ok(None));
        assert_eq!(flags.rest, vec!["extra".to_string()]);
    }

    #[test]
    fn take_u64_rejects_missing_or_bad_values() {
        let mut flags = parse(&["--cases"]).unwrap();
        assert!(flags.take_u64("--cases").is_err());
        let mut flags = parse(&["--cases", "many"]).unwrap();
        assert!(flags.take_u64("--cases").is_err());
    }

    #[test]
    fn session_writes_jsonl_and_manifest() {
        use consim_trace::TraceEvent;

        let dir = std::env::temp_dir().join("consim-bench-cli-session");
        std::fs::remove_dir_all(&dir).ok();
        let session = TraceSession::create(&dir).unwrap();
        session.sink().record(&TraceEvent::RunStarted {
            seed: 7,
            vms: 1,
            refs_per_vm: 10,
            warmup_refs_per_vm: 0,
        });
        let path = session
            .finish(
                "run_all",
                "0123456789abcdef".to_string(),
                vec![7],
                "none".to_string(),
                true,
            )
            .unwrap();
        let manifest = std::fs::read_to_string(&path).unwrap();
        assert!(manifest.contains("\"bin\": \"run_all\""));
        assert!(manifest.contains("\"trace_lines\": 1"));
        let events = std::fs::read_to_string(dir.join("events.jsonl")).unwrap();
        assert!(events.lines().next().unwrap().contains("\"run_started\""));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn thread_count_is_at_least_one() {
        assert!(thread_count() >= 1);
    }
}
