//! Shared, memoizing experiment context for figure regeneration.

use consim::runner::{ExperimentRunner, MixRun, RunOptions};
use consim_sched::SchedulingPolicy;
use consim_types::config::SharingDegree;
use consim_types::SimError;
use consim_workload::WorkloadKind;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A cache key for one experiment cell.
type Key = (Vec<WorkloadKind>, SchedulingPolicy, String);

/// An [`ExperimentRunner`] plus a memo table, so figures that share cells
/// (e.g. every figure needs the isolation baselines) don't re-simulate
/// them.
///
/// # Examples
///
/// ```
/// use consim_bench::FigureContext;
/// use consim::runner::RunOptions;
/// use consim_sched::SchedulingPolicy;
/// use consim_types::config::SharingDegree;
/// use consim_workload::WorkloadKind;
///
/// let ctx = FigureContext::new(RunOptions::quick());
/// let a = ctx.run(&[WorkloadKind::TpcH], SchedulingPolicy::Affinity,
///                 SharingDegree::SharedBy(4)).unwrap();
/// let b = ctx.run(&[WorkloadKind::TpcH], SchedulingPolicy::Affinity,
///                 SharingDegree::SharedBy(4)).unwrap();
/// assert!(std::rc::Rc::ptr_eq(&a, &b)); // memoized
/// ```
#[derive(Debug)]
pub struct FigureContext {
    runner: ExperimentRunner,
    memo: RefCell<HashMap<Key, Rc<MixRun>>>,
}

impl FigureContext {
    /// Creates a context with explicit options.
    pub fn new(options: RunOptions) -> Self {
        Self {
            runner: ExperimentRunner::new(options),
            memo: RefCell::new(HashMap::new()),
        }
    }

    /// The options used for figure regeneration: paper-scale runs with warm
    /// caches, overridable via `CONSIM_REFS` / `CONSIM_WARMUP` /
    /// `CONSIM_SEEDS`.
    pub fn figure_options() -> RunOptions {
        RunOptions {
            refs_per_vm: 60_000,
            warmup_refs_per_vm: 150_000,
            seeds: vec![1],
            track_footprint: false,
            prewarm_llc: true,
        }
        .from_env()
    }

    /// A context with [`FigureContext::figure_options`].
    pub fn for_figures() -> Self {
        Self::new(Self::figure_options())
    }

    /// The underlying runner.
    pub fn runner(&self) -> &ExperimentRunner {
        &self.runner
    }

    /// Runs (or recalls) one experiment cell.
    ///
    /// # Errors
    ///
    /// Propagates engine configuration/placement errors.
    pub fn run(
        &self,
        instances: &[WorkloadKind],
        policy: SchedulingPolicy,
        sharing: SharingDegree,
    ) -> Result<Rc<MixRun>, SimError> {
        let key = (instances.to_vec(), policy, sharing.label());
        if let Some(hit) = self.memo.borrow().get(&key) {
            return Ok(Rc::clone(hit));
        }
        let run = Rc::new(self.runner.run(instances, policy, sharing)?);
        self.memo.borrow_mut().insert(key, Rc::clone(&run));
        Ok(run)
    }

    /// The paper's normalization baseline: the workload alone on the fully
    /// shared 16 MB LLC.
    ///
    /// # Errors
    ///
    /// Propagates engine configuration/placement errors.
    pub fn baseline(&self, kind: WorkloadKind) -> Result<Rc<MixRun>, SimError> {
        self.run(&[kind], SchedulingPolicy::Affinity, SharingDegree::FullyShared)
    }

    /// Number of memoized cells (for tests).
    pub fn cached_cells(&self) -> usize {
        self.memo.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memoizes_identical_cells() {
        let ctx = FigureContext::new(RunOptions {
            refs_per_vm: 500,
            warmup_refs_per_vm: 100,
            seeds: vec![1],
            track_footprint: false,
            prewarm_llc: false,
        });
        let a = ctx
            .run(
                &[WorkloadKind::TpcH],
                SchedulingPolicy::Affinity,
                SharingDegree::SharedBy(4),
            )
            .unwrap();
        assert_eq!(ctx.cached_cells(), 1);
        let b = ctx
            .run(
                &[WorkloadKind::TpcH],
                SchedulingPolicy::Affinity,
                SharingDegree::SharedBy(4),
            )
            .unwrap();
        assert!(Rc::ptr_eq(&a, &b));
        assert_eq!(ctx.cached_cells(), 1);
        // A different cell is a different run.
        ctx.run(
            &[WorkloadKind::TpcH],
            SchedulingPolicy::RoundRobin,
            SharingDegree::SharedBy(4),
        )
        .unwrap();
        assert_eq!(ctx.cached_cells(), 2);
    }
}
