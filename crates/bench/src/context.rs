//! Shared, memoizing experiment context for figure regeneration.
//!
//! Two layers of caching keep `run_all` from re-simulating anything:
//!
//! * [`BaselineCache`] holds single-workload isolation runs keyed by
//!   (kind, policy, sharing, run options). Every figure normalizes against
//!   one of a handful of isolation baselines, so sharing this cache across
//!   regenerators — even ones using different contexts — computes each
//!   baseline exactly once.
//! * [`FigureContext`] adds a memo for full mix cells and a
//!   [`FigureContext::prefetch`] entry point that fans every not-yet-cached
//!   cell out across the runner's worker pool in one
//!   [`ExperimentRunner::run_cells`] batch.
//!
//! Both are `Sync`: interior mutability is `Mutex`-based and results are
//! handed out as `Arc`s, so regenerators may run from multiple threads.

use consim_job::runner::{ExperimentCell, ExperimentRunner, MixRun, RunOptions};
use consim_sched::SchedulingPolicy;
use consim_types::config::SharingDegree;
use consim_types::SimError;
use consim_workload::WorkloadKind;
use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// A cache key for one mix cell.
type Key = (Vec<WorkloadKind>, SchedulingPolicy, String);

/// A cache key for one isolation baseline. Includes the run options so
/// contexts with different measurement settings (e.g. Table II's
/// footprint-tracking runner) never alias.
type BaselineKey = (WorkloadKind, SchedulingPolicy, String, RunOptions);

/// Process-wide cache of single-workload isolation runs.
///
/// # Examples
///
/// ```
/// use consim_bench::BaselineCache;
/// use consim_job::runner::{ExperimentRunner, RunOptions};
/// use consim_sched::SchedulingPolicy;
/// use consim_types::config::SharingDegree;
/// use consim_workload::WorkloadKind;
///
/// let cache = BaselineCache::new();
/// let runner = ExperimentRunner::new(RunOptions::quick());
/// let a = cache.get_or_run(&runner, WorkloadKind::TpcH,
///                          SchedulingPolicy::Affinity,
///                          SharingDegree::FullyShared).unwrap();
/// let b = cache.get_or_run(&runner, WorkloadKind::TpcH,
///                          SchedulingPolicy::Affinity,
///                          SharingDegree::FullyShared).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&a, &b)); // simulated once
/// ```
#[derive(Debug, Default)]
pub struct BaselineCache {
    memo: Mutex<HashMap<BaselineKey, Arc<MixRun>>>,
}

impl BaselineCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the cached isolation run for `(kind, policy, sharing)` under
    /// `runner`'s options, simulating it on a miss.
    ///
    /// # Errors
    ///
    /// Propagates engine configuration/placement errors.
    pub fn get_or_run(
        &self,
        runner: &ExperimentRunner,
        kind: WorkloadKind,
        policy: SchedulingPolicy,
        sharing: SharingDegree,
    ) -> Result<Arc<MixRun>, SimError> {
        let key = (kind, policy, sharing.label(), runner.options().clone());
        if let Some(hit) = self.memo.lock().expect("baseline memo poisoned").get(&key) {
            return Ok(Arc::clone(hit));
        }
        let run = Arc::new(runner.isolated(kind, policy, sharing)?);
        self.insert(key, Arc::clone(&run));
        Ok(run)
    }

    /// Cached baseline, if present (no simulation).
    fn get(&self, key: &BaselineKey) -> Option<Arc<MixRun>> {
        self.memo
            .lock()
            .expect("baseline memo poisoned")
            .get(key)
            .cloned()
    }

    fn insert(&self, key: BaselineKey, run: Arc<MixRun>) {
        self.memo
            .lock()
            .expect("baseline memo poisoned")
            .insert(key, run);
    }

    /// Number of cached baselines.
    pub fn len(&self) -> usize {
        self.memo.lock().expect("baseline memo poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// An [`ExperimentRunner`] plus memo tables, so figures that share cells
/// (e.g. every figure needs the isolation baselines) don't re-simulate
/// them.
///
/// # Examples
///
/// ```
/// use consim_bench::FigureContext;
/// use consim_job::runner::RunOptions;
/// use consim_sched::SchedulingPolicy;
/// use consim_types::config::SharingDegree;
/// use consim_workload::WorkloadKind;
///
/// let ctx = FigureContext::new(RunOptions::quick());
/// let a = ctx.run(&[WorkloadKind::TpcH], SchedulingPolicy::Affinity,
///                 SharingDegree::SharedBy(4)).unwrap();
/// let b = ctx.run(&[WorkloadKind::TpcH], SchedulingPolicy::Affinity,
///                 SharingDegree::SharedBy(4)).unwrap();
/// assert!(std::sync::Arc::ptr_eq(&a, &b)); // memoized
/// ```
#[derive(Debug)]
pub struct FigureContext {
    runner: ExperimentRunner,
    memo: Mutex<HashMap<Key, Arc<MixRun>>>,
    baselines: Arc<BaselineCache>,
}

impl FigureContext {
    /// Creates a context with explicit options and a private baseline
    /// cache.
    pub fn new(options: RunOptions) -> Self {
        Self::with_baselines(options, Arc::new(BaselineCache::new()))
    }

    /// Creates a context sharing an existing baseline cache (so several
    /// contexts with different options — or several regenerators — reuse
    /// isolation runs wherever the options match).
    pub fn with_baselines(options: RunOptions, baselines: Arc<BaselineCache>) -> Self {
        Self::with_runner_and_baselines(ExperimentRunner::new(options), baselines)
    }

    /// Creates a context around an already-configured runner (e.g. one
    /// carrying a trace sink or an explicit audit setting) and a private
    /// baseline cache.
    pub fn with_runner(runner: ExperimentRunner) -> Self {
        Self::with_runner_and_baselines(runner, Arc::new(BaselineCache::new()))
    }

    /// [`FigureContext::with_runner`] with a shared baseline cache.
    pub fn with_runner_and_baselines(
        runner: ExperimentRunner,
        baselines: Arc<BaselineCache>,
    ) -> Self {
        Self {
            runner,
            memo: Mutex::new(HashMap::new()),
            baselines,
        }
    }

    /// The options used for figure regeneration: paper-scale runs with warm
    /// caches, overridable via `CONSIM_REFS` / `CONSIM_WARMUP` /
    /// `CONSIM_SEEDS`.
    pub fn figure_options() -> RunOptions {
        RunOptions {
            refs_per_vm: 60_000,
            warmup_refs_per_vm: 150_000,
            seeds: vec![1],
            track_footprint: false,
            prewarm_llc: true,
        }
        .from_env()
    }

    /// A context with [`FigureContext::figure_options`].
    pub fn for_figures() -> Self {
        Self::new(Self::figure_options())
    }

    /// The underlying runner.
    pub fn runner(&self) -> &ExperimentRunner {
        &self.runner
    }

    /// The shared baseline cache.
    pub fn baselines(&self) -> &Arc<BaselineCache> {
        &self.baselines
    }

    fn baseline_key(
        &self,
        kind: WorkloadKind,
        policy: SchedulingPolicy,
        label: &str,
    ) -> BaselineKey {
        (
            kind,
            policy,
            label.to_owned(),
            self.runner.options().clone(),
        )
    }

    /// Runs (or recalls) one experiment cell. Single-workload cells are
    /// isolation baselines and go through the shared [`BaselineCache`].
    ///
    /// # Errors
    ///
    /// Propagates engine configuration/placement errors.
    pub fn run(
        &self,
        instances: &[WorkloadKind],
        policy: SchedulingPolicy,
        sharing: SharingDegree,
    ) -> Result<Arc<MixRun>, SimError> {
        if let [kind] = instances {
            return self
                .baselines
                .get_or_run(&self.runner, *kind, policy, sharing);
        }
        let key = (instances.to_vec(), policy, sharing.label());
        if let Some(hit) = self.memo.lock().expect("figure memo poisoned").get(&key) {
            return Ok(Arc::clone(hit));
        }
        let run = Arc::new(self.runner.run(instances, policy, sharing)?);
        self.memo
            .lock()
            .expect("figure memo poisoned")
            .insert(key, Arc::clone(&run));
        Ok(run)
    }

    /// Simulates every not-yet-cached cell of `cells` in one parallel
    /// [`ExperimentRunner::run_cells`] batch, filling the memo tables.
    /// Subsequent [`FigureContext::run`] calls on these cells are cache
    /// hits, so figure regeneration after a prefetch does no simulation.
    ///
    /// Duplicate cells in `cells` are collapsed before submission.
    ///
    /// # Errors
    ///
    /// Propagates the first engine configuration/placement error.
    pub fn prefetch(
        &self,
        cells: &[(Vec<WorkloadKind>, SchedulingPolicy, SharingDegree)],
    ) -> Result<(), SimError> {
        let mut pending: Vec<&(Vec<WorkloadKind>, SchedulingPolicy, SharingDegree)> = Vec::new();
        let mut submitted: HashMap<Key, ()> = HashMap::new();
        for cell in cells {
            let (instances, policy, sharing) = cell;
            let key = (instances.clone(), *policy, sharing.label());
            if submitted.contains_key(&key) {
                continue;
            }
            let cached = if let [kind] = instances.as_slice() {
                self.baselines
                    .get(&self.baseline_key(*kind, *policy, &sharing.label()))
                    .is_some()
            } else {
                self.memo
                    .lock()
                    .expect("figure memo poisoned")
                    .contains_key(&key)
            };
            if cached {
                continue;
            }
            submitted.insert(key, ());
            pending.push(cell);
        }
        if pending.is_empty() {
            return Ok(());
        }
        let batch: Vec<ExperimentCell> = pending
            .iter()
            .map(|(instances, policy, sharing)| {
                ExperimentCell::of_kinds(instances, *policy, *sharing)
            })
            .collect();
        let runs = self.runner.run_cells(&batch)?;
        for ((instances, policy, sharing), run) in pending.into_iter().zip(runs) {
            let run = Arc::new(run);
            if let [kind] = instances.as_slice() {
                self.baselines
                    .insert(self.baseline_key(*kind, *policy, &sharing.label()), run);
            } else {
                self.memo
                    .lock()
                    .expect("figure memo poisoned")
                    .insert((instances.clone(), *policy, sharing.label()), run);
            }
        }
        Ok(())
    }

    /// The paper's normalization baseline: the workload alone on the fully
    /// shared 16 MB LLC.
    ///
    /// # Errors
    ///
    /// Propagates engine configuration/placement errors.
    pub fn baseline(&self, kind: WorkloadKind) -> Result<Arc<MixRun>, SimError> {
        self.run(
            &[kind],
            SchedulingPolicy::Affinity,
            SharingDegree::FullyShared,
        )
    }

    /// Number of memoized cells, baselines included (for tests).
    pub fn cached_cells(&self) -> usize {
        self.memo.lock().expect("figure memo poisoned").len() + self.baselines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_options() -> RunOptions {
        RunOptions {
            refs_per_vm: 500,
            warmup_refs_per_vm: 100,
            seeds: vec![1],
            track_footprint: false,
            prewarm_llc: false,
        }
    }

    #[test]
    fn memoizes_identical_cells() {
        let ctx = FigureContext::new(tiny_options());
        let a = ctx
            .run(
                &[WorkloadKind::TpcH],
                SchedulingPolicy::Affinity,
                SharingDegree::SharedBy(4),
            )
            .unwrap();
        assert_eq!(ctx.cached_cells(), 1);
        let b = ctx
            .run(
                &[WorkloadKind::TpcH],
                SchedulingPolicy::Affinity,
                SharingDegree::SharedBy(4),
            )
            .unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(ctx.cached_cells(), 1);
        // A different cell is a different run.
        ctx.run(
            &[WorkloadKind::TpcH],
            SchedulingPolicy::RoundRobin,
            SharingDegree::SharedBy(4),
        )
        .unwrap();
        assert_eq!(ctx.cached_cells(), 2);
    }

    #[test]
    fn baselines_shared_across_contexts() {
        let baselines = Arc::new(BaselineCache::new());
        let a_ctx = FigureContext::with_baselines(tiny_options(), Arc::clone(&baselines));
        let b_ctx = FigureContext::with_baselines(tiny_options(), Arc::clone(&baselines));
        let a = a_ctx.baseline(WorkloadKind::TpcH).unwrap();
        let b = b_ctx.baseline(WorkloadKind::TpcH).unwrap();
        assert!(Arc::ptr_eq(&a, &b), "baseline must be simulated once");
        assert_eq!(baselines.len(), 1);

        // Different options must not alias.
        let mut other = tiny_options();
        other.refs_per_vm = 600;
        let c_ctx = FigureContext::with_baselines(other, Arc::clone(&baselines));
        let c = c_ctx.baseline(WorkloadKind::TpcH).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(baselines.len(), 2);
    }

    #[test]
    fn prefetch_fills_both_caches_and_matches_serial() {
        let cells = vec![
            (
                vec![WorkloadKind::TpcH],
                SchedulingPolicy::Affinity,
                SharingDegree::FullyShared,
            ),
            (
                vec![WorkloadKind::TpcH; 4],
                SchedulingPolicy::RoundRobin,
                SharingDegree::SharedBy(4),
            ),
            // Duplicate collapses.
            (
                vec![WorkloadKind::TpcH; 4],
                SchedulingPolicy::RoundRobin,
                SharingDegree::SharedBy(4),
            ),
        ];
        let ctx = FigureContext::new(tiny_options());
        ctx.prefetch(&cells).unwrap();
        assert_eq!(ctx.cached_cells(), 2);

        // Prefetched results are identical to serially computed ones.
        let serial_ctx = FigureContext::new(tiny_options());
        let warm = ctx
            .run(
                &cells[1].0,
                SchedulingPolicy::RoundRobin,
                SharingDegree::SharedBy(4),
            )
            .unwrap();
        let cold = serial_ctx
            .run(
                &cells[1].0,
                SchedulingPolicy::RoundRobin,
                SharingDegree::SharedBy(4),
            )
            .unwrap();
        for (w, c) in warm.vms.iter().zip(cold.vms.iter()) {
            assert_eq!(
                w.runtime_cycles.mean.to_bits(),
                c.runtime_cycles.mean.to_bits()
            );
            assert_eq!(w.miss_latency.mean.to_bits(), c.miss_latency.mean.to_bits());
        }

        // A second prefetch of the same list is a no-op.
        ctx.prefetch(&cells).unwrap();
        assert_eq!(ctx.cached_cells(), 2);
    }

    #[test]
    fn context_is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<FigureContext>();
        assert_sync::<BaselineCache>();
    }
}
