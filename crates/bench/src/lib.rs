//! Benchmark and figure-regeneration harness for the `consim` workspace.
//!
//! Every table and figure in the paper's evaluation section has a
//! regenerator here:
//!
//! | Exhibit | Function | Bench target |
//! |---|---|---|
//! | Table II | [`figures::table2`] | `table2` |
//! | Table IV | [`figures::table4`] | `table4` |
//! | Fig. 2 | [`figures::fig02_isolated_performance`] | `fig02_isolated_perf` |
//! | Fig. 3 | [`figures::fig03_isolated_missrate`] | `fig03_isolated_missrate` |
//! | Fig. 4 | [`figures::fig04_isolated_misslatency`] | `fig04_isolated_misslat` |
//! | Fig. 5 | [`figures::fig05_homogeneous_performance`] | `fig05_homog_perf` |
//! | Fig. 6 | [`figures::fig06_homogeneous_misslatency`] | `fig06_homog_misslat` |
//! | Fig. 7 | [`figures::fig07_homogeneous_missrate`] | `fig07_homog_missrate` |
//! | Fig. 8 | [`figures::fig08_heterogeneous_performance`] | `fig08_hetero_perf` |
//! | Fig. 9 | [`figures::fig09_heterogeneous_missrate`] | `fig09_hetero_missrate` |
//! | Fig. 10 | [`figures::fig10_heterogeneous_misslatency`] | `fig10_hetero_misslat` |
//! | Fig. 11 | [`figures::fig11_sharing_degree`] | `fig11_sharing_degree` |
//! | Fig. 12 | [`figures::fig12_replication`] | `fig12_replication` |
//! | Fig. 13 | [`figures::fig13_occupancy`] | `fig13_occupancy` |
//!
//! Extensions and ablations (paper §VII future work and DESIGN.md
//! design-choice callouts):
//!
//! | Experiment | Bench target |
//! |---|---|
//! | 32-core consolidation | `ext_scaling` |
//! | Asymmetric thread counts | `ext_thread_counts` |
//! | Dynamic rescheduling | `ext_dynamic_sched` |
//! | LLC replacement ablation | `ablation_replacement` |
//! | Memory-bandwidth ablation | `ablation_memory` |
//!
//! Each bench target prints the figure's rows/series as a plain-text table;
//! run-length and seed count are tunable with `CONSIM_REFS`,
//! `CONSIM_WARMUP`, and `CONSIM_SEEDS`; worker-pool width with
//! `CONSIM_THREADS`. `cargo bench -p consim-bench` runs everything;
//! dependency-free timing micro-benchmarks of the substrates live in the
//! `micro` target. Helper binaries: `run_all` (every exhibit in one
//! process, batch-prefetched across the worker pool with cross-figure
//! memoization), `calibrate` (Table II calibration check), `sweep`
//! (profile-knob search, one parallel batch per workload), `diagnose`
//! (latency-composition debugging), `throughput` (engine refs/sec probe).

pub mod cli;
pub mod context;
pub mod figures;

pub use cli::{BenchFlags, TraceSession};
pub use context::{BaselineCache, FigureContext};
