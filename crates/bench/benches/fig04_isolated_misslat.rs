//! Regenerates the paper's Fig. 4 (see consim_bench::figures).

use consim_bench::{figures, FigureContext};

fn main() {
    let ctx = FigureContext::for_figures();
    let table = figures::fig04_isolated_misslatency(&ctx).expect("figure regeneration failed");
    println!("{table}");
}
