//! Criterion micro-benchmarks of the simulator substrates: cache lookups,
//! NoC traversal (both models), directory transitions, workload generation,
//! and full-engine reference throughput.

use consim::engine::SimulationConfig;
use consim::Simulation;
use consim_cache::{LineState, ReplacementPolicy, SetAssocCache};
use consim_coherence::{AccessKind, Directory};
use consim_noc::{ContentionModel, Mesh, Network, NocConfig, Packet};
use consim_sched::SchedulingPolicy;
use consim_types::config::{MachineConfig, SharingDegree};
use consim_types::{BlockAddr, CacheGeometry, CoreId, Cycle, NodeId, SimRng, ThreadId, VmId};
use consim_workload::{WorkloadGenerator, WorkloadKind};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));
    let geom = CacheGeometry::new(1 << 20, 16, 6).unwrap();

    group.bench_function("access_hit", |b| {
        let mut cache = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        cache.insert(BlockAddr::new(42), LineState::Shared);
        b.iter(|| black_box(cache.access(BlockAddr::new(42))));
    });
    group.bench_function("insert_evict", |b| {
        let mut cache = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            black_box(cache.insert(BlockAddr::new(n), LineState::Shared))
        });
    });
    group.finish();
}

fn bench_noc(c: &mut Criterion) {
    let mut group = c.benchmark_group("noc");
    group.throughput(Throughput::Elements(1));
    let mesh = Mesh::new(4, 4).unwrap();

    group.bench_function("contention_send", |b| {
        let mut noc = ContentionModel::new(mesh, 1, 3);
        let mut t = 0u64;
        b.iter(|| {
            t += 10;
            black_box(noc.send(
                &Packet::data(NodeId::new(0), NodeId::new(15)),
                Cycle::new(t),
            ))
        });
    });
    group.bench_function("flit_packet_drain", |b| {
        b.iter(|| {
            let mut net = Network::new(mesh, NocConfig::default());
            net.inject(Packet::data(NodeId::new(0), NodeId::new(15)));
            black_box(net.run_until_idle(1_000).unwrap())
        });
    });
    group.finish();
}

fn bench_directory(c: &mut Criterion) {
    let mut group = c.benchmark_group("coherence");
    group.throughput(Throughput::Elements(1));
    group.bench_function("directory_read_write_mix", |b| {
        let mut dir = Directory::new(16);
        let mut n = 0u64;
        b.iter(|| {
            n += 1;
            let core = CoreId::new((n % 16) as usize);
            let block = BlockAddr::new(n % 512);
            let kind = if n.is_multiple_of(3) {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            if dir.owner_of(block) == Some(core)
                || (kind == AccessKind::Read && dir.sharers_of(block).contains(core))
            {
                return;
            }
            let kind = if kind == AccessKind::Write && dir.sharers_of(block).contains(core) {
                AccessKind::Upgrade
            } else {
                kind
            };
            black_box(dir.handle(core, block, kind));
        });
    });
    group.finish();
}

fn bench_workload(c: &mut Criterion) {
    let mut group = c.benchmark_group("workload");
    group.throughput(Throughput::Elements(1));
    for kind in [WorkloadKind::TpcH, WorkloadKind::SpecJbb] {
        group.bench_function(format!("next_ref_{kind}"), |b| {
            let mut g =
                WorkloadGenerator::new(VmId::new(0), &kind.profile(), &SimRng::from_seed(1));
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                black_box(g.next_ref(ThreadId::new(i % 4)))
            });
        });
    }
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine");
    group.sample_size(10);
    let refs = 20_000u64;
    group.throughput(Throughput::Elements(refs * 4));
    group.bench_function("mix5_shared4_affinity", |b| {
        b.iter(|| {
            let mut builder = SimulationConfig::builder();
            builder
                .machine(MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4)))
                .policy(SchedulingPolicy::Affinity)
                .refs_per_vm(refs)
                .warmup_refs_per_vm(0)
                .seed(1);
            for kind in [
                WorkloadKind::SpecJbb,
                WorkloadKind::SpecJbb,
                WorkloadKind::TpcH,
                WorkloadKind::TpcH,
            ] {
                builder.workload(kind.profile());
            }
            let sim = Simulation::new(builder.build().unwrap()).unwrap();
            black_box(sim.run().unwrap())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_cache,
    bench_noc,
    bench_directory,
    bench_workload,
    bench_engine
);
criterion_main!(benches);
