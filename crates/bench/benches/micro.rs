//! Micro-benchmarks of the simulator substrates: cache lookups, NoC
//! traversal (both models), directory transitions, workload generation, and
//! full-engine reference throughput.
//!
//! Self-contained timing harness (no external benchmarking crate): each
//! benchmark warms up briefly, then runs a fixed number of timed batches and
//! reports ns/op plus ops/sec. For the perf trajectory over PRs, prefer the
//! `throughput` binary, which emits machine-readable `BENCH_engine.json`.

use consim::engine::SimulationConfig;
use consim::Simulation;
use consim_cache::{LineState, ReplacementPolicy, SetAssocCache};
use consim_coherence::{AccessKind, Directory};
use consim_noc::{ContentionModel, Mesh, Network, NocConfig, Packet};
use consim_sched::SchedulingPolicy;
use consim_types::config::{MachineConfig, SharingDegree};
use consim_types::{BlockAddr, CacheGeometry, CoreId, Cycle, NodeId, SimRng, ThreadId, VmId};
use consim_workload::{WorkloadGenerator, WorkloadKind};
use std::hint::black_box;
use std::time::Instant;

/// Times `iters` calls of `op`, after `iters / 10` warmup calls, and prints
/// one result line. `elements` is how many logical elements one call covers.
fn bench(name: &str, iters: u64, elements: u64, mut op: impl FnMut()) {
    for _ in 0..iters / 10 {
        op();
    }
    let start = Instant::now();
    for _ in 0..iters {
        op();
    }
    let elapsed = start.elapsed();
    let total = (iters * elements).max(1);
    let ns_per = elapsed.as_nanos() as f64 / total as f64;
    let per_sec = total as f64 / elapsed.as_secs_f64();
    println!("{name:<32} {ns_per:>10.1} ns/elem {per_sec:>14.0} elem/s");
}

fn bench_cache() {
    let geom = CacheGeometry::new(1 << 20, 16, 6).unwrap();

    let mut cache = SetAssocCache::new(geom, ReplacementPolicy::Lru);
    cache.insert(BlockAddr::new(42), LineState::Shared);
    bench("cache/access_hit", 2_000_000, 1, || {
        black_box(cache.access(BlockAddr::new(42)));
    });

    let mut cache = SetAssocCache::new(geom, ReplacementPolicy::Lru);
    let mut n = 0u64;
    bench("cache/insert_evict", 2_000_000, 1, || {
        n += 1;
        black_box(cache.insert(BlockAddr::new(n), LineState::Shared));
    });
}

fn bench_noc() {
    let mesh = Mesh::new(4, 4).unwrap();

    let mut noc = ContentionModel::new(mesh, 1, 3);
    let mut t = 0u64;
    bench("noc/contention_send", 1_000_000, 1, || {
        t += 10;
        black_box(noc.send(
            &Packet::data(NodeId::new(0), NodeId::new(15)),
            Cycle::new(t),
        ));
    });

    bench("noc/flit_packet_drain", 20_000, 1, || {
        let mut net = Network::new(mesh, NocConfig::default());
        net.inject(Packet::data(NodeId::new(0), NodeId::new(15)));
        black_box(net.run_until_idle(1_000).unwrap());
    });
}

fn bench_directory() {
    let mut dir = Directory::new(16);
    let mut n = 0u64;
    bench("coherence/dir_read_write_mix", 2_000_000, 1, || {
        n += 1;
        let core = CoreId::new((n % 16) as usize);
        let block = BlockAddr::new(n % 512);
        let kind = if n.is_multiple_of(3) {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        if dir.owner_of(block) == Some(core)
            || (kind == AccessKind::Read && dir.sharers_of(block).contains(core))
        {
            return;
        }
        let kind = if kind == AccessKind::Write && dir.sharers_of(block).contains(core) {
            AccessKind::Upgrade
        } else {
            kind
        };
        black_box(dir.handle(core, block, kind));
    });
}

fn bench_workload() {
    for kind in [WorkloadKind::TpcH, WorkloadKind::SpecJbb] {
        let mut g = WorkloadGenerator::new(VmId::new(0), &kind.profile(), &SimRng::from_seed(1));
        let mut i = 0usize;
        bench(&format!("workload/next_ref_{kind}"), 1_000_000, 1, || {
            i += 1;
            black_box(g.next_ref(ThreadId::new(i % 4)));
        });
    }
}

fn bench_engine() {
    let refs = 20_000u64;
    bench("engine/mix4_shared4_affinity", 10, refs * 4, || {
        let mut builder = SimulationConfig::builder();
        builder
            .machine(MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4)))
            .policy(SchedulingPolicy::Affinity)
            .refs_per_vm(refs)
            .warmup_refs_per_vm(0)
            .seed(1);
        for kind in [
            WorkloadKind::SpecJbb,
            WorkloadKind::SpecJbb,
            WorkloadKind::TpcH,
            WorkloadKind::TpcH,
        ] {
            builder.workload(kind.profile());
        }
        let sim = Simulation::new(builder.build().unwrap()).unwrap();
        black_box(sim.run().unwrap());
    });
}

fn main() {
    bench_cache();
    bench_noc();
    bench_directory();
    bench_workload();
    bench_engine();
}
