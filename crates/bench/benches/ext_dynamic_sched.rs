//! Extension (paper §VII future work): dynamic schedulers.
//!
//! "We would like to study the effects of schedulers dynamically adjusting
//! assignments, in response to context-switches and changing demands."
//!
//! This experiment runs the homogeneous SPECjbb mix under random placement
//! that is *re-drawn* at decreasing intervals — the over-committed-VMM
//! drift the paper's random policy approximates — and reports how migration
//! churn erodes performance as threads repeatedly abandon warm caches.

use consim::engine::SimulationConfig;
use consim::report::TextTable;
use consim::Simulation;
use consim_sched::SchedulingPolicy;
use consim_types::config::{MachineConfig, SharingDegree};
use consim_workload::WorkloadKind;

fn main() {
    let refs: u64 = std::env::var("CONSIM_REFS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60_000);
    let warmup: u64 = std::env::var("CONSIM_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);

    let mut table = TextTable::new(
        "Extension: dynamic random rescheduling (Mix C, shared-4-way)",
        &["runtime (Mcy)", "miss rate %", "miss lat (cy)", "l1 hit %"],
    );
    for (label, interval) in [
        ("static", None),
        ("every 1M cy", Some(1_000_000u64)),
        ("every 300K cy", Some(300_000)),
        ("every 100K cy", Some(100_000)),
    ] {
        let mut b = SimulationConfig::builder();
        b.machine(MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4)))
            .policy(SchedulingPolicy::Random)
            .refs_per_vm(refs)
            .warmup_refs_per_vm(warmup)
            .seed(1);
        if let Some(i) = interval {
            b.reschedule_every(i);
        }
        for _ in 0..4 {
            b.workload(WorkloadKind::SpecJbb.profile());
        }
        let out = Simulation::new(b.build().expect("valid"))
            .expect("machine")
            .run()
            .expect("run");
        let n = out.vm_metrics.len() as f64;
        let runtime = out
            .vm_metrics
            .iter()
            .map(|m| m.runtime_cycles() as f64)
            .sum::<f64>()
            / n
            / 1e6;
        let missrate = out
            .vm_metrics
            .iter()
            .map(|m| m.llc_miss_rate())
            .sum::<f64>()
            / n
            * 100.0;
        let misslat = out
            .vm_metrics
            .iter()
            .map(|m| m.mean_miss_latency())
            .sum::<f64>()
            / n;
        let l1hit = out
            .vm_metrics
            .iter()
            .map(|m| (m.l0_hits + m.l1_hits) as f64 / m.refs as f64)
            .sum::<f64>()
            / n
            * 100.0;
        table.row(label, &[runtime, missrate, misslat, l1hit]);
    }
    println!("{table}");
    println!(
        "Expected shape: migration churn lowers private-cache hit rates and\n\
         raises runtime monotonically as the rescheduling interval shrinks."
    );
}
