//! Regenerates the paper's Table II (see consim_bench::figures).

use consim_bench::{figures, FigureContext};

fn main() {
    let ctx = FigureContext::for_figures();
    let table = figures::table2(&ctx).expect("figure regeneration failed");
    println!("{table}");
}
