//! Regenerates the paper's Fig. 13 (see consim_bench::figures).

use consim_bench::{figures, FigureContext};

fn main() {
    let ctx = FigureContext::for_figures();
    let table = figures::fig13_occupancy(&ctx).expect("figure regeneration failed");
    println!("{table}");
}
