//! Extension (paper §VII future work): higher degrees of consolidation.
//!
//! "Studying higher degrees of consolidation, either by increasing the
//! number of threads in a workload or increasing the number of workloads
//! running, would allow researchers to accurately forecast behavior even
//! further into the future."
//!
//! This experiment doubles the machine to 32 cores (8x4 mesh, 32 MB LLC,
//! 8 memory controllers) and consolidates eight 4-thread workload instances
//! (two of each kind), reporting each workload's slowdown relative to its
//! isolation baseline on the same machine — directly comparable to the
//! 16-core, 4-instance numbers of the main figures.

use consim::report::TextTable;
use consim_job::runner::{ExperimentRunner, RunOptions};
use consim_sched::SchedulingPolicy;
use consim_types::config::{CacheGeometry, MachineConfig, MachineConfigBuilder, SharingDegree};
use consim_workload::WorkloadKind;

fn machine_32() -> MachineConfig {
    MachineConfigBuilder::new()
        .num_cores(32)
        .mesh_width(8)
        .llc(CacheGeometry::new(32 * 1024 * 1024, 16, 6).expect("valid LLC"))
        .num_memory_controllers(8)
        .sharing(SharingDegree::SharedBy(4))
        .build()
        .expect("valid 32-core machine")
}

fn main() {
    let options = RunOptions {
        refs_per_vm: 60_000,
        warmup_refs_per_vm: 200_000,
        seeds: vec![1],
        track_footprint: false,
        prewarm_llc: false,
    }
    .from_env();
    let runner = ExperimentRunner::with_machine(machine_32(), options);

    // Two instances of each paper workload: 8 VMs x 4 threads = 32 cores.
    let mut instances = Vec::new();
    for kind in WorkloadKind::PAPER_SET {
        instances.push(kind);
        instances.push(kind);
    }

    let mut table = TextTable::new(
        "Extension: 8-workload consolidation on a 32-core CMP (affinity, shared-4)",
        &["slowdown vs isolation", "miss rate %", "miss lat (cy)"],
    );
    let run = runner
        .run(
            &instances,
            SchedulingPolicy::Affinity,
            SharingDegree::SharedBy(4),
        )
        .expect("consolidated run");
    for kind in WorkloadKind::PAPER_SET {
        let base = runner
            .isolated(kind, SchedulingPolicy::Affinity, SharingDegree::FullyShared)
            .expect("baseline")
            .vms[0]
            .runtime_cycles
            .mean;
        let slowdown = run.mean_over_kind(kind, |v| v.runtime_cycles.mean) / base;
        let missrate = run.mean_over_kind(kind, |v| v.llc_miss_rate.mean) * 100.0;
        let misslat = run.mean_over_kind(kind, |v| v.miss_latency.mean);
        table.row(kind.name(), &[slowdown, missrate, misslat]);
    }
    println!("{table}");
    println!(
        "Shape check: the 16-core ordering must persist at 32 cores —\n\
         TPC-H least affected, TPC-W / SPECjbb most."
    );
}
