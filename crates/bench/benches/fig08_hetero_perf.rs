//! Regenerates the paper's Fig. 8 (see consim_bench::figures).

use consim_bench::{figures, FigureContext};

fn main() {
    let ctx = FigureContext::for_figures();
    let table = figures::fig08_heterogeneous_performance(&ctx).expect("figure regeneration failed");
    println!("{table}");
}
