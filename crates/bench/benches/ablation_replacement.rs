//! Ablation: does the characterization depend on true-LRU bookkeeping?
//!
//! DESIGN.md calls out vanilla LRU as a design choice inherited from the
//! paper ("with a vanilla-LRU block replacement policy, there are no
//! guarantees on any core's allocation"). This ablation reruns a
//! representative cell — Mix 5 on shared-4-way caches, affinity — with
//! tree-PLRU and random replacement in the LLC banks, to show the trends
//! are not an artifact of the replacement policy.

use consim::engine::SimulationConfig;
use consim::report::TextTable;
use consim::Simulation;
use consim_cache::ReplacementPolicy;
use consim_sched::SchedulingPolicy;
use consim_types::config::{MachineConfig, SharingDegree};
use consim_workload::WorkloadKind;

fn main() {
    let refs: u64 = std::env::var("CONSIM_REFS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60_000);
    let warmup: u64 = std::env::var("CONSIM_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);

    let mut table = TextTable::new(
        "Ablation: LLC replacement policy (Mix 5, affinity, shared-4-way)",
        &["miss rate %", "miss lat (cy)", "c2c %", "repl %"],
    );
    for (label, policy) in [
        ("lru", ReplacementPolicy::Lru),
        ("tree-plru", ReplacementPolicy::TreePlru),
        ("random", ReplacementPolicy::Random),
    ] {
        let mut b = SimulationConfig::builder();
        b.machine(MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4)))
            .policy(SchedulingPolicy::Affinity)
            .llc_replacement(policy)
            .refs_per_vm(refs)
            .warmup_refs_per_vm(warmup)
            .seed(1);
        for kind in [
            WorkloadKind::SpecJbb,
            WorkloadKind::SpecJbb,
            WorkloadKind::TpcH,
            WorkloadKind::TpcH,
        ] {
            b.workload(kind.profile());
        }
        let out = Simulation::new(b.build().expect("valid"))
            .expect("machine")
            .run()
            .expect("run");
        let n = out.vm_metrics.len() as f64;
        let missrate = out
            .vm_metrics
            .iter()
            .map(|m| m.llc_miss_rate())
            .sum::<f64>()
            / n
            * 100.0;
        let misslat = out
            .vm_metrics
            .iter()
            .map(|m| m.mean_miss_latency())
            .sum::<f64>()
            / n;
        let c2c = out.vm_metrics.iter().map(|m| m.c2c_fraction()).sum::<f64>() / n * 100.0;
        table.row(
            label,
            &[
                missrate,
                misslat,
                c2c,
                out.replication.replicated_fraction() * 100.0,
            ],
        );
    }
    println!("{table}");
}
