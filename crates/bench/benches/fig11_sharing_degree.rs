//! Regenerates the paper's Fig. 11 (see consim_bench::figures).

use consim_bench::{figures, FigureContext};

fn main() {
    let ctx = FigureContext::for_figures();
    let table = figures::fig11_sharing_degree(&ctx).expect("figure regeneration failed");
    println!("{table}");
}
