//! Regenerates the paper's Fig. 2 (see consim_bench::figures).

use consim_bench::{figures, FigureContext};

fn main() {
    let ctx = FigureContext::for_figures();
    let table = figures::fig02_isolated_performance(&ctx).expect("figure regeneration failed");
    println!("{table}");
}
