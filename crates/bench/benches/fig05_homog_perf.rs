//! Regenerates the paper's Fig. 5 (see consim_bench::figures).

use consim_bench::{figures, FigureContext};

fn main() {
    let ctx = FigureContext::for_figures();
    let table = figures::fig05_homogeneous_performance(&ctx).expect("figure regeneration failed");
    println!("{table}");
}
