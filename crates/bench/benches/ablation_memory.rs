//! Ablation: sensitivity to memory-controller bandwidth.
//!
//! The paper's machine fixes memory latency at 150 cycles; consolidation
//! interference through the memory controllers depends on how long each
//! access occupies a controller. This ablation sweeps that occupancy for
//! Mix 1 (3x TPC-W + TPC-H) to show which conclusions depend on it:
//! TPC-H's relative isolation should hold across the sweep, while absolute
//! miss latencies scale with the contention.

use consim::engine::SimulationConfig;
use consim::report::TextTable;
use consim::Simulation;
use consim_sched::SchedulingPolicy;
use consim_types::config::{MachineConfigBuilder, SharingDegree};
use consim_workload::WorkloadKind;

fn main() {
    let refs: u64 = std::env::var("CONSIM_REFS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(60_000);
    let warmup: u64 = std::env::var("CONSIM_WARMUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);

    let mut table = TextTable::new(
        "Ablation: memory-controller occupancy (Mix 1, affinity, shared-4-way)",
        &[
            "TPC-W lat (cy)",
            "TPC-H lat (cy)",
            "TPC-W runtime (Mcy)",
            "TPC-H runtime (Mcy)",
        ],
    );
    for occupancy in [1u64, 15, 30, 60] {
        let machine = MachineConfigBuilder::new()
            .sharing(SharingDegree::SharedBy(4))
            .memory_occupancy(occupancy)
            .build()
            .expect("valid machine");
        let mut b = SimulationConfig::builder();
        b.machine(machine)
            .policy(SchedulingPolicy::Affinity)
            .refs_per_vm(refs)
            .warmup_refs_per_vm(warmup)
            .seed(1);
        for kind in [
            WorkloadKind::TpcW,
            WorkloadKind::TpcW,
            WorkloadKind::TpcW,
            WorkloadKind::TpcH,
        ] {
            b.workload(kind.profile());
        }
        let out = Simulation::new(b.build().expect("valid"))
            .expect("machine")
            .run()
            .expect("run");
        let w_lat = out.vm_metrics[..3]
            .iter()
            .map(|m| m.mean_miss_latency())
            .sum::<f64>()
            / 3.0;
        let h_lat = out.vm_metrics[3].mean_miss_latency();
        let w_rt = out.vm_metrics[..3]
            .iter()
            .map(|m| m.runtime_cycles() as f64)
            .sum::<f64>()
            / 3.0
            / 1e6;
        let h_rt = out.vm_metrics[3].runtime_cycles() as f64 / 1e6;
        table.row(
            format!("occupancy {occupancy}"),
            &[w_lat, h_lat, w_rt, h_rt],
        );
    }
    println!("{table}");
}
