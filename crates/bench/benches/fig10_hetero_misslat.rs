//! Regenerates the paper's Fig. 10 (see consim_bench::figures).

use consim_bench::{figures, FigureContext};

fn main() {
    let ctx = FigureContext::for_figures();
    let table = figures::fig10_heterogeneous_misslatency(&ctx).expect("figure regeneration failed");
    println!("{table}");
}
