//! Regenerates the paper's Fig. 7 (see consim_bench::figures).

use consim_bench::{figures, FigureContext};

fn main() {
    let ctx = FigureContext::for_figures();
    let table = figures::fig07_homogeneous_missrate(&ctx).expect("figure regeneration failed");
    println!("{table}");
}
