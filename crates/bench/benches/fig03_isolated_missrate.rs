//! Regenerates the paper's Fig. 3 (see consim_bench::figures).

use consim_bench::{figures, FigureContext};

fn main() {
    let ctx = FigureContext::for_figures();
    let table = figures::fig03_isolated_missrate(&ctx).expect("figure regeneration failed");
    println!("{table}");
}
