//! Regenerates the paper's Table IV (the experimental mix definitions).

use consim_bench::figures;

fn main() {
    println!("{}", figures::table4());
}
