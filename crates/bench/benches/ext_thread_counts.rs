//! Extension (paper §VII future work): consolidating workloads with
//! *different* thread counts.
//!
//! "Additionally, we study workloads with the same number of threads (but
//! different working set sizes); consolidating workloads with different
//! numbers of threads is also worth evaluating."
//!
//! This experiment fills the 16-core machine with an asymmetric mix — an
//! 8-thread TPC-W, a 6-thread SPECjbb, and a 2-thread TPC-H — and compares
//! each against its 4-thread isolation baseline, under both affinity and
//! round robin.

use consim::report::TextTable;
use consim_job::runner::{ExperimentRunner, RunOptions};
use consim_sched::SchedulingPolicy;
use consim_types::config::SharingDegree;
use consim_workload::{WorkloadKind, WorkloadProfile};

fn with_threads(kind: WorkloadKind, threads: usize) -> WorkloadProfile {
    let mut p = kind.profile();
    p.threads = threads;
    p.name = format!("{}x{threads}", p.name);
    p.validate().expect("rescaled profile stays valid");
    p
}

fn main() {
    let options = RunOptions {
        refs_per_vm: 60_000,
        warmup_refs_per_vm: 200_000,
        seeds: vec![1],
        track_footprint: false,
        prewarm_llc: false,
    }
    .from_env();
    let runner = ExperimentRunner::new(options);

    let profiles = vec![
        with_threads(WorkloadKind::TpcW, 8),
        with_threads(WorkloadKind::SpecJbb, 6),
        with_threads(WorkloadKind::TpcH, 2),
    ];

    let mut table = TextTable::new(
        "Extension: asymmetric thread counts (TPC-W x8 + SPECjbb x6 + TPC-H x2)",
        &["runtime (Mcy)", "miss rate %", "miss lat (cy)", "c2c %"],
    );
    for policy in [SchedulingPolicy::Affinity, SchedulingPolicy::RoundRobin] {
        let run = runner
            .run_profiles(&profiles, policy, SharingDegree::SharedBy(4))
            .expect("asymmetric run");
        for v in &run.vms {
            table.row(
                format!("{} {}", policy.label(), v.kind),
                &[
                    v.runtime_cycles.mean / 1e6,
                    v.llc_miss_rate.mean * 100.0,
                    v.miss_latency.mean,
                    v.c2c_fraction.mean * 100.0,
                ],
            );
        }
    }
    println!("{table}");
    println!(
        "Note: more threads spread a fixed per-VM reference quota across\n\
         more cores, so runtimes are not directly comparable across VMs —\n\
         the interesting columns are the per-VM miss rates and latencies."
    );
}
