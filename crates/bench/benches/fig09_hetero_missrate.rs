//! Regenerates the paper's Fig. 9 (see consim_bench::figures).

use consim_bench::{figures, FigureContext};

fn main() {
    let ctx = FigureContext::for_figures();
    let table = figures::fig09_heterogeneous_missrate(&ctx).expect("figure regeneration failed");
    println!("{table}");
}
