//! Regenerates the paper's Fig. 12 (see consim_bench::figures).

use consim_bench::{figures, FigureContext};

fn main() {
    let ctx = FigureContext::for_figures();
    let table = figures::fig12_replication(&ctx).expect("figure regeneration failed");
    println!("{table}");
}
