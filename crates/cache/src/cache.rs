//! A whole set-associative cache.

use crate::line::{CacheLine, LineState};
use crate::replacement::ReplacementPolicy;
use crate::set::CacheSet;
use crate::stats::CacheStats;
use consim_snap::{SectionBuf, SectionReader, Snapshot};
use consim_types::{BlockAddr, CacheGeometry, SimError};

/// A set-associative cache keyed by [`BlockAddr`].
///
/// Models every level of the paper's hierarchy: private L0s/L1s and LLC
/// banks of any sharing degree. Indexing uses the low bits of the block
/// address; tags are full block addresses (so lines of different VMs never
/// alias, matching the machine's physical tagging).
///
/// # Examples
///
/// ```
/// use consim_cache::{LineState, ReplacementPolicy, SetAssocCache};
/// use consim_types::{BlockAddr, CacheGeometry};
///
/// // The paper's 1 MB private LLC partition: 16-way, 6-cycle.
/// let geom = CacheGeometry::new(1 << 20, 16, 6)?;
/// let mut llc = SetAssocCache::new(geom, ReplacementPolicy::Lru);
/// llc.insert(BlockAddr::new(3), LineState::Exclusive);
/// assert!(llc.contains(BlockAddr::new(3)));
/// assert_eq!(llc.stats().insertions, 1);
/// # Ok::<(), consim_types::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    sets: Vec<CacheSet>,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry and policy.
    ///
    /// Random replacement draws from a stream seeded by the set index, so
    /// two identically-configured caches behave identically.
    pub fn new(geometry: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let num_sets = geometry.num_sets();
        let sets = (0..num_sets)
            .map(|i| CacheSet::new(policy, geometry.associativity, i as u64))
            .collect();
        Self {
            geometry,
            sets,
            stats: CacheStats::default(),
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.geometry.latency
    }

    /// The set index for a block.
    #[inline]
    fn set_index(&self, block: BlockAddr) -> usize {
        (block.raw() % self.sets.len() as u64) as usize
    }

    /// Looks up a block without modifying recency or statistics.
    pub fn probe(&self, block: BlockAddr) -> Option<LineState> {
        self.sets[self.set_index(block)].probe(block)
    }

    /// Whether the block is present.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.probe(block).is_some()
    }

    /// Performs a demand access: updates recency and hit/miss statistics.
    pub fn access(&mut self, block: BlockAddr) -> Option<LineState> {
        let idx = self.set_index(block);
        let result = self.sets[idx].access(block);
        if result.is_some() {
            self.stats.hits += 1;
        } else {
            self.stats.misses += 1;
        }
        result
    }

    /// Changes the state of a present block; returns `false` if absent.
    pub fn set_state(&mut self, block: BlockAddr, state: LineState) -> bool {
        let idx = self.set_index(block);
        self.sets[idx].set_state(block, state)
    }

    /// Fills a block, evicting a victim if the set is full.
    ///
    /// Returns the evicted line, if any (dirty victims need a writeback —
    /// the caller decides where it goes). Dirty evictions are also counted
    /// in [`CacheStats::dirty_evictions`].
    pub fn insert(&mut self, block: BlockAddr, state: LineState) -> Option<CacheLine> {
        let idx = self.set_index(block);
        let victim = self.sets[idx].insert(block, state);
        self.stats.insertions += 1;
        if let Some(v) = victim {
            self.stats.evictions += 1;
            if v.state.is_dirty() {
                self.stats.dirty_evictions += 1;
            }
        }
        victim
    }

    /// Fills a block, allocating only into the ways allowed by `mask`
    /// (bit `w` set means way `w` is allowed) — the way-partitioned
    /// counterpart of [`SetAssocCache::insert`]. Lookups and invalidations
    /// remain unrestricted; only allocation is confined.
    ///
    /// # Panics
    ///
    /// Panics if `mask` allows none of the set's ways.
    pub fn insert_in_ways(
        &mut self,
        block: BlockAddr,
        state: LineState,
        mask: u64,
    ) -> Option<CacheLine> {
        let idx = self.set_index(block);
        let victim = self.sets[idx].insert_in_ways(block, state, mask);
        self.stats.insertions += 1;
        if let Some(v) = victim {
            self.stats.evictions += 1;
            if v.state.is_dirty() {
                self.stats.dirty_evictions += 1;
            }
        }
        victim
    }

    /// Removes a block (coherence invalidation); returns the removed line.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<CacheLine> {
        let idx = self.set_index(block);
        let removed = self.sets[idx].invalidate(block);
        if removed.is_some() {
            self.stats.invalidations += 1;
        }
        removed
    }

    /// Iterates over every valid line (for snapshot metrics).
    pub fn lines(&self) -> impl Iterator<Item = &CacheLine> {
        self.sets.iter().flat_map(CacheSet::lines)
    }

    /// Number of valid lines currently stored.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(CacheSet::occupancy).sum()
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.geometry.num_lines()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (not contents) — used for post-warmup measurement.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

impl Snapshot for SetAssocCache {
    fn save(&self, w: &mut SectionBuf) {
        w.put_usize(self.sets.len());
        for set in &self.sets {
            set.save(w);
        }
        self.stats.save(w);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        r.expect_len(self.sets.len(), "cache sets")?;
        for set in self.sets.iter_mut() {
            set.restore(r)?;
        }
        self.stats.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: usize, sets: usize) -> SetAssocCache {
        let geom = CacheGeometry::new(ways * sets * 64, ways, 1).unwrap();
        SetAssocCache::new(geom, ReplacementPolicy::Lru)
    }

    #[test]
    fn geometry_derives_set_count() {
        let c = small_cache(4, 16);
        assert_eq!(c.capacity(), 64);
        assert_eq!(c.geometry().num_sets(), 16);
    }

    #[test]
    fn blocks_map_to_distinct_sets_by_low_bits() {
        let mut c = small_cache(1, 4); // direct-mapped, 4 sets
        for n in 0..4 {
            c.insert(BlockAddr::new(n), LineState::Shared);
        }
        assert_eq!(c.occupancy(), 4);
        // Block 4 conflicts with block 0.
        let victim = c.insert(BlockAddr::new(4), LineState::Shared).unwrap();
        assert_eq!(victim.block, BlockAddr::new(0));
    }

    #[test]
    fn access_counts_hits_and_misses() {
        let mut c = small_cache(2, 2);
        assert!(c.access(BlockAddr::new(5)).is_none());
        c.insert(BlockAddr::new(5), LineState::Exclusive);
        assert!(c.access(BlockAddr::new(5)).is_some());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dirty_eviction_counted() {
        let mut c = small_cache(1, 1);
        c.insert(BlockAddr::new(1), LineState::Modified);
        let victim = c.insert(BlockAddr::new(2), LineState::Shared).unwrap();
        assert!(victim.state.is_dirty());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn invalidate_counts_only_hits() {
        let mut c = small_cache(2, 2);
        c.insert(BlockAddr::new(1), LineState::Shared);
        assert!(c.invalidate(BlockAddr::new(1)).is_some());
        assert!(c.invalidate(BlockAddr::new(1)).is_none());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = small_cache(2, 4);
        for n in 0..100 {
            c.insert(BlockAddr::new(n), LineState::Shared);
            assert!(c.occupancy() <= c.capacity());
        }
        assert_eq!(c.occupancy(), c.capacity());
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut c = small_cache(2, 2);
        c.insert(BlockAddr::new(1), LineState::Shared);
        c.access(BlockAddr::new(1));
        c.reset_stats();
        assert_eq!(c.stats().hits, 0);
        assert!(c.contains(BlockAddr::new(1)));
    }

    #[test]
    fn lines_reports_all_valid_lines() {
        let mut c = small_cache(2, 2);
        c.insert(BlockAddr::new(1), LineState::Shared);
        c.insert(BlockAddr::new(2), LineState::Modified);
        assert_eq!(c.lines().count(), 2);
    }

    #[test]
    fn masked_insert_partitions_ways_per_caller() {
        let mut c = small_cache(4, 1);
        // Two "VMs" share the set, two ways each; a conflict must never
        // cross the partition boundary.
        c.insert_in_ways(BlockAddr::new(0), LineState::Shared, 0b0011);
        c.insert_in_ways(BlockAddr::new(1), LineState::Shared, 0b0011);
        c.insert_in_ways(BlockAddr::new(10), LineState::Shared, 0b1100);
        c.insert_in_ways(BlockAddr::new(11), LineState::Shared, 0b1100);
        assert_eq!(c.occupancy(), 4);
        let victim = c
            .insert_in_ways(BlockAddr::new(2), LineState::Shared, 0b0011)
            .unwrap();
        assert_eq!(victim.block, BlockAddr::new(0));
        assert!(c.contains(BlockAddr::new(10)) && c.contains(BlockAddr::new(11)));
        assert_eq!(c.stats().insertions, 5);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn snapshot_round_trip_preserves_contents_recency_and_stats() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Random,
        ] {
            let geom = CacheGeometry::new(4 * 4 * 64, 4, 1).unwrap();
            let mut c = SetAssocCache::new(geom, policy);
            for n in 0..40 {
                c.insert(BlockAddr::new(n * 3), LineState::Modified);
                c.access(BlockAddr::new(n));
            }
            let mut buf = SectionBuf::new();
            c.save(&mut buf);
            let mut back = SetAssocCache::new(geom, policy);
            back.restore(&mut SectionReader::new("caches", buf.as_bytes()))
                .unwrap();
            assert_eq!(back.stats(), c.stats(), "{policy:?}");
            // Same contents and same future behaviour (recency + RNG state).
            for n in 40..80 {
                let va = c.insert(BlockAddr::new(n), LineState::Shared);
                let vb = back.insert(BlockAddr::new(n), LineState::Shared);
                assert_eq!(va, vb, "{policy:?} insert {n}");
            }
        }
    }

    #[test]
    fn snapshot_restore_rejects_wrong_shape() {
        let geom = CacheGeometry::new(4 * 4 * 64, 4, 1).unwrap();
        let c = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        let mut buf = SectionBuf::new();
        c.save(&mut buf);
        let other_geom = CacheGeometry::new(4 * 8 * 64, 4, 1).unwrap();
        let mut other = SetAssocCache::new(other_geom, ReplacementPolicy::Lru);
        let err = other
            .restore(&mut SectionReader::new("caches", buf.as_bytes()))
            .unwrap_err();
        assert!(err.to_string().contains("cache sets"), "{err}");
        // Policy mismatch is also typed, not a panic.
        let mut plru = SetAssocCache::new(geom, ReplacementPolicy::TreePlru);
        let err = plru
            .restore(&mut SectionReader::new("caches", buf.as_bytes()))
            .unwrap_err();
        assert!(err.to_string().contains("policy"), "{err}");
    }

    #[test]
    fn probe_does_not_perturb_lru() {
        let mut c = small_cache(2, 1);
        c.insert(BlockAddr::new(1), LineState::Shared);
        c.insert(BlockAddr::new(2), LineState::Shared);
        // Probing 1 must NOT protect it.
        assert!(c.probe(BlockAddr::new(1)).is_some());
        let victim = c.insert(BlockAddr::new(3), LineState::Shared).unwrap();
        assert_eq!(victim.block, BlockAddr::new(1));
    }
}
