//! A whole set-associative cache, stored as flat struct-of-arrays planes.
//!
//! Storage is three contiguous per-cache planes indexed `set * ways + way`:
//! a `u64` tag plane, a `u8` state plane (0 encodes Invalid — the slot is
//! empty), and the replacement planes ([`ReplacementPlanes`]). A set probe
//! is a stride-limited scan over adjacent words instead of pointer-chasing
//! `Option<CacheLine>`, which is what the engine's hot path spends most of
//! its time doing. The per-set AoS formulation ([`crate::set::CacheSet`])
//! is retained as the executable specification; the differential tests in
//! `crates/cache/tests/soa_vs_aos.rs` pin this implementation to it
//! operation by operation.

use crate::line::{CacheLine, LineState};
use crate::replacement::{ReplacementPlanes, ReplacementPolicy};
use crate::stats::CacheStats;
use consim_snap::{SectionBuf, SectionReader, Snapshot};
use consim_types::{BlockAddr, CacheGeometry, SimError, SnapshotErrorKind};

/// Encodes a state for the state plane (Invalid = 0 marks an empty slot).
#[inline]
const fn encode(state: LineState) -> u8 {
    match state {
        LineState::Invalid => 0,
        LineState::Shared => 1,
        LineState::Exclusive => 2,
        LineState::Modified => 3,
    }
}

/// Decodes a state-plane byte known to be a valid encoding.
#[inline]
const fn decode(v: u8) -> LineState {
    match v {
        1 => LineState::Shared,
        2 => LineState::Exclusive,
        3 => LineState::Modified,
        _ => LineState::Invalid,
    }
}

/// A set-associative cache keyed by [`BlockAddr`].
///
/// Models every level of the paper's hierarchy: private L0s/L1s and LLC
/// banks of any sharing degree. Indexing uses the low bits of the block
/// address; tags are full block addresses (so lines of different VMs never
/// alias, matching the machine's physical tagging).
///
/// # Examples
///
/// ```
/// use consim_cache::{LineState, ReplacementPolicy, SetAssocCache};
/// use consim_types::{BlockAddr, CacheGeometry};
///
/// // The paper's 1 MB private LLC partition: 16-way, 6-cycle.
/// let geom = CacheGeometry::new(1 << 20, 16, 6)?;
/// let mut llc = SetAssocCache::new(geom, ReplacementPolicy::Lru);
/// llc.insert(BlockAddr::new(3), LineState::Exclusive);
/// assert!(llc.contains(BlockAddr::new(3)));
/// assert_eq!(llc.stats().insertions, 1);
/// # Ok::<(), consim_types::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    num_sets: usize,
    ways: usize,
    /// `Some(num_sets - 1)` when the set count is a power of two, so the
    /// index is a mask instead of a division.
    set_mask: Option<u64>,
    /// Tag plane: the block address cached in each slot. Slots whose state
    /// is Invalid keep their last tag (never read — guarded by the state).
    tags: Vec<u64>,
    /// State plane: 0 = Invalid/empty, 1 = Shared, 2 = Exclusive,
    /// 3 = Modified.
    states: Vec<u8>,
    repl: ReplacementPlanes,
    /// Valid-line count, maintained incrementally (O(1) `occupancy`).
    occupancy: usize,
    stats: CacheStats,
}

impl SetAssocCache {
    /// Creates an empty cache with the given geometry and policy.
    ///
    /// Random replacement draws from a stream seeded by the set index, so
    /// two identically-configured caches behave identically.
    pub fn new(geometry: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let num_sets = geometry.num_sets();
        let ways = geometry.associativity;
        let set_mask = num_sets.is_power_of_two().then_some(num_sets as u64 - 1);
        Self {
            geometry,
            num_sets,
            ways,
            set_mask,
            tags: vec![0; num_sets * ways],
            states: vec![0; num_sets * ways],
            repl: ReplacementPlanes::new(policy, num_sets, ways),
            occupancy: 0,
            stats: CacheStats::default(),
        }
    }

    /// The cache's geometry.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geometry
    }

    /// Access latency in cycles.
    pub fn latency(&self) -> u64 {
        self.geometry.latency
    }

    /// The set index for a block.
    #[inline]
    fn set_index(&self, block: BlockAddr) -> usize {
        match self.set_mask {
            Some(mask) => (block.raw() & mask) as usize,
            None => (block.raw() % self.num_sets as u64) as usize,
        }
    }

    /// Finds the way of `set` holding `block`, if any.
    #[inline]
    fn way_of(&self, set: usize, raw: u64) -> Option<usize> {
        let base = set * self.ways;
        let tags = &self.tags[base..base + self.ways];
        let states = &self.states[base..base + self.ways];
        (0..self.ways).find(|&w| states[w] != 0 && tags[w] == raw)
    }

    /// Looks up a block without modifying recency or statistics.
    #[inline]
    pub fn probe(&self, block: BlockAddr) -> Option<LineState> {
        let set = self.set_index(block);
        self.way_of(set, block.raw())
            .map(|w| decode(self.states[set * self.ways + w]))
    }

    /// Whether the block is present.
    #[inline]
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.probe(block).is_some()
    }

    /// Performs a demand access: updates recency and hit/miss statistics.
    #[inline]
    pub fn access(&mut self, block: BlockAddr) -> Option<LineState> {
        let set = self.set_index(block);
        match self.way_of(set, block.raw()) {
            Some(w) => {
                self.repl.touch(set, w, self.ways);
                self.stats.hits += 1;
                Some(decode(self.states[set * self.ways + w]))
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Changes the state of a present block; returns `false` if absent.
    pub fn set_state(&mut self, block: BlockAddr, state: LineState) -> bool {
        let set = self.set_index(block);
        match self.way_of(set, block.raw()) {
            Some(w) => {
                let idx = set * self.ways + w;
                if state.is_valid() {
                    self.states[idx] = encode(state);
                } else {
                    self.states[idx] = 0;
                    self.occupancy -= 1;
                }
                true
            }
            None => false,
        }
    }

    /// Fills a block, evicting a victim if the set is full.
    ///
    /// Returns the evicted line, if any (dirty victims need a writeback —
    /// the caller decides where it goes). Dirty evictions are also counted
    /// in [`CacheStats::dirty_evictions`].
    pub fn insert(&mut self, block: BlockAddr, state: LineState) -> Option<CacheLine> {
        self.insert_masked(block, state, u64::MAX, false)
    }

    /// Fills a block, allocating only into the ways allowed by `mask`
    /// (bit `w` set means way `w` is allowed) — the way-partitioned
    /// counterpart of [`SetAssocCache::insert`]. Lookups and invalidations
    /// remain unrestricted; only allocation is confined.
    ///
    /// # Panics
    ///
    /// Panics if `mask` allows none of the set's ways.
    pub fn insert_in_ways(
        &mut self,
        block: BlockAddr,
        state: LineState,
        mask: u64,
    ) -> Option<CacheLine> {
        self.insert_masked(block, state, mask, true)
    }

    /// Shared fill path. `masked` only affects which replacement entry
    /// point is used so the RNG draw sequence matches the per-set
    /// reference exactly (plain inserts draw `index(ways)`, masked ones
    /// `index(popcount)`).
    fn insert_masked(
        &mut self,
        block: BlockAddr,
        state: LineState,
        mask: u64,
        masked: bool,
    ) -> Option<CacheLine> {
        debug_assert!(state.is_valid(), "inserting an invalid line");
        let raw = block.raw();
        let set = self.set_index(block);
        let base = set * self.ways;
        self.stats.insertions += 1;
        if let Some(w) = self.way_of(set, raw) {
            // Present anywhere in the set (even outside the mask): update
            // in place, no eviction.
            self.states[base + w] = encode(state);
            self.repl.touch(set, w, self.ways);
            return None;
        }
        // Lowest allowed free way.
        if let Some(w) = (0..self.ways).find(|&w| mask >> w & 1 == 1 && self.states[base + w] == 0)
        {
            self.tags[base + w] = raw;
            self.states[base + w] = encode(state);
            self.repl.touch(set, w, self.ways);
            self.occupancy += 1;
            return None;
        }
        let w = if masked {
            self.repl.victim_in(set, mask, self.ways)
        } else {
            self.repl.victim(set, self.ways)
        };
        let victim = CacheLine::new(
            BlockAddr::new(self.tags[base + w]),
            decode(self.states[base + w]),
        );
        self.tags[base + w] = raw;
        self.states[base + w] = encode(state);
        self.repl.touch(set, w, self.ways);
        self.stats.evictions += 1;
        if victim.state.is_dirty() {
            self.stats.dirty_evictions += 1;
        }
        Some(victim)
    }

    /// Removes a block (coherence invalidation); returns the removed line.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<CacheLine> {
        let set = self.set_index(block);
        let w = self.way_of(set, block.raw())?;
        let idx = set * self.ways + w;
        let removed = CacheLine::new(block, decode(self.states[idx]));
        self.states[idx] = 0;
        self.occupancy -= 1;
        self.stats.invalidations += 1;
        Some(removed)
    }

    /// Iterates over every valid line (for snapshot metrics).
    pub fn lines(&self) -> impl Iterator<Item = CacheLine> + '_ {
        self.states
            .iter()
            .enumerate()
            .filter(|&(_, &s)| s != 0)
            .map(|(i, &s)| CacheLine::new(BlockAddr::new(self.tags[i]), decode(s)))
    }

    /// Number of valid lines currently stored.
    pub fn occupancy(&self) -> usize {
        self.occupancy
    }

    /// Total line capacity.
    pub fn capacity(&self) -> usize {
        self.geometry.num_lines()
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// Resets statistics (not contents) — used for post-warmup measurement.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

impl Snapshot for SetAssocCache {
    /// One pass over the flat planes — no per-set allocation, unlike the
    /// retired per-set format (snap format v2).
    fn save(&self, w: &mut SectionBuf) {
        w.put_usize(self.num_sets);
        w.put_u8(match self.repl.policy() {
            ReplacementPolicy::Lru => 0,
            ReplacementPolicy::TreePlru => 1,
            ReplacementPolicy::Random => 2,
        });
        w.put_u64_slice(&self.tags);
        w.put_u8_slice(&self.states);
        self.repl.save(w);
        self.stats.save(w);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        r.expect_len(self.num_sets, "cache sets")?;
        let tag = r.get_u8()?;
        let want = match self.repl.policy() {
            ReplacementPolicy::Lru => 0,
            ReplacementPolicy::TreePlru => 1,
            ReplacementPolicy::Random => 2,
        };
        if tag != want {
            return Err(SimError::snapshot(
                SnapshotErrorKind::Corrupt,
                format!("replacement-policy tag {tag} does not match configured policy"),
            ));
        }
        r.expect_len(self.tags.len(), "tag-plane entries")?;
        for t in self.tags.iter_mut() {
            *t = r.get_u64()?;
        }
        r.get_u8_slice_into(&mut self.states, "state-plane entries")?;
        if let Some(&bad) = self.states.iter().find(|&&s| s > 3) {
            return Err(SimError::snapshot(
                SnapshotErrorKind::Corrupt,
                format!("invalid line-state tag {bad}"),
            ));
        }
        self.repl.restore(r)?;
        self.stats.restore(r)?;
        self.occupancy = self.states.iter().filter(|&&s| s != 0).count();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: usize, sets: usize) -> SetAssocCache {
        let geom = CacheGeometry::new(ways * sets * 64, ways, 1).unwrap();
        SetAssocCache::new(geom, ReplacementPolicy::Lru)
    }

    #[test]
    fn geometry_derives_set_count() {
        let c = small_cache(4, 16);
        assert_eq!(c.capacity(), 64);
        assert_eq!(c.geometry().num_sets(), 16);
    }

    #[test]
    fn blocks_map_to_distinct_sets_by_low_bits() {
        let mut c = small_cache(1, 4); // direct-mapped, 4 sets
        for n in 0..4 {
            c.insert(BlockAddr::new(n), LineState::Shared);
        }
        assert_eq!(c.occupancy(), 4);
        // Block 4 conflicts with block 0.
        let victim = c.insert(BlockAddr::new(4), LineState::Shared).unwrap();
        assert_eq!(victim.block, BlockAddr::new(0));
    }

    #[test]
    fn access_counts_hits_and_misses() {
        let mut c = small_cache(2, 2);
        assert!(c.access(BlockAddr::new(5)).is_none());
        c.insert(BlockAddr::new(5), LineState::Exclusive);
        assert!(c.access(BlockAddr::new(5)).is_some());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
        assert!((c.stats().miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dirty_eviction_counted() {
        let mut c = small_cache(1, 1);
        c.insert(BlockAddr::new(1), LineState::Modified);
        let victim = c.insert(BlockAddr::new(2), LineState::Shared).unwrap();
        assert!(victim.state.is_dirty());
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().dirty_evictions, 1);
    }

    #[test]
    fn invalidate_counts_only_hits() {
        let mut c = small_cache(2, 2);
        c.insert(BlockAddr::new(1), LineState::Shared);
        assert!(c.invalidate(BlockAddr::new(1)).is_some());
        assert!(c.invalidate(BlockAddr::new(1)).is_none());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn occupancy_never_exceeds_capacity() {
        let mut c = small_cache(2, 4);
        for n in 0..100 {
            c.insert(BlockAddr::new(n), LineState::Shared);
            assert!(c.occupancy() <= c.capacity());
        }
        assert_eq!(c.occupancy(), c.capacity());
    }

    #[test]
    fn reset_stats_preserves_contents() {
        let mut c = small_cache(2, 2);
        c.insert(BlockAddr::new(1), LineState::Shared);
        c.access(BlockAddr::new(1));
        c.reset_stats();
        assert_eq!(c.stats().hits, 0);
        assert!(c.contains(BlockAddr::new(1)));
    }

    #[test]
    fn lines_reports_all_valid_lines() {
        let mut c = small_cache(2, 2);
        c.insert(BlockAddr::new(1), LineState::Shared);
        c.insert(BlockAddr::new(2), LineState::Modified);
        assert_eq!(c.lines().count(), 2);
    }

    #[test]
    fn non_power_of_two_set_counts_still_index_correctly() {
        // 3 sets: the modulo fallback path (no pow2 mask).
        let mut c = small_cache(2, 3);
        for n in 0..6 {
            c.insert(BlockAddr::new(n), LineState::Shared);
        }
        assert_eq!(c.occupancy(), 6);
        for n in 0..6 {
            assert!(c.contains(BlockAddr::new(n)), "block {n} missing");
        }
        // Block 6 conflicts with set 0 = {0, 3}; LRU victim is 0.
        let victim = c.insert(BlockAddr::new(6), LineState::Shared).unwrap();
        assert_eq!(victim.block, BlockAddr::new(0));
    }

    #[test]
    fn stale_tags_of_invalidated_slots_never_resurface() {
        let mut c = small_cache(2, 1);
        c.insert(BlockAddr::new(1), LineState::Shared);
        c.invalidate(BlockAddr::new(1));
        // The tag plane still holds 1, but the slot is Invalid.
        assert!(!c.contains(BlockAddr::new(1)));
        assert!(c.access(BlockAddr::new(1)).is_none());
        assert_eq!(c.lines().count(), 0);
    }

    #[test]
    fn masked_insert_partitions_ways_per_caller() {
        let mut c = small_cache(4, 1);
        // Two "VMs" share the set, two ways each; a conflict must never
        // cross the partition boundary.
        c.insert_in_ways(BlockAddr::new(0), LineState::Shared, 0b0011);
        c.insert_in_ways(BlockAddr::new(1), LineState::Shared, 0b0011);
        c.insert_in_ways(BlockAddr::new(10), LineState::Shared, 0b1100);
        c.insert_in_ways(BlockAddr::new(11), LineState::Shared, 0b1100);
        assert_eq!(c.occupancy(), 4);
        let victim = c
            .insert_in_ways(BlockAddr::new(2), LineState::Shared, 0b0011)
            .unwrap();
        assert_eq!(victim.block, BlockAddr::new(0));
        assert!(c.contains(BlockAddr::new(10)) && c.contains(BlockAddr::new(11)));
        assert_eq!(c.stats().insertions, 5);
        assert_eq!(c.stats().evictions, 1);
    }

    /// Pins the repartitioning contract from the dynamic QoS controller's
    /// point of view: when a caller's way mask *shrinks* while its lines
    /// are resident, nothing is flushed. Stale lines in lost ways keep
    /// hitting (lookups are unrestricted), re-inserts of a stale block
    /// update it in place without evicting, and the line is displaced only
    /// when the way's new owner allocates over it.
    #[test]
    fn mask_shrink_keeps_stale_lines_until_the_new_owner_displaces_them() {
        let mut c = small_cache(4, 1);
        // VM A owns ways {0,1} and fills both.
        c.insert_in_ways(BlockAddr::new(0), LineState::Shared, 0b0011);
        c.insert_in_ways(BlockAddr::new(1), LineState::Shared, 0b0011);
        // Repartition: A -> {0}, B -> {1,2,3}. Block 1 is now stale in
        // B's territory — but it still hits.
        assert!(c.access(BlockAddr::new(1)).is_some());
        // Re-inserting the stale block under A's shrunken mask updates in
        // place: no eviction, no duplicate.
        assert!(c
            .insert_in_ways(BlockAddr::new(1), LineState::Modified, 0b0001)
            .is_none());
        assert_eq!(c.occupancy(), 2);
        // A's next *new* fill is confined to way 0 and must victimize
        // block 0, never the stale line in way 1.
        let victim = c
            .insert_in_ways(BlockAddr::new(2), LineState::Shared, 0b0001)
            .unwrap();
        assert_eq!(victim.block, BlockAddr::new(0));
        assert!(c.contains(BlockAddr::new(1)));
        // B fills its three ways: the two free ways go first, then the
        // stale block 1 (the LRU line inside B's mask) is displaced.
        assert!(c
            .insert_in_ways(BlockAddr::new(10), LineState::Shared, 0b1110)
            .is_none());
        assert!(c
            .insert_in_ways(BlockAddr::new(11), LineState::Shared, 0b1110)
            .is_none());
        let victim = c
            .insert_in_ways(BlockAddr::new(12), LineState::Shared, 0b1110)
            .unwrap();
        assert_eq!(victim.block, BlockAddr::new(1));
        assert!(victim.state.is_dirty(), "stale dirty line evicts dirty");
        assert!(c.contains(BlockAddr::new(2)), "A's line is untouched");
    }

    /// The growing side of a repartition: a way granted to a new owner
    /// arrives still holding the previous owner's line, which the new
    /// owner victimizes through normal replacement — no flush on either
    /// side of the mask change.
    #[test]
    fn mask_grow_victimizes_the_previous_owners_line_naturally() {
        let mut c = small_cache(4, 1);
        c.insert_in_ways(BlockAddr::new(0), LineState::Shared, 0b0001); // A
        c.insert_in_ways(BlockAddr::new(10), LineState::Shared, 0b1110); // B
        c.insert_in_ways(BlockAddr::new(11), LineState::Shared, 0b1110);
        c.insert_in_ways(BlockAddr::new(12), LineState::Shared, 0b1110);
        // Repartition: A -> {0,1}; way 1 still holds B's block 10. Keep
        // A's own line recent so the stale line is the LRU choice.
        assert!(c.access(BlockAddr::new(0)).is_some());
        let victim = c
            .insert_in_ways(BlockAddr::new(1), LineState::Shared, 0b0011)
            .unwrap();
        assert_eq!(victim.block, BlockAddr::new(10));
        assert!(c.contains(BlockAddr::new(0)));
        assert!(c.contains(BlockAddr::new(11)) && c.contains(BlockAddr::new(12)));
    }

    #[test]
    fn snapshot_round_trip_preserves_contents_recency_and_stats() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Random,
        ] {
            let geom = CacheGeometry::new(4 * 4 * 64, 4, 1).unwrap();
            let mut c = SetAssocCache::new(geom, policy);
            for n in 0..40 {
                c.insert(BlockAddr::new(n * 3), LineState::Modified);
                c.access(BlockAddr::new(n));
            }
            let mut buf = SectionBuf::new();
            c.save(&mut buf);
            let mut back = SetAssocCache::new(geom, policy);
            back.restore(&mut SectionReader::new("caches", buf.as_bytes()))
                .unwrap();
            assert_eq!(back.stats(), c.stats(), "{policy:?}");
            assert_eq!(back.occupancy(), c.occupancy(), "{policy:?}");
            // Same contents and same future behaviour (recency + RNG state).
            for n in 40..80 {
                let va = c.insert(BlockAddr::new(n), LineState::Shared);
                let vb = back.insert(BlockAddr::new(n), LineState::Shared);
                assert_eq!(va, vb, "{policy:?} insert {n}");
            }
        }
    }

    #[test]
    fn snapshot_restore_rejects_wrong_shape() {
        let geom = CacheGeometry::new(4 * 4 * 64, 4, 1).unwrap();
        let c = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        let mut buf = SectionBuf::new();
        c.save(&mut buf);
        let other_geom = CacheGeometry::new(4 * 8 * 64, 4, 1).unwrap();
        let mut other = SetAssocCache::new(other_geom, ReplacementPolicy::Lru);
        let err = other
            .restore(&mut SectionReader::new("caches", buf.as_bytes()))
            .unwrap_err();
        assert!(err.to_string().contains("cache sets"), "{err}");
        // Policy mismatch is also typed, not a panic.
        let mut plru = SetAssocCache::new(geom, ReplacementPolicy::TreePlru);
        let err = plru
            .restore(&mut SectionReader::new("caches", buf.as_bytes()))
            .unwrap_err();
        assert!(err.to_string().contains("policy"), "{err}");
    }

    #[test]
    fn probe_does_not_perturb_lru() {
        let mut c = small_cache(2, 1);
        c.insert(BlockAddr::new(1), LineState::Shared);
        c.insert(BlockAddr::new(2), LineState::Shared);
        // Probing 1 must NOT protect it.
        assert!(c.probe(BlockAddr::new(1)).is_some());
        let victim = c.insert(BlockAddr::new(3), LineState::Shared).unwrap();
        assert_eq!(victim.block, BlockAddr::new(1));
    }
}
