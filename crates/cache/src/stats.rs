//! Per-cache statistics.

use consim_snap::{SectionBuf, SectionReader, Snapshot};
use consim_types::SimError;
use std::fmt;
use std::ops::AddAssign;

/// Counters accumulated by a [`crate::SetAssocCache`].
///
/// # Examples
///
/// ```
/// use consim_cache::CacheStats;
///
/// let mut s = CacheStats { hits: 3, misses: 1, ..CacheStats::default() };
/// assert_eq!(s.accesses(), 4);
/// assert_eq!(s.miss_rate(), 0.25);
/// s += CacheStats { hits: 1, ..CacheStats::default() };
/// assert_eq!(s.hits, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Demand accesses that found the block.
    pub hits: u64,
    /// Demand accesses that missed.
    pub misses: u64,
    /// Lines filled.
    pub insertions: u64,
    /// Lines evicted to make room.
    pub evictions: u64,
    /// Evictions of modified lines (require writeback).
    pub dirty_evictions: u64,
    /// Lines removed by coherence invalidations.
    pub invalidations: u64,
}

impl CacheStats {
    /// Total demand accesses.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Miss rate in `[0, 1]`; zero when there were no accesses.
    pub fn miss_rate(&self) -> f64 {
        let accesses = self.accesses();
        if accesses == 0 {
            0.0
        } else {
            self.misses as f64 / accesses as f64
        }
    }
}

impl Snapshot for CacheStats {
    fn save(&self, w: &mut SectionBuf) {
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        w.put_u64(self.insertions);
        w.put_u64(self.evictions);
        w.put_u64(self.dirty_evictions);
        w.put_u64(self.invalidations);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        self.hits = r.get_u64()?;
        self.misses = r.get_u64()?;
        self.insertions = r.get_u64()?;
        self.evictions = r.get_u64()?;
        self.dirty_evictions = r.get_u64()?;
        self.invalidations = r.get_u64()?;
        Ok(())
    }
}

impl AddAssign for CacheStats {
    fn add_assign(&mut self, rhs: CacheStats) {
        self.hits += rhs.hits;
        self.misses += rhs.misses;
        self.insertions += rhs.insertions;
        self.evictions += rhs.evictions;
        self.dirty_evictions += rhs.dirty_evictions;
        self.invalidations += rhs.invalidations;
    }
}

impl fmt::Display for CacheStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "accesses={} hits={} misses={} (miss rate {:.2}%) evictions={} (dirty {}) invalidations={}",
            self.accesses(),
            self.hits,
            self.misses,
            self.miss_rate() * 100.0,
            self.evictions,
            self.dirty_evictions,
            self.invalidations,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_rate_of_empty_stats_is_zero() {
        assert_eq!(CacheStats::default().miss_rate(), 0.0);
    }

    #[test]
    fn add_assign_accumulates_all_fields() {
        let mut a = CacheStats {
            hits: 1,
            misses: 2,
            insertions: 3,
            evictions: 4,
            dirty_evictions: 5,
            invalidations: 6,
        };
        a += a;
        assert_eq!(a.hits, 2);
        assert_eq!(a.misses, 4);
        assert_eq!(a.insertions, 6);
        assert_eq!(a.evictions, 8);
        assert_eq!(a.dirty_evictions, 10);
        assert_eq!(a.invalidations, 12);
    }

    #[test]
    fn display_mentions_rate() {
        let s = CacheStats {
            hits: 1,
            misses: 1,
            ..CacheStats::default()
        };
        assert!(s.to_string().contains("50.00%"));
    }
}
