//! Set-associative cache models for the `consim` CMP simulator.
//!
//! This crate provides the storage layer of the memory hierarchy:
//!
//! * [`line`] — cache lines and their coherence-relevant state;
//! * [`replacement`] — pluggable replacement policies (true LRU, tree-PLRU,
//!   random), both the flat per-cache planes the production cache uses and
//!   the per-set reference formulation;
//! * [`set`] — one associative set (AoS reference model for the
//!   differential property tests);
//! * [`cache`] — a whole set-associative cache ([`SetAssocCache`]), stored
//!   as flat struct-of-arrays tag/state/recency planes;
//! * [`stats`] — per-cache hit/miss/eviction counters.
//!
//! The same type models every level: the 8 KB L0s, 64 KB L1s, and the LLC
//! banks of every sharing degree (1–16 MB). Caches are keyed by
//! [`consim_types::BlockAddr`], so a line implicitly knows which VM owns it —
//! the facility the replication (paper Fig. 12) and occupancy (Fig. 13)
//! metrics build on.
//!
//! # Examples
//!
//! ```
//! use consim_cache::{LineState, ReplacementPolicy, SetAssocCache};
//! use consim_types::{BlockAddr, CacheGeometry};
//!
//! let geom = CacheGeometry::new(4 * 1024, 2, 1)?;
//! let mut cache = SetAssocCache::new(geom, ReplacementPolicy::Lru);
//! let block = BlockAddr::new(42);
//! assert!(cache.access(block).is_none()); // cold miss
//! cache.insert(block, LineState::Exclusive);
//! assert_eq!(cache.access(block), Some(LineState::Exclusive));
//! # Ok::<(), consim_types::SimError>(())
//! ```

pub mod cache;
pub mod line;
pub mod replacement;
pub mod set;
pub mod stats;

pub use cache::SetAssocCache;
pub use line::{CacheLine, LineState};
pub use replacement::ReplacementPolicy;
pub use stats::CacheStats;
