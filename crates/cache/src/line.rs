//! Cache lines and their states.

use consim_snap::{SectionBuf, SectionReader, Snapshot};
use consim_types::{BlockAddr, SimError, SnapshotErrorKind};
use std::fmt;

/// MESI-style state of a cached line.
///
/// The cache crate only distinguishes what it needs for storage decisions
/// (is the line valid? must an eviction write back?); the coherence crate
/// drives the actual protocol transitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum LineState {
    /// No valid data. Lines in this state are not stored.
    #[default]
    Invalid,
    /// Clean, potentially present in other caches.
    Shared,
    /// Clean, guaranteed sole copy.
    Exclusive,
    /// Dirty, guaranteed sole copy among peers at this level.
    Modified,
}

impl LineState {
    /// Whether an eviction of a line in this state must write data back.
    #[inline]
    pub const fn is_dirty(self) -> bool {
        matches!(self, LineState::Modified)
    }

    /// Whether the line holds usable data.
    #[inline]
    pub const fn is_valid(self) -> bool {
        !matches!(self, LineState::Invalid)
    }

    /// Whether a write can proceed without a coherence upgrade.
    #[inline]
    pub const fn is_writable(self) -> bool {
        matches!(self, LineState::Exclusive | LineState::Modified)
    }
}

impl fmt::Display for LineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LineState::Invalid => "I",
            LineState::Shared => "S",
            LineState::Exclusive => "E",
            LineState::Modified => "M",
        };
        f.write_str(s)
    }
}

/// One cache line: a block tag plus its state.
///
/// # Examples
///
/// ```
/// use consim_cache::{CacheLine, LineState};
/// use consim_types::BlockAddr;
///
/// let line = CacheLine::new(BlockAddr::new(7), LineState::Modified);
/// assert!(line.state.is_dirty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheLine {
    /// The block this line caches.
    pub block: BlockAddr,
    /// The line's current state.
    pub state: LineState,
}

impl CacheLine {
    /// Creates a line.
    pub const fn new(block: BlockAddr, state: LineState) -> Self {
        Self { block, state }
    }
}

impl fmt::Display for CacheLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.block, self.state)
    }
}

impl Snapshot for LineState {
    fn save(&self, w: &mut SectionBuf) {
        w.put_u8(match self {
            LineState::Invalid => 0,
            LineState::Shared => 1,
            LineState::Exclusive => 2,
            LineState::Modified => 3,
        });
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        *self = match r.get_u8()? {
            0 => LineState::Invalid,
            1 => LineState::Shared,
            2 => LineState::Exclusive,
            3 => LineState::Modified,
            t => {
                return Err(SimError::snapshot(
                    SnapshotErrorKind::Corrupt,
                    format!("invalid line-state tag {t}"),
                ))
            }
        };
        Ok(())
    }
}

impl Snapshot for CacheLine {
    fn save(&self, w: &mut SectionBuf) {
        w.put_u64(self.block.raw());
        self.state.save(w);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        self.block = BlockAddr::new(r.get_u64()?);
        self.state.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirtiness() {
        assert!(LineState::Modified.is_dirty());
        assert!(!LineState::Exclusive.is_dirty());
        assert!(!LineState::Shared.is_dirty());
        assert!(!LineState::Invalid.is_dirty());
    }

    #[test]
    fn validity() {
        assert!(!LineState::Invalid.is_valid());
        assert!(LineState::Shared.is_valid());
        assert!(LineState::Exclusive.is_valid());
        assert!(LineState::Modified.is_valid());
    }

    #[test]
    fn writability() {
        assert!(LineState::Modified.is_writable());
        assert!(LineState::Exclusive.is_writable());
        assert!(!LineState::Shared.is_writable());
        assert!(!LineState::Invalid.is_writable());
    }

    #[test]
    fn display() {
        assert_eq!(LineState::Shared.to_string(), "S");
        let line = CacheLine::new(BlockAddr::new(1), LineState::Exclusive);
        assert!(line.to_string().ends_with("@E"));
    }

    #[test]
    fn default_state_is_invalid() {
        assert_eq!(LineState::default(), LineState::Invalid);
    }
}
