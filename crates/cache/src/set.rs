//! One associative set — the retained AoS reference model.
//!
//! [`CacheSet`] is the original boxed-per-set formulation
//! (`Vec<Option<CacheLine>>` plus a per-set
//! [`crate::replacement::ReplacementState`]). The production
//! [`crate::SetAssocCache`] now stores flat struct-of-arrays planes for
//! speed; this type is kept as the executable specification of the old
//! semantics, and the differential tests in
//! `crates/cache/tests/soa_vs_aos.rs` drive identical operation streams
//! through both and require exact agreement (hits, victims, masked
//! allocation, snapshot round-trips).

use crate::line::{CacheLine, LineState};
use crate::replacement::{ReplacementPolicy, ReplacementState};
use consim_snap::{SectionBuf, SectionReader, Snapshot};
use consim_types::{BlockAddr, SimError};

/// A single associative set: up to `ways` lines plus replacement state.
#[derive(Debug, Clone)]
pub struct CacheSet {
    ways: Vec<Option<CacheLine>>,
    repl: ReplacementState,
}

impl CacheSet {
    /// Creates an empty set.
    pub fn new(policy: ReplacementPolicy, ways: usize, rng_seed: u64) -> Self {
        Self {
            ways: vec![None; ways],
            repl: ReplacementState::new(policy, ways, rng_seed),
        }
    }

    /// Number of ways.
    pub fn way_count(&self) -> usize {
        self.ways.len()
    }

    /// Finds the way holding `block`, if any.
    fn way_of(&self, block: BlockAddr) -> Option<usize> {
        self.ways
            .iter()
            .position(|w| w.map(|l| l.block) == Some(block))
    }

    /// Looks up `block` without touching recency.
    pub fn probe(&self, block: BlockAddr) -> Option<LineState> {
        self.way_of(block)
            .map(|w| self.ways[w].expect("occupied").state)
    }

    /// Looks up `block`, promoting it in the replacement order on a hit.
    pub fn access(&mut self, block: BlockAddr) -> Option<LineState> {
        let ways = self.ways.len();
        let w = self.way_of(block)?;
        self.repl.touch(w, ways);
        Some(self.ways[w].expect("occupied").state)
    }

    /// Changes the state of `block`; returns `false` if not present.
    pub fn set_state(&mut self, block: BlockAddr, state: LineState) -> bool {
        match self.way_of(block) {
            Some(w) => {
                if state.is_valid() {
                    self.ways[w] = Some(CacheLine::new(block, state));
                } else {
                    self.ways[w] = None;
                }
                true
            }
            None => false,
        }
    }

    /// Inserts `block` with `state`, evicting a victim if the set is full.
    ///
    /// Returns the evicted line, if any. Inserting a block already present
    /// updates its state in place (no eviction).
    pub fn insert(&mut self, block: BlockAddr, state: LineState) -> Option<CacheLine> {
        debug_assert!(state.is_valid(), "inserting an invalid line");
        let ways = self.ways.len();
        if let Some(w) = self.way_of(block) {
            self.ways[w] = Some(CacheLine::new(block, state));
            self.repl.touch(w, ways);
            return None;
        }
        if let Some(w) = self.ways.iter().position(Option::is_none) {
            self.ways[w] = Some(CacheLine::new(block, state));
            self.repl.touch(w, ways);
            return None;
        }
        let w = self.repl.victim(ways);
        let victim = self.ways[w].take();
        self.ways[w] = Some(CacheLine::new(block, state));
        self.repl.touch(w, ways);
        victim
    }

    /// Inserts `block` with `state`, allocating only into the ways allowed
    /// by `mask` (bit `w` set means way `w` is allowed). Used for per-VM
    /// way partitioning: a block already present anywhere in the set is
    /// updated in place, but a new line only fills or evicts inside its
    /// mask. With a full mask this behaves exactly like
    /// [`CacheSet::insert`].
    ///
    /// Returns the evicted line, if any.
    ///
    /// # Panics
    ///
    /// Panics if `mask` allows none of the set's ways.
    pub fn insert_in_ways(
        &mut self,
        block: BlockAddr,
        state: LineState,
        mask: u64,
    ) -> Option<CacheLine> {
        debug_assert!(state.is_valid(), "inserting an invalid line");
        let ways = self.ways.len();
        if let Some(w) = self.way_of(block) {
            self.ways[w] = Some(CacheLine::new(block, state));
            self.repl.touch(w, ways);
            return None;
        }
        if let Some(w) = (0..ways).find(|&w| mask >> w & 1 == 1 && self.ways[w].is_none()) {
            self.ways[w] = Some(CacheLine::new(block, state));
            self.repl.touch(w, ways);
            return None;
        }
        let w = self.repl.victim_in(mask, ways);
        let victim = self.ways[w].take();
        self.ways[w] = Some(CacheLine::new(block, state));
        self.repl.touch(w, ways);
        victim
    }

    /// Removes `block`; returns the removed line if it was present.
    pub fn invalidate(&mut self, block: BlockAddr) -> Option<CacheLine> {
        let w = self.way_of(block)?;
        self.ways[w].take()
    }

    /// Iterates over the valid lines in this set.
    pub fn lines(&self) -> impl Iterator<Item = &CacheLine> {
        self.ways.iter().filter_map(Option::as_ref)
    }

    /// Number of valid lines.
    pub fn occupancy(&self) -> usize {
        self.ways.iter().filter(|w| w.is_some()).count()
    }
}

impl Snapshot for CacheSet {
    fn save(&self, w: &mut SectionBuf) {
        w.put_usize(self.ways.len());
        for way in &self.ways {
            match way {
                Some(line) => {
                    w.put_bool(true);
                    line.save(w);
                }
                None => w.put_bool(false),
            }
        }
        self.repl.save(w);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        r.expect_len(self.ways.len(), "cache ways")?;
        for way in self.ways.iter_mut() {
            if r.get_bool()? {
                let mut line = CacheLine::new(BlockAddr::new(0), LineState::Shared);
                line.restore(r)?;
                *way = Some(line);
            } else {
                *way = None;
            }
        }
        self.repl.restore(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blk(n: u64) -> BlockAddr {
        BlockAddr::new(n)
    }

    #[test]
    fn insert_and_probe() {
        let mut set = CacheSet::new(ReplacementPolicy::Lru, 2, 0);
        assert!(set.insert(blk(1), LineState::Shared).is_none());
        assert_eq!(set.probe(blk(1)), Some(LineState::Shared));
        assert_eq!(set.probe(blk(2)), None);
        assert_eq!(set.occupancy(), 1);
    }

    #[test]
    fn fills_free_ways_before_evicting() {
        let mut set = CacheSet::new(ReplacementPolicy::Lru, 2, 0);
        assert!(set.insert(blk(1), LineState::Shared).is_none());
        assert!(set.insert(blk(2), LineState::Shared).is_none());
        assert_eq!(set.occupancy(), 2);
    }

    #[test]
    fn evicts_lru_victim_when_full() {
        let mut set = CacheSet::new(ReplacementPolicy::Lru, 2, 0);
        set.insert(blk(1), LineState::Shared);
        set.insert(blk(2), LineState::Shared);
        set.access(blk(1)); // 2 becomes LRU
        let victim = set.insert(blk(3), LineState::Shared).expect("eviction");
        assert_eq!(victim.block, blk(2));
        assert_eq!(set.probe(blk(1)), Some(LineState::Shared));
        assert_eq!(set.probe(blk(3)), Some(LineState::Shared));
    }

    #[test]
    fn reinsert_updates_state_without_eviction() {
        let mut set = CacheSet::new(ReplacementPolicy::Lru, 2, 0);
        set.insert(blk(1), LineState::Shared);
        set.insert(blk(2), LineState::Shared);
        assert!(set.insert(blk(1), LineState::Modified).is_none());
        assert_eq!(set.probe(blk(1)), Some(LineState::Modified));
        assert_eq!(set.occupancy(), 2);
    }

    #[test]
    fn set_state_transitions() {
        let mut set = CacheSet::new(ReplacementPolicy::Lru, 2, 0);
        set.insert(blk(1), LineState::Exclusive);
        assert!(set.set_state(blk(1), LineState::Modified));
        assert_eq!(set.probe(blk(1)), Some(LineState::Modified));
        assert!(!set.set_state(blk(9), LineState::Shared));
        // Setting to Invalid removes the line.
        assert!(set.set_state(blk(1), LineState::Invalid));
        assert_eq!(set.probe(blk(1)), None);
        assert_eq!(set.occupancy(), 0);
    }

    #[test]
    fn invalidate_returns_line() {
        let mut set = CacheSet::new(ReplacementPolicy::Lru, 2, 0);
        set.insert(blk(1), LineState::Modified);
        let removed = set.invalidate(blk(1)).expect("present");
        assert!(removed.state.is_dirty());
        assert!(set.invalidate(blk(1)).is_none());
    }

    #[test]
    fn lines_iterates_valid_only() {
        let mut set = CacheSet::new(ReplacementPolicy::Lru, 4, 0);
        set.insert(blk(1), LineState::Shared);
        set.insert(blk(2), LineState::Modified);
        let blocks: Vec<u64> = set.lines().map(|l| l.block.raw()).collect();
        assert_eq!(blocks.len(), 2);
        assert!(blocks.contains(&1) && blocks.contains(&2));
    }

    #[test]
    fn masked_insert_fills_and_evicts_inside_mask_only() {
        let mut set = CacheSet::new(ReplacementPolicy::Lru, 4, 0);
        // VM A owns ways {0, 1}; VM B owns ways {2, 3}.
        set.insert_in_ways(blk(1), LineState::Shared, 0b0011);
        set.insert_in_ways(blk(2), LineState::Shared, 0b0011);
        set.insert_in_ways(blk(10), LineState::Shared, 0b1100);
        // A's third insert must evict A's oldest line, never B's.
        let victim = set
            .insert_in_ways(blk(3), LineState::Shared, 0b0011)
            .unwrap();
        assert_eq!(victim.block, blk(1));
        assert_eq!(set.probe(blk(10)), Some(LineState::Shared));
        assert_eq!(set.occupancy(), 3);
    }

    #[test]
    fn masked_insert_updates_in_place_without_eviction() {
        let mut set = CacheSet::new(ReplacementPolicy::Lru, 2, 0);
        set.insert_in_ways(blk(1), LineState::Shared, 0b01);
        assert!(set
            .insert_in_ways(blk(1), LineState::Modified, 0b01)
            .is_none());
        assert_eq!(set.probe(blk(1)), Some(LineState::Modified));
        assert_eq!(set.occupancy(), 1);
    }

    #[test]
    fn full_mask_insert_matches_plain_insert() {
        let mut a = CacheSet::new(ReplacementPolicy::Lru, 2, 0);
        let mut b = CacheSet::new(ReplacementPolicy::Lru, 2, 0);
        for n in 1..=5 {
            let va = a.insert(blk(n), LineState::Shared);
            let vb = b.insert_in_ways(blk(n), LineState::Shared, u64::MAX);
            assert_eq!(va.map(|l| l.block), vb.map(|l| l.block));
        }
    }

    #[test]
    fn access_promotes_recency() {
        let mut set = CacheSet::new(ReplacementPolicy::Lru, 2, 0);
        set.insert(blk(1), LineState::Shared);
        set.insert(blk(2), LineState::Shared);
        // Without the access, victim would be 1 (older). Touch it:
        assert_eq!(set.access(blk(1)), Some(LineState::Shared));
        let victim = set.insert(blk(3), LineState::Shared).unwrap();
        assert_eq!(victim.block, blk(2));
    }
}
