//! Replacement policies.
//!
//! The production cache stores its recency bookkeeping in flat per-cache
//! [`ReplacementPlanes`] (one contiguous allocation per cache, indexed
//! `set * ways + way`). The per-set [`ReplacementState`] is the original
//! boxed-per-set formulation; it is *retained* as the executable
//! specification of the replacement semantics and drives the differential
//! property tests that pin the planes to it (see
//! `crates/cache/tests/soa_vs_aos.rs`). The paper's machine uses "vanilla
//! LRU"; tree-PLRU and random are provided for the ablation benches
//! (design-choice studies in DESIGN.md) and to validate that the
//! characterization trends are not an artifact of true-LRU bookkeeping.

use consim_snap::{SectionBuf, SectionReader, Snapshot};
use consim_types::{SimError, SimRng, SnapshotErrorKind};

/// Which replacement policy a cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReplacementPolicy {
    /// True least-recently-used (the paper's "vanilla-LRU").
    #[default]
    Lru,
    /// Tree pseudo-LRU (binary decision tree per set).
    TreePlru,
    /// Uniform random victim selection (seeded, deterministic).
    Random,
}

/// Per-set replacement bookkeeping.
#[derive(Debug, Clone)]
pub enum ReplacementState {
    /// Way indices ordered most- to least-recently used.
    Lru(Vec<u16>),
    /// PLRU tree bits; the way count must be a power of two.
    TreePlru(Vec<bool>),
    /// Seeded RNG for victim picks.
    Random(SimRng),
}

impl ReplacementState {
    /// Creates fresh state for a set of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero, or if the policy is
    /// [`ReplacementPolicy::TreePlru`] and `ways` is not a power of two.
    pub fn new(policy: ReplacementPolicy, ways: usize, rng_seed: u64) -> Self {
        assert!(ways > 0, "a set needs at least one way");
        match policy {
            ReplacementPolicy::Lru => {
                // Initial order: way 0 is the first victim.
                ReplacementState::Lru((0..ways as u16).rev().collect())
            }
            ReplacementPolicy::TreePlru => {
                assert!(
                    ways.is_power_of_two(),
                    "tree-PLRU requires power-of-two associativity, got {ways}"
                );
                ReplacementState::TreePlru(vec![false; ways - 1])
            }
            ReplacementPolicy::Random => ReplacementState::Random(SimRng::from_seed(rng_seed)),
        }
    }

    /// Records a use of `way` (hit or fill) in a set of `ways` ways.
    pub fn touch(&mut self, way: usize, ways: usize) {
        match self {
            ReplacementState::Lru(order) => {
                let pos = order
                    .iter()
                    .position(|&w| w as usize == way)
                    .expect("way is tracked");
                let w = order.remove(pos);
                order.insert(0, w);
            }
            ReplacementState::TreePlru(bits) => {
                // Walk from root to the leaf `way`, pointing each node *away*
                // from the path taken.
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if way < mid {
                        bits[node] = true; // protect left, point right
                        node = 2 * node + 1;
                        hi = mid;
                    } else {
                        bits[node] = false; // protect right, point left
                        node = 2 * node + 2;
                        lo = mid;
                    }
                }
            }
            ReplacementState::Random(_) => {}
        }
    }

    /// Picks the victim way for the next eviction in a set of `ways` ways.
    ///
    /// Recency state is not modified; the subsequent fill's
    /// [`ReplacementState::touch`] is what promotes the new line.
    pub fn victim(&mut self, ways: usize) -> usize {
        match self {
            ReplacementState::Lru(order) => *order.last().expect("nonempty") as usize,
            ReplacementState::TreePlru(bits) => {
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if bits[node] {
                        node = 2 * node + 2; // points right
                        lo = mid;
                    } else {
                        node = 2 * node + 1; // points left
                        hi = mid;
                    }
                }
                lo
            }
            ReplacementState::Random(rng) => rng.index(ways),
        }
    }

    /// Picks the victim among the ways allowed by `mask` (bit `w` set means
    /// way `w` may be evicted) in a set of `ways` ways. Used for way
    /// partitioning: a VM confined to a subset of ways must pick its victim
    /// inside that subset. With a full mask this selects exactly the same
    /// way as [`ReplacementState::victim`].
    ///
    /// # Panics
    ///
    /// Panics if `mask` allows none of the set's ways.
    pub fn victim_in(&mut self, mask: u64, ways: usize) -> usize {
        let mask = mask & ways_mask(ways);
        assert!(mask != 0, "victim mask allows no way");
        match self {
            ReplacementState::Lru(order) => order
                .iter()
                .rev()
                .map(|&w| w as usize)
                .find(|&w| mask >> w & 1 == 1)
                .expect("mask selects a tracked way"),
            ReplacementState::TreePlru(bits) => {
                // Walk as in `victim`, but never descend into a subtree that
                // contains no allowed way.
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let left_has = mask & range_mask(lo, mid) != 0;
                    let right_has = mask & range_mask(mid, hi) != 0;
                    let go_right = if !left_has {
                        true
                    } else if !right_has {
                        false
                    } else {
                        bits[node]
                    };
                    if go_right {
                        node = 2 * node + 2;
                        lo = mid;
                    } else {
                        node = 2 * node + 1;
                        hi = mid;
                    }
                }
                lo
            }
            ReplacementState::Random(rng) => {
                let allowed = mask.count_ones() as usize;
                let pick = rng.index(allowed);
                nth_set_bit(mask, pick)
            }
        }
    }
}

impl Snapshot for ReplacementState {
    fn save(&self, w: &mut SectionBuf) {
        match self {
            ReplacementState::Lru(order) => {
                w.put_u8(0);
                w.put_usize(order.len());
                for &way in order {
                    w.put_u32(u32::from(way));
                }
            }
            ReplacementState::TreePlru(bits) => {
                w.put_u8(1);
                w.put_usize(bits.len());
                for &bit in bits {
                    w.put_bool(bit);
                }
            }
            ReplacementState::Random(rng) => {
                w.put_u8(2);
                rng.save(w);
            }
        }
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        let tag = r.get_u8()?;
        match (tag, &mut *self) {
            (0, ReplacementState::Lru(order)) => {
                r.expect_len(order.len(), "LRU order entries")?;
                for way in order.iter_mut() {
                    *way = r.get_u32()? as u16;
                }
                Ok(())
            }
            (1, ReplacementState::TreePlru(bits)) => {
                r.expect_len(bits.len(), "PLRU tree bits")?;
                for bit in bits.iter_mut() {
                    *bit = r.get_bool()?;
                }
                Ok(())
            }
            (2, ReplacementState::Random(rng)) => rng.restore(r),
            (tag, _) => Err(SimError::snapshot(
                SnapshotErrorKind::Corrupt,
                format!("replacement-policy tag {tag} does not match configured policy"),
            )),
        }
    }
}

/// Flat per-cache replacement bookkeeping: one contiguous allocation for
/// *all* sets, indexed `set * ways + way` (matching the cache's tag/state
/// planes).
///
/// Semantically equivalent to one [`ReplacementState`] per set, but with
/// O(1) LRU touches: instead of splicing an order list, true LRU keeps a
/// monotonic per-cache clock and stamps each way at its last touch — the
/// victim is the minimum stamp. The equivalence holds because victims are
/// only ever requested when every candidate way (the whole set for
/// [`ReplacementPlanes::victim`], the masked subset for
/// [`ReplacementPlanes::victim_in`]) holds a valid line, and every fill or
/// hit of a valid line goes through [`ReplacementPlanes::touch`]; untouched
/// ways keep their initial stamps `0..ways`, reproducing the "way 0 is the
/// first victim" cold order. Stamps are unique within a set (initial stamps
/// are distinct and the clock is strictly increasing), so the minimum is
/// unambiguous.
#[derive(Debug, Clone)]
pub(crate) enum ReplacementPlanes {
    /// True LRU: last-touch stamp per way plus the cache-wide clock.
    Lru { stamps: Vec<u64>, clock: u64 },
    /// PLRU tree bits, `ways - 1` per set; ways must be a power of two.
    TreePlru { bits: Vec<bool> },
    /// One seeded RNG per set (seed = set index), drawn only on victim
    /// picks — the same stream the per-set formulation consumes.
    Random { rngs: Vec<SimRng> },
}

impl ReplacementPlanes {
    /// Creates fresh planes for `num_sets` sets of `ways` ways.
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero, or if the policy is
    /// [`ReplacementPolicy::TreePlru`] and `ways` is not a power of two.
    pub(crate) fn new(policy: ReplacementPolicy, num_sets: usize, ways: usize) -> Self {
        assert!(ways > 0, "a set needs at least one way");
        match policy {
            ReplacementPolicy::Lru => {
                let mut stamps = Vec::with_capacity(num_sets * ways);
                for _ in 0..num_sets {
                    stamps.extend(0..ways as u64);
                }
                ReplacementPlanes::Lru {
                    stamps,
                    clock: ways as u64,
                }
            }
            ReplacementPolicy::TreePlru => {
                assert!(
                    ways.is_power_of_two(),
                    "tree-PLRU requires power-of-two associativity, got {ways}"
                );
                ReplacementPlanes::TreePlru {
                    bits: vec![false; num_sets * (ways - 1)],
                }
            }
            ReplacementPolicy::Random => ReplacementPlanes::Random {
                rngs: (0..num_sets).map(|i| SimRng::from_seed(i as u64)).collect(),
            },
        }
    }

    /// The policy these planes implement.
    pub(crate) fn policy(&self) -> ReplacementPolicy {
        match self {
            ReplacementPlanes::Lru { .. } => ReplacementPolicy::Lru,
            ReplacementPlanes::TreePlru { .. } => ReplacementPolicy::TreePlru,
            ReplacementPlanes::Random { .. } => ReplacementPolicy::Random,
        }
    }

    /// Records a use of `way` in set `set` (hit or fill).
    #[inline]
    pub(crate) fn touch(&mut self, set: usize, way: usize, ways: usize) {
        match self {
            ReplacementPlanes::Lru { stamps, clock } => {
                *clock += 1;
                stamps[set * ways + way] = *clock;
            }
            ReplacementPlanes::TreePlru { bits } => {
                let bits = &mut bits[set * (ways - 1)..];
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if way < mid {
                        bits[node] = true; // protect left, point right
                        node = 2 * node + 1;
                        hi = mid;
                    } else {
                        bits[node] = false; // protect right, point left
                        node = 2 * node + 2;
                        lo = mid;
                    }
                }
            }
            ReplacementPlanes::Random { .. } => {}
        }
    }

    /// Picks the victim way in set `set`; every way must hold a valid line.
    #[inline]
    pub(crate) fn victim(&mut self, set: usize, ways: usize) -> usize {
        match self {
            ReplacementPlanes::Lru { stamps, .. } => {
                let s = &stamps[set * ways..set * ways + ways];
                let mut best = 0usize;
                for (w, &stamp) in s.iter().enumerate().skip(1) {
                    if stamp < s[best] {
                        best = w;
                    }
                }
                best
            }
            ReplacementPlanes::TreePlru { bits } => {
                let bits = &bits[set * (ways - 1)..];
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    if bits[node] {
                        node = 2 * node + 2; // points right
                        lo = mid;
                    } else {
                        node = 2 * node + 1; // points left
                        hi = mid;
                    }
                }
                lo
            }
            ReplacementPlanes::Random { rngs } => rngs[set].index(ways),
        }
    }

    /// Picks the victim among the ways allowed by `mask`; every allowed way
    /// must hold a valid line. With a full mask this selects exactly the
    /// same way (and consumes the same RNG stream) as
    /// [`ReplacementPlanes::victim`].
    ///
    /// # Panics
    ///
    /// Panics if `mask` allows none of the set's ways.
    pub(crate) fn victim_in(&mut self, set: usize, mask: u64, ways: usize) -> usize {
        let mask = mask & ways_mask(ways);
        assert!(mask != 0, "victim mask allows no way");
        match self {
            ReplacementPlanes::Lru { stamps, .. } => {
                let s = &stamps[set * ways..set * ways + ways];
                let mut best: Option<usize> = None;
                for (w, &stamp) in s.iter().enumerate() {
                    if mask >> w & 1 == 1 && best.is_none_or(|b| stamp < s[b]) {
                        best = Some(w);
                    }
                }
                best.expect("mask selects a tracked way")
            }
            ReplacementPlanes::TreePlru { bits } => {
                let bits = &bits[set * (ways - 1)..];
                let mut node = 0usize;
                let mut lo = 0usize;
                let mut hi = ways;
                while hi - lo > 1 {
                    let mid = (lo + hi) / 2;
                    let left_has = mask & range_mask(lo, mid) != 0;
                    let right_has = mask & range_mask(mid, hi) != 0;
                    let go_right = if !left_has {
                        true
                    } else if !right_has {
                        false
                    } else {
                        bits[node]
                    };
                    if go_right {
                        node = 2 * node + 2;
                        lo = mid;
                    } else {
                        node = 2 * node + 1;
                        hi = mid;
                    }
                }
                lo
            }
            ReplacementPlanes::Random { rngs } => {
                let allowed = mask.count_ones() as usize;
                let pick = rngs[set].index(allowed);
                nth_set_bit(mask, pick)
            }
        }
    }

    /// Appends the planes' dynamic state (the policy tag is written by the
    /// owning cache, which also validates it on restore).
    pub(crate) fn save(&self, w: &mut SectionBuf) {
        match self {
            ReplacementPlanes::Lru { stamps, clock } => {
                w.put_u64(*clock);
                w.put_u64_slice(stamps);
            }
            ReplacementPlanes::TreePlru { bits } => {
                w.put_usize(bits.len());
                for &bit in bits {
                    w.put_bool(bit);
                }
            }
            ReplacementPlanes::Random { rngs } => {
                w.put_usize(rngs.len());
                for rng in rngs {
                    rng.save(w);
                }
            }
        }
    }

    /// Restores the planes' dynamic state in place.
    pub(crate) fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        match self {
            ReplacementPlanes::Lru { stamps, clock } => {
                *clock = r.get_u64()?;
                r.expect_len(stamps.len(), "LRU stamp-plane entries")?;
                for stamp in stamps.iter_mut() {
                    *stamp = r.get_u64()?;
                }
                Ok(())
            }
            ReplacementPlanes::TreePlru { bits } => {
                r.expect_len(bits.len(), "PLRU tree bits")?;
                for bit in bits.iter_mut() {
                    *bit = r.get_bool()?;
                }
                Ok(())
            }
            ReplacementPlanes::Random { rngs } => {
                r.expect_len(rngs.len(), "replacement RNG streams")?;
                for rng in rngs.iter_mut() {
                    rng.restore(r)?;
                }
                Ok(())
            }
        }
    }
}

/// Bitmask covering ways `[0, ways)`.
fn ways_mask(ways: usize) -> u64 {
    if ways >= 64 {
        u64::MAX
    } else {
        (1u64 << ways) - 1
    }
}

/// Bitmask covering ways `[lo, hi)`.
fn range_mask(lo: usize, hi: usize) -> u64 {
    ways_mask(hi) & !ways_mask(lo)
}

/// Index of the `n`-th (0-based) set bit of `mask`.
fn nth_set_bit(mask: u64, mut n: usize) -> usize {
    let mut m = mask;
    loop {
        let bit = m.trailing_zeros() as usize;
        if n == 0 {
            return bit;
        }
        m &= m - 1;
        n -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_initial_victim_is_way_zero() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 4, 0);
        assert_eq!(st.victim(4), 0);
    }

    #[test]
    fn lru_touch_moves_to_front() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 4, 0);
        st.touch(0, 4);
        assert_eq!(st.victim(4), 1);
        st.touch(1, 4);
        assert_eq!(st.victim(4), 2);
        st.touch(2, 4);
        assert_eq!(st.victim(4), 3);
        st.touch(3, 4);
        assert_eq!(st.victim(4), 0);
    }

    #[test]
    fn lru_victim_is_least_recent_under_mixed_pattern() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 4, 0);
        for w in [0, 1, 2, 3, 1, 0, 3] {
            st.touch(w, 4);
        }
        // Recency (most..least): 3,0,1,2 -> victim 2.
        assert_eq!(st.victim(4), 2);
    }

    #[test]
    fn plru_victim_avoids_recently_touched() {
        let mut st = ReplacementState::new(ReplacementPolicy::TreePlru, 4, 0);
        st.touch(0, 4);
        let v = st.victim(4);
        assert_ne!(v, 0);
        st.touch(v, 4);
        let v2 = st.victim(4);
        assert_ne!(v2, v);
    }

    #[test]
    fn plru_cycles_through_all_ways() {
        let mut st = ReplacementState::new(ReplacementPolicy::TreePlru, 8, 0);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..8 {
            let v = st.victim(8);
            seen.insert(v);
            st.touch(v, 8);
        }
        assert_eq!(seen.len(), 8, "PLRU should visit every way: {seen:?}");
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn plru_rejects_non_power_of_two() {
        let _ = ReplacementState::new(ReplacementPolicy::TreePlru, 6, 0);
    }

    #[test]
    fn random_victims_are_in_range_and_deterministic() {
        let mut a = ReplacementState::new(ReplacementPolicy::Random, 4, 9);
        let mut b = ReplacementState::new(ReplacementPolicy::Random, 4, 9);
        for _ in 0..100 {
            let va = a.victim(4);
            let vb = b.victim(4);
            assert!(va < 4);
            assert_eq!(va, vb);
        }
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn zero_ways_rejected() {
        let _ = ReplacementState::new(ReplacementPolicy::Lru, 0, 0);
    }

    #[test]
    fn masked_victim_matches_unmasked_with_full_mask() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Random,
        ] {
            let mut a = ReplacementState::new(policy, 8, 3);
            let mut b = ReplacementState::new(policy, 8, 3);
            for step in 0..50 {
                let va = a.victim(8);
                let vb = b.victim_in(u64::MAX, 8);
                assert_eq!(va, vb, "{policy:?} step {step}");
                a.touch(va, 8);
                b.touch(vb, 8);
            }
        }
    }

    #[test]
    fn masked_victim_stays_inside_mask() {
        for policy in [
            ReplacementPolicy::Lru,
            ReplacementPolicy::TreePlru,
            ReplacementPolicy::Random,
        ] {
            let mut st = ReplacementState::new(policy, 8, 5);
            let mask = 0b0011_0100u64; // ways 2, 4, 5
            for step in 0..50 {
                let v = st.victim_in(mask, 8);
                assert!(mask >> v & 1 == 1, "{policy:?} step {step}: way {v}");
                st.touch(v, 8);
                // Touch an out-of-mask way too; it must never become victim.
                st.touch(0, 8);
            }
        }
    }

    #[test]
    fn masked_lru_picks_least_recent_allowed_way() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 4, 0);
        for w in [2, 3, 0, 1] {
            st.touch(w, 4);
        }
        // Recency (most..least): 1,0,3,2. Restricted to {0, 1}: victim 0.
        assert_eq!(st.victim_in(0b0011, 4), 0);
        assert_eq!(st.victim(4), 2);
    }

    #[test]
    #[should_panic(expected = "allows no way")]
    fn empty_mask_panics() {
        let mut st = ReplacementState::new(ReplacementPolicy::Lru, 4, 0);
        let _ = st.victim_in(0b1_0000, 4); // only bit 4: outside the set
    }

    #[test]
    fn plru_single_way_set() {
        // 1-way (direct mapped) degenerates gracefully: no tree bits.
        let mut st = ReplacementState::new(ReplacementPolicy::TreePlru, 1, 0);
        st.touch(0, 1);
        assert_eq!(st.victim(1), 0);
    }
}
