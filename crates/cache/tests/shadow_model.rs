//! Differential testing: `SetAssocCache` against a naive shadow model.
//!
//! The shadow keeps, per set, a plain `Vec` of (block, state) in
//! most-recently-used order — the textbook definition of an LRU
//! set-associative cache. Every operation must produce identical hit/miss
//! results, identical victims, and identical final contents. Operation
//! sequences and geometries are drawn from a seeded `SimRng`, so failures
//! reproduce exactly.

use consim_cache::{CacheLine, LineState, ReplacementPolicy, SetAssocCache};
use consim_types::{BlockAddr, CacheGeometry, SimRng};
use std::collections::BTreeSet;

/// Textbook LRU cache: per-set MRU-ordered vectors.
struct ShadowCache {
    sets: Vec<Vec<(u64, LineState)>>,
    ways: usize,
}

impl ShadowCache {
    fn new(sets: usize, ways: usize) -> Self {
        Self {
            sets: vec![Vec::new(); sets],
            ways,
        }
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.sets.len() as u64) as usize
    }

    fn access(&mut self, block: u64) -> Option<LineState> {
        let s = self.set_of(block);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&(b, _)| b == block) {
            let entry = set.remove(pos);
            set.insert(0, entry);
            Some(entry.1)
        } else {
            None
        }
    }

    fn insert(&mut self, block: u64, state: LineState) -> Option<(u64, LineState)> {
        let s = self.set_of(block);
        let ways = self.ways;
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&(b, _)| b == block) {
            set.remove(pos);
            set.insert(0, (block, state));
            return None;
        }
        let victim = if set.len() == ways { set.pop() } else { None };
        set.insert(0, (block, state));
        victim
    }

    fn invalidate(&mut self, block: u64) -> Option<(u64, LineState)> {
        let s = self.set_of(block);
        let set = &mut self.sets[s];
        set.iter()
            .position(|&(b, _)| b == block)
            .map(|pos| set.remove(pos))
    }

    fn contents(&self) -> BTreeSet<(u64, LineState)> {
        self.sets.iter().flatten().copied().collect()
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Access(u64),
    Insert(u64, bool),
    Invalidate(u64),
}

fn random_op(rng: &mut SimRng, max_block: u64) -> Op {
    match rng.below(3) {
        0 => Op::Access(rng.below(max_block)),
        1 => Op::Insert(rng.below(max_block), rng.chance(0.5)),
        _ => Op::Invalidate(rng.below(max_block)),
    }
}

fn state_of(dirty: bool) -> LineState {
    if dirty {
        LineState::Modified
    } else {
        LineState::Shared
    }
}

fn line_key(line: &CacheLine) -> (u64, LineState) {
    (line.block.raw(), line.state)
}

/// The real cache and the shadow model agree on every operation's result and
/// on the final contents, across many random geometries and op sequences.
#[test]
fn lru_cache_matches_shadow_model() {
    let mut rng = SimRng::from_seed(0x5AD0);
    for _case in 0..128 {
        let ways = 1 + rng.index(7);
        let sets = 1usize << rng.index(4);
        let geom = CacheGeometry::new(sets * ways * 64, ways, 1).unwrap();
        let mut real = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        let mut shadow = ShadowCache::new(sets, ways);

        let ops = 1 + rng.index(500);
        for _ in 0..ops {
            match random_op(&mut rng, 128) {
                Op::Access(b) => {
                    let r = real.access(BlockAddr::new(b));
                    let s = shadow.access(b);
                    assert_eq!(r, s, "access diverged at block {b}");
                }
                Op::Insert(b, dirty) => {
                    let r = real.insert(BlockAddr::new(b), state_of(dirty));
                    let s = shadow.insert(b, state_of(dirty));
                    assert_eq!(
                        r.as_ref().map(line_key),
                        s,
                        "insert victim diverged at block {b}"
                    );
                }
                Op::Invalidate(b) => {
                    let r = real.invalidate(BlockAddr::new(b));
                    let s = shadow.invalidate(b);
                    assert_eq!(
                        r.as_ref().map(line_key),
                        s,
                        "invalidate diverged at block {b}"
                    );
                }
            }
        }
        let real_contents: BTreeSet<_> = real.lines().map(|l| line_key(&l)).collect();
        assert_eq!(real_contents, shadow.contents(), "final contents diverged");
    }
}
