//! Differential testing: `SetAssocCache` against a naive shadow model.
//!
//! The shadow keeps, per set, a plain `Vec` of (block, state) in
//! most-recently-used order — the textbook definition of an LRU
//! set-associative cache. Every operation must produce identical hit/miss
//! results, identical victims, and identical final contents.

use consim_cache::{CacheLine, LineState, ReplacementPolicy, SetAssocCache};
use consim_types::{BlockAddr, CacheGeometry};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Textbook LRU cache: per-set MRU-ordered vectors.
struct ShadowCache {
    sets: Vec<Vec<(u64, LineState)>>,
    ways: usize,
}

impl ShadowCache {
    fn new(sets: usize, ways: usize) -> Self {
        Self {
            sets: vec![Vec::new(); sets],
            ways,
        }
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.sets.len() as u64) as usize
    }

    fn access(&mut self, block: u64) -> Option<LineState> {
        let s = self.set_of(block);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&(b, _)| b == block) {
            let entry = set.remove(pos);
            set.insert(0, entry);
            Some(entry.1)
        } else {
            None
        }
    }

    fn insert(&mut self, block: u64, state: LineState) -> Option<(u64, LineState)> {
        let s = self.set_of(block);
        let ways = self.ways;
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&(b, _)| b == block) {
            set.remove(pos);
            set.insert(0, (block, state));
            return None;
        }
        let victim = if set.len() == ways { set.pop() } else { None };
        set.insert(0, (block, state));
        victim
    }

    fn invalidate(&mut self, block: u64) -> Option<(u64, LineState)> {
        let s = self.set_of(block);
        let set = &mut self.sets[s];
        set.iter()
            .position(|&(b, _)| b == block)
            .map(|pos| set.remove(pos))
    }

    fn contents(&self) -> BTreeSet<(u64, LineState)> {
        self.sets.iter().flatten().copied().collect()
    }
}

#[derive(Debug, Clone)]
enum Op {
    Access(u64),
    Insert(u64, bool),
    Invalidate(u64),
}

fn any_op(max_block: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..max_block).prop_map(Op::Access),
        (0..max_block, any::<bool>()).prop_map(|(b, d)| Op::Insert(b, d)),
        (0..max_block).prop_map(Op::Invalidate),
    ]
}

fn state_of(dirty: bool) -> LineState {
    if dirty {
        LineState::Modified
    } else {
        LineState::Shared
    }
}

fn line_key(line: &CacheLine) -> (u64, LineState) {
    (line.block.raw(), line.state)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The real cache and the shadow model agree on every operation's
    /// result and on the final contents.
    #[test]
    fn lru_cache_matches_shadow_model(
        ops in prop::collection::vec(any_op(128), 1..500),
        ways in 1usize..8,
        sets_pow in 0u32..4,
    ) {
        let sets = 1usize << sets_pow;
        let geom = CacheGeometry::new(sets * ways * 64, ways, 1).unwrap();
        let mut real = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        let mut shadow = ShadowCache::new(sets, ways);

        for op in ops {
            match op {
                Op::Access(b) => {
                    let r = real.access(BlockAddr::new(b));
                    let s = shadow.access(b);
                    prop_assert_eq!(r, s, "access diverged at block {}", b);
                }
                Op::Insert(b, dirty) => {
                    let r = real.insert(BlockAddr::new(b), state_of(dirty));
                    let s = shadow.insert(b, state_of(dirty));
                    prop_assert_eq!(
                        r.as_ref().map(line_key),
                        s,
                        "insert victim diverged at block {}", b
                    );
                }
                Op::Invalidate(b) => {
                    let r = real.invalidate(BlockAddr::new(b));
                    let s = shadow.invalidate(b);
                    prop_assert_eq!(
                        r.as_ref().map(line_key),
                        s,
                        "invalidate diverged at block {}", b
                    );
                }
            }
        }
        let real_contents: BTreeSet<_> = real.lines().map(line_key).collect();
        prop_assert_eq!(real_contents, shadow.contents(), "final contents diverged");
    }
}
