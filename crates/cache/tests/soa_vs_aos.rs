//! Differential pinning of the flat SoA [`SetAssocCache`] against the
//! retained per-set AoS reference model ([`CacheSet`]).
//!
//! The production cache stores flat tag/state/recency planes; `CacheSet`
//! is the original boxed-per-set formulation, kept as the executable
//! specification. These tests drive identical seeded operation streams
//! through both and require exact agreement at every step — hit states,
//! eviction victims, masked (way-partitioned) allocation, and behaviour
//! after a mid-stream snapshot round-trip of the flat planes — for all
//! three replacement policies.

use consim_cache::set::CacheSet;
use consim_cache::{CacheLine, LineState, ReplacementPolicy, SetAssocCache};
use consim_snap::{SectionBuf, SectionReader, Snapshot};
use consim_types::rng::SimRng;
use consim_types::{BlockAddr, CacheGeometry};

const POLICIES: [ReplacementPolicy; 3] = [
    ReplacementPolicy::Lru,
    ReplacementPolicy::TreePlru,
    ReplacementPolicy::Random,
];

/// The AoS shadow: one [`CacheSet`] per set, indexed like the production
/// cache (low bits of the block address), with Random replacement seeded
/// by the set index — the same per-set streams [`SetAssocCache`] draws.
struct AosShadow {
    sets: Vec<CacheSet>,
}

impl AosShadow {
    fn new(policy: ReplacementPolicy, num_sets: usize, ways: usize) -> Self {
        Self {
            sets: (0..num_sets)
                .map(|i| CacheSet::new(policy, ways, i as u64))
                .collect(),
        }
    }

    fn set_of(&mut self, block: BlockAddr) -> &mut CacheSet {
        let idx = (block.raw() % self.sets.len() as u64) as usize;
        &mut self.sets[idx]
    }
}

/// One operation of the seeded stream.
#[derive(Debug, Clone, Copy)]
enum Op {
    Probe(BlockAddr),
    Access(BlockAddr),
    Insert(BlockAddr, LineState),
    InsertInWays(BlockAddr, LineState, u64),
    SetState(BlockAddr, LineState),
    Invalidate(BlockAddr),
}

fn gen_op(rng: &mut SimRng, ways: usize) -> Op {
    // A small block universe over many sets forces constant conflicts.
    let block = BlockAddr::new(rng.below(96));
    let state = match rng.index(3) {
        0 => LineState::Shared,
        1 => LineState::Exclusive,
        _ => LineState::Modified,
    };
    match rng.index(6) {
        0 => Op::Probe(block),
        1 => Op::Access(block),
        2 => Op::Insert(block, state),
        3 => {
            // Split the ways in half by block parity, like two VMs under
            // way partitioning.
            let half = ways / 2;
            let low = (1u64 << half) - 1;
            let mask = if block.raw().is_multiple_of(2) {
                low
            } else {
                ((1u64 << ways) - 1) & !low
            };
            Op::InsertInWays(block, state, mask)
        }
        4 => Op::SetState(block, state),
        _ => Op::Invalidate(block),
    }
}

/// Applies one op to both formulations and asserts exact agreement.
fn apply_both(op: Op, soa: &mut SetAssocCache, aos: &mut AosShadow, ctx: &str) {
    let line = |l: CacheLine| (l.block, l.state);
    match op {
        Op::Probe(b) => {
            assert_eq!(soa.probe(b), aos.set_of(b).probe(b), "{ctx}: probe {op:?}");
        }
        Op::Access(b) => {
            assert_eq!(
                soa.access(b),
                aos.set_of(b).access(b),
                "{ctx}: access {op:?}"
            );
        }
        Op::Insert(b, s) => {
            assert_eq!(
                soa.insert(b, s).map(line),
                aos.set_of(b).insert(b, s).map(line),
                "{ctx}: victim of {op:?}"
            );
        }
        Op::InsertInWays(b, s, m) => {
            assert_eq!(
                soa.insert_in_ways(b, s, m).map(line),
                aos.set_of(b).insert_in_ways(b, s, m).map(line),
                "{ctx}: victim of {op:?}"
            );
        }
        Op::SetState(b, s) => {
            assert_eq!(
                soa.set_state(b, s),
                aos.set_of(b).set_state(b, s),
                "{ctx}: {op:?}"
            );
        }
        Op::Invalidate(b) => {
            assert_eq!(
                soa.invalidate(b).map(line),
                aos.set_of(b).invalidate(b).map(line),
                "{ctx}: {op:?}"
            );
        }
    }
    let aos_occupancy: usize = aos.sets.iter().map(CacheSet::occupancy).sum();
    assert_eq!(
        soa.occupancy(),
        aos_occupancy,
        "{ctx}: occupancy after {op:?}"
    );
}

/// Full-content comparison: the same lines in the same sets.
fn assert_same_contents(soa: &SetAssocCache, aos: &AosShadow, ctx: &str) {
    let num_sets = aos.sets.len() as u64;
    let mut soa_lines: Vec<(u64, u64, LineState)> = soa
        .lines()
        .map(|l| (l.block.raw() % num_sets, l.block.raw(), l.state))
        .collect();
    soa_lines.sort();
    let mut aos_lines: Vec<(u64, u64, LineState)> = aos
        .sets
        .iter()
        .enumerate()
        .flat_map(|(i, set)| set.lines().map(move |l| (i as u64, l.block.raw(), l.state)))
        .collect();
    aos_lines.sort();
    assert_eq!(soa_lines, aos_lines, "{ctx}: cache contents diverged");
}

fn geometry(num_sets: usize, ways: usize) -> CacheGeometry {
    CacheGeometry::new(num_sets * ways * 64, ways, 1).expect("valid geometry")
}

#[test]
fn soa_matches_aos_on_seeded_op_streams() {
    for policy in POLICIES {
        for (num_sets, ways, seed) in [(8, 4, 11u64), (4, 2, 12), (16, 8, 13), (1, 4, 14)] {
            let mut soa = SetAssocCache::new(geometry(num_sets, ways), policy);
            let mut aos = AosShadow::new(policy, num_sets, ways);
            let mut rng = SimRng::from_seed(seed).derive("soa-vs-aos");
            let ctx = format!("{policy:?} {num_sets}x{ways} seed {seed}");
            for step in 0..4_000 {
                let op = gen_op(&mut rng, ways);
                apply_both(op, &mut soa, &mut aos, &format!("{ctx} step {step}"));
            }
            assert_same_contents(&soa, &aos, &ctx);
        }
    }
}

#[test]
fn soa_matches_aos_after_mid_stream_snapshot_round_trip() {
    // Save the flat planes mid-stream, restore into a fresh cache, and
    // keep comparing against the *uninterrupted* AoS shadow: the snapshot
    // must preserve contents, recency order, and (for Random) the per-set
    // RNG streams exactly, or the post-restore victims diverge.
    for policy in POLICIES {
        let (num_sets, ways) = (8, 4);
        let mut soa = SetAssocCache::new(geometry(num_sets, ways), policy);
        let mut aos = AosShadow::new(policy, num_sets, ways);
        let mut rng = SimRng::from_seed(77).derive("soa-vs-aos/snap");
        let ctx = format!("{policy:?} pre-snapshot");
        for step in 0..1_500 {
            let op = gen_op(&mut rng, ways);
            apply_both(op, &mut soa, &mut aos, &format!("{ctx} step {step}"));
        }

        let mut buf = SectionBuf::new();
        soa.save(&mut buf);
        let mut restored = SetAssocCache::new(geometry(num_sets, ways), policy);
        restored
            .restore(&mut SectionReader::new("soa-vs-aos", buf.as_bytes()))
            .expect("snapshot round-trip");
        assert_eq!(restored.occupancy(), soa.occupancy(), "{policy:?}");
        assert_eq!(restored.stats(), soa.stats(), "{policy:?}");

        let ctx = format!("{policy:?} post-restore");
        for step in 0..1_500 {
            let op = gen_op(&mut rng, ways);
            apply_both(op, &mut restored, &mut aos, &format!("{ctx} step {step}"));
        }
        assert_same_contents(&restored, &aos, &ctx);
    }
}

#[test]
fn masked_and_plain_inserts_agree_across_formulations() {
    // A pure allocation workload (no invalidations) leaning on the
    // partitioned fill path: every eviction decision must match,
    // including the Random policy's draw parity (plain inserts draw
    // index(ways), masked ones index(popcount)).
    for policy in POLICIES {
        let (num_sets, ways) = (4, 4);
        let mut soa = SetAssocCache::new(geometry(num_sets, ways), policy);
        let mut aos = AosShadow::new(policy, num_sets, ways);
        let mut rng = SimRng::from_seed(5).derive("soa-vs-aos/masked");
        for step in 0..3_000 {
            let block = BlockAddr::new(rng.below(64));
            let masked = rng.chance(0.5);
            let op = if masked {
                let mask = if block.raw().is_multiple_of(2) {
                    0b0011
                } else {
                    0b1100
                };
                Op::InsertInWays(block, LineState::Shared, mask)
            } else {
                Op::Insert(block, LineState::Exclusive)
            };
            apply_both(
                op,
                &mut soa,
                &mut aos,
                &format!("{policy:?} masked-mix step {step}"),
            );
        }
        assert_same_contents(&soa, &aos, &format!("{policy:?} masked-mix"));
    }
}
