//! Randomized property tests for the cache substrate.
//!
//! Each test drives the cache with deterministic pseudo-random operation
//! sequences (seeded `SimRng` streams, many iterations per test) and checks
//! invariants that must hold for *every* sequence.

use consim_cache::{LineState, ReplacementPolicy, SetAssocCache};
use consim_types::{BlockAddr, CacheGeometry, SimRng};
use std::collections::HashSet;

const POLICIES: [ReplacementPolicy; 3] = [
    ReplacementPolicy::Lru,
    ReplacementPolicy::TreePlru,
    ReplacementPolicy::Random,
];

/// Randomized cache operations.
#[derive(Debug, Clone, Copy)]
enum Op {
    Access(u64),
    Insert(u64, bool),
    Invalidate(u64),
}

fn random_op(rng: &mut SimRng, max_block: u64) -> Op {
    match rng.below(3) {
        0 => Op::Access(rng.below(max_block)),
        1 => Op::Insert(rng.below(max_block), rng.chance(0.5)),
        _ => Op::Invalidate(rng.below(max_block)),
    }
}

/// Occupancy never exceeds capacity, and stored blocks are unique.
#[test]
fn capacity_and_uniqueness_invariants() {
    let mut rng = SimRng::from_seed(0xCAC4E);
    for policy in POLICIES {
        for _case in 0..32 {
            let geom = CacheGeometry::new(8 * 64 * 4, 4, 1).unwrap(); // 4-way, 8 sets
            let mut cache = SetAssocCache::new(geom, policy);
            let ops = 1 + rng.index(400);
            for _ in 0..ops {
                match random_op(&mut rng, 512) {
                    Op::Access(b) => {
                        cache.access(BlockAddr::new(b));
                    }
                    Op::Insert(b, dirty) => {
                        let state = if dirty {
                            LineState::Modified
                        } else {
                            LineState::Shared
                        };
                        cache.insert(BlockAddr::new(b), state);
                    }
                    Op::Invalidate(b) => {
                        cache.invalidate(BlockAddr::new(b));
                    }
                }
                assert!(cache.occupancy() <= cache.capacity());
                let blocks: Vec<_> = cache.lines().map(|l| l.block).collect();
                let unique: HashSet<_> = blocks.iter().copied().collect();
                assert_eq!(blocks.len(), unique.len(), "duplicate block in cache");
            }
        }
    }
}

/// After an insert the block is always findable until evicted or
/// invalidated, and a probe agrees with access.
#[test]
fn inserted_blocks_are_findable() {
    let mut rng = SimRng::from_seed(0xF1DE);
    for policy in POLICIES {
        for _case in 0..32 {
            let geom = CacheGeometry::new(64 * 64 * 8, 8, 1).unwrap();
            let mut cache = SetAssocCache::new(geom, policy);
            let inserts = 1 + rng.index(100);
            for _ in 0..inserts {
                let block = BlockAddr::new(rng.below(256));
                cache.insert(block, LineState::Exclusive);
                assert!(cache.contains(block), "just-inserted block missing");
                assert_eq!(cache.probe(block), cache.access(block));
            }
        }
    }
}

/// Hit+miss counts always equal the number of accesses performed.
#[test]
fn stats_balance() {
    let mut rng = SimRng::from_seed(0x57A75);
    for _case in 0..64 {
        let geom = CacheGeometry::new(4 * 64 * 2, 2, 1).unwrap();
        let mut cache = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        let mut expected_accesses = 0u64;
        let ops = 1 + rng.index(300);
        for _ in 0..ops {
            match random_op(&mut rng, 128) {
                Op::Access(b) => {
                    cache.access(BlockAddr::new(b));
                    expected_accesses += 1;
                }
                Op::Insert(b, _) => {
                    cache.insert(BlockAddr::new(b), LineState::Shared);
                }
                Op::Invalidate(b) => {
                    cache.invalidate(BlockAddr::new(b));
                }
            }
        }
        assert_eq!(cache.stats().accesses(), expected_accesses);
    }
}

/// LRU caches never evict the most-recently-used line.
#[test]
fn lru_never_evicts_mru() {
    let mut rng = SimRng::from_seed(0x14B);
    for _case in 0..64 {
        let geom = CacheGeometry::new(2 * 64, 2, 1).unwrap(); // 2-way, 1 set
        let mut cache = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        let mut last: Option<BlockAddr> = None;
        let inserts = 2 + rng.index(198);
        for _ in 0..inserts {
            let block = BlockAddr::new(rng.below(64));
            if let Some(victim) = cache.insert(block, LineState::Shared) {
                if let Some(mru) = last {
                    if mru != block {
                        assert_ne!(victim.block, mru, "evicted the MRU line");
                    }
                }
            }
            last = Some(block);
        }
    }
}

/// Invalidation is idempotent and removes exactly the named block.
#[test]
fn invalidate_exactness() {
    let mut rng = SimRng::from_seed(0x17A11D);
    for _case in 0..64 {
        let geom = CacheGeometry::new(16 * 64 * 16, 16, 1).unwrap();
        let mut cache = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        let inserts = 1 + rng.index(60);
        for _ in 0..inserts {
            cache.insert(BlockAddr::new(rng.below(64)), LineState::Shared);
        }
        let target = rng.below(64);
        let before: HashSet<_> = cache.lines().map(|l| l.block).collect();
        let removed = cache.invalidate(BlockAddr::new(target));
        let after: HashSet<_> = cache.lines().map(|l| l.block).collect();
        if removed.is_some() {
            assert!(before.contains(&BlockAddr::new(target)));
            assert!(!after.contains(&BlockAddr::new(target)));
            assert_eq!(before.len(), after.len() + 1);
        } else {
            assert_eq!(before, after);
        }
        assert!(cache.invalidate(BlockAddr::new(target)).is_none());
    }
}
