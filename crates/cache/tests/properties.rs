//! Property-based tests for the cache substrate.

use consim_cache::{LineState, ReplacementPolicy, SetAssocCache};
use consim_types::{BlockAddr, CacheGeometry};
use proptest::prelude::*;
use std::collections::HashSet;

fn any_policy() -> impl Strategy<Value = ReplacementPolicy> {
    prop_oneof![
        Just(ReplacementPolicy::Lru),
        Just(ReplacementPolicy::TreePlru),
        Just(ReplacementPolicy::Random),
    ]
}

/// Cache operations driven by proptest.
#[derive(Debug, Clone)]
enum Op {
    Access(u64),
    Insert(u64, bool),
    Invalidate(u64),
}

fn any_op(max_block: u64) -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..max_block).prop_map(Op::Access),
        (0..max_block, any::<bool>()).prop_map(|(b, dirty)| Op::Insert(b, dirty)),
        (0..max_block).prop_map(Op::Invalidate),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Occupancy never exceeds capacity, and stored blocks are unique.
    #[test]
    fn capacity_and_uniqueness_invariants(
        policy in any_policy(),
        ops in prop::collection::vec(any_op(512), 1..400),
    ) {
        let geom = CacheGeometry::new(8 * 64 * 4, 4, 1).unwrap(); // 4-way, 8 sets
        let mut cache = SetAssocCache::new(geom, policy);
        for op in ops {
            match op {
                Op::Access(b) => { cache.access(BlockAddr::new(b)); }
                Op::Insert(b, dirty) => {
                    let state = if dirty { LineState::Modified } else { LineState::Shared };
                    cache.insert(BlockAddr::new(b), state);
                }
                Op::Invalidate(b) => { cache.invalidate(BlockAddr::new(b)); }
            }
            prop_assert!(cache.occupancy() <= cache.capacity());
            let blocks: Vec<_> = cache.lines().map(|l| l.block).collect();
            let unique: HashSet<_> = blocks.iter().copied().collect();
            prop_assert_eq!(blocks.len(), unique.len(), "duplicate block in cache");
        }
    }

    /// After an insert the block is always findable until evicted or
    /// invalidated, and a probe agrees with access.
    #[test]
    fn inserted_blocks_are_findable(
        policy in any_policy(),
        blocks in prop::collection::vec(0u64..256, 1..100),
    ) {
        let geom = CacheGeometry::new(64 * 64 * 8, 8, 1).unwrap();
        let mut cache = SetAssocCache::new(geom, policy);
        for b in blocks {
            let block = BlockAddr::new(b);
            cache.insert(block, LineState::Exclusive);
            prop_assert!(cache.contains(block), "just-inserted block missing");
            prop_assert_eq!(cache.probe(block), cache.access(block));
        }
    }

    /// Hit+miss counts always equal the number of accesses performed.
    #[test]
    fn stats_balance(
        ops in prop::collection::vec(any_op(128), 1..300),
    ) {
        let geom = CacheGeometry::new(4 * 64 * 2, 2, 1).unwrap();
        let mut cache = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        let mut expected_accesses = 0u64;
        for op in ops {
            match op {
                Op::Access(b) => {
                    cache.access(BlockAddr::new(b));
                    expected_accesses += 1;
                }
                Op::Insert(b, _) => { cache.insert(BlockAddr::new(b), LineState::Shared); }
                Op::Invalidate(b) => { cache.invalidate(BlockAddr::new(b)); }
            }
        }
        prop_assert_eq!(cache.stats().accesses(), expected_accesses);
    }

    /// LRU caches never evict the most-recently-used line.
    #[test]
    fn lru_never_evicts_mru(
        blocks in prop::collection::vec(0u64..64, 2..200),
    ) {
        let geom = CacheGeometry::new(2 * 64, 2, 1).unwrap(); // 2-way, 1 set
        let mut cache = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        let mut last: Option<BlockAddr> = None;
        for b in blocks {
            let block = BlockAddr::new(b);
            if let Some(victim) = cache.insert(block, LineState::Shared) {
                if let Some(mru) = last {
                    if mru != block {
                        prop_assert_ne!(victim.block, mru, "evicted the MRU line");
                    }
                }
            }
            last = Some(block);
        }
    }

    /// Invalidation is idempotent and removes exactly the named block.
    #[test]
    fn invalidate_exactness(
        blocks in prop::collection::vec(0u64..64, 1..60),
        target in 0u64..64,
    ) {
        let geom = CacheGeometry::new(16 * 64 * 16, 16, 1).unwrap();
        let mut cache = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        for b in &blocks {
            cache.insert(BlockAddr::new(*b), LineState::Shared);
        }
        let before: HashSet<_> = cache.lines().map(|l| l.block).collect();
        let removed = cache.invalidate(BlockAddr::new(target));
        let after: HashSet<_> = cache.lines().map(|l| l.block).collect();
        if removed.is_some() {
            prop_assert!(before.contains(&BlockAddr::new(target)));
            prop_assert!(!after.contains(&BlockAddr::new(target)));
            prop_assert_eq!(before.len(), after.len() + 1);
        } else {
            prop_assert_eq!(&before, &after);
        }
        prop_assert!(cache.invalidate(BlockAddr::new(target)).is_none());
    }
}
