//! The paper's Table IV workload mixes.
//!
//! Nine heterogeneous mixes (pairings of TPC-W, SPECjbb, TPC-H at 3:1, 2:2,
//! and 1:3 ratios) and four homogeneous mixes (four copies of each
//! workload). SPECweb appears only in its homogeneous mix — the paper could
//! not combine it heterogeneously "due to issues with the workload driver",
//! and we reproduce the same experiment set.

use consim_workload::WorkloadKind;
use std::fmt;

/// Identifies one experimental mix from Table IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MixId {
    /// Heterogeneous mixes 1–9.
    Heterogeneous(u8),
    /// Homogeneous mixes A–D.
    Homogeneous(char),
}

impl fmt::Display for MixId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MixId::Heterogeneous(n) => write!(f, "Mix {n}"),
            MixId::Homogeneous(c) => write!(f, "Mix {c}"),
        }
    }
}

/// One consolidated workload mix: which workloads run, with multiplicity.
///
/// # Examples
///
/// ```
/// use consim::mix::{Mix, MixId};
/// use consim_workload::WorkloadKind;
///
/// let mix5 = Mix::heterogeneous(5).unwrap();
/// assert_eq!(mix5.id(), MixId::Heterogeneous(5));
/// assert_eq!(mix5.instances(), [
///     WorkloadKind::SpecJbb, WorkloadKind::SpecJbb,
///     WorkloadKind::TpcH, WorkloadKind::TpcH,
/// ]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mix {
    id: MixId,
    instances: Vec<WorkloadKind>,
}

impl Mix {
    /// The heterogeneous mixes of Table IV.
    ///
    /// | Mix | Composition |
    /// |-----|-------------|
    /// | 1   | TPC-W (3) & TPC-H (1) |
    /// | 2   | TPC-W (2) & TPC-H (2) |
    /// | 3   | TPC-W (1) & TPC-H (3) |
    /// | 4   | SPECjbb (3) & TPC-H (1) |
    /// | 5   | SPECjbb (2) & TPC-H (2) |
    /// | 6   | SPECjbb (1) & TPC-H (3) |
    /// | 7   | SPECjbb (3) & TPC-W (1) |
    /// | 8   | SPECjbb (2) & TPC-W (2) |
    /// | 9   | SPECjbb (1) & TPC-W (3) |
    ///
    /// Returns `None` for numbers outside 1–9.
    pub fn heterogeneous(number: u8) -> Option<Mix> {
        use WorkloadKind::{SpecJbb, TpcH, TpcW};
        let (major, minor, majors) = match number {
            1..=3 => (TpcW, TpcH, 4 - number),
            4..=6 => (SpecJbb, TpcH, 4 - (number - 3)),
            7..=9 => (SpecJbb, TpcW, 4 - (number - 6)),
            _ => return None,
        };
        let mut instances = vec![major; majors as usize];
        instances.extend(std::iter::repeat_n(minor, 4 - majors as usize));
        Some(Mix {
            id: MixId::Heterogeneous(number),
            instances,
        })
    }

    /// The homogeneous mixes of Table IV: A = TPC-W (4), B = TPC-H (4),
    /// C = SPECjbb (4), D = SPECweb (4).
    ///
    /// Returns `None` for letters outside A–D.
    pub fn homogeneous(letter: char) -> Option<Mix> {
        let kind = match letter {
            'A' => WorkloadKind::TpcW,
            'B' => WorkloadKind::TpcH,
            'C' => WorkloadKind::SpecJbb,
            'D' => WorkloadKind::SpecWeb,
            _ => return None,
        };
        Some(Mix {
            id: MixId::Homogeneous(letter),
            instances: vec![kind; 4],
        })
    }

    /// All nine heterogeneous mixes, in order.
    pub fn all_heterogeneous() -> Vec<Mix> {
        (1..=9)
            .map(|n| Mix::heterogeneous(n).expect("in range"))
            .collect()
    }

    /// All four homogeneous mixes, in order.
    pub fn all_homogeneous() -> Vec<Mix> {
        ['A', 'B', 'C', 'D']
            .into_iter()
            .map(|c| Mix::homogeneous(c).expect("in range"))
            .collect()
    }

    /// The mix's Table IV identifier.
    pub fn id(&self) -> MixId {
        self.id
    }

    /// The workload of each VM, in VM order.
    pub fn instances(&self) -> &[WorkloadKind] {
        &self.instances
    }

    /// The distinct workloads in this mix, in first-appearance order.
    pub fn distinct_workloads(&self) -> Vec<WorkloadKind> {
        let mut seen = Vec::new();
        for &k in &self.instances {
            if !seen.contains(&k) {
                seen.push(k);
            }
        }
        seen
    }

    /// Number of instances of `kind` in the mix.
    pub fn count_of(&self, kind: WorkloadKind) -> usize {
        self.instances.iter().filter(|&&k| k == kind).count()
    }
}

impl fmt::Display for Mix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [", self.id)?;
        for (i, kind) in self.distinct_workloads().iter().enumerate() {
            if i > 0 {
                write!(f, " & ")?;
            }
            write!(f, "{} ({})", kind, self.count_of(*kind))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use WorkloadKind::{SpecJbb, SpecWeb, TpcH, TpcW};

    #[test]
    fn heterogeneous_compositions_match_table4() {
        let cases: [(u8, WorkloadKind, usize, WorkloadKind, usize); 9] = [
            (1, TpcW, 3, TpcH, 1),
            (2, TpcW, 2, TpcH, 2),
            (3, TpcW, 1, TpcH, 3),
            (4, SpecJbb, 3, TpcH, 1),
            (5, SpecJbb, 2, TpcH, 2),
            (6, SpecJbb, 1, TpcH, 3),
            (7, SpecJbb, 3, TpcW, 1),
            (8, SpecJbb, 2, TpcW, 2),
            (9, SpecJbb, 1, TpcW, 3),
        ];
        for (n, a, ca, b, cb) in cases {
            let mix = Mix::heterogeneous(n).unwrap();
            assert_eq!(mix.count_of(a), ca, "Mix {n}");
            assert_eq!(mix.count_of(b), cb, "Mix {n}");
            assert_eq!(mix.instances().len(), 4, "Mix {n}");
        }
    }

    #[test]
    fn homogeneous_compositions_match_table4() {
        assert_eq!(Mix::homogeneous('A').unwrap().count_of(TpcW), 4);
        assert_eq!(Mix::homogeneous('B').unwrap().count_of(TpcH), 4);
        assert_eq!(Mix::homogeneous('C').unwrap().count_of(SpecJbb), 4);
        assert_eq!(Mix::homogeneous('D').unwrap().count_of(SpecWeb), 4);
    }

    #[test]
    fn out_of_range_mixes_are_none() {
        assert!(Mix::heterogeneous(0).is_none());
        assert!(Mix::heterogeneous(10).is_none());
        assert!(Mix::homogeneous('E').is_none());
        assert!(Mix::homogeneous('a').is_none());
    }

    #[test]
    fn specweb_never_appears_heterogeneously() {
        for mix in Mix::all_heterogeneous() {
            assert_eq!(mix.count_of(SpecWeb), 0, "{mix}");
        }
    }

    #[test]
    fn enumerations_are_complete() {
        assert_eq!(Mix::all_heterogeneous().len(), 9);
        assert_eq!(Mix::all_homogeneous().len(), 4);
    }

    #[test]
    fn display_formats() {
        let mix = Mix::heterogeneous(7).unwrap();
        assert_eq!(mix.to_string(), "Mix 7 [SPECjbb (3) & TPC-W (1)]");
        assert_eq!(
            Mix::homogeneous('B').unwrap().to_string(),
            "Mix B [TPC-H (4)]"
        );
    }

    #[test]
    fn distinct_workloads_order() {
        let mix = Mix::heterogeneous(9).unwrap();
        assert_eq!(mix.distinct_workloads(), vec![SpecJbb, TpcW]);
    }

    #[test]
    fn ids_display() {
        assert_eq!(MixId::Heterogeneous(3).to_string(), "Mix 3");
        assert_eq!(MixId::Homogeneous('D').to_string(), "Mix D");
    }
}
