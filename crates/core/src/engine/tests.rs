//! The engine test suite: end-to-end behavior, LLC prewarming, dynamic
//! rescheduling, issue-event remapping, and way partitioning. Lives beside
//! [`super`] (`engine.rs`) so tests keep access to crate-private state
//! (`core_thread`, the LLC banks, `remap_core_events`).

use super::*;

/// Records every QoS repartition decision plus how many accesses had
/// completed when it fired — the engine checks the boundary when an event
/// pops, *before* simulating that event's access, so `steps_at[i]` is the
/// exact `advance` budget that checkpoints just ahead of decision `i`.
#[derive(Default)]
struct RepartProbe {
    steps: u64,
    decisions: Vec<crate::qos::RepartitionDecision>,
    steps_at: Vec<u64>,
}

impl StepObserver for RepartProbe {
    fn on_step(&mut self, _: &AccessStep) {
        self.steps += 1;
    }

    fn on_repartition(&mut self, decision: &crate::qos::RepartitionDecision) {
        self.decisions.push(decision.clone());
        self.steps_at.push(self.steps);
    }
}

mod behavior {
    use super::*;
    use consim_types::config::SharingDegree;
    use consim_workload::{WorkloadKind, WorkloadProfileBuilder};

    fn tiny_profile() -> WorkloadProfile {
        WorkloadProfileBuilder::new("tiny")
            .footprint_blocks(4_000)
            .shared_fraction(0.5)
            .shared_access_prob(0.5)
            .shared_write_prob(0.1)
            .build()
            .unwrap()
    }

    fn quick_config(
        sharing: SharingDegree,
        policy: SchedulingPolicy,
        vms: usize,
    ) -> SimulationConfig {
        let mut b = SimulationConfig::builder();
        b.machine(MachineConfig::paper_default().with_sharing(sharing))
            .policy(policy)
            .refs_per_vm(3_000)
            .warmup_refs_per_vm(1_000)
            .seed(7);
        for _ in 0..vms {
            b.workload(tiny_profile());
        }
        b.build().unwrap()
    }

    #[test]
    fn builder_rejects_empty_and_oversubscribed() {
        assert!(SimulationConfig::builder().build().is_err());
        let mut b = SimulationConfig::builder();
        for _ in 0..5 {
            b.workload(tiny_profile());
        }
        assert!(b.build().is_err(), "20 threads on 16 cores");
    }

    #[test]
    fn single_vm_runs_to_completion() {
        let cfg = quick_config(SharingDegree::SharedBy(4), SchedulingPolicy::Affinity, 1);
        let out = Simulation::new(cfg).unwrap().run().unwrap();
        let m = &out.vm_metrics[0];
        assert_eq!(m.refs, 3_000);
        assert!(m.completion.is_some());
        assert!(m.runtime_cycles() > 0);
        assert!(m.l0_hits + m.l1_hits + m.l1_misses == m.refs);
    }

    #[test]
    fn full_mix_all_vms_complete() {
        let cfg = quick_config(SharingDegree::SharedBy(4), SchedulingPolicy::RoundRobin, 4);
        let out = Simulation::new(cfg).unwrap().run().unwrap();
        assert_eq!(out.vm_metrics.len(), 4);
        for m in &out.vm_metrics {
            assert!(m.refs >= 3_000);
            assert!(m.completion.is_some());
        }
        assert!(out.measured_cycles > 0);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let cfg = quick_config(SharingDegree::SharedBy(4), SchedulingPolicy::Random, 4);
            let out = Simulation::new(cfg).unwrap().run().unwrap();
            (
                out.measured_cycles,
                out.vm_metrics
                    .iter()
                    .map(|m| m.l1_misses)
                    .collect::<Vec<_>>(),
                out.vm_metrics
                    .iter()
                    .map(|m| m.runtime_cycles())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut cfg = quick_config(SharingDegree::SharedBy(4), SchedulingPolicy::Affinity, 2);
            cfg.seed = seed;
            Simulation::new(cfg).unwrap().run().unwrap().measured_cycles
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn miss_accounting_balances() {
        let cfg = quick_config(SharingDegree::SharedBy(4), SchedulingPolicy::Affinity, 2);
        let out = Simulation::new(cfg).unwrap().run().unwrap();
        for m in &out.vm_metrics {
            let classified = m.c2c_l1_clean
                + m.c2c_l1_dirty
                + m.llc_local_hits
                + m.llc_remote_clean
                + m.llc_remote_dirty
                + m.memory_fetches
                + m.upgrades;
            assert_eq!(classified, m.l1_misses, "{m}");
            assert!(m.llc_miss_rate() <= 1.0);
            // Any real miss takes at least the LLC latency.
            if m.l1_misses > m.upgrades {
                assert!(m.mean_miss_latency() > 6.0);
            }
        }
    }

    #[test]
    fn isolation_idles_unused_cores() {
        let cfg = quick_config(SharingDegree::SharedBy(4), SchedulingPolicy::Affinity, 1);
        let sim = Simulation::new(cfg).unwrap();
        let bound: usize = sim.core_thread.iter().flatten().count();
        assert_eq!(bound, 4);
        let out = sim.run().unwrap();
        // Only one VM's metrics exist and they account for every reference.
        assert_eq!(out.vm_metrics.len(), 1);
    }

    #[test]
    fn sharing_produces_c2c_transfers() {
        let profile = WorkloadProfileBuilder::new("sharey")
            .footprint_blocks(2_000)
            .shared_fraction(0.8)
            .shared_access_prob(0.9)
            .shared_write_prob(0.2)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.machine(MachineConfig::paper_default().with_sharing(SharingDegree::Private))
            .policy(SchedulingPolicy::RoundRobin)
            .workload(profile)
            .refs_per_vm(5_000)
            .warmup_refs_per_vm(2_000)
            .seed(3);
        let out = Simulation::new(b.build().unwrap()).unwrap().run().unwrap();
        let m = &out.vm_metrics[0];
        assert!(
            m.cache_to_cache() > 0,
            "sharing workload must transfer: {m}"
        );
        assert!(
            m.c2c_l1_dirty > 0,
            "shared writes must produce dirty transfers"
        );
    }

    #[test]
    fn private_config_replicates_more_than_shared() {
        let run = |sharing| {
            let cfg = quick_config(sharing, SchedulingPolicy::RoundRobin, 4);
            let out = Simulation::new(cfg).unwrap().run().unwrap();
            out.replication.replicated_fraction()
        };
        let private = run(SharingDegree::Private);
        let shared = run(SharingDegree::FullyShared);
        assert_eq!(shared, 0.0, "a single bank cannot replicate");
        assert!(private > 0.0, "private banks must replicate shared data");
    }

    #[test]
    fn occupancy_shares_are_sane() {
        let cfg = quick_config(SharingDegree::SharedBy(4), SchedulingPolicy::RoundRobin, 4);
        let out = Simulation::new(cfg).unwrap().run().unwrap();
        for bank in &out.occupancy.share {
            let total: f64 = bank.iter().sum();
            assert!(total <= 1.0 + 1e-9, "bank over-occupied: {total}");
        }
    }

    #[test]
    fn upgrades_happen_for_read_then_write() {
        let profile = WorkloadProfileBuilder::new("rw")
            .footprint_blocks(1_000)
            .shared_fraction(0.9)
            .shared_access_prob(0.95)
            .shared_write_prob(0.3)
            .shared_zipf(0.9)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.workload(profile)
            .refs_per_vm(5_000)
            .warmup_refs_per_vm(0)
            .seed(1);
        let out = Simulation::new(b.build().unwrap()).unwrap().run().unwrap();
        assert!(out.vm_metrics[0].upgrades > 0);
    }

    #[test]
    fn protocol_stats_exposed() {
        let cfg = quick_config(SharingDegree::SharedBy(4), SchedulingPolicy::Affinity, 2);
        let out = Simulation::new(cfg).unwrap().run().unwrap();
        assert!(out.protocol.requests > 0);
        assert!(out.noc.packets > 0);
        assert!(out.dircache_hit_rate > 0.0 && out.dircache_hit_rate <= 1.0);
    }

    #[test]
    fn footprint_tracking_approaches_profile() {
        let profile = WorkloadProfileBuilder::new("fp")
            .footprint_blocks(1_000)
            .shared_zipf(0.05)
            .private_zipf(0.05)
            .recent_reuse_prob(0.0)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.workload(profile)
            .refs_per_vm(30_000)
            .warmup_refs_per_vm(0)
            .track_footprint(true)
            .seed(5);
        let out = Simulation::new(b.build().unwrap()).unwrap().run().unwrap();
        let fp = out.vm_metrics[0].footprint_blocks();
        assert!(fp > 900, "footprint {fp} of 1000");
    }

    #[test]
    fn kinds_run_end_to_end_smoke() {
        // Short smoke run of every real profile to catch integration panics.
        for kind in WorkloadKind::PAPER_SET {
            let mut b = SimulationConfig::builder();
            b.workload(kind.profile())
                .refs_per_vm(1_000)
                .warmup_refs_per_vm(200)
                .seed(2);
            let out = Simulation::new(b.build().unwrap()).unwrap().run().unwrap();
            assert!(out.vm_metrics[0].refs >= 1_000, "{kind}");
        }
    }
}

mod prewarm {
    use super::*;
    use consim_types::config::SharingDegree;
    use consim_workload::WorkloadProfileBuilder;

    fn config(prewarm: bool) -> SimulationConfig {
        let profile = WorkloadProfileBuilder::new("pw")
            .footprint_blocks(60_000)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.machine(MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4)))
            .policy(SchedulingPolicy::Affinity)
            .workload(profile)
            .refs_per_vm(5_000)
            .warmup_refs_per_vm(0)
            .prewarm_llc(prewarm)
            .seed(4);
        b.build().unwrap()
    }

    #[test]
    fn prewarming_cuts_cold_memory_fetches() {
        let cold = Simulation::new(config(false)).unwrap().run().unwrap();
        let warm = Simulation::new(config(true)).unwrap().run().unwrap();
        assert!(
            warm.vm_metrics[0].memory_fetches < cold.vm_metrics[0].memory_fetches / 2,
            "prewarm {} vs cold {}",
            warm.vm_metrics[0].memory_fetches,
            cold.vm_metrics[0].memory_fetches
        );
    }

    #[test]
    fn prewarm_respects_bank_ownership() {
        // With affinity, the single VM owns exactly one bank; prewarmed
        // lines must all land there.
        let sim = {
            let mut s = Simulation::new(config(true)).unwrap();
            s.prewarm_llc_banks(&mut None);
            s
        };
        let occupied: Vec<usize> = sim.llc.iter().map(|b| b.occupancy()).collect();
        let nonempty = occupied.iter().filter(|&&o| o > 0).count();
        assert_eq!(nonempty, 1, "occupancies: {occupied:?}");
    }

    #[test]
    fn prewarm_is_deterministic() {
        let a = Simulation::new(config(true)).unwrap().run().unwrap();
        let b = Simulation::new(config(true)).unwrap().run().unwrap();
        assert_eq!(a.measured_cycles, b.measured_cycles);
    }
}

mod resched {
    use super::*;
    use consim_types::config::SharingDegree;
    use consim_workload::WorkloadKind;

    fn config(policy: SchedulingPolicy, resched: Option<u64>) -> SimulationConfig {
        let mut b = SimulationConfig::builder();
        b.machine(MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4)))
            .policy(policy)
            .refs_per_vm(6_000)
            .warmup_refs_per_vm(1_000)
            .seed(11);
        if let Some(interval) = resched {
            b.reschedule_every(interval);
        }
        for _ in 0..4 {
            b.workload(WorkloadKind::TpcH.profile());
        }
        b.build().unwrap()
    }

    #[test]
    fn zero_interval_is_rejected() {
        let mut b = SimulationConfig::builder();
        b.workload(WorkloadKind::TpcH.profile()).reschedule_every(0);
        assert!(b.build().is_err());
    }

    #[test]
    fn deterministic_policies_are_unaffected_by_rescheduling() {
        // Affinity recomputes to the identical placement each epoch, so
        // dynamic rescheduling must be a behavioral no-op.
        let stat = Simulation::new(config(SchedulingPolicy::Affinity, None))
            .unwrap()
            .run()
            .unwrap();
        let dynamic = Simulation::new(config(SchedulingPolicy::Affinity, Some(50_000)))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(stat.measured_cycles, dynamic.measured_cycles);
    }

    #[test]
    fn random_rescheduling_survives_partial_occupancy() {
        // Regression (found by consim-check differential fuzzing): with
        // Random placement and fewer threads than cores, a reschedule can
        // change *which* cores are occupied. Pending issue events must be
        // remapped onto the newly occupied cores — previously this panicked
        // ("scheduled cores have threads") when a vacated core's event was
        // popped.
        let mut b = SimulationConfig::builder();
        b.machine(MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4)))
            .policy(SchedulingPolicy::Random)
            .refs_per_vm(3_000)
            .warmup_refs_per_vm(500)
            .reschedule_every(1_000)
            .seed(3);
        for _ in 0..2 {
            b.workload(WorkloadKind::TpcH.profile());
        }
        let out = Simulation::new(b.build().unwrap()).unwrap().run().unwrap();
        for m in &out.vm_metrics {
            assert_eq!(m.l0_hits + m.l1_hits + m.l1_misses, m.refs);
        }
    }

    #[test]
    fn random_rescheduling_costs_performance() {
        // Frequent random migration abandons warm caches; the machine must
        // get slower, not faster, and metrics stay balanced.
        let stat = Simulation::new(config(SchedulingPolicy::Random, None))
            .unwrap()
            .run()
            .unwrap();
        let churn = Simulation::new(config(SchedulingPolicy::Random, Some(20_000)))
            .unwrap()
            .run()
            .unwrap();
        assert!(
            churn.measured_cycles > stat.measured_cycles,
            "churn {} vs static {}",
            churn.measured_cycles,
            stat.measured_cycles
        );
        for m in &churn.vm_metrics {
            assert_eq!(m.l0_hits + m.l1_hits + m.l1_misses, m.refs);
        }
    }
}

mod remap {
    //! Direct unit tests for [`remap_core_events`], the post-reschedule
    //! issue-heap fixup exercised end-to-end by
    //! [`resched::random_rescheduling_survives_partial_occupancy`].

    use super::*;
    use consim_types::{ThreadId, VmId};

    fn thread(vm: usize, t: usize) -> Option<GlobalThreadId> {
        Some(GlobalThreadId::new(VmId::new(vm), ThreadId::new(t)))
    }

    fn heap_of(events: &[(u64, usize)]) -> BinaryHeap<Reverse<(u64, usize)>> {
        events.iter().copied().map(Reverse).collect()
    }

    fn sorted(heap: BinaryHeap<Reverse<(u64, usize)>>) -> Vec<(u64, usize)> {
        let mut v: Vec<_> = heap.into_iter().map(|Reverse(p)| p).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn unchanged_occupied_set_keeps_events_in_place() {
        let mut heap = heap_of(&[(10, 0), (30, 1)]);
        let occupied_before = [true, true, false, false];
        // Same cores occupied (the threads on them may have swapped).
        let core_thread = [thread(0, 0), thread(0, 1), None, None];
        remap_core_events(&mut heap, &occupied_before, &core_thread);
        assert_eq!(sorted(heap), vec![(10, 0), (30, 1)]);
    }

    #[test]
    fn orphaned_event_moves_to_the_fresh_core() {
        // The thread on core 1 migrated to core 3; its pending event must
        // follow, while core 0's event stays put.
        let mut heap = heap_of(&[(10, 0), (30, 1)]);
        let occupied_before = [true, true, false, false];
        let core_thread = [thread(0, 0), None, None, thread(0, 1)];
        remap_core_events(&mut heap, &occupied_before, &core_thread);
        assert_eq!(sorted(heap), vec![(10, 0), (30, 3)]);
    }

    #[test]
    fn orphans_remap_earliest_first_onto_ascending_fresh_cores() {
        // Both occupied cores vacated; their events land on the newly
        // occupied cores with the earliest event on the lowest core, so the
        // pairing is deterministic regardless of heap drain order.
        let mut heap = heap_of(&[(40, 0), (15, 1)]);
        let occupied_before = [true, true, false, false];
        let core_thread = [None, None, thread(0, 0), thread(0, 1)];
        remap_core_events(&mut heap, &occupied_before, &core_thread);
        assert_eq!(sorted(heap), vec![(15, 2), (40, 3)]);
    }
}

mod snap {
    //! Checkpoint/restore coverage: bit-identical resume equivalence at
    //! several cut points, byte-stable checkpoint output, and typed-error
    //! (never panic) handling of corrupted streams.

    use super::*;
    use consim_types::config::{CacheGeometry, MachineConfigBuilder, SharingDegree};
    use consim_types::SnapshotErrorKind;
    use consim_workload::WorkloadProfileBuilder;

    /// A small machine (256 KB LLC) so checkpoints stay compact and runs
    /// stay fast while still exercising banking, coherence, and contention.
    fn config(seed: u64, policy: SchedulingPolicy, resched: Option<u64>) -> SimulationConfig {
        let machine = MachineConfigBuilder::new()
            .llc(CacheGeometry::new(256 * 1024, 16, 6).unwrap())
            .sharing(SharingDegree::SharedBy(4))
            .build()
            .unwrap();
        let profile = WorkloadProfileBuilder::new("snappy")
            .footprint_blocks(8_000)
            .shared_fraction(0.5)
            .shared_access_prob(0.5)
            .shared_write_prob(0.1)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.machine(machine)
            .policy(policy)
            .refs_per_vm(3_000)
            .warmup_refs_per_vm(1_000)
            .track_footprint(true)
            .seed(seed);
        if let Some(interval) = resched {
            b.reschedule_every(interval);
        }
        for _ in 0..3 {
            b.workload(profile.clone());
        }
        b.build().unwrap()
    }

    /// Every observable quantity of an outcome, bit-exact (floats compared
    /// by representation).
    pub(super) fn fingerprint(out: &SimulationOutcome) -> Vec<u64> {
        let mut v = Vec::new();
        for m in &out.vm_metrics {
            v.extend([
                m.refs,
                m.writes,
                m.instructions,
                m.l0_hits,
                m.l1_hits,
                m.l1_misses,
                m.c2c_l1_clean,
                m.c2c_l1_dirty,
                m.llc_local_hits,
                m.llc_remote_clean,
                m.llc_remote_dirty,
                m.memory_fetches,
                m.upgrades,
                m.invalidations_received,
            ]);
            let (count, total, max, min) = m.miss_latency.raw_parts();
            v.extend([count, total, max, min]);
            v.push(m.completion.map(|c| c.raw()).unwrap_or(u64::MAX));
            v.push(m.footprint_blocks());
        }
        v.push(out.measured_cycles);
        v.extend([
            out.replication.total_lines,
            out.replication.replicated_lines,
        ]);
        for bank in &out.occupancy.share {
            v.extend(bank.iter().map(|s| s.to_bits()));
        }
        v.extend([
            out.noc.injected,
            out.noc.packets,
            out.noc.flits,
            out.noc.total_hops,
        ]);
        v.extend([
            out.protocol.requests,
            out.protocol.clean_transfers,
            out.protocol.dirty_transfers,
            out.protocol.upgrades,
            out.protocol.invalidations,
            out.protocol.writebacks,
        ]);
        v.push(out.dircache_hit_rate.to_bits());
        v.push(out.noc_mean_utilization.to_bits());
        v.push(out.noc_peak_utilization.to_bits());
        v
    }

    pub(super) fn checkpoint_at(cfg: SimulationConfig, accesses: u64) -> Vec<u8> {
        let mut sim = Simulation::new(cfg).unwrap();
        let status = sim.advance(accesses, None).unwrap();
        assert_eq!(status, RunStatus::Running, "cut point must be mid-run");
        let mut bytes = Vec::new();
        sim.checkpoint(&mut bytes).unwrap();
        bytes
    }

    #[test]
    fn resume_is_bit_identical_at_every_cut_point() {
        let straight = Simulation::new(config(42, SchedulingPolicy::Affinity, None))
            .unwrap()
            .run()
            .unwrap();
        let expected = fingerprint(&straight);
        // Mid-warmup, at the phase boundary's neighborhood, and mid-measure.
        for cut in [500, 3_000, 7_500] {
            let bytes = checkpoint_at(config(42, SchedulingPolicy::Affinity, None), cut);
            let resumed = Simulation::resume(&mut bytes.as_slice())
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(fingerprint(&resumed), expected, "cut at {cut} accesses");
        }
    }

    #[test]
    fn resume_before_first_advance_is_a_full_run() {
        let cfg = config(7, SchedulingPolicy::RoundRobin, None);
        let straight = Simulation::new(cfg.clone()).unwrap().run().unwrap();
        let mut bytes = Vec::new();
        Simulation::new(cfg)
            .unwrap()
            .checkpoint(&mut bytes)
            .unwrap();
        let resumed = Simulation::resume(&mut bytes.as_slice())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(fingerprint(&resumed), fingerprint(&straight));
    }

    #[test]
    fn resume_replays_dynamic_rescheduling_placement() {
        // Random placement with frequent rescheduling is the hardest case:
        // the placement at the cut point exists only as a derived stream.
        let cfg = || config(9, SchedulingPolicy::Random, Some(5_000));
        let straight = Simulation::new(cfg()).unwrap().run().unwrap();
        let bytes = checkpoint_at(cfg(), 6_000);
        let resumed_sim = Simulation::resume(&mut bytes.as_slice()).unwrap();
        assert!(
            resumed_sim.resched_epoch > 0,
            "cut must land past a reschedule"
        );
        let resumed = resumed_sim.run().unwrap();
        assert_eq!(fingerprint(&resumed), fingerprint(&straight));
    }

    #[test]
    fn resume_preserves_prewarmed_llc_state() {
        let mut cfg = config(3, SchedulingPolicy::Affinity, None);
        cfg.prewarm_llc = true;
        cfg.warmup_refs_per_vm = 0;
        let straight = Simulation::new(cfg.clone()).unwrap().run().unwrap();
        let bytes = checkpoint_at(cfg, 2_000);
        let resumed_sim = Simulation::resume(&mut bytes.as_slice()).unwrap();
        assert!(resumed_sim.prewarmed, "prewarm flag must survive");
        let resumed = resumed_sim.run().unwrap();
        assert_eq!(fingerprint(&resumed), fingerprint(&straight));
    }

    #[test]
    fn interleaved_advance_checkpoint_chain_matches_straight_run() {
        // Checkpoint → resume → checkpoint → resume ... every 900 accesses:
        // repeated serialization must not perturb the stream either.
        let straight = Simulation::new(config(5, SchedulingPolicy::RrAffinity, None))
            .unwrap()
            .run()
            .unwrap();
        let mut sim = Simulation::new(config(5, SchedulingPolicy::RrAffinity, None)).unwrap();
        loop {
            let status = sim.advance(900, None).unwrap();
            let mut bytes = Vec::new();
            sim.checkpoint(&mut bytes).unwrap();
            sim = Simulation::resume(&mut bytes.as_slice()).unwrap();
            if status == RunStatus::Complete {
                break;
            }
        }
        let resumed = sim.finish().unwrap();
        assert_eq!(fingerprint(&resumed), fingerprint(&straight));
    }

    #[test]
    fn checkpoint_bytes_are_deterministic() {
        let a = checkpoint_at(config(1, SchedulingPolicy::Affinity, None), 4_000);
        let b = checkpoint_at(config(1, SchedulingPolicy::Affinity, None), 4_000);
        assert_eq!(a, b, "identical states must serialize identically");
    }

    #[test]
    fn advance_past_completion_stays_complete() {
        let mut sim = Simulation::new(config(2, SchedulingPolicy::Affinity, None)).unwrap();
        assert_eq!(sim.advance(u64::MAX, None).unwrap(), RunStatus::Complete);
        assert_eq!(sim.advance(u64::MAX, None).unwrap(), RunStatus::Complete);
        assert!(sim.finish().is_ok());
    }

    #[test]
    fn finish_before_completion_is_an_error() {
        let mut sim = Simulation::new(config(2, SchedulingPolicy::Affinity, None)).unwrap();
        sim.advance(100, None).unwrap();
        let err = sim.finish().unwrap_err();
        assert!(
            err.to_string().contains("before the run completed"),
            "{err}"
        );
    }

    #[test]
    fn every_single_byte_flip_is_rejected_never_a_panic() {
        let bytes = checkpoint_at(config(6, SchedulingPolicy::Affinity, None), 2_500);
        // Scan with a stride that is coprime to all the record sizes, plus
        // the header and the tail, so every region gets hit.
        let offsets = (0..bytes.len()).step_by(997).chain([1, 5, bytes.len() - 1]);
        for offset in offsets {
            let mut bad = bytes.clone();
            bad[offset] ^= 0x40;
            let err = Simulation::resume(&mut bad.as_slice())
                .err()
                .unwrap_or_else(|| panic!("flip at {offset} must be rejected"));
            assert!(
                err.snapshot_kind().is_some(),
                "flip at {offset} gave a non-snapshot error: {err}"
            );
        }
    }

    #[test]
    fn truncation_at_any_prefix_is_typed() {
        let bytes = checkpoint_at(config(6, SchedulingPolicy::Affinity, None), 1_200);
        for len in (0..bytes.len()).step_by(509) {
            let err = Simulation::resume(&mut bytes[..len].as_ref())
                .expect_err("a truncated checkpoint must be rejected");
            assert!(
                err.snapshot_kind().is_some(),
                "prefix of {len} gave a non-snapshot error: {err}"
            );
        }
    }

    #[test]
    fn resume_rejects_wrong_magic_and_version() {
        let bytes = checkpoint_at(config(6, SchedulingPolicy::Affinity, None), 1_200);
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(
            Simulation::resume(&mut bad.as_slice())
                .unwrap_err()
                .snapshot_kind(),
            Some(SnapshotErrorKind::BadMagic)
        );
        let mut bad = bytes;
        bad[4] = 0xff;
        assert_eq!(
            Simulation::resume(&mut bad.as_slice())
                .unwrap_err()
                .snapshot_kind(),
            Some(SnapshotErrorKind::BadVersion)
        );
    }

    #[test]
    fn adopt_config_specializes_a_canonical_prewarm_checkpoint() {
        // The runner's prewarm-reuse path: checkpoint the canonical
        // prewarmed machine once, then resume + adopt per-cell run
        // parameters. Must equal building the cell directly.
        let mut cell = config(8, SchedulingPolicy::Affinity, None);
        cell.prewarm_llc = true;
        let direct = Simulation::new(cell.clone()).unwrap().run().unwrap();

        let canonical = crate::snapshot::prewarm_canonical_config(&cell);
        let mut warmed = Simulation::new(canonical).unwrap();
        warmed.prewarm();
        let mut bytes = Vec::new();
        warmed.checkpoint(&mut bytes).unwrap();

        let mut adopted = Simulation::resume(&mut bytes.as_slice()).unwrap();
        adopted.adopt_config(cell).unwrap();
        let via_cache = adopted.run().unwrap();
        assert_eq!(fingerprint(&via_cache), fingerprint(&direct));
    }

    /// A dynamic-QoS variant of [`config`]: a short repartition epoch, no
    /// dead-band, and an asymmetric VM mix so controller decisions land —
    /// and actually move ways — inside the measured window.
    fn dynamic_config(seed: u64) -> SimulationConfig {
        let policy = consim_types::config::DynamicPolicy {
            epoch_interval: 2_000,
            deadband_milli: 0,
            ..Default::default()
        };
        let machine = MachineConfigBuilder::new()
            .llc(CacheGeometry::new(256 * 1024, 16, 6).unwrap())
            .sharing(SharingDegree::SharedBy(4))
            .llc_partitioning(consim_types::LlcPartitioning::Dynamic(policy))
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.machine(machine)
            .policy(SchedulingPolicy::RoundRobin)
            .refs_per_vm(3_000)
            .warmup_refs_per_vm(1_000)
            .seed(seed);
        for (name, footprint) in [("resident", 3_000), ("streamy", 60_000), ("tiny", 256)] {
            b.workload(
                WorkloadProfileBuilder::new(name)
                    .footprint_blocks(footprint)
                    .build()
                    .unwrap(),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn resume_seam_on_a_repartition_boundary_is_bit_identical() {
        // The hard QoS seam: cut the run exactly where the controller acts.
        // Replaying `steps_at[i]` accesses stops just before the event that
        // triggers decision `i`, so the resumed run must re-take that
        // decision from restored controller state; one access later the
        // decision is already in the checkpoint (masks swapped) and must
        // not be taken again.
        let mut probe = RepartProbe::default();
        let mut sim = Simulation::new(dynamic_config(11)).unwrap();
        sim.advance(u64::MAX, Some(&mut probe)).unwrap();
        let straight = sim.finish().unwrap();
        let expected = fingerprint(&straight);
        let changed = probe
            .decisions
            .iter()
            .position(|d| d.changed())
            .expect("the asymmetric mix must trigger at least one mask change");
        let at = probe.steps_at[changed];
        for cut in [at, at + 1] {
            let bytes = checkpoint_at(dynamic_config(11), cut);
            let resumed = Simulation::resume(&mut bytes.as_slice())
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(fingerprint(&resumed), expected, "cut at {cut} accesses");
        }
    }
}

mod churn {
    //! VM lifecycle churn coverage: builder validation, end-to-end behavior
    //! of the birth–death process, and the hard checkpoint seams (cut
    //! exactly on a spawn, mid-migration, and retire-then-resume).

    use super::snap::{checkpoint_at, fingerprint};
    use super::*;
    use crate::churn::ChurnAction;
    use consim_types::config::{CacheGeometry, ChurnPolicy, MachineConfigBuilder, SharingDegree};
    use consim_workload::WorkloadProfileBuilder;

    /// Records every churn decision plus how many accesses had completed
    /// when it fired (same cut-point convention as `RepartProbe`).
    #[derive(Default)]
    struct ChurnProbe {
        steps: u64,
        decisions: Vec<crate::churn::ChurnDecision>,
        steps_at: Vec<u64>,
    }

    impl StepObserver for ChurnProbe {
        fn on_step(&mut self, _: &AccessStep) {
            self.steps += 1;
        }

        fn on_churn(&mut self, decision: &crate::churn::ChurnDecision) {
            self.decisions.push(decision.clone());
            self.steps_at.push(self.steps);
        }
    }

    fn policy() -> ChurnPolicy {
        ChurnPolicy {
            interval: 1_000,
            arrival_permille: vec![700; 4],
            departure_permille: vec![120; 4],
            migration_permille: 350,
            initial_active: 2,
            min_active: 1,
            migration_targets: None,
        }
    }

    /// Four 2-thread VMs on the 16-core machine: half the cores start
    /// free, so arrivals and migrations always have somewhere to land.
    fn config(seed: u64, churn: Option<ChurnPolicy>) -> SimulationConfig {
        let mut machine = MachineConfigBuilder::new();
        machine
            .llc(CacheGeometry::new(256 * 1024, 16, 6).unwrap())
            .sharing(SharingDegree::SharedBy(4));
        machine.churn(churn);
        let machine = machine.build().unwrap();
        let mut b = SimulationConfig::builder();
        b.machine(machine)
            .policy(SchedulingPolicy::RoundRobin)
            .refs_per_vm(4_000)
            .warmup_refs_per_vm(800)
            .seed(seed);
        for i in 0..4 {
            b.workload(
                WorkloadProfileBuilder::new(format!("churny-{i}"))
                    .threads(2)
                    .footprint_blocks(6_000)
                    .shared_fraction(0.4)
                    .shared_access_prob(0.4)
                    .shared_write_prob(0.1)
                    .build()
                    .unwrap(),
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn builder_rejects_degenerate_churn_configs() {
        // Rate vectors must cover the whole mix.
        let mut bad = policy();
        bad.arrival_permille.pop();
        let err = match config_result(bad) {
            Err(e) => e,
            Ok(_) => panic!("short rate vector must be rejected"),
        };
        assert!(err.to_string().contains("rate vectors"), "{err}");

        // Departure of the last VM of a single-VM mix.
        let single = ChurnPolicy {
            arrival_permille: vec![0],
            departure_permille: vec![500],
            initial_active: 1,
            ..policy()
        };
        let machine = MachineConfigBuilder::new()
            .churn(Some(single))
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.machine(machine).workload(
            WorkloadProfileBuilder::new("solo")
                .footprint_blocks(2_000)
                .build()
                .unwrap(),
        );
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("last VM"), "{err}");

        // Migration target outside the machine.
        let mut bad = policy();
        bad.migration_targets = Some(vec![0, 99]);
        let err = config_result(bad).unwrap_err();
        assert!(err.to_string().contains("outside the"), "{err}");

        // More initially-active VMs than the mix has.
        let mut bad = policy();
        bad.initial_active = 9;
        assert!(config_result(bad).is_err());

        // Churn and periodic rescheduling cannot be combined.
        let mut b = SimulationConfig::builder();
        let machine = MachineConfigBuilder::new()
            .churn(Some(policy()))
            .build()
            .unwrap();
        b.machine(machine).reschedule_every(10_000);
        for i in 0..4 {
            b.workload(
                WorkloadProfileBuilder::new(format!("w{i}"))
                    .threads(2)
                    .footprint_blocks(2_000)
                    .build()
                    .unwrap(),
            );
        }
        let err = b.build().unwrap_err();
        assert!(err.to_string().contains("rescheduling"), "{err}");
    }

    fn config_result(churn: ChurnPolicy) -> Result<SimulationConfig, SimError> {
        let machine = MachineConfigBuilder::new().churn(Some(churn)).build()?;
        let mut b = SimulationConfig::builder();
        b.machine(machine);
        for i in 0..4 {
            b.workload(
                WorkloadProfileBuilder::new(format!("w{i}"))
                    .threads(2)
                    .footprint_blocks(2_000)
                    .build()
                    .unwrap(),
            );
        }
        b.build()
    }

    /// Runs with a probe and returns (outcome, probe).
    fn run_probed(seed: u64) -> (SimulationOutcome, ChurnProbe) {
        let mut probe = ChurnProbe::default();
        let mut sim = Simulation::new(config(seed, Some(policy()))).unwrap();
        sim.advance(u64::MAX, Some(&mut probe)).unwrap();
        (sim.finish().unwrap(), probe)
    }

    #[test]
    fn churned_run_completes_and_counts_every_action_kind() {
        let (out, probe) = run_probed(42);
        let stats = out.churn.expect("churned run must report churn stats");
        assert!(!probe.decisions.is_empty(), "no churn boundary fired");
        let mut spawns = 0u64;
        let mut retires = 0u64;
        let mut migrations = 0u64;
        for d in &probe.decisions {
            assert_eq!(d.draws.len(), 4, "two draws per VM per boundary");
            assert!(d.active_after.iter().filter(|&&a| a).count() >= 1);
            for a in &d.actions {
                match a {
                    ChurnAction::Spawn { .. } => spawns += 1,
                    ChurnAction::Retire { .. } => retires += 1,
                    ChurnAction::Migrate { .. } => migrations += 1,
                }
            }
        }
        assert_eq!(stats.spawns, spawns);
        assert_eq!(stats.retires, retires);
        assert_eq!(stats.migrations, migrations);
        assert!(
            spawns > 0 && retires > 0 && migrations > 0,
            "seed 42 must exercise all three lifecycle actions \
             (got {spawns} spawns, {retires} retires, {migrations} migrations)"
        );
        // Migrations and retires scrub private caches.
        assert!(stats.l1_lines_invalidated > 0);
    }

    #[test]
    fn churned_runs_are_deterministic() {
        let a = Simulation::new(config(7, Some(policy())))
            .unwrap()
            .run()
            .unwrap();
        let b = Simulation::new(config(7, Some(policy())))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(fingerprint(&a), fingerprint(&b));
    }

    #[test]
    fn churn_disabled_reports_no_stats() {
        let out = Simulation::new(config(3, None)).unwrap().run().unwrap();
        assert!(out.churn.is_none());
    }

    /// The access-count cut points bracketing the first decision whose
    /// actions satisfy `pick`: cutting at `steps_at` checkpoints just
    /// before the decision fires; one access later it is inside the
    /// checkpoint.
    fn cuts_around(
        probe: &ChurnProbe,
        pick: impl Fn(&ChurnAction) -> bool,
        what: &str,
    ) -> [u64; 2] {
        let i = probe
            .decisions
            .iter()
            .position(|d| d.actions.iter().any(&pick))
            .unwrap_or_else(|| panic!("seed must produce a {what} decision"));
        let at = probe.steps_at[i];
        [at, at + 1]
    }

    #[test]
    fn resume_seam_on_a_spawn_boundary_is_bit_identical() {
        let (straight, probe) = run_probed(42);
        let expected = fingerprint(&straight);
        for cut in cuts_around(&probe, |a| matches!(a, ChurnAction::Spawn { .. }), "spawn") {
            let bytes = checkpoint_at(config(42, Some(policy())), cut);
            let resumed = Simulation::resume(&mut bytes.as_slice())
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(fingerprint(&resumed), expected, "cut at {cut} accesses");
        }
    }

    #[test]
    fn resume_seam_mid_migration_is_bit_identical() {
        // "Mid-migration": the checkpoint lands between the migration
        // decision and the migrated threads' first post-move access, so the
        // remapped heap events and scrubbed caches travel in the snapshot.
        let (straight, probe) = run_probed(42);
        let expected = fingerprint(&straight);
        for cut in cuts_around(
            &probe,
            |a| matches!(a, ChurnAction::Migrate { .. }),
            "migration",
        ) {
            let bytes = checkpoint_at(config(42, Some(policy())), cut);
            let resumed = Simulation::resume(&mut bytes.as_slice())
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(fingerprint(&resumed), expected, "cut at {cut} accesses");
        }
    }

    #[test]
    fn retire_then_resume_is_bit_identical() {
        let (straight, probe) = run_probed(42);
        let expected = fingerprint(&straight);
        for cut in cuts_around(
            &probe,
            |a| matches!(a, ChurnAction::Retire { .. }),
            "retire",
        ) {
            let bytes = checkpoint_at(config(42, Some(policy())), cut);
            let resumed = Simulation::resume(&mut bytes.as_slice())
                .unwrap()
                .run()
                .unwrap();
            assert_eq!(fingerprint(&resumed), expected, "cut at {cut} accesses");
        }
    }

    #[test]
    fn churn_state_survives_interleaved_checkpoint_chain() {
        let straight = Simulation::new(config(9, Some(policy())))
            .unwrap()
            .run()
            .unwrap();
        let mut sim = Simulation::new(config(9, Some(policy()))).unwrap();
        loop {
            let status = sim.advance(700, None).unwrap();
            let mut bytes = Vec::new();
            sim.checkpoint(&mut bytes).unwrap();
            sim = Simulation::resume(&mut bytes.as_slice()).unwrap();
            if status == RunStatus::Complete {
                break;
            }
        }
        let resumed = sim.finish().unwrap();
        assert_eq!(fingerprint(&resumed), fingerprint(&straight));
    }
}

mod partitioning {
    //! Engine-level way-partitioning (QoS) coverage: builder validation,
    //! the unpartitioned-equivalence guarantee, and the per-VM occupancy
    //! cap (see `crate::hierarchy` module docs).

    use super::*;
    use consim_types::config::{CacheGeometry, DynamicPolicy, MachineConfigBuilder, SharingDegree};
    use consim_types::LlcPartitioning;
    use consim_workload::WorkloadProfileBuilder;

    fn hungry_profile() -> WorkloadProfile {
        // Footprint far above any per-VM quota so partitions fill up.
        WorkloadProfileBuilder::new("hungry")
            .footprint_blocks(60_000)
            .build()
            .unwrap()
    }

    fn config(partitioning: LlcPartitioning, vms: usize) -> Result<SimulationConfig, SimError> {
        // A deliberately small LLC (4 × 64 KB banks) so the 60k-block
        // footprints overflow every set and the way quotas actually bind.
        // Built with `with_llc_partitioning` (no machine-level validation)
        // so these tests exercise the simulation builder's checks.
        let machine = MachineConfigBuilder::new()
            .llc(CacheGeometry::new(256 * 1024, 16, 6).unwrap())
            .sharing(SharingDegree::SharedBy(4))
            .build()
            .unwrap()
            .with_llc_partitioning(partitioning);
        let mut b = SimulationConfig::builder();
        b.machine(machine)
            .policy(SchedulingPolicy::RoundRobin)
            .refs_per_vm(3_000)
            .warmup_refs_per_vm(1_000)
            .seed(9);
        for _ in 0..vms {
            b.workload(hungry_profile());
        }
        b.build()
    }

    #[test]
    fn builder_rejects_bad_explicit_ways() {
        // Wrong entry count for the VM mix (the paper LLC is 16-way).
        assert!(config(LlcPartitioning::ExplicitWays(vec![8, 8]), 4).is_err());
        // Right count, wrong sum.
        assert!(config(LlcPartitioning::ExplicitWays(vec![4, 4, 4, 5]), 4).is_err());
        // Zero-way VMs could never fill a line.
        assert!(config(LlcPartitioning::ExplicitWays(vec![0, 8, 4, 4]), 4).is_err());
        // The exact split is accepted.
        assert!(config(LlcPartitioning::ExplicitWays(vec![8, 4, 2, 2]), 4).is_ok());
    }

    #[test]
    fn builder_rejects_more_vms_than_ways() {
        // A 2-way LLC cannot give 4 VMs a way each.
        let machine = MachineConfigBuilder::new()
            .llc(CacheGeometry::new(16 * 1024 * 1024, 2, 6).unwrap())
            .sharing(SharingDegree::SharedBy(4))
            .llc_partitioning(LlcPartitioning::EqualWays)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.machine(machine);
        for _ in 0..4 {
            b.workload(hungry_profile());
        }
        assert!(b.build().is_err());
    }

    #[test]
    fn full_mask_run_matches_unpartitioned_exactly() {
        // A single VM under EqualWays owns every way, and the masked
        // replacement walk must then be indistinguishable from the plain
        // one — cycle-for-cycle, not just statistically.
        let none = Simulation::new(config(LlcPartitioning::None, 1).unwrap())
            .unwrap()
            .run()
            .unwrap();
        let equal = Simulation::new(config(LlcPartitioning::EqualWays, 1).unwrap())
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(none.measured_cycles, equal.measured_cycles);
        assert_eq!(none.vm_metrics[0].l1_misses, equal.vm_metrics[0].l1_misses);
        assert_eq!(
            none.vm_metrics[0].memory_fetches,
            equal.vm_metrics[0].memory_fetches
        );
    }

    #[test]
    fn explicit_ways_cap_per_vm_occupancy() {
        let quotas = [8.0, 4.0, 2.0, 2.0];
        let cfg = config(LlcPartitioning::ExplicitWays(vec![8, 4, 2, 2]), 4).unwrap();
        let out = Simulation::new(cfg).unwrap().run().unwrap();
        for m in &out.vm_metrics {
            assert!(m.completion.is_some());
        }
        for bank in &out.occupancy.share {
            for (vm, &share) in bank.iter().enumerate() {
                assert!(
                    share <= quotas[vm] / 16.0 + 1e-9,
                    "VM {vm} holds {share} of a bank, quota {}",
                    quotas[vm] / 16.0
                );
            }
        }
    }

    #[test]
    fn partitioning_changes_contended_behavior() {
        // With footprints far above the quotas, confining each VM to a
        // slice of the ways must actually change the timing.
        let none = Simulation::new(config(LlcPartitioning::None, 4).unwrap())
            .unwrap()
            .run()
            .unwrap();
        let split =
            Simulation::new(config(LlcPartitioning::ExplicitWays(vec![8, 4, 2, 2]), 4).unwrap())
                .unwrap()
                .run()
                .unwrap();
        assert_ne!(none.measured_cycles, split.measured_cycles);
    }

    #[test]
    fn partitioned_runs_are_deterministic() {
        let run = || {
            let cfg = config(LlcPartitioning::EqualWays, 4).unwrap();
            let out = Simulation::new(cfg).unwrap().run().unwrap();
            (out.measured_cycles, out.occupancy.share.clone())
        };
        assert_eq!(run(), run());
    }

    /// One LLC-resident VM, one memory streamer, one light VM — the
    /// asymmetric consolidation mix the dynamic controller exists to
    /// arbitrate.
    fn mixed_config(partitioning: LlcPartitioning) -> SimulationConfig {
        let machine = MachineConfigBuilder::new()
            .llc(CacheGeometry::new(256 * 1024, 16, 6).unwrap())
            .sharing(SharingDegree::SharedBy(4))
            .build()
            .unwrap()
            .with_llc_partitioning(partitioning);
        let mut b = SimulationConfig::builder();
        b.machine(machine)
            .policy(SchedulingPolicy::RoundRobin)
            .refs_per_vm(3_000)
            .warmup_refs_per_vm(1_000)
            .seed(9);
        for (name, footprint) in [("resident", 3_000), ("streamy", 60_000), ("tiny", 256)] {
            b.workload(
                WorkloadProfileBuilder::new(name)
                    .footprint_blocks(footprint)
                    .build()
                    .unwrap(),
            );
        }
        b.build().unwrap()
    }

    /// A short repartition epoch and no dead-band, so the controller gets
    /// plenty of chances to act inside a 3 000-ref measured window.
    fn quick_policy() -> DynamicPolicy {
        DynamicPolicy {
            epoch_interval: 2_000,
            deadband_milli: 0,
            ..Default::default()
        }
    }

    #[test]
    fn dynamic_decisions_fire_and_masks_stay_well_formed() {
        let mut probe = RepartProbe::default();
        let mut sim =
            Simulation::new(mixed_config(LlcPartitioning::Dynamic(quick_policy()))).unwrap();
        sim.advance(u64::MAX, Some(&mut probe)).unwrap();
        let out = sim.finish().unwrap();
        for m in &out.vm_metrics {
            assert!(m.completion.is_some());
        }
        assert!(
            probe.decisions.len() >= 3,
            "only {} decisions fired",
            probe.decisions.len()
        );
        assert!(
            probe.decisions.iter().any(|d| d.changed()),
            "the asymmetric mix must move at least one way"
        );
        for (i, d) in probe.decisions.iter().enumerate() {
            assert_eq!(d.epoch, i as u64 + 1, "epochs must be consecutive");
            let mut covered = 0u64;
            for (vm, &mask) in d.new_masks.iter().enumerate() {
                assert_eq!(covered & mask, 0, "epoch {}: VM {vm} overlaps", d.epoch);
                covered |= mask;
                assert!(
                    mask.count_ones() >= 1,
                    "epoch {}: VM {vm} dropped below min_ways",
                    d.epoch
                );
                // A contiguous run of ones leaves 2^k - 1 once shifted down.
                let norm = mask >> mask.trailing_zeros();
                assert_eq!(
                    norm & (norm + 1),
                    0,
                    "epoch {}: VM {vm} mask {mask:#06x} is not contiguous",
                    d.epoch
                );
            }
            assert_eq!(
                covered,
                (1u64 << 16) - 1,
                "epoch {}: masks must cover all 16 ways",
                d.epoch
            );
        }
    }

    #[test]
    fn dynamic_never_firing_matches_equal_ways_exactly() {
        // With the first boundary beyond the run's horizon the controller
        // never acts, and the initial equal split must make the run
        // indistinguishable from static EqualWays — cycle-for-cycle.
        let lazy = DynamicPolicy {
            epoch_interval: u64::MAX / 2,
            ..Default::default()
        };
        let dynamic = Simulation::new(mixed_config(LlcPartitioning::Dynamic(lazy)))
            .unwrap()
            .run()
            .unwrap();
        let equal = Simulation::new(mixed_config(LlcPartitioning::EqualWays))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(dynamic.measured_cycles, equal.measured_cycles);
        for (d, e) in dynamic.vm_metrics.iter().zip(&equal.vm_metrics) {
            assert_eq!(d.l1_misses, e.l1_misses);
            assert_eq!(d.memory_fetches, e.memory_fetches);
            assert_eq!(d.completion, e.completion);
        }
    }

    #[test]
    fn dynamic_runs_are_deterministic() {
        let run = || {
            let cfg = mixed_config(LlcPartitioning::Dynamic(quick_policy()));
            let out = Simulation::new(cfg).unwrap().run().unwrap();
            (out.measured_cycles, out.occupancy.share.clone())
        };
        assert_eq!(run(), run());
    }
}
