//! End-of-run counter audit.
//!
//! Every figure in the paper is counter-derived, so a silent drift between
//! the engine's per-VM accounting and the substrates' own statistics
//! (directory [`ProtocolStats`], NoC [`NocStats`]) corrupts results without
//! failing any test. [`audit_outcome`] cross-checks the redundant counter
//! paths of one [`SimulationOutcome`] and returns
//! [`SimError::AuditFailed`] on any mismatch.
//!
//! The audit is sound because all three counter paths observe exactly the
//! same transactions: the engine resets substrate statistics at the
//! warmup/measurement boundary, every measured access updates its VM's
//! metrics and the directory in the same call, and the LLC prewarm bypasses
//! both the directory and the NoC.
//!
//! Checked invariants:
//!
//! 1. Per VM: `l0_hits + l1_hits + l1_misses == refs` (every reference is
//!    accounted exactly once).
//! 2. Per VM: the [`MissSource`] buckets sum to `l1_misses` (every
//!    LLC-level request is classified exactly once).
//! 3. `protocol.requests == Σ l1_misses` (the directory saw every
//!    LLC-level request the engine issued).
//! 4. `protocol.clean_transfers == Σ c2c_l1_clean` and
//!    `protocol.dirty_transfers == Σ c2c_l1_dirty` (transfer classification
//!    agrees between directory and engine).
//! 5. `protocol.from_below == Σ (llc_local + llc_remote_* + memory)` (the
//!    directory's "below" outcomes are the engine's LLC/memory services).
//! 6. `protocol.requests - c2c - from_below == Σ upgrades` — the derived
//!    upgrade identity. (The directory's own `upgrades` counter only counts
//!    `AccessKind::Upgrade`; silent-upgrade *writes* also produce
//!    `DataSource::None`, so the engine's upgrade bucket must equal the
//!    requests that moved no data, not `protocol.upgrades`.)
//! 7. `noc.injected == noc.packets` (no packet was lost between injection
//!    and delivery accounting).
//! 8. Derived ratios and snapshot fractions (miss rates, utilizations,
//!    replication, occupancy, directory-cache hit rate) are finite and
//!    within `[0, 1]`.
//!
//! [`MissSource`]: crate::metrics::MissSource
//! [`ProtocolStats`]: consim_coherence::ProtocolStats
//! [`NocStats`]: consim_noc::NocStats

use crate::engine::SimulationOutcome;
use consim_types::SimError;

/// One failed cross-check, with both sides of the mismatch.
macro_rules! audit_eq {
    ($checks:ident, $left:expr, $right:expr, $what:expr) => {{
        let (l, r) = ($left, $right);
        if l != r {
            return Err(SimError::audit_failed(format!(
                "{}: {} != {} ({} vs {})",
                $what,
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
        $checks += 1;
    }};
}

/// Checks that `value` is a finite fraction in `[0, 1]`.
macro_rules! audit_fraction {
    ($checks:ident, $value:expr, $what:expr) => {{
        let v = $value;
        if !v.is_finite() || !(0.0..=1.0).contains(&v) {
            return Err(SimError::audit_failed(format!(
                "{} must be a finite fraction in [0, 1], got {v}",
                $what
            )));
        }
        $checks += 1;
    }};
}

/// Cross-checks the redundant counter paths of one finished run; returns
/// the number of invariants verified.
///
/// # Errors
///
/// Returns [`SimError::AuditFailed`] naming the first violated invariant
/// and both sides of the mismatch.
pub fn audit_outcome(outcome: &SimulationOutcome) -> Result<u32, SimError> {
    let mut checks = 0u32;

    let mut sum_misses = 0u64;
    let mut sum_clean_l1 = 0u64;
    let mut sum_dirty_l1 = 0u64;
    let mut sum_below = 0u64;
    let mut sum_upgrades = 0u64;
    for (vm, m) in outcome.vm_metrics.iter().enumerate() {
        audit_eq!(
            checks,
            m.l0_hits + m.l1_hits + m.l1_misses,
            m.refs,
            format!("vm{vm} reference accounting")
        );
        let classified = m.c2c_l1_clean
            + m.c2c_l1_dirty
            + m.llc_local_hits
            + m.llc_remote_clean
            + m.llc_remote_dirty
            + m.memory_fetches
            + m.upgrades;
        audit_eq!(
            checks,
            classified,
            m.l1_misses,
            format!("vm{vm} miss classification")
        );
        audit_eq!(
            checks,
            m.miss_latency.count(),
            m.l1_misses,
            format!("vm{vm} latency sample count")
        );
        audit_fraction!(checks, m.llc_miss_rate(), format!("vm{vm} llc_miss_rate"));
        audit_fraction!(checks, m.c2c_fraction(), format!("vm{vm} c2c_fraction"));
        sum_misses += m.l1_misses;
        sum_clean_l1 += m.c2c_l1_clean;
        sum_dirty_l1 += m.c2c_l1_dirty;
        sum_below += m.llc_local_hits + m.llc_remote_clean + m.llc_remote_dirty + m.memory_fetches;
        sum_upgrades += m.upgrades;
    }

    let p = &outcome.protocol;
    audit_eq!(checks, p.requests, sum_misses, "directory request total");
    audit_eq!(
        checks,
        p.clean_transfers,
        sum_clean_l1,
        "clean-transfer classification"
    );
    audit_eq!(
        checks,
        p.dirty_transfers,
        sum_dirty_l1,
        "dirty-transfer classification"
    );
    audit_eq!(checks, p.from_below, sum_below, "from-below classification");
    audit_eq!(
        checks,
        p.requests - p.clean_transfers - p.dirty_transfers - p.from_below,
        sum_upgrades,
        "derived upgrade identity"
    );
    audit_fraction!(
        checks,
        p.cache_to_cache_fraction(),
        "protocol cache_to_cache_fraction"
    );

    audit_eq!(
        checks,
        outcome.noc.injected,
        outcome.noc.packets,
        "noc injected == delivered"
    );

    audit_fraction!(
        checks,
        outcome.replication.replicated_fraction(),
        "replication fraction"
    );
    for (bank, shares) in outcome.occupancy.share.iter().enumerate() {
        let total: f64 = shares.iter().sum();
        if !total.is_finite() || total > 1.0 + 1e-9 {
            return Err(SimError::audit_failed(format!(
                "bank{bank} occupancy shares sum to {total}"
            )));
        }
        checks += 1;
    }
    audit_fraction!(checks, outcome.dircache_hit_rate, "dircache_hit_rate");
    // Link-busy time includes reservations extending past measurement end
    // (in-flight transactions), so utilizations may slightly exceed 1; they
    // must still be finite and non-negative.
    for (value, what) in [
        (outcome.noc_mean_utilization, "noc_mean_utilization"),
        (outcome.noc_peak_utilization, "noc_peak_utilization"),
    ] {
        if !value.is_finite() || value < 0.0 {
            return Err(SimError::audit_failed(format!(
                "{what} must be finite and non-negative, got {value}"
            )));
        }
        checks += 1;
    }

    Ok(checks)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Simulation, SimulationConfig};
    use consim_workload::WorkloadKind;

    fn small_outcome(kind: WorkloadKind, vms: usize) -> SimulationOutcome {
        let mut b = SimulationConfig::builder();
        for _ in 0..vms {
            b.workload(kind.profile());
        }
        b.refs_per_vm(2_000)
            .warmup_refs_per_vm(500)
            .seed(9)
            .audit(true);
        Simulation::new(b.build().unwrap()).unwrap().run().unwrap()
    }

    #[test]
    fn audit_passes_every_paper_workload() {
        for kind in WorkloadKind::PAPER_SET {
            let outcome = small_outcome(kind, 1);
            let checks = audit_outcome(&outcome).unwrap();
            assert!(checks >= 15, "{kind}: only {checks} checks ran");
        }
    }

    #[test]
    fn audit_passes_multi_vm_mixes() {
        let outcome = small_outcome(WorkloadKind::SpecJbb, 4);
        audit_outcome(&outcome).unwrap();
    }

    #[test]
    fn drifted_directory_counter_fails() {
        let mut outcome = small_outcome(WorkloadKind::TpcH, 1);
        outcome.protocol.requests += 1;
        let err = audit_outcome(&outcome).unwrap_err();
        assert!(matches!(err, SimError::AuditFailed(_)), "{err}");
        assert!(err.to_string().contains("directory request total"), "{err}");
    }

    #[test]
    fn drifted_vm_counter_fails() {
        let mut outcome = small_outcome(WorkloadKind::TpcH, 1);
        outcome.vm_metrics[0].l0_hits += 1;
        let err = audit_outcome(&outcome).unwrap_err();
        assert!(err.to_string().contains("reference accounting"), "{err}");
    }

    #[test]
    fn misclassified_miss_fails() {
        let mut outcome = small_outcome(WorkloadKind::TpcH, 1);
        outcome.vm_metrics[0].memory_fetches += 1;
        // Both the per-VM classification and the cross-subsystem totals
        // now disagree; the audit must catch it.
        assert!(audit_outcome(&outcome).is_err());
    }

    #[test]
    fn lost_noc_packet_fails() {
        let mut outcome = small_outcome(WorkloadKind::TpcH, 1);
        outcome.noc.injected += 1;
        let err = audit_outcome(&outcome).unwrap_err();
        assert!(err.to_string().contains("injected"), "{err}");
    }

    #[test]
    fn non_finite_ratio_fails() {
        let mut outcome = small_outcome(WorkloadKind::TpcH, 1);
        outcome.dircache_hit_rate = f64::NAN;
        let err = audit_outcome(&outcome).unwrap_err();
        assert!(err.to_string().contains("dircache_hit_rate"), "{err}");
    }
}
