//! On-disk cell journal and mid-cell checkpoint files for crash-resumable
//! experiment batches.
//!
//! Layout under a journal root: one `batch-<digest>/` directory per
//! distinct job list. The digest covers every job's full configuration
//! (machine, workloads, seeds, run quotas), so a journal directory can
//! never be resumed against a different experiment — a changed batch
//! simply lands in a fresh subdirectory. Inside a batch directory:
//!
//! * `job-NNNN.bin` — the serialized [`SimulationOutcome`] of a completed
//!   job; a resumed invocation loads it instead of re-simulating;
//! * `job-NNNN.ckpt` — a transient mid-run [`Simulation::checkpoint`],
//!   rewritten every `checkpoint_every` accesses and deleted when the job
//!   completes.
//!
//! Every write goes to a temporary sibling and is committed with an atomic
//! rename, so a crash can never leave a half-written record that a resume
//! would trust (a torn temporary is simply ignored; a torn `.bin`/`.ckpt`
//! cannot exist). Records are checksummed by the `consim-snap` container,
//! so bit rot is reported as [`SimError::Snapshot`] rather than read back
//! as plausible numbers.

use crate::engine::{Simulation, SimulationConfig, SimulationOutcome};
use crate::metrics::{OccupancySnapshot, ReplicationSnapshot, VmMetrics};
use crate::snapshot;
use consim_sched::Placement;
use consim_snap::{fnv1a, SectionBuf, SectionReader, SnapReader, SnapWriter, Snapshot};
use consim_types::{CoreId, GlobalThreadId, SimError, SnapshotErrorKind, ThreadId, VmId};
use std::fs;
use std::path::{Path, PathBuf};

/// Wraps an I/O failure into the snapshot error taxonomy with the path
/// that failed (bare `std::io::Error` messages omit it).
pub(crate) fn io_error(action: &str, path: &Path, err: std::io::Error) -> SimError {
    SimError::snapshot(
        SnapshotErrorKind::Io,
        format!("{action} {}: {err}", path.display()),
    )
}

/// The batch directory under `root` for this exact job list: a digest over
/// every job's cell index and full configuration.
pub(crate) fn batch_dir(root: &Path, jobs: &[(usize, SimulationConfig)]) -> PathBuf {
    let mut buf = SectionBuf::new();
    buf.put_usize(jobs.len());
    for (cell, config) in jobs {
        buf.put_usize(*cell);
        snapshot::save_config(config, &mut buf);
    }
    root.join(format!("batch-{:016x}", fnv1a(buf.as_bytes())))
}

/// Completed-outcome record for job `ji`.
pub(crate) fn outcome_path(dir: &Path, ji: usize) -> PathBuf {
    dir.join(format!("job-{ji:04}.bin"))
}

/// Transient mid-run checkpoint for job `ji`.
pub(crate) fn checkpoint_path(dir: &Path, ji: usize) -> PathBuf {
    dir.join(format!("job-{ji:04}.ckpt"))
}

/// Serializes via `fill`, then commits atomically (tmp + rename).
fn persist(
    path: &Path,
    fill: impl FnOnce(&mut Vec<u8>) -> Result<(), SimError>,
) -> Result<(), SimError> {
    let mut bytes = Vec::new();
    fill(&mut bytes)?;
    let tmp = path.with_extension("tmp");
    fs::write(&tmp, &bytes).map_err(|e| io_error("write", &tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| io_error("commit", path, e))
}

pub(crate) fn write_checkpoint(path: &Path, sim: &Simulation) -> Result<(), SimError> {
    persist(path, |bytes| sim.checkpoint(bytes))
}

pub(crate) fn read_checkpoint(path: &Path) -> Result<Simulation, SimError> {
    let bytes = fs::read(path).map_err(|e| io_error("read", path, e))?;
    Simulation::resume(bytes.as_slice())
}

pub(crate) fn write_outcome(path: &Path, outcome: &SimulationOutcome) -> Result<(), SimError> {
    persist(path, |bytes| {
        let mut writer = SnapWriter::new(bytes)?;
        let mut buf = SectionBuf::new();
        save_outcome(outcome, &mut buf);
        writer.section("outcome", &buf)?;
        writer.finish()?;
        Ok(())
    })
}

pub(crate) fn read_outcome(path: &Path) -> Result<SimulationOutcome, SimError> {
    let bytes = fs::read(path).map_err(|e| io_error("read", path, e))?;
    let mut snap = SnapReader::from_bytes(bytes)?;
    let mut r = snap.section("outcome")?;
    let outcome = restore_outcome(&mut r)?;
    if r.remaining() != 0 {
        return Err(SimError::snapshot(
            SnapshotErrorKind::Corrupt,
            format!(
                "{} unconsumed bytes at the end of a journal record",
                r.remaining()
            ),
        ));
    }
    snap.expect_end()?;
    Ok(outcome)
}

fn save_outcome(out: &SimulationOutcome, w: &mut SectionBuf) {
    w.put_usize(out.vm_metrics.len());
    for m in &out.vm_metrics {
        m.save(w);
    }
    w.put_u64(out.replication.total_lines);
    w.put_u64(out.replication.replicated_lines);
    w.put_usize(out.occupancy.share.len());
    for bank in &out.occupancy.share {
        w.put_usize(bank.len());
        for &share in bank {
            w.put_f64(share);
        }
    }
    out.noc.save(w);
    out.protocol.save(w);
    save_placement(&out.placement, w);
    w.put_u64(out.measured_cycles);
    w.put_f64(out.dircache_hit_rate);
    w.put_f64(out.noc_mean_utilization);
    w.put_f64(out.noc_peak_utilization);
    match &out.churn {
        None => w.put_bool(false),
        Some(s) => {
            w.put_bool(true);
            for v in [
                s.spawns,
                s.retires,
                s.migrations,
                s.l0_lines_invalidated,
                s.l1_lines_invalidated,
                s.writebacks,
            ] {
                w.put_u64(v);
            }
        }
    }
}

fn restore_outcome(r: &mut SectionReader<'_>) -> Result<SimulationOutcome, SimError> {
    let num_vms = r.get_usize()?;
    let mut vm_metrics = Vec::with_capacity(num_vms.min(1024));
    for _ in 0..num_vms {
        let mut m = VmMetrics::default();
        m.restore(r)?;
        vm_metrics.push(m);
    }
    let replication = ReplicationSnapshot {
        total_lines: r.get_u64()?,
        replicated_lines: r.get_u64()?,
    };
    let banks = r.get_usize()?;
    let mut share = Vec::with_capacity(banks.min(1024));
    for _ in 0..banks {
        let vms = r.get_usize()?;
        let mut row = Vec::with_capacity(vms.min(1024));
        for _ in 0..vms {
            row.push(r.get_f64()?);
        }
        share.push(row);
    }
    let occupancy = OccupancySnapshot { share };
    let mut noc = consim_noc::NocStats::default();
    noc.restore(r)?;
    let mut protocol = consim_coherence::ProtocolStats::default();
    protocol.restore(r)?;
    let placement = restore_placement(r)?;
    Ok(SimulationOutcome {
        vm_metrics,
        replication,
        occupancy,
        noc,
        protocol,
        placement,
        measured_cycles: r.get_u64()?,
        dircache_hit_rate: r.get_f64()?,
        noc_mean_utilization: r.get_f64()?,
        noc_peak_utilization: r.get_f64()?,
        churn: if r.get_bool()? {
            Some(crate::churn::ChurnStats {
                spawns: r.get_u64()?,
                retires: r.get_u64()?,
                migrations: r.get_u64()?,
                l0_lines_invalidated: r.get_u64()?,
                l1_lines_invalidated: r.get_u64()?,
                writebacks: r.get_u64()?,
            })
        } else {
            None
        },
    })
}

fn save_placement(p: &Placement, w: &mut SectionBuf) {
    w.put_usize(p.num_vms());
    for vm in 0..p.num_vms() {
        let vm = VmId::new(vm);
        w.put_usize(p.threads_of_vm(vm));
        for t in 0..p.threads_of_vm(vm) {
            let core = p.core_of(GlobalThreadId::new(vm, ThreadId::new(t)));
            w.put_usize(core.index());
        }
    }
    snapshot::save_policy(p.policy(), w);
}

fn restore_placement(r: &mut SectionReader<'_>) -> Result<Placement, SimError> {
    let num_vms = r.get_usize()?;
    let mut core_of = Vec::with_capacity(num_vms.min(1024));
    for _ in 0..num_vms {
        let threads = r.get_usize()?;
        let mut cores = Vec::with_capacity(threads.min(1024));
        for _ in 0..threads {
            cores.push(CoreId::new(r.get_usize()?));
        }
        core_of.push(cores);
    }
    let policy = snapshot::restore_policy(r)?;
    Ok(Placement::from_parts(core_of, policy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimulationConfig;
    use consim_workload::WorkloadProfileBuilder;

    fn outcome() -> SimulationOutcome {
        let profile = WorkloadProfileBuilder::new("j")
            .footprint_blocks(3_000)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.workload(profile)
            .refs_per_vm(1_500)
            .warmup_refs_per_vm(300)
            .track_footprint(true)
            .seed(12);
        Simulation::new(b.build().unwrap()).unwrap().run().unwrap()
    }

    /// Exact equality over everything the aggregator and figures consume.
    fn assert_identical(a: &SimulationOutcome, b: &SimulationOutcome) {
        assert_eq!(a.vm_metrics.len(), b.vm_metrics.len());
        for (x, y) in a.vm_metrics.iter().zip(&b.vm_metrics) {
            let mut bx = SectionBuf::new();
            let mut by = SectionBuf::new();
            x.save(&mut bx);
            y.save(&mut by);
            assert_eq!(bx.as_bytes(), by.as_bytes());
        }
        assert_eq!(a.replication.total_lines, b.replication.total_lines);
        assert_eq!(
            a.replication.replicated_lines,
            b.replication.replicated_lines
        );
        assert_eq!(a.occupancy.share, b.occupancy.share);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.measured_cycles, b.measured_cycles);
        assert_eq!(a.dircache_hit_rate.to_bits(), b.dircache_hit_rate.to_bits());
        assert_eq!(
            a.noc_mean_utilization.to_bits(),
            b.noc_mean_utilization.to_bits()
        );
        assert_eq!(
            a.noc_peak_utilization.to_bits(),
            b.noc_peak_utilization.to_bits()
        );
    }

    #[test]
    fn outcome_record_round_trips_exactly() {
        let dir = std::env::temp_dir().join(format!("consim-journal-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let out = outcome();
        let path = outcome_path(&dir, 7);
        write_outcome(&path, &out).unwrap();
        let back = read_outcome(&path).unwrap();
        assert_identical(&out, &back);
        assert!(
            !path.with_extension("tmp").exists(),
            "commit must consume the temporary"
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_record_is_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("consim-journal-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = outcome_path(&dir, 0);
        write_outcome(&path, &outcome()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = read_outcome(&path).unwrap_err();
        assert!(err.snapshot_kind().is_some(), "{err}");
        let missing = read_outcome(&outcome_path(&dir, 99)).unwrap_err();
        assert_eq!(missing.snapshot_kind(), Some(SnapshotErrorKind::Io));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_digest_tracks_configuration_not_order_of_use() {
        let cfg = |seed: u64| {
            let profile = WorkloadProfileBuilder::new("d")
                .footprint_blocks(2_000)
                .build()
                .unwrap();
            let mut b = SimulationConfig::builder();
            b.workload(profile).refs_per_vm(100).seed(seed);
            b.build().unwrap()
        };
        let root = Path::new("/tmp/j");
        let a = batch_dir(root, &[(0, cfg(1)), (0, cfg(2))]);
        let b = batch_dir(root, &[(0, cfg(1)), (0, cfg(2))]);
        let c = batch_dir(root, &[(0, cfg(1)), (0, cfg(3))]);
        assert_eq!(a, b, "identical batches share a directory");
        assert_ne!(a, c, "a different batch must not reuse the directory");
    }
}
