//! VM lifecycle churn — birth–death arrivals, departures, live migration.
//!
//! [`ChurnState`] implements [`ChurnPolicy`]: at every churn boundary of the
//! measurement phase the engine draws, for **every** VM of the mix in id
//! order, exactly two permille draws from a per-epoch derived stream
//! (`"churn/epoch"` keyed on the 1-based epoch ordinal), then decides and
//! applies one action per VM sequentially:
//!
//! * an **absent** VM spawns iff its first draw clears its arrival rate and
//!   enough cores are free for its threads (lowest free cores, ascending);
//! * an **active** VM retires iff its first draw clears its departure rate
//!   and the running population stays above `min_active`; otherwise it
//!   migrates iff its second draw clears the migration rate and enough free
//!   cores (intersected with `migration_targets`, when set) exist for its
//!   threads.
//!
//! Drawing unconditionally — two draws per VM per boundary, regardless of
//! state — keeps the stream position independent of the decisions taken, so
//! the differential oracle in `consim-check` can transcribe the draw
//! protocol independently and verify every decision field-for-field.
//!
//! Retirement and migration scrub the VM's private caches under the PR-7
//! no-flush rule: L0/L1 contents are invalidated (the directory's full map
//! is kept exact via eviction hints), dirty L1 lines are written back into
//! the core's local LLC bank *content-only* (untimed, uncounted — churn is
//! a reconfiguration event, not a memory access), and the VM's LLC lines
//! are left to age out through natural replacement. A migrated VM therefore
//! pays its cache re-warming cost through ordinary demand misses, which is
//! exactly the quantity the Fig. 16 experiments measure.

use consim_snap::{SectionBuf, SectionReader};
use consim_types::{BankId, BlockAddr, ChurnPolicy, SimError, SimRng, SnapshotErrorKind};

fn corrupt(msg: impl Into<String>) -> SimError {
    SimError::snapshot(SnapshotErrorKind::Corrupt, msg)
}

/// The two unconditional permille draws (`0..1000`) of one VM at one churn
/// boundary: `(d1, d2)` where `d1` gates arrival/departure and `d2` gates
/// migration.
pub type ChurnDraws = (u32, u32);

/// The per-epoch draw protocol: every boundary derives a fresh stream from
/// the root seed and the 1-based epoch ordinal alone, then draws two values
/// below 1000 per VM in id order. Exposed so tests can pin the transcription
/// the differential oracle re-implements independently.
pub fn epoch_draws(seed: u64, epoch: u64, num_vms: usize) -> Vec<ChurnDraws> {
    let mut rng = SimRng::from_seed(seed).derive_parts("churn/epoch", &[epoch]);
    (0..num_vms)
        .map(|_| {
            let d1 = rng.below(1000) as u32;
            let d2 = rng.below(1000) as u32;
            (d1, d2)
        })
        .collect()
}

/// One applied lifecycle action. Core lists are ascending; writeback lists
/// are in canonical scrub order (cores ascending, block addresses ascending
/// within each core).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChurnAction {
    /// An absent VM arrived and was bound to `cores` (thread `t` on
    /// `cores[t]`), restarting its generator on a fresh derived stream.
    Spawn {
        /// The arriving VM.
        vm: usize,
        /// Cores bound, ascending; `cores[t]` runs thread `t`.
        cores: Vec<usize>,
    },
    /// An active VM departed: private caches scrubbed, cores released.
    Retire {
        /// The departing VM.
        vm: usize,
        /// Cores released, ascending.
        cores: Vec<usize>,
        /// L0 lines invalidated by the scrub.
        invalidated_l0: u64,
        /// L1 lines invalidated by the scrub.
        invalidated_l1: u64,
        /// Dirty L1 lines written back content-only into LLC banks, in
        /// scrub order.
        writebacks: Vec<(BankId, BlockAddr)>,
    },
    /// An active VM moved to a fresh core set: old cores scrubbed and
    /// released, thread `t` rebound to `to[t]`, pending issue events
    /// remapped (earliest times to lowest new cores).
    Migrate {
        /// The migrating VM.
        vm: usize,
        /// Cores vacated, ascending.
        from: Vec<usize>,
        /// Cores newly bound, ascending; `to[t]` runs thread `t`.
        to: Vec<usize>,
        /// L0 lines invalidated by the scrub.
        invalidated_l0: u64,
        /// L1 lines invalidated by the scrub.
        invalidated_l1: u64,
        /// Dirty L1 lines written back content-only into LLC banks, in
        /// scrub order.
        writebacks: Vec<(BankId, BlockAddr)>,
    },
}

impl ChurnAction {
    /// The VM the action concerns.
    pub fn vm(&self) -> usize {
        match self {
            ChurnAction::Spawn { vm, .. }
            | ChurnAction::Retire { vm, .. }
            | ChurnAction::Migrate { vm, .. } => *vm,
        }
    }
}

/// Everything one churn boundary consumed and produced. Handed to
/// [`StepObserver::on_churn`] for **every** boundary — actions or not — so
/// an external model can verify the draw transcription in lockstep.
///
/// [`StepObserver::on_churn`]: crate::observe::StepObserver::on_churn
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnDecision {
    /// 1-based index of this boundary within the measurement phase.
    pub epoch: u64,
    /// Cycle at which the boundary fired.
    pub at: u64,
    /// The two unconditional draws per VM, in id order.
    pub draws: Vec<ChurnDraws>,
    /// Actions applied, in VM id order (at most one per VM).
    pub actions: Vec<ChurnAction>,
    /// Per-VM active flags after the boundary.
    pub active_after: Vec<bool>,
}

/// Cumulative lifecycle counters over one run's measurement phase.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChurnStats {
    /// VMs spawned through the birth process (initial population excluded).
    pub spawns: u64,
    /// VMs retired through the death process.
    pub retires: u64,
    /// Live migrations performed.
    pub migrations: u64,
    /// L0 lines invalidated by retirement/migration scrubs.
    pub l0_lines_invalidated: u64,
    /// L1 lines invalidated by retirement/migration scrubs.
    pub l1_lines_invalidated: u64,
    /// Dirty L1 lines written back content-only into the LLC by scrubs.
    pub writebacks: u64,
}

/// The churn state machine: which VMs are running, how often each has
/// arrived (the respawn-stream ordinal), and the boundary/stat counters.
/// Owned by the engine when the machine carries a [`ChurnPolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnState {
    policy: ChurnPolicy,
    /// Per-VM running flag.
    active: Vec<bool>,
    /// Per-VM arrival ordinal: 0 until the first respawn, then the count of
    /// birth-process arrivals (seeds the generator's respawn stream).
    arrivals: Vec<u64>,
    /// Churn boundaries decided so far this measurement phase.
    epochs: u64,
    stats: ChurnStats,
}

impl ChurnState {
    /// Initial state: VMs `0..initial_active` running, nobody arrived yet.
    pub fn new(policy: ChurnPolicy, num_vms: usize) -> Self {
        let active = (0..num_vms).map(|vm| vm < policy.initial_active).collect();
        Self {
            policy,
            active,
            arrivals: vec![0; num_vms],
            epochs: 0,
            stats: ChurnStats::default(),
        }
    }

    /// Cycles between churn boundaries.
    pub fn interval(&self) -> u64 {
        self.policy.interval
    }

    /// The governing policy.
    pub fn policy(&self) -> &ChurnPolicy {
        &self.policy
    }

    /// Whether `vm` is currently running.
    pub fn is_active(&self, vm: usize) -> bool {
        self.active[vm]
    }

    /// Per-VM running flags.
    pub fn active(&self) -> &[bool] {
        &self.active
    }

    /// Number of VMs currently running.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Flips a VM's running flag.
    pub(crate) fn set_active(&mut self, vm: usize, on: bool) {
        self.active[vm] = on;
    }

    /// Advances and returns the VM's arrival ordinal (1 for the first
    /// birth-process arrival).
    pub(crate) fn next_arrival(&mut self, vm: usize) -> u64 {
        self.arrivals[vm] += 1;
        self.arrivals[vm]
    }

    /// Advances and returns the 1-based boundary ordinal.
    pub(crate) fn next_epoch(&mut self) -> u64 {
        self.epochs += 1;
        self.epochs
    }

    /// Cumulative lifecycle counters.
    pub fn stats(&self) -> &ChurnStats {
        &self.stats
    }

    /// Mutable access for the engine's boundary bookkeeping.
    pub(crate) fn stats_mut(&mut self) -> &mut ChurnStats {
        &mut self.stats
    }

    /// Appends the mutable churn state to a checkpoint section.
    pub(crate) fn save(&self, w: &mut SectionBuf) {
        w.put_usize(self.active.len());
        for &a in &self.active {
            w.put_bool(a);
        }
        w.put_u64_slice(&self.arrivals);
        w.put_u64(self.epochs);
        for v in [
            self.stats.spawns,
            self.stats.retires,
            self.stats.migrations,
            self.stats.l0_lines_invalidated,
            self.stats.l1_lines_invalidated,
            self.stats.writebacks,
        ] {
            w.put_u64(v);
        }
    }

    /// Restores the mutable churn state from a checkpoint section,
    /// re-validating the population invariants against the policy.
    pub(crate) fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        let n = self.active.len();
        r.expect_len(n, "churn active flags")?;
        let mut active = Vec::with_capacity(n);
        for _ in 0..n {
            active.push(r.get_bool()?);
        }
        if active.iter().filter(|&&a| a).count() < self.policy.min_active {
            return Err(corrupt("churn population below the configured floor"));
        }
        let arrivals = r.get_u64_vec()?;
        if arrivals.len() != n {
            return Err(corrupt("churn arrival-ordinal length mismatch"));
        }
        self.active = active;
        self.arrivals = arrivals;
        self.epochs = r.get_u64()?;
        self.stats = ChurnStats {
            spawns: r.get_u64()?,
            retires: r.get_u64()?,
            migrations: r.get_u64()?,
            l0_lines_invalidated: r.get_u64()?,
            l1_lines_invalidated: r.get_u64()?,
            writebacks: r.get_u64()?,
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> ChurnPolicy {
        ChurnPolicy {
            interval: 20_000,
            arrival_permille: vec![200, 200, 200],
            departure_permille: vec![100, 100, 100],
            migration_permille: 150,
            initial_active: 2,
            min_active: 1,
            migration_targets: None,
        }
    }

    #[test]
    fn initial_population_matches_the_policy() {
        let ch = ChurnState::new(policy(), 3);
        assert_eq!(ch.active(), &[true, true, false]);
        assert_eq!(ch.active_count(), 2);
        assert_eq!(ch.interval(), 20_000);
    }

    #[test]
    fn epoch_draws_are_deterministic_and_epoch_keyed() {
        let a = epoch_draws(7, 1, 4);
        let b = epoch_draws(7, 1, 4);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        assert!(a.iter().all(|&(d1, d2)| d1 < 1000 && d2 < 1000));
        // Different epochs and different seeds give independent streams.
        assert_ne!(a, epoch_draws(7, 2, 4));
        assert_ne!(a, epoch_draws(8, 1, 4));
        // A shorter prefix is exactly the prefix of the longer draw list:
        // the stream position depends only on the VM ordinal.
        assert_eq!(epoch_draws(7, 1, 2), a[..2].to_vec());
    }

    #[test]
    fn state_round_trips_through_a_section() {
        let mut ch = ChurnState::new(policy(), 3);
        ch.set_active(2, true);
        ch.set_active(0, false);
        ch.next_arrival(2);
        ch.next_epoch();
        ch.next_epoch();
        ch.stats_mut().spawns = 1;
        ch.stats_mut().retires = 1;
        ch.stats_mut().l1_lines_invalidated = 42;

        let mut buf = SectionBuf::new();
        ch.save(&mut buf);
        let mut restored = ChurnState::new(policy(), 3);
        restored
            .restore(&mut SectionReader::new("churn", buf.as_bytes()))
            .unwrap();
        assert_eq!(restored, ch);
    }

    #[test]
    fn restore_rejects_a_population_below_the_floor() {
        let mut ch = ChurnState::new(policy(), 3);
        let mut buf = SectionBuf::new();
        ch.save(&mut buf);
        let mut bad = buf.as_bytes().to_vec();
        // The three active flags follow the 8-byte count; clear them all.
        bad[8] = 0;
        bad[9] = 0;
        bad[10] = 0;
        let err = ch
            .restore(&mut SectionReader::new("churn", &bad))
            .expect_err("empty population must be rejected");
        assert_eq!(err.snapshot_kind(), Some(SnapshotErrorKind::Corrupt));
    }
}
