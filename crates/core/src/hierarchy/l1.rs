//! The private levels: L0/L1 fills, private invalidations, and
//! cache-to-cache service from a remote L1.

use super::HierarchyCtx;
use crate::metrics::MissSource;
use consim_cache::LineState;
use consim_noc::Packet;
use consim_types::{BlockAddr, CoreId, Cycle, NodeId};

impl HierarchyCtx<'_> {
    /// Serves a miss from another core's L1 (cache-to-cache transfer).
    #[allow(clippy::too_many_arguments)] // one argument per protocol actor
    pub(super) fn serve_from_remote_l1(
        &mut self,
        supplier: CoreId,
        requester_node: NodeId,
        block: BlockAddr,
        t: Cycle,
        dirty: bool,
        is_write: bool,
        sharing_writeback: bool,
    ) -> (Cycle, MissSource) {
        let snode = self.layout.core_node(supplier);
        let home = self.directory.home_of(block);
        let fwd = self.noc.send(&Packet::control(home, snode), t);
        let access_done = fwd + self.machine.l1.latency;
        let data = self
            .noc
            .send(&Packet::data(snode, requester_node), access_done);

        if is_write {
            // Ownership moves wholesale; the supplier loses its copy. (For
            // dirty suppliers the directory already invalidated via
            // `outcome.invalidate`; clean suppliers may keep S only on
            // reads.)
            self.invalidate_private(supplier, block);
        } else if dirty {
            // Owner downgrades M -> S; dirty data also written back to the
            // memory controller (SGI-Origin sharing writeback), off the
            // critical path.
            self.l1[supplier.index()].set_state(block, LineState::Shared);
            self.l0[supplier.index()].set_state(block, LineState::Shared);
        }
        if sharing_writeback {
            let (mc, mcnode) = self.layout.memory_controller_of(block);
            let arrive = self.noc.send(&Packet::data(snode, mcnode), access_done);
            self.reserve_memory(mc, arrive);
        }
        let source = if dirty {
            MissSource::RemoteL1Dirty
        } else {
            MissSource::RemoteL1Clean
        };
        (data, source)
    }

    /// Installs a block into a core's L1 (and L0), handling the eviction.
    pub(super) fn fill_l1(&mut self, core: CoreId, block: BlockAddr, state: LineState, now: Cycle) {
        if let Some(victim) = self.l1[core.index()].insert(block, state) {
            // Keep L0 inclusive.
            self.l0[core.index()].invalidate(victim.block);
            self.directory.evict(core, victim.block);
            if victim.state.is_dirty() {
                // Dirty victims write back into the local LLC bank, which is
                // distributed across the core's group (local delivery).
                let bank = self.machine.bank_of_core(core);
                let cnode = self.layout.core_node(core);
                self.noc.send(&Packet::data(cnode, cnode), now);
                self.fill_llc(bank, victim.block, LineState::Modified, now);
            }
        }
        self.fill_l0(core, block, state);
    }

    /// Mirrors a block into L0 (strictly inclusive in L1; evictions are
    /// silent because L0 state mirrors L1).
    pub(super) fn fill_l0(&mut self, core: CoreId, block: BlockAddr, state: LineState) {
        self.l0[core.index()].insert(block, state);
    }

    /// Removes a block from a core's private hierarchy (coherence
    /// invalidation or ownership transfer).
    pub(super) fn invalidate_private(&mut self, core: CoreId, block: BlockAddr) {
        self.l1[core.index()].invalidate(block);
        self.l0[core.index()].invalidate(block);
    }
}
