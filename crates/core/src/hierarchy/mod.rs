//! The memory-access pipeline: the slow half of one reference's walk.
//!
//! [`crate::engine`] owns the event loop, scheduling, and epochs — and,
//! since the raw-speed overhaul, the private L0/L1 hit fast path (see
//! `Simulation::private_access`): a hit needing no coherence action
//! completes inline without borrowing any of the structures below. This
//! module owns everything else — what happens once a reference misses the
//! private levels (or needs an upgrade): the directory transaction, and
//! the fills, downgrades, and invalidations each level performs. Each
//! level's logic lives in its own submodule behind a small internal API:
//!
//! * [`l1`] — the private levels: L0/L1 fills, private invalidations, and
//!   cache-to-cache service from a remote L1;
//! * [`llc`] — the shared banks: local/remote bank service, bank fills
//!   (with per-VM way partitioning), and LLC-wide invalidation;
//! * [`memory`] — the memory controllers' reservation calendars.
//!
//! [`HierarchyCtx`] is the seam between the two halves: a per-access view
//! borrowing the simulation's caches, directory, NoC, and metrics. It is
//! constructed afresh for every reference (it compiles down to a bundle of
//! pointers) so the engine retains ownership of all state between events.
//!
//! ## Way partitioning
//!
//! When [`consim_types::config::LlcPartitioning`] is active, `llc_masks`
//! holds one allowed-way bitmask per VM, derived once at simulation
//! construction. Every LLC *allocation* (demand fill, replication fill,
//! dirty-victim writeback, prewarm) is confined to the inserting block's
//! VM mask; lookups and invalidations still see the whole set, so the
//! coherence protocol is unchanged — only capacity allocation is
//! constrained. With partitioning off the masks are absent and the fill
//! path is byte-for-byte the unpartitioned one.

mod l1;
mod llc;
mod memory;

use crate::machine::Layout;
use crate::metrics::{MissSource, VmMetrics};
use consim_cache::{LineState, SetAssocCache};
use consim_coherence::{AccessKind, DataSource, Directory, DirectoryCache};
use consim_noc::{ContentionModel, Packet, ReservationCalendar};
use consim_types::config::MachineConfig;
use consim_types::{BlockAddr, CoreId, Cycle, VmId};

/// A per-access view of the machine: borrows every structure one reference
/// can touch on its walk through the hierarchy. Constructed by the engine
/// for each simulated reference.
pub struct HierarchyCtx<'a> {
    pub(crate) machine: &'a MachineConfig,
    pub(crate) layout: &'a Layout,
    pub(crate) l0: &'a mut [SetAssocCache],
    pub(crate) l1: &'a mut [SetAssocCache],
    pub(crate) llc: &'a mut [SetAssocCache],
    pub(crate) directory: &'a mut Directory,
    pub(crate) dircaches: &'a mut [DirectoryCache],
    pub(crate) noc: &'a mut ContentionModel,
    pub(crate) memory_controllers: &'a mut [ReservationCalendar],
    pub(crate) metrics: &'a mut [VmMetrics],
    /// Per-VM allowed-way bitmasks for LLC allocation, when partitioning is
    /// active (see the [module docs](self)).
    pub(crate) llc_masks: Option<&'a [u64]>,
}

impl HierarchyCtx<'_> {
    /// Resolves an L1 miss (or upgrade) through the directory; returns the
    /// completion time and the engine's classification of the miss. The
    /// private-hit prefix of the walk lives in the engine's fast path
    /// (`Simulation::private_access`), which falls through to here with the
    /// [`AccessKind`] it already classified.
    pub(crate) fn coherence_transaction(
        &mut self,
        core: CoreId,
        vm: VmId,
        block: BlockAddr,
        kind: AccessKind,
        issue: Cycle,
        measuring: bool,
    ) -> (Cycle, MissSource) {
        // Scalar reads instead of cloning the whole machine description:
        // this runs once per L1 miss.
        let l0_latency = self.machine.l0.latency;
        let l1_latency = self.machine.l1.latency;
        let memory_latency = self.machine.memory_latency;
        let cnode = self.layout.core_node(core);
        let home = self.directory.home_of(block);
        // Miss detected after the private lookups.
        let t0 = issue + l0_latency + l1_latency;
        // Request to the home directory.
        let mut t = self.noc.send(&Packet::control(cnode, home), t0);
        t += 1; // directory pipeline
        if !self.dircaches[home.index()].lookup(block) {
            // Fetch the entry off-chip through the block's controller.
            let (mc, _) = self.layout.memory_controller_of(block);
            let service = self.reserve_directory_refill(mc, t);
            t = service + memory_latency;
        }

        let prior_sharers = self.directory.sharers_of(block);
        let outcome = self.directory.handle(core, block, kind);

        // Invalidations fan out from the home; the requester waits for the
        // slowest acknowledgement.
        let mut ack_time = Cycle::ZERO;
        for victim in outcome.invalidate.iter() {
            let vnode = self.layout.core_node(victim);
            let arrive = self.noc.send(&Packet::control(home, vnode), t);
            self.invalidate_private(victim, block);
            if measuring {
                self.metrics[vm.index()].invalidations_received += 1;
            }
            let ack = self.noc.send(&Packet::control(vnode, cnode), arrive);
            ack_time = ack_time.max(ack);
        }

        let is_write = matches!(kind, AccessKind::Write | AccessKind::Upgrade);
        let (data_time, source) = match outcome.source {
            DataSource::DirtyCache(owner) => {
                let (t_data, src) = self.serve_from_remote_l1(
                    owner,
                    cnode,
                    block,
                    t,
                    true,
                    is_write,
                    outcome.writeback,
                );
                (t_data, src)
            }
            DataSource::CleanCache(_) => {
                // Pick the *nearest* prior sharer as the supplier.
                let supplier = prior_sharers
                    .iter()
                    .filter(|&c| c != core)
                    .min_by_key(|&c| self.layout.mesh().hops(self.layout.core_node(c), cnode))
                    .expect("clean transfer implies a sharer");
                self.serve_from_remote_l1(supplier, cnode, block, t, false, is_write, false)
            }
            DataSource::Below => self.serve_from_llc_or_memory(core, cnode, block, t, is_write),
            DataSource::None => {
                // Upgrade: permission only, no data.
                (t, MissSource::Upgrade)
            }
        };

        // Keep the LLC consistent with the new ownership: writers leave no
        // stale bank copies; read fills also allocate in the local bank
        // (mostly-inclusive L2), which is what lets read-shared lines
        // replicate across banks (paper Fig. 12).
        if is_write {
            self.invalidate_llc_copies(block);
        } else if matches!(
            source,
            MissSource::RemoteL1Dirty | MissSource::RemoteL1Clean
        ) {
            let my_bank = self.machine.bank_of_core(core);
            self.fill_llc(my_bank, block, LineState::Shared, data_time);
        }

        let completion = data_time.max(ack_time);
        if measuring {
            self.metrics[vm.index()].record_miss(source, completion - issue);
        }

        // Install the line in the private hierarchy.
        if source != MissSource::Upgrade {
            let new_state = if is_write {
                LineState::Modified
            } else if outcome.exclusive {
                LineState::Exclusive
            } else {
                LineState::Shared
            };
            self.fill_l1(core, block, new_state, completion);
        } else {
            self.l1[core.index()].set_state(block, LineState::Modified);
            self.l0[core.index()].set_state(block, LineState::Modified);
        }
        (completion, source)
    }
}
