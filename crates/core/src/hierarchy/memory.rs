//! The memory controllers: reservation-calendar occupancy (bandwidth
//! model) for cache-line transfers and directory-entry refills.

use super::HierarchyCtx;
use consim_types::{Cycle, MemCtrlId};

impl HierarchyCtx<'_> {
    /// Occupies a memory-controller service slot for one cache-line access
    /// starting no earlier than `ready`; returns when service begins.
    pub(super) fn reserve_memory(&mut self, mc: MemCtrlId, ready: Cycle) -> Cycle {
        let occupancy = self.machine.memory_occupancy.max(1);
        self.reserve_memory_slot(mc, ready, occupancy)
    }

    /// Occupies a *directory-entry* service slot: an 8-byte entry read costs
    /// a quarter of a cache-line transfer's bandwidth.
    pub(super) fn reserve_directory_refill(&mut self, mc: MemCtrlId, ready: Cycle) -> Cycle {
        let occupancy = (self.machine.memory_occupancy / 4).max(1);
        self.reserve_memory_slot(mc, ready, occupancy)
    }

    fn reserve_memory_slot(&mut self, mc: MemCtrlId, ready: Cycle, occupancy: u64) -> Cycle {
        let prune_before = ready.raw().saturating_sub(200_000);
        let start =
            self.memory_controllers[mc.index()].reserve(ready.raw(), occupancy, prune_before);
        Cycle::new(start)
    }
}
