//! The shared banks: local/remote bank service, bank fills (with per-VM
//! way partitioning), and LLC-wide invalidation.

use super::HierarchyCtx;
use crate::metrics::MissSource;
use consim_cache::LineState;
use consim_noc::Packet;
use consim_types::{BankId, BlockAddr, CoreId, Cycle, NodeId};

impl HierarchyCtx<'_> {
    /// Serves a miss from the LLC (local bank, then nearest remote bank)
    /// or, failing both, from memory.
    pub(super) fn serve_from_llc_or_memory(
        &mut self,
        core: CoreId,
        cnode: NodeId,
        block: BlockAddr,
        t: Cycle,
        is_write: bool,
    ) -> (Cycle, MissSource) {
        let llc_latency = self.machine.llc.latency;
        let memory_latency = self.machine.memory_latency;
        let home = self.directory.home_of(block);
        let my_bank = self.machine.bank_of_core(core);
        // A core's own LLC bank is physically distributed across its group
        // (the paper's uniform 6-cycle L2), so the access point is the
        // requester's node; only *remote* banks cost a mesh traversal.
        let bnode = cnode;
        let at_bank = self.noc.send(&Packet::control(home, bnode), t);
        let probed = at_bank + llc_latency;

        if self.llc[my_bank.index()].access(block).is_some() {
            let data = self.noc.send(&Packet::data(bnode, cnode), probed);
            if is_write {
                // The writer's L1 copy becomes the only valid one.
                self.invalidate_llc_copies(block);
            }
            return (data, MissSource::LocalLlc);
        }

        // Nearest other bank holding the block.
        let remote = (0..self.llc.len())
            .filter(|&b| b != my_bank.index() && self.llc[b].contains(block))
            .min_by_key(|&b| {
                self.layout
                    .mesh()
                    .hops(self.layout.bank_node(BankId::new(b)), cnode)
            });
        if let Some(rb) = remote {
            let rnode = self.layout.bank_node(BankId::new(rb));
            let fwd = self.noc.send(&Packet::control(bnode, rnode), probed);
            let served = fwd + llc_latency;
            let data = self.noc.send(&Packet::data(rnode, cnode), served);
            let was_dirty = self.llc[rb]
                .probe(block)
                .map(LineState::is_dirty)
                .unwrap_or(false);
            if is_write {
                self.invalidate_llc_copies(block);
            } else {
                if was_dirty {
                    // Downgrade: push the dirty data to memory so clean
                    // copies can proliferate.
                    self.llc[rb].set_state(block, LineState::Shared);
                    let (mc, mcnode) = self.layout.memory_controller_of(block);
                    let arrive = self.noc.send(&Packet::data(rnode, mcnode), served);
                    self.reserve_memory(mc, arrive);
                }
                // Replicate into the requester's bank.
                self.fill_llc(my_bank, block, LineState::Shared, served);
            }
            let source = if was_dirty {
                MissSource::RemoteLlcDirty
            } else {
                MissSource::RemoteLlcClean
            };
            return (data, source);
        }

        // Memory: queue at the controller, then pay the DRAM latency.
        let (mc, mcnode) = self.layout.memory_controller_of(block);
        let to_mc = self.noc.send(&Packet::control(bnode, mcnode), probed);
        let service = self.reserve_memory(mc, to_mc);
        let fetched = service + memory_latency;
        let data = self.noc.send(&Packet::data(mcnode, cnode), fetched);
        if !is_write {
            self.fill_llc(my_bank, block, LineState::Shared, fetched);
        }
        (data, MissSource::Memory)
    }

    /// Installs a block into an LLC bank, pushing dirty victims to memory.
    /// Under way partitioning the allocation is confined to the block's
    /// VM's allowed ways; without it this is the plain unrestricted fill.
    pub(super) fn fill_llc(
        &mut self,
        bank: BankId,
        block: BlockAddr,
        state: LineState,
        now: Cycle,
    ) {
        let victim = match self.llc_masks {
            Some(masks) => {
                self.llc[bank.index()].insert_in_ways(block, state, masks[block.vm().index()])
            }
            None => self.llc[bank.index()].insert(block, state),
        };
        if let Some(victim) = victim {
            if victim.state.is_dirty() {
                let bnode = self.layout.bank_node(bank);
                let (mc, mcnode) = self.layout.memory_controller_of(victim.block);
                let arrive = self.noc.send(&Packet::data(bnode, mcnode), now);
                self.reserve_memory(mc, arrive);
            }
        }
    }

    /// Drops every LLC copy of a block (a writer took exclusive ownership).
    pub(super) fn invalidate_llc_copies(&mut self, block: BlockAddr) {
        for bank in self.llc.iter_mut() {
            bank.invalidate(block);
        }
    }
}
