//! Multi-seed aggregation (statistical simulation).
//!
//! The paper uses the statistical-simulation methodology of Alameldeen and
//! Wood: multi-threaded runs are non-deterministic, so each configuration is
//! run several times with perturbed initial conditions and results are
//! reported as means with confidence intervals. Here the perturbation is the
//! root RNG seed.

use std::fmt;

/// Mean / standard deviation / confidence half-width of a set of samples.
///
/// # Examples
///
/// ```
/// use consim::stats::Summary;
///
/// let s = Summary::of(&[1.0, 2.0, 3.0]);
/// assert_eq!(s.mean, 2.0);
/// assert!(s.std > 0.9 && s.std < 1.1);
/// assert_eq!(s.n, 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 normalization).
    pub std: f64,
    /// Number of samples.
    pub n: usize,
}

impl Summary {
    /// Summarizes a sample set. Empty input gives all zeros; a single
    /// sample gives `std = 0`.
    pub fn of(samples: &[f64]) -> Self {
        let n = samples.len();
        if n == 0 {
            return Self::default();
        }
        let mean = samples.iter().sum::<f64>() / n as f64;
        let std = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
            var.sqrt()
        };
        Self { mean, std, n }
    }

    /// Approximate 95 % confidence half-width (1.96 standard errors).
    pub fn ci95(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            1.96 * self.std / (self.n as f64).sqrt()
        }
    }

    /// Coefficient of variation (std / mean); zero for zero mean.
    pub fn cv(&self) -> f64 {
        if self.mean == 0.0 {
            0.0
        } else {
            self.std / self.mean
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4} ± {:.4} (n={})", self.mean, self.ci95(), self.n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zero() {
        let s = Summary::of(&[]);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn single_sample_has_no_spread() {
        let s = Summary::of(&[5.0]);
        assert_eq!(s.mean, 5.0);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.ci95(), 0.0);
    }

    #[test]
    fn known_values() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        // Sample std with n-1: sqrt(32/7).
        assert!((s.std - (32.0f64 / 7.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn ci_shrinks_with_samples() {
        let few = Summary::of(&[1.0, 2.0, 3.0]);
        let many = Summary::of(&[1.0, 2.0, 3.0, 1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        assert!(many.ci95() < few.ci95());
    }

    #[test]
    fn cv() {
        let s = Summary::of(&[2.0, 2.0]);
        assert_eq!(s.cv(), 0.0);
        assert_eq!(Summary::default().cv(), 0.0);
    }

    #[test]
    fn display() {
        let s = Summary::of(&[1.0, 1.0]);
        assert!(s.to_string().contains("n=2"));
    }
}
