//! Physical placement of memory-system endpoints on the mesh.
//!
//! Cores map 1:1 to mesh nodes (row-major). Each LLC bank attaches at a node
//! central to its core group; memory controllers sit at the mesh corners
//! (edge nodes for other counts). All coherence traffic is routed between
//! these nodes.

use consim_noc::topology::Mesh;
use consim_types::config::MachineConfig;
use consim_types::{BankId, BlockAddr, CoreId, MemCtrlId, NodeId, SimError};

/// Node placement derived from a [`MachineConfig`].
///
/// # Examples
///
/// ```
/// use consim::machine::Layout;
/// use consim_types::config::{MachineConfig, SharingDegree};
/// use consim_types::{BankId, CoreId};
///
/// let machine = MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4));
/// let layout = Layout::new(&machine)?;
/// // Bank 0 serves cores 0..4 and sits among them.
/// let node = layout.bank_node(BankId::new(0));
/// assert!(node.index() < 4);
/// # Ok::<(), consim_types::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Layout {
    mesh: Mesh,
    bank_nodes: Vec<NodeId>,
    mc_nodes: Vec<NodeId>,
}

impl Layout {
    /// Computes the layout for a machine.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if the mesh cannot be built.
    pub fn new(machine: &MachineConfig) -> Result<Self, SimError> {
        let mesh = Mesh::new(machine.mesh_width, machine.mesh_height())?;
        let per_bank = machine.cores_per_bank();
        let bank_nodes = (0..machine.llc_banks())
            .map(|b| NodeId::new(b * per_bank + per_bank / 2))
            .collect();
        let mc_nodes = Self::memory_controller_nodes(&mesh, machine.num_memory_controllers);
        Ok(Self {
            mesh,
            bank_nodes,
            mc_nodes,
        })
    }

    /// Spreads `count` memory controllers around the mesh perimeter,
    /// starting from the corners.
    fn memory_controller_nodes(mesh: &Mesh, count: usize) -> Vec<NodeId> {
        let w = mesh.width();
        let h = mesh.height();
        // Corners first, then evenly spaced nodes.
        let mut candidates: Vec<NodeId> = vec![
            NodeId::new(0),
            NodeId::new(w - 1),
            NodeId::new((h - 1) * w),
            NodeId::new(h * w - 1),
        ];
        candidates.dedup();
        let mut nodes = Vec::with_capacity(count);
        for i in 0..count {
            if i < candidates.len() {
                nodes.push(candidates[i]);
            } else {
                // Fall back to even striding across all nodes.
                nodes.push(NodeId::new(
                    (i * mesh.num_nodes() / count) % mesh.num_nodes(),
                ));
            }
        }
        nodes
    }

    /// The mesh.
    pub fn mesh(&self) -> &Mesh {
        &self.mesh
    }

    /// The mesh node of a core (identity mapping).
    pub fn core_node(&self, core: CoreId) -> NodeId {
        NodeId::new(core.index())
    }

    /// The mesh node an LLC bank attaches to.
    ///
    /// # Panics
    ///
    /// Panics if the bank does not exist under this layout.
    pub fn bank_node(&self, bank: BankId) -> NodeId {
        self.bank_nodes[bank.index()]
    }

    /// The memory controller responsible for a block (striped by block
    /// address) and its mesh node.
    pub fn memory_controller_of(&self, block: BlockAddr) -> (MemCtrlId, NodeId) {
        let mc = (block.raw() % self.mc_nodes.len() as u64) as usize;
        (MemCtrlId::new(mc), self.mc_nodes[mc])
    }

    /// Nodes of all memory controllers.
    pub fn memory_controller_nodes_list(&self) -> &[NodeId] {
        &self.mc_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consim_types::config::SharingDegree;

    fn layout(sharing: SharingDegree) -> (MachineConfig, Layout) {
        let m = MachineConfig::paper_default().with_sharing(sharing);
        let l = Layout::new(&m).unwrap();
        (m, l)
    }

    #[test]
    fn bank_nodes_sit_inside_their_core_group() {
        for sharing in SharingDegree::paper_sweep() {
            let (m, l) = layout(sharing);
            for b in 0..m.llc_banks() {
                let bank = BankId::new(b);
                let node = l.bank_node(bank);
                assert!(
                    m.cores_of_bank(bank).contains(&node.index()),
                    "{sharing}: bank {b} at node {node} outside its group"
                );
            }
        }
    }

    #[test]
    fn private_banks_are_at_their_core() {
        let (m, l) = layout(SharingDegree::Private);
        for c in 0..m.num_cores {
            assert_eq!(l.bank_node(BankId::new(c)).index(), c);
        }
    }

    #[test]
    fn memory_controllers_at_corners() {
        let (_, l) = layout(SharingDegree::FullyShared);
        let nodes = l.memory_controller_nodes_list();
        assert_eq!(nodes.len(), 4);
        let set: std::collections::HashSet<usize> = nodes.iter().map(|n| n.index()).collect();
        assert_eq!(set, [0, 3, 12, 15].into_iter().collect());
    }

    #[test]
    fn blocks_stripe_across_memory_controllers() {
        let (_, l) = layout(SharingDegree::FullyShared);
        let mut seen = std::collections::HashSet::new();
        for n in 0..16 {
            let (mc, node) = l.memory_controller_of(BlockAddr::new(n));
            seen.insert(mc);
            assert!(l.memory_controller_nodes_list().contains(&node));
        }
        assert_eq!(seen.len(), 4);
    }

    #[test]
    fn core_nodes_are_identity() {
        let (_, l) = layout(SharingDegree::SharedBy(2));
        assert_eq!(l.core_node(CoreId::new(11)), NodeId::new(11));
    }

    #[test]
    fn more_mcs_than_corners_still_distinct_enough() {
        let m = consim_types::config::MachineConfigBuilder::new()
            .num_memory_controllers(8)
            .build()
            .unwrap();
        let l = Layout::new(&m).unwrap();
        assert_eq!(l.memory_controller_nodes_list().len(), 8);
    }
}
