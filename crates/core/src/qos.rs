//! Dynamic fairness-aware LLC way repartitioning — the QoS control loop.
//!
//! [`QosController`] implements [`LlcPartitioning::Dynamic`]: at every epoch
//! boundary of the measurement phase the engine hands it the per-VM
//! cumulative counters (references, L1 misses, memory fetches) plus the
//! current per-VM LLC occupancy, and the controller re-derives the
//! contiguous way split. The decision procedure is LFOC+-flavoured:
//!
//! 1. **Progress estimate.** Per VM, cycles-per-kiloref for the epoch
//!    (`1000 * elapsed / refs`). The best (lowest) value ever seen for a VM
//!    stands in for its isolated speed; the ratio of the current epoch to
//!    that best is the VM's *slowdown* in milli units (1000 = no slowdown),
//!    folded into an EWMA with weight `ewma_permille`. A VM that issued no
//!    references this epoch keeps its previous EWMA.
//! 2. **Classification.** *Light* if the VM missed its private caches fewer
//!    than `light_miss_permille` times per 1000 references or holds less
//!    than one way's worth of LLC lines; otherwise *streaming* if more than
//!    `stream_memory_permille` of its private misses went all the way to
//!    memory (the LLC is not helping it); otherwise *cache-sensitive*.
//! 3. **Targets.** Every VM is floored at `min_ways`. The remaining pool is
//!    split largest-remainder-proportionally to the EWMA slowdown of the
//!    cache-sensitive VMs (light/streaming VMs get weight zero — taking
//!    ways from them is free, giving them ways is pointless). If no VM is
//!    cache-sensitive the pool is split equally, first VMs taking the
//!    remainder, which reproduces the static `EqualWays` rule.
//! 4. **Hysteresis.** If the spread between the largest and smallest EWMA
//!    slowdown is within `deadband_milli`, the current split is kept
//!    untouched. Otherwise at most `max_step` single-way moves are applied
//!    per epoch, each taking one way from the VM with the largest surplus
//!    over its target (ties: lowest VM id) and handing it to the VM with the
//!    largest deficit (same tie rule). Quotas never drop below `min_ways`.
//!
//! The arithmetic is exclusively unsigned-integer (u128 intermediates for
//! the proportional split), so the controller is bit-reproducible across
//! platforms, its state checkpoints exactly, and the differential oracle in
//! `consim-check` can re-derive every decision from the same inputs.
//!
//! Mask changes are applied *lazily*: the engine swaps the per-VM allowed
//! way masks and lets out-of-quota lines age out through natural
//! replacement (a VM still hits on its lines parked in ways it no longer
//! owns; the new owner evicts them on demand). There is no flush.
//!
//! [`LlcPartitioning::Dynamic`]: consim_types::LlcPartitioning::Dynamic

use consim_snap::{SectionBuf, SectionReader};
use consim_types::{DynamicPolicy, SimError, SnapshotErrorKind};

/// LFOC+-style classification of one VM's behaviour over the last epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VmClass {
    /// Barely touches the LLC: very few private-cache misses per reference,
    /// or holds less than one way's worth of lines.
    Light,
    /// Misses a lot but the LLC does not catch the misses — most go to
    /// memory. Extra ways are wasted on it.
    Streaming,
    /// The LLC visibly works for this VM; it competes for capacity.
    CacheSensitive,
}

impl VmClass {
    /// Stable lower-snake label (used in trace events and reports).
    pub fn label(self) -> &'static str {
        match self {
            VmClass::Light => "light",
            VmClass::Streaming => "streaming",
            VmClass::CacheSensitive => "cache_sensitive",
        }
    }
}

/// Everything one repartition decision consumed and produced. Handed to
/// [`StepObserver::on_repartition`] (every decision, changed or not) and —
/// when the masks actually change — recorded as a `Repartition` trace event.
///
/// [`StepObserver::on_repartition`]: crate::observe::StepObserver::on_repartition
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RepartitionDecision {
    /// 1-based index of this decision within the measurement phase.
    pub epoch: u64,
    /// Cycle at which the boundary fired.
    pub at: u64,
    /// Cycles elapsed since the previous boundary (or measurement start).
    pub elapsed: u64,
    /// Per-VM references issued during the epoch.
    pub refs: Vec<u64>,
    /// Per-VM private-cache (L1) misses during the epoch.
    pub l1_misses: Vec<u64>,
    /// Per-VM misses that were served by memory during the epoch.
    pub memory_fetches: Vec<u64>,
    /// Per-VM LLC lines held at the boundary (actual contents, may exceed
    /// the quota while old lines age out).
    pub occupancy_lines: Vec<u64>,
    /// Per-VM classification used for this decision.
    pub classes: Vec<VmClass>,
    /// Per-VM EWMA slowdown (milli units, 1000 = no slowdown) after the
    /// epoch's update.
    pub ewma_milli: Vec<u64>,
    /// Way masks in force before the decision.
    pub old_masks: Vec<u64>,
    /// Way masks in force after the decision (equal to `old_masks` when the
    /// dead-band held or no move was possible).
    pub new_masks: Vec<u64>,
}

impl RepartitionDecision {
    /// Whether the decision actually moved any ways.
    pub fn changed(&self) -> bool {
        self.old_masks != self.new_masks
    }
}

/// Builds the contiguous per-VM way masks implied by a quota vector:
/// VM 0 takes the lowest `quotas[0]` ways, VM 1 the next `quotas[1]`, …
pub fn masks_from_quotas(quotas: &[u8]) -> Vec<u64> {
    let mut base = 0u32;
    quotas
        .iter()
        .map(|&q| {
            let q = u32::from(q);
            let mask = if q >= 64 {
                u64::MAX
            } else {
                ((1u64 << q) - 1) << base
            };
            base += q;
            mask
        })
        .collect()
}

/// The repartitioning controller state machine. Owned by the engine when the
/// machine is configured with [`LlcPartitioning::Dynamic`]; runs only during
/// the measurement phase.
///
/// [`LlcPartitioning::Dynamic`]: consim_types::LlcPartitioning::Dynamic
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QosController {
    policy: DynamicPolicy,
    associativity: u32,
    /// Total line capacity of the LLC across all banks (for the
    /// "less than one way's worth" classification test).
    total_lines: u64,
    /// Current per-VM way quotas; always ≥ `min_ways` each, summing to the
    /// associativity.
    quotas: Vec<u8>,
    /// Per-VM EWMA slowdown, milli units; starts at 1000 (no slowdown).
    ewma_milli: Vec<u64>,
    /// Best (lowest) cycles-per-kiloref seen per VM; `u64::MAX` until the
    /// VM's first active epoch.
    best_cpkr: Vec<u64>,
    /// Cumulative counter values at the previous boundary.
    prev_refs: Vec<u64>,
    prev_l1_misses: Vec<u64>,
    prev_memory_fetches: Vec<u64>,
    /// Cycle of the previous boundary (or of `begin`).
    last_boundary: u64,
    /// Decisions made so far this measurement phase.
    epochs: u64,
}

fn corrupt(msg: impl Into<String>) -> SimError {
    SimError::snapshot(SnapshotErrorKind::Corrupt, msg)
}

impl QosController {
    /// Creates a controller at its initial state: the equal split (the same
    /// masks [`LlcPartitioning::way_masks`] hands the engine for `Dynamic`).
    ///
    /// [`LlcPartitioning::way_masks`]: consim_types::LlcPartitioning::way_masks
    pub fn new(
        policy: DynamicPolicy,
        associativity: usize,
        num_vms: usize,
        total_lines: u64,
    ) -> Self {
        let base = associativity / num_vms;
        let extra = associativity % num_vms;
        let quotas = (0..num_vms)
            .map(|vm| (base + usize::from(vm < extra)) as u8)
            .collect();
        Self {
            policy,
            associativity: associativity as u32,
            total_lines,
            quotas,
            ewma_milli: vec![1000; num_vms],
            best_cpkr: vec![u64::MAX; num_vms],
            prev_refs: vec![0; num_vms],
            prev_l1_misses: vec![0; num_vms],
            prev_memory_fetches: vec![0; num_vms],
            last_boundary: 0,
            epochs: 0,
        }
    }

    /// Cycles between repartition decisions.
    pub fn interval(&self) -> u64 {
        self.policy.epoch_interval
    }

    /// The masks implied by the current quotas.
    pub fn masks(&self) -> Vec<u64> {
        masks_from_quotas(&self.quotas)
    }

    /// The current per-VM way quotas.
    pub fn quotas(&self) -> &[u8] {
        &self.quotas
    }

    /// Resets the controller for a fresh measurement phase starting at
    /// `now` (measurement counters restart at zero there too).
    pub fn begin(&mut self, now: u64) {
        let n = self.quotas.len();
        *self = Self::new(
            self.policy.clone(),
            self.associativity as usize,
            n,
            self.total_lines,
        );
        self.last_boundary = now;
    }

    /// Runs one repartition decision at cycle `now` from the *cumulative*
    /// per-VM measurement counters and the current per-VM LLC line counts.
    /// Updates the controller state and returns the full decision record.
    pub fn decide(
        &mut self,
        now: u64,
        refs: &[u64],
        l1_misses: &[u64],
        memory_fetches: &[u64],
        occupancy_lines: &[u64],
    ) -> RepartitionDecision {
        let n = self.quotas.len();
        debug_assert!(
            refs.len() == n
                && l1_misses.len() == n
                && memory_fetches.len() == n
                && occupancy_lines.len() == n
        );
        let elapsed = now.saturating_sub(self.last_boundary);
        self.last_boundary = now;
        self.epochs += 1;

        let mut refs_d = vec![0u64; n];
        let mut l1_d = vec![0u64; n];
        let mut mem_d = vec![0u64; n];
        for vm in 0..n {
            refs_d[vm] = refs[vm].saturating_sub(self.prev_refs[vm]);
            l1_d[vm] = l1_misses[vm].saturating_sub(self.prev_l1_misses[vm]);
            mem_d[vm] = memory_fetches[vm].saturating_sub(self.prev_memory_fetches[vm]);
            self.prev_refs[vm] = refs[vm];
            self.prev_l1_misses[vm] = l1_misses[vm];
            self.prev_memory_fetches[vm] = memory_fetches[vm];
        }

        let mut classes = vec![VmClass::Light; n];
        for vm in 0..n {
            if refs_d[vm] == 0 {
                // Idle or finished: no progress signal. Keep the EWMA and
                // classify light so its ways are up for grabs.
                classes[vm] = VmClass::Light;
                continue;
            }
            // Progress: cycles per kiloref this epoch vs the best ever seen.
            let cpkr = sat64((elapsed as u128) * 1000 / refs_d[vm] as u128);
            if cpkr < self.best_cpkr[vm] {
                self.best_cpkr[vm] = cpkr;
            }
            let best = self.best_cpkr[vm].max(1);
            let slow_milli = sat64((cpkr as u128) * 1000 / best as u128);
            let p = u128::from(self.policy.ewma_permille);
            self.ewma_milli[vm] = sat64(
                (p * u128::from(slow_milli) + (1000 - p) * u128::from(self.ewma_milli[vm])) / 1000,
            );

            // Classification.
            let mpkr = (l1_d[vm] as u128) * 1000 / refs_d[vm] as u128;
            let occ_ways = u128::from(self.associativity) * u128::from(occupancy_lines[vm])
                / u128::from(self.total_lines.max(1));
            let mem_share = (mem_d[vm] as u128) * 1000 / (l1_d[vm].max(1)) as u128;
            classes[vm] = if mpkr < u128::from(self.policy.light_miss_permille) || occ_ways == 0 {
                VmClass::Light
            } else if mem_share > u128::from(self.policy.stream_memory_permille) {
                VmClass::Streaming
            } else {
                VmClass::CacheSensitive
            };
        }

        let old_masks = self.masks();
        let spread = self.ewma_milli.iter().max().unwrap_or(&1000)
            - self.ewma_milli.iter().min().unwrap_or(&1000);
        if spread > u64::from(self.policy.deadband_milli) {
            let targets = self.targets(&classes);
            self.step_towards(&targets);
        }
        let new_masks = self.masks();

        RepartitionDecision {
            epoch: self.epochs,
            at: now,
            elapsed,
            refs: refs_d,
            l1_misses: l1_d,
            memory_fetches: mem_d,
            occupancy_lines: occupancy_lines.to_vec(),
            classes,
            ewma_milli: self.ewma_milli.clone(),
            old_masks,
            new_masks,
        }
    }

    /// The quota vector the controller would like to converge to: `min_ways`
    /// each plus the free pool split largest-remainder-proportionally to the
    /// EWMA slowdown of cache-sensitive VMs.
    fn targets(&self, classes: &[VmClass]) -> Vec<u8> {
        let n = self.quotas.len();
        let min = u32::from(self.policy.min_ways);
        let pool = self.associativity - min * n as u32;
        let weights: Vec<u64> = (0..n)
            .map(|vm| {
                if classes[vm] == VmClass::CacheSensitive {
                    self.ewma_milli[vm]
                } else {
                    0
                }
            })
            .collect();
        let total: u128 = weights.iter().map(|&w| u128::from(w)).sum();

        let mut targets = vec![0u32; n];
        if total == 0 {
            // Nobody is cache-sensitive: equal split, first VMs take the
            // remainder (the EqualWays rule).
            let base = pool / n as u32;
            let extra = pool % n as u32;
            for (vm, t) in targets.iter_mut().enumerate() {
                *t = min + base + u32::from((vm as u32) < extra);
            }
        } else {
            // Largest-remainder apportionment, ties to the lowest VM id.
            let mut assigned = 0u32;
            let mut rems: Vec<(u128, usize)> = Vec::with_capacity(n);
            for vm in 0..n {
                let prod = u128::from(pool) * u128::from(weights[vm]);
                let share = prod.checked_div(total).unwrap_or(0) as u32;
                targets[vm] = min + share;
                assigned += share;
                rems.push((prod.checked_rem(total).unwrap_or(0), vm));
            }
            // Highest remainder first; equal remainders go to lower ids.
            rems.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
            let leftover = pool - assigned;
            for &(_, vm) in rems.iter().take(leftover as usize) {
                targets[vm] += 1;
            }
        }
        targets.iter().map(|&t| t as u8).collect()
    }

    /// Moves at most `max_step` single ways from the largest-surplus VM to
    /// the largest-deficit VM (ties: lowest id), never dropping a quota
    /// below `min_ways`.
    fn step_towards(&mut self, targets: &[u8]) {
        let min = self.policy.min_ways;
        for _ in 0..self.policy.max_step {
            let mut donor: Option<(u8, usize)> = None;
            let mut recipient: Option<(u8, usize)> = None;
            for (vm, (&cur, &tgt)) in self.quotas.iter().zip(targets).enumerate() {
                if cur > tgt && cur > min {
                    let surplus = cur - tgt;
                    if donor.is_none_or(|(s, _)| surplus > s) {
                        donor = Some((surplus, vm));
                    }
                }
                if tgt > cur {
                    let deficit = tgt - cur;
                    if recipient.is_none_or(|(d, _)| deficit > d) {
                        recipient = Some((deficit, vm));
                    }
                }
            }
            let (Some((_, from)), Some((_, to))) = (donor, recipient) else {
                break;
            };
            self.quotas[from] -= 1;
            self.quotas[to] += 1;
        }
    }

    /// Appends the controller's mutable state to a checkpoint section.
    pub(crate) fn save(&self, w: &mut SectionBuf) {
        w.put_u8_slice(&self.quotas);
        w.put_u64_slice(&self.ewma_milli);
        w.put_u64_slice(&self.best_cpkr);
        w.put_u64_slice(&self.prev_refs);
        w.put_u64_slice(&self.prev_l1_misses);
        w.put_u64_slice(&self.prev_memory_fetches);
        w.put_u64(self.last_boundary);
        w.put_u64(self.epochs);
    }

    /// Restores the controller's mutable state from a checkpoint section,
    /// re-validating the quota invariants against the configuration.
    pub(crate) fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        let n = self.quotas.len();
        let mut quotas = vec![0u8; n];
        r.get_u8_slice_into(&mut quotas, "qos quotas")?;
        if quotas.iter().map(|&q| u32::from(q)).sum::<u32>() != self.associativity {
            return Err(corrupt("qos quotas do not sum to the LLC associativity"));
        }
        if quotas.iter().any(|&q| q < self.policy.min_ways) {
            return Err(corrupt("qos quota below the configured min_ways"));
        }
        self.quotas = quotas;
        for field in [
            &mut self.ewma_milli,
            &mut self.best_cpkr,
            &mut self.prev_refs,
            &mut self.prev_l1_misses,
            &mut self.prev_memory_fetches,
        ] {
            let values = r.get_u64_vec()?;
            if values.len() != n {
                return Err(corrupt("qos per-VM state length mismatch"));
            }
            *field = values;
        }
        self.last_boundary = r.get_u64()?;
        self.epochs = r.get_u64()?;
        Ok(())
    }
}

fn sat64(v: u128) -> u64 {
    u64::try_from(v).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> DynamicPolicy {
        DynamicPolicy::default()
    }

    fn controller(assoc: usize, vms: usize) -> QosController {
        // 4 banks × 256 sets × assoc ways is representative; the exact line
        // count only matters for the "less than one way" occupancy test.
        QosController::new(policy(), assoc, vms, (4 * 256 * assoc) as u64)
    }

    #[test]
    fn initial_masks_are_the_equal_split() {
        let c = controller(16, 3);
        assert_eq!(c.quotas(), &[6, 5, 5]);
        assert_eq!(c.masks(), vec![0x003f, 0x07c0, 0xf800]);
    }

    #[test]
    fn masks_from_quotas_are_contiguous_and_cover() {
        let masks = masks_from_quotas(&[2, 2, 2, 1, 1]);
        assert_eq!(
            masks,
            vec![0b11, 0b1100, 0b11_0000, 0b100_0000, 0b1000_0000]
        );
        assert_eq!(masks.iter().fold(0, |a, m| a | m), 0xff);
        assert_eq!(masks_from_quotas(&[64]), vec![u64::MAX]);
    }

    /// Drives one VM as clearly cache-sensitive-and-slowed and the other as
    /// light; ways must migrate toward the slowed VM, one per epoch.
    #[test]
    fn ways_migrate_to_the_slowed_cache_sensitive_vm() {
        let mut c = controller(16, 2);
        c.begin(0);
        let lines = 4 * 256 * 16 / 4; // plenty of occupancy for VM 0
                                      // Epoch 1: establish VM 0's best cpkr (fast epoch).
        let d1 = c.decide(
            50_000,
            &[50_000, 50_000],
            &[5_000, 0],
            &[500, 0],
            &[lines, 0],
        );
        assert_eq!(d1.classes, vec![VmClass::CacheSensitive, VmClass::Light]);
        assert!(!d1.changed(), "no slowdown signal yet: {d1:?}");
        // Epoch 2: VM 0 runs 3x slower than its best; VM 1 still light.
        let d2 = c.decide(
            100_000,
            &[50_000 + 16_000, 50_000 + 50_000],
            &[10_000, 0],
            &[1_000, 0],
            &[lines, 0],
        );
        assert!(d2.changed(), "slowdown must trigger a move: {d2:?}");
        assert_eq!(c.quotas(), &[9, 7], "one way per epoch (max_step=1)");
        assert_eq!(d2.new_masks, masks_from_quotas(&[9, 7]));
    }

    #[test]
    fn deadband_keeps_the_split_stable() {
        let mut c = controller(16, 2);
        c.begin(0);
        // Identical progress on both VMs, both cache-sensitive: spread 0.
        for epoch in 1..=5u64 {
            let cum = 50_000 * epoch;
            let d = c.decide(
                50_000 * epoch,
                &[cum, cum],
                &[cum / 10, cum / 10],
                &[cum / 100, cum / 100],
                &[1000, 1000],
            );
            assert!(!d.changed(), "epoch {epoch} moved ways: {d:?}");
        }
        assert_eq!(c.quotas(), &[8, 8]);
    }

    #[test]
    fn quotas_never_drop_below_min_ways() {
        let mut c = controller(16, 4);
        c.begin(0);
        // VM 0 slowed and sensitive, the rest permanently idle.
        for epoch in 1..=40u64 {
            let now = 10_000 * epoch;
            let slow = if epoch == 1 { 10_000 } else { 2_000 };
            let refs0 = c.prev_refs[0] + slow;
            c.decide(
                now,
                &[refs0, 0, 0, 0],
                &[refs0 / 5, 0, 0, 0],
                &[refs0 / 50, 0, 0, 0],
                &[4096, 0, 0, 0],
            );
        }
        assert_eq!(c.quotas()[1..], [1, 1, 1], "idle VMs pinned at min_ways");
        assert_eq!(c.quotas()[0], 13);
        assert_eq!(c.quotas().iter().map(|&q| u32::from(q)).sum::<u32>(), 16);
    }

    #[test]
    fn streaming_vms_get_weight_zero() {
        let mut c = controller(16, 2);
        c.begin(0);
        // Both miss heavily; VM 1's misses all go to memory (streaming).
        c.decide(
            50_000,
            &[50_000, 50_000],
            &[5_000, 5_000],
            &[500, 5_000],
            &[2000, 2000],
        );
        let d = c.decide(
            100_000,
            &[66_000, 66_000],
            &[10_000, 10_000],
            &[1_000, 10_000],
            &[2000, 2000],
        );
        assert_eq!(d.classes, vec![VmClass::CacheSensitive, VmClass::Streaming]);
    }

    #[test]
    fn decisions_are_deterministic_and_state_round_trips() {
        let drive = |c: &mut QosController| {
            c.begin(7);
            let mut out = Vec::new();
            for e in 1..=6u64 {
                let cum = 40_000 * e;
                out.push(c.decide(
                    7 + 50_000 * e,
                    &[cum, cum / 2, cum / 3],
                    &[cum / 8, cum / 64, cum / 4],
                    &[cum / 80, cum / 640, cum / 5],
                    &[3000, 100, 2500],
                ));
            }
            out
        };
        let mut a = controller(16, 3);
        let mut b = controller(16, 3);
        assert_eq!(drive(&mut a), drive(&mut b));

        // Round-trip the mid-run state and continue both copies in lockstep.
        let mut buf = SectionBuf::new();
        a.save(&mut buf);
        let mut c = controller(16, 3);
        c.restore(&mut SectionReader::new("qos", buf.as_bytes()))
            .unwrap();
        assert_eq!(a, c);
        let cum = 40_000 * 7;
        let next = |c: &mut QosController| {
            c.decide(
                7 + 50_000 * 7,
                &[cum, cum / 2, cum / 3],
                &[cum / 8, cum / 64, cum / 4],
                &[cum / 80, cum / 640, cum / 5],
                &[3000, 100, 2500],
            )
        };
        assert_eq!(next(&mut a), next(&mut c));
    }

    #[test]
    fn restore_rejects_invalid_quotas() {
        let mut good = controller(16, 2);
        good.begin(0);
        let mut buf = SectionBuf::new();
        good.save(&mut buf);
        // A valid payload restores fine.
        let mut c = controller(16, 2);
        c.restore(&mut SectionReader::new("qos", buf.as_bytes()))
            .unwrap();

        // Corrupt the quota bytes so they no longer sum to the
        // associativity: count(usize) is 8 bytes, quotas follow.
        let mut bad = buf.as_bytes().to_vec();
        bad[8] = 15; // [15, 8] sums to 23, not 16
        let err = controller(16, 2)
            .restore(&mut SectionReader::new("qos", &bad))
            .expect_err("bad sum must be rejected");
        assert_eq!(err.snapshot_kind(), Some(SnapshotErrorKind::Corrupt));

        let mut below_min = buf.as_bytes().to_vec();
        below_min[8] = 0;
        below_min[9] = 16;
        let err = controller(16, 2)
            .restore(&mut SectionReader::new("qos", &below_min))
            .expect_err("quota below min_ways must be rejected");
        assert_eq!(err.snapshot_kind(), Some(SnapshotErrorKind::Corrupt));
    }
}
