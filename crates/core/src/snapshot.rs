//! Checkpoint codec for [`SimulationConfig`].
//!
//! A checkpoint must be self-describing: resuming rebuilds the machine from
//! the *stored* configuration, then restores mutable state into it, so a
//! snapshot can never be replayed against the wrong machine. The codec
//! round-trips every field except the trace sink (process-local; reattach
//! with [`crate::engine::Simulation::set_trace`]) and decodes through the
//! validated builders — a corrupted-but-checksum-valid configuration is
//! rejected with [`SnapshotErrorKind::Corrupt`], never constructed.

use crate::engine::SimulationConfig;
use consim_cache::ReplacementPolicy;
use consim_sched::SchedulingPolicy;
use consim_snap::{fnv1a, SectionBuf, SectionReader};
use consim_types::config::{
    CacheGeometry, ChurnPolicy, DynamicPolicy, LlcPartitioning, MachineConfigBuilder, SharingDegree,
};
use consim_types::{SimError, SnapshotErrorKind};
use consim_workload::profile::PaperTargets;
use consim_workload::{LoadPhase, WorkloadKind, WorkloadProfile};

fn corrupt(msg: impl Into<String>) -> SimError {
    SimError::snapshot(SnapshotErrorKind::Corrupt, msg)
}

/// Re-validation failures on decode mean the payload passed its checksum but
/// encodes an impossible machine: surface them as corruption, not as a
/// caller configuration mistake.
fn as_corrupt(err: SimError) -> SimError {
    corrupt(format!("stored configuration is invalid: {err}"))
}

pub(crate) fn save_config(config: &SimulationConfig, w: &mut SectionBuf) {
    let m = &config.machine;
    w.put_usize(m.num_cores);
    w.put_usize(m.mesh_width);
    for geom in [&m.l0, &m.l1, &m.llc] {
        save_geometry(geom, w);
    }
    match m.sharing {
        SharingDegree::Private => w.put_u8(0),
        SharingDegree::SharedBy(n) => {
            w.put_u8(1);
            w.put_usize(n);
        }
        SharingDegree::FullyShared => w.put_u8(2),
    }
    match &m.llc_partitioning {
        LlcPartitioning::None => w.put_u8(0),
        LlcPartitioning::EqualWays => w.put_u8(1),
        LlcPartitioning::ExplicitWays(ways) => {
            w.put_u8(2);
            w.put_usize(ways.len());
            for &ways in ways {
                w.put_u8(ways);
            }
        }
        LlcPartitioning::Dynamic(p) => {
            w.put_u8(3);
            w.put_u64(p.epoch_interval);
            w.put_u8(p.min_ways);
            w.put_u8(p.max_step);
            w.put_u32(p.ewma_permille);
            w.put_u32(p.deadband_milli);
            w.put_u32(p.light_miss_permille);
            w.put_u32(p.stream_memory_permille);
        }
    }
    w.put_u64(m.memory_latency);
    w.put_u64(m.memory_occupancy);
    w.put_usize(m.num_memory_controllers);
    w.put_u64(m.link_latency);
    w.put_u64(m.router_pipeline);
    w.put_usize(m.directory_cache_entries);
    w.put_u64(m.instructions_per_memory_op);
    match &m.churn {
        None => w.put_bool(false),
        Some(c) => {
            w.put_bool(true);
            w.put_u64(c.interval);
            w.put_usize(c.arrival_permille.len());
            for &rate in &c.arrival_permille {
                w.put_u32(rate);
            }
            w.put_usize(c.departure_permille.len());
            for &rate in &c.departure_permille {
                w.put_u32(rate);
            }
            w.put_u32(c.migration_permille);
            w.put_usize(c.initial_active);
            w.put_usize(c.min_active);
            match &c.migration_targets {
                None => w.put_bool(false),
                Some(targets) => {
                    w.put_bool(true);
                    w.put_usize(targets.len());
                    for &core in targets {
                        w.put_usize(core);
                    }
                }
            }
        }
    }

    save_policy(config.policy, w);
    w.put_usize(config.workloads.len());
    for profile in &config.workloads {
        save_profile(profile, w);
    }
    w.put_u64(config.seed);
    w.put_u64(config.refs_per_vm);
    w.put_u64(config.warmup_refs_per_vm);
    w.put_bool(config.track_footprint);
    w.put_u8(match config.llc_replacement {
        ReplacementPolicy::Lru => 0,
        ReplacementPolicy::TreePlru => 1,
        ReplacementPolicy::Random => 2,
    });
    w.put_bool(config.prewarm_llc);
    w.put_opt_u64(config.reschedule_every);
    w.put_bool(config.audit);
}

pub(crate) fn restore_config(r: &mut SectionReader<'_>) -> Result<SimulationConfig, SimError> {
    let mut machine = MachineConfigBuilder::new();
    machine.num_cores(r.get_usize()?);
    machine.mesh_width(r.get_usize()?);
    machine.l0(restore_geometry(r)?);
    machine.l1(restore_geometry(r)?);
    machine.llc(restore_geometry(r)?);
    machine.sharing(match r.get_u8()? {
        0 => SharingDegree::Private,
        1 => SharingDegree::SharedBy(r.get_usize()?),
        2 => SharingDegree::FullyShared,
        t => return Err(corrupt(format!("invalid sharing-degree tag {t}"))),
    });
    machine.llc_partitioning(match r.get_u8()? {
        0 => LlcPartitioning::None,
        1 => LlcPartitioning::EqualWays,
        2 => {
            let count = r.get_usize()?;
            let mut ways = Vec::with_capacity(count.min(64));
            for _ in 0..count {
                ways.push(r.get_u8()?);
            }
            LlcPartitioning::ExplicitWays(ways)
        }
        3 => LlcPartitioning::Dynamic(DynamicPolicy {
            epoch_interval: r.get_u64()?,
            min_ways: r.get_u8()?,
            max_step: r.get_u8()?,
            ewma_permille: r.get_u32()?,
            deadband_milli: r.get_u32()?,
            light_miss_permille: r.get_u32()?,
            stream_memory_permille: r.get_u32()?,
        }),
        t => return Err(corrupt(format!("invalid LLC-partitioning tag {t}"))),
    });
    machine.memory_latency(r.get_u64()?);
    machine.memory_occupancy(r.get_u64()?);
    machine.num_memory_controllers(r.get_usize()?);
    machine.link_latency(r.get_u64()?);
    machine.router_pipeline(r.get_u64()?);
    machine.directory_cache_entries(r.get_usize()?);
    machine.instructions_per_memory_op(r.get_u64()?);
    if r.get_bool()? {
        let interval = r.get_u64()?;
        let mut arrival_permille = Vec::new();
        for _ in 0..r.get_usize()? {
            arrival_permille.push(r.get_u32()?);
        }
        let mut departure_permille = Vec::new();
        for _ in 0..r.get_usize()? {
            departure_permille.push(r.get_u32()?);
        }
        let migration_permille = r.get_u32()?;
        let initial_active = r.get_usize()?;
        let min_active = r.get_usize()?;
        let migration_targets = if r.get_bool()? {
            let mut targets = Vec::new();
            for _ in 0..r.get_usize()? {
                targets.push(r.get_usize()?);
            }
            Some(targets)
        } else {
            None
        };
        machine.churn(Some(ChurnPolicy {
            interval,
            arrival_permille,
            departure_permille,
            migration_permille,
            initial_active,
            min_active,
            migration_targets,
        }));
    }
    let machine = machine.build().map_err(as_corrupt)?;

    let policy = restore_policy(r)?;
    let mut builder = SimulationConfig::builder();
    builder.machine(machine).policy(policy);
    let num_vms = r.get_usize()?;
    for _ in 0..num_vms {
        builder.workload(restore_profile(r)?);
    }
    builder.seed(r.get_u64()?);
    builder.refs_per_vm(r.get_u64()?);
    builder.warmup_refs_per_vm(r.get_u64()?);
    builder.track_footprint(r.get_bool()?);
    builder.llc_replacement(match r.get_u8()? {
        0 => ReplacementPolicy::Lru,
        1 => ReplacementPolicy::TreePlru,
        2 => ReplacementPolicy::Random,
        t => return Err(corrupt(format!("invalid replacement-policy tag {t}"))),
    });
    builder.prewarm_llc(r.get_bool()?);
    if let Some(interval) = r.get_opt_u64()? {
        builder.reschedule_every(interval);
    }
    builder.audit(r.get_bool()?);
    builder.build().map_err(as_corrupt)
}

/// Policy tag codec, shared with the result-journal codec (which stores the
/// policy inside each serialized [`consim_sched::Placement`]).
pub(crate) fn save_policy(policy: SchedulingPolicy, w: &mut SectionBuf) {
    w.put_u8(match policy {
        SchedulingPolicy::RoundRobin => 0,
        SchedulingPolicy::Affinity => 1,
        SchedulingPolicy::RrAffinity => 2,
        SchedulingPolicy::Random => 3,
    });
}

pub(crate) fn restore_policy(r: &mut SectionReader<'_>) -> Result<SchedulingPolicy, SimError> {
    Ok(match r.get_u8()? {
        0 => SchedulingPolicy::RoundRobin,
        1 => SchedulingPolicy::Affinity,
        2 => SchedulingPolicy::RrAffinity,
        3 => SchedulingPolicy::Random,
        t => return Err(corrupt(format!("invalid scheduling-policy tag {t}"))),
    })
}

fn save_geometry(geom: &CacheGeometry, w: &mut SectionBuf) {
    w.put_usize(geom.total_bytes);
    w.put_usize(geom.associativity);
    w.put_u64(geom.latency);
}

fn restore_geometry(r: &mut SectionReader<'_>) -> Result<CacheGeometry, SimError> {
    let total_bytes = r.get_usize()?;
    let associativity = r.get_usize()?;
    let latency = r.get_u64()?;
    CacheGeometry::new(total_bytes, associativity, latency).map_err(as_corrupt)
}

fn save_profile(profile: &WorkloadProfile, w: &mut SectionBuf) {
    w.put_u8(match profile.kind {
        WorkloadKind::TpcW => 0,
        WorkloadKind::SpecJbb => 1,
        WorkloadKind::TpcH => 2,
        WorkloadKind::SpecWeb => 3,
        WorkloadKind::Custom => 4,
    });
    w.put_str(&profile.name);
    w.put_usize(profile.threads);
    w.put_u64(profile.footprint_blocks);
    for p in [
        profile.shared_fraction,
        profile.shared_access_prob,
        profile.shared_write_prob,
        profile.private_write_prob,
        profile.shared_zipf,
        profile.private_zipf,
        profile.recent_reuse_prob,
    ] {
        w.put_f64(p);
    }
    w.put_usize(profile.recent_window);
    w.put_f64(profile.handoff_access_prob);
    w.put_usize(profile.handoff_segments);
    w.put_u64(profile.handoff_segment_blocks);
    w.put_f64(profile.handoff_write_prob);
    w.put_u32(profile.handoff_touches);
    w.put_u64(profile.refs_per_transaction);
    w.put_u64(profile.default_transactions);
    match &profile.paper_targets {
        None => w.put_bool(false),
        Some(t) => {
            w.put_bool(true);
            w.put_f64(t.c2c_fraction);
            w.put_f64(t.dirty_fraction);
            w.put_u64(t.footprint_blocks);
        }
    }
    w.put_usize(profile.phases.len());
    for phase in &profile.phases {
        w.put_u64(phase.refs);
        w.put_u32(phase.footprint_permille);
        w.put_u32(phase.sharing_permille);
    }
}

fn restore_profile(r: &mut SectionReader<'_>) -> Result<WorkloadProfile, SimError> {
    let kind = match r.get_u8()? {
        0 => WorkloadKind::TpcW,
        1 => WorkloadKind::SpecJbb,
        2 => WorkloadKind::TpcH,
        3 => WorkloadKind::SpecWeb,
        4 => WorkloadKind::Custom,
        t => return Err(corrupt(format!("invalid workload-kind tag {t}"))),
    };
    // Profile fields are public and re-validated by the simulation builder;
    // decode straight into the struct in declaration order.
    let profile = WorkloadProfile {
        kind,
        name: r.get_str()?,
        threads: r.get_usize()?,
        footprint_blocks: r.get_u64()?,
        shared_fraction: r.get_f64()?,
        shared_access_prob: r.get_f64()?,
        shared_write_prob: r.get_f64()?,
        private_write_prob: r.get_f64()?,
        shared_zipf: r.get_f64()?,
        private_zipf: r.get_f64()?,
        recent_reuse_prob: r.get_f64()?,
        recent_window: r.get_usize()?,
        handoff_access_prob: r.get_f64()?,
        handoff_segments: r.get_usize()?,
        handoff_segment_blocks: r.get_u64()?,
        handoff_write_prob: r.get_f64()?,
        handoff_touches: r.get_u32()?,
        refs_per_transaction: r.get_u64()?,
        default_transactions: r.get_u64()?,
        paper_targets: if r.get_bool()? {
            Some(PaperTargets {
                c2c_fraction: r.get_f64()?,
                dirty_fraction: r.get_f64()?,
                footprint_blocks: r.get_u64()?,
            })
        } else {
            None
        },
        phases: {
            let count = r.get_usize()?;
            let mut phases = Vec::with_capacity(count.min(64));
            for _ in 0..count {
                phases.push(LoadPhase {
                    refs: r.get_u64()?,
                    footprint_permille: r.get_u32()?,
                    sharing_permille: r.get_u32()?,
                });
            }
            phases
        },
    };
    profile.validate().map_err(as_corrupt)?;
    Ok(profile)
}

/// Cache key for prewarm-checkpoint reuse: a digest over every configuration
/// field that influences the *prewarmed* (pre-warmup) machine state. Run
/// parameters that only matter once a phase executes — quotas, footprint
/// tracking, auditing, rescheduling, tracing — are normalized out, so cells
/// that differ only in those can share one prewarm checkpoint.
pub(crate) fn prewarm_key(config: &SimulationConfig) -> u64 {
    let mut buf = SectionBuf::new();
    save_config(&prewarm_canonical_config(config), &mut buf);
    fnv1a(buf.as_bytes())
}

/// The canonical configuration whose checkpoint is stored under
/// [`prewarm_key`]; see `consim-job`'s prewarm cache.
pub(crate) fn prewarm_canonical_config(config: &SimulationConfig) -> SimulationConfig {
    let mut canonical = config.clone();
    canonical.refs_per_vm = 1;
    canonical.warmup_refs_per_vm = 0;
    canonical.track_footprint = false;
    canonical.reschedule_every = None;
    canonical.audit = false;
    canonical.trace = None;
    canonical
}

#[cfg(test)]
mod tests {
    use super::*;
    use consim_types::config::MachineConfig;
    use consim_workload::WorkloadProfileBuilder;

    fn encode(config: &SimulationConfig) -> Vec<u8> {
        let mut buf = SectionBuf::new();
        save_config(config, &mut buf);
        buf.as_bytes().to_vec()
    }

    fn decode(bytes: &[u8]) -> Result<SimulationConfig, SimError> {
        let mut r = SectionReader::new("config", bytes);
        let config = restore_config(&mut r)?;
        assert_eq!(r.remaining(), 0, "codec must consume the whole payload");
        Ok(config)
    }

    fn exotic_config() -> SimulationConfig {
        let machine = MachineConfig::paper_default()
            .with_sharing(SharingDegree::SharedBy(4))
            .with_llc_partitioning(LlcPartitioning::ExplicitWays(vec![8, 4, 4]));
        let mut b = SimulationConfig::builder();
        b.machine(machine)
            .policy(SchedulingPolicy::Random)
            .seed(0xfeed)
            .refs_per_vm(7_777)
            .warmup_refs_per_vm(111)
            .track_footprint(true)
            .llc_replacement(ReplacementPolicy::TreePlru)
            .prewarm_llc(true)
            .reschedule_every(40_000)
            .audit(true);
        for kind in [WorkloadKind::TpcW, WorkloadKind::SpecJbb] {
            b.workload(kind.profile());
        }
        b.workload(
            WorkloadProfileBuilder::new("bespoke")
                .footprint_blocks(9_000)
                .shared_fraction(0.33)
                .build()
                .unwrap(),
        );
        b.build().unwrap()
    }

    #[test]
    fn config_round_trips_every_field() {
        let config = exotic_config();
        let restored = decode(&encode(&config)).unwrap();
        assert_eq!(restored.machine, config.machine);
        assert_eq!(restored.policy, config.policy);
        assert_eq!(restored.workloads, config.workloads);
        assert_eq!(restored.seed, config.seed);
        assert_eq!(restored.refs_per_vm, config.refs_per_vm);
        assert_eq!(restored.warmup_refs_per_vm, config.warmup_refs_per_vm);
        assert_eq!(restored.track_footprint, config.track_footprint);
        assert_eq!(restored.llc_replacement, config.llc_replacement);
        assert_eq!(restored.prewarm_llc, config.prewarm_llc);
        assert_eq!(restored.reschedule_every, config.reschedule_every);
        assert_eq!(restored.audit, config.audit);
        // Re-encoding the decoded config is byte-identical (canonical form).
        assert_eq!(encode(&restored), encode(&config));
    }

    #[test]
    fn invalid_tags_are_corrupt_not_panics() {
        let bytes = encode(&exotic_config());
        // The sharing tag sits right after two usizes and three geometries.
        let sharing_tag_at = 8 + 8 + 3 * (8 + 8 + 8);
        let mut bad = bytes.clone();
        assert_eq!(bad[sharing_tag_at], 1u8, "layout drifted; fix the offset");
        bad[sharing_tag_at] = 9;
        let err = decode(&bad).expect_err("bad tag must fail");
        assert_eq!(err.snapshot_kind(), Some(SnapshotErrorKind::Corrupt));
    }

    #[test]
    fn invalid_decoded_machine_is_corrupt() {
        let mut bytes = encode(&exotic_config());
        // num_cores is the first usize; zero cores fails builder validation.
        bytes[..8].copy_from_slice(&0u64.to_le_bytes());
        let err = decode(&bytes).expect_err("zero cores must fail");
        assert_eq!(err.snapshot_kind(), Some(SnapshotErrorKind::Corrupt));
        assert!(err.to_string().contains("stored configuration"), "{err}");
    }

    #[test]
    fn prewarm_key_ignores_run_quotas_but_not_machine() {
        let a = exotic_config();
        let mut b = a.clone();
        b.refs_per_vm = 1_000_000;
        b.warmup_refs_per_vm = 5;
        b.audit = false;
        b.track_footprint = false;
        assert_eq!(prewarm_key(&a), prewarm_key(&b));

        let mut c = a.clone();
        c.seed ^= 1;
        assert_ne!(prewarm_key(&a), prewarm_key(&c));
        let mut d = a.clone();
        d.machine = d.machine.with_sharing(SharingDegree::Private);
        assert_ne!(prewarm_key(&a), prewarm_key(&d));
    }
}
