//! Per-VM metrics and LLC snapshots.
//!
//! Metrics follow the paper's definitions (§V):
//!
//! * **runtime** — cycles for the VM to complete its transaction quota;
//! * **miss latency** — cycles to satisfy a miss to the last level of
//!   *private* cache (L1), including cache-to-cache transfer, LLC access,
//!   and memory latencies;
//! * **miss rate** — "last level cache misses seen by each virtual machine":
//!   the fraction of the VM's LLC-level requests (L1 misses) that must be
//!   satisfied off-chip;
//! * **replication / occupancy** — snapshots over the LLC banks' contents
//!   (Figs. 12 and 13).

use consim_cache::SetAssocCache;
use consim_snap::{SectionBuf, SectionReader, Snapshot};
use consim_types::cycles::LatencyAccumulator;
use consim_types::{Cycle, FastHashMap, FastHashSet, SimError, VmId};
use std::fmt;

/// Where an L1 miss was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissSource {
    /// Another core's private cache, line was Modified.
    RemoteL1Dirty,
    /// Another core's private cache, line was clean.
    RemoteL1Clean,
    /// The requester's own LLC bank.
    LocalLlc,
    /// A different LLC bank, line was dirty there.
    RemoteLlcDirty,
    /// A different LLC bank, line was clean there.
    RemoteLlcClean,
    /// Off-chip memory.
    Memory,
    /// No data movement (upgrade for exclusivity).
    Upgrade,
}

impl MissSource {
    /// Whether this source is an on-chip cache other than the requester's
    /// own (the paper's "cache-to-cache transfer").
    pub fn is_cache_to_cache(self) -> bool {
        matches!(
            self,
            MissSource::RemoteL1Dirty
                | MissSource::RemoteL1Clean
                | MissSource::RemoteLlcDirty
                | MissSource::RemoteLlcClean
        )
    }

    /// Whether the source copy was dirty.
    pub fn is_dirty_transfer(self) -> bool {
        matches!(self, MissSource::RemoteL1Dirty | MissSource::RemoteLlcDirty)
    }
}

/// Counters for one VM over the measurement interval.
#[derive(Debug, Clone, Default)]
pub struct VmMetrics {
    /// Memory references issued.
    pub refs: u64,
    /// Store references issued.
    pub writes: u64,
    /// Instructions executed (references + compute gaps).
    pub instructions: u64,
    /// References that hit in L0.
    pub l0_hits: u64,
    /// References that hit in L1 (after missing L0).
    pub l1_hits: u64,
    /// Misses to the last private level (LLC-level requests).
    pub l1_misses: u64,
    /// Misses served by a clean transfer from a remote L1.
    pub c2c_l1_clean: u64,
    /// Misses served by a dirty transfer from a remote L1.
    pub c2c_l1_dirty: u64,
    /// Misses served by the requester's own LLC bank.
    pub llc_local_hits: u64,
    /// Misses served clean by a remote LLC bank.
    pub llc_remote_clean: u64,
    /// Misses served dirty by a remote LLC bank.
    pub llc_remote_dirty: u64,
    /// Misses that went to memory.
    pub memory_fetches: u64,
    /// Upgrade transactions (exclusivity only).
    pub upgrades: u64,
    /// Invalidations received by this VM's threads.
    pub invalidations_received: u64,
    /// Latency of every L1 miss (issue to completion).
    pub miss_latency: LatencyAccumulator,
    /// When the VM completed its transaction quota (measurement-relative).
    pub completion: Option<Cycle>,
    /// Unique blocks touched (Table II footprint), when tracking is enabled.
    pub footprint: FastHashSet<u64>,
}

impl VmMetrics {
    /// Records one resolved L1 miss.
    pub fn record_miss(&mut self, source: MissSource, latency: u64) {
        self.l1_misses += 1;
        self.miss_latency.record(latency);
        match source {
            MissSource::RemoteL1Dirty => self.c2c_l1_dirty += 1,
            MissSource::RemoteL1Clean => self.c2c_l1_clean += 1,
            MissSource::LocalLlc => self.llc_local_hits += 1,
            MissSource::RemoteLlcDirty => self.llc_remote_dirty += 1,
            MissSource::RemoteLlcClean => self.llc_remote_clean += 1,
            MissSource::Memory => self.memory_fetches += 1,
            MissSource::Upgrade => self.upgrades += 1,
        }
    }

    /// Cycles from measurement start to quota completion.
    ///
    /// # Panics
    ///
    /// Panics if the VM never completed (the engine guarantees completion).
    pub fn runtime_cycles(&self) -> u64 {
        self.completion.expect("VM completed").raw()
    }

    /// Total cache-to-cache transfers (clean + dirty, L1 and LLC sources).
    pub fn cache_to_cache(&self) -> u64 {
        self.c2c_l1_clean + self.c2c_l1_dirty + self.llc_remote_clean + self.llc_remote_dirty
    }

    /// Fraction of L1 misses served cache-to-cache (Table II "all").
    pub fn c2c_fraction(&self) -> f64 {
        ratio(self.cache_to_cache(), self.l1_misses)
    }

    /// Table II's "percent of accesses resulting in a cache-to-cache
    /// transfer": of the misses that leave the requester's *private*
    /// hierarchy (in the paper's private configuration: core caches plus the
    /// private LLC partition), the fraction served by another cache rather
    /// than memory.
    pub fn c2c_fraction_of_hierarchy_misses(&self) -> f64 {
        ratio(
            self.cache_to_cache(),
            self.cache_to_cache() + self.memory_fetches,
        )
    }

    /// Fraction of cache-to-cache transfers that were dirty (Table II).
    pub fn c2c_dirty_fraction(&self) -> f64 {
        ratio(
            self.c2c_l1_dirty + self.llc_remote_dirty,
            self.cache_to_cache(),
        )
    }

    /// The paper's per-VM LLC miss rate: off-chip fetches over LLC-level
    /// requests.
    pub fn llc_miss_rate(&self) -> f64 {
        ratio(self.memory_fetches, self.l1_misses)
    }

    /// Mean L1-miss latency in cycles.
    pub fn mean_miss_latency(&self) -> f64 {
        self.miss_latency.mean()
    }

    /// Largest single L1-miss latency in cycles — the worst tail event this
    /// VM observed (0 when it never missed).
    pub fn max_miss_latency(&self) -> f64 {
        self.miss_latency.max() as f64
    }

    /// Misses per thousand references (a second, quota-independent view of
    /// pressure).
    pub fn mpkr(&self) -> f64 {
        1000.0 * ratio(self.memory_fetches, self.refs)
    }

    /// Unique blocks touched during measurement.
    pub fn footprint_blocks(&self) -> u64 {
        self.footprint.len() as u64
    }
}

impl Snapshot for VmMetrics {
    fn save(&self, w: &mut SectionBuf) {
        w.put_u64(self.refs);
        w.put_u64(self.writes);
        w.put_u64(self.instructions);
        w.put_u64(self.l0_hits);
        w.put_u64(self.l1_hits);
        w.put_u64(self.l1_misses);
        w.put_u64(self.c2c_l1_clean);
        w.put_u64(self.c2c_l1_dirty);
        w.put_u64(self.llc_local_hits);
        w.put_u64(self.llc_remote_clean);
        w.put_u64(self.llc_remote_dirty);
        w.put_u64(self.memory_fetches);
        w.put_u64(self.upgrades);
        w.put_u64(self.invalidations_received);
        self.miss_latency.save(w);
        w.put_opt_u64(self.completion.map(|c| c.raw()));
        // The footprint set iterates in hash order; sort so identical
        // states always serialize to identical bytes.
        let mut blocks: Vec<u64> = self.footprint.iter().copied().collect();
        blocks.sort_unstable();
        w.put_u64_slice(&blocks);
    }

    fn restore(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        self.refs = r.get_u64()?;
        self.writes = r.get_u64()?;
        self.instructions = r.get_u64()?;
        self.l0_hits = r.get_u64()?;
        self.l1_hits = r.get_u64()?;
        self.l1_misses = r.get_u64()?;
        self.c2c_l1_clean = r.get_u64()?;
        self.c2c_l1_dirty = r.get_u64()?;
        self.llc_local_hits = r.get_u64()?;
        self.llc_remote_clean = r.get_u64()?;
        self.llc_remote_dirty = r.get_u64()?;
        self.memory_fetches = r.get_u64()?;
        self.upgrades = r.get_u64()?;
        self.invalidations_received = r.get_u64()?;
        self.miss_latency.restore(r)?;
        self.completion = r.get_opt_u64()?.map(Cycle::new);
        self.footprint = r.get_u64_vec()?.into_iter().collect();
        Ok(())
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl fmt::Display for VmMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "refs={} l1_misses={} c2c={:.1}% (dirty {:.1}%) llc_miss={:.1}% mean_lat={:.1}cy",
            self.refs,
            self.l1_misses,
            self.c2c_fraction() * 100.0,
            self.c2c_dirty_fraction() * 100.0,
            self.llc_miss_rate() * 100.0,
            self.mean_miss_latency(),
        )
    }
}

/// Fraction of LLC lines replicated across banks (paper Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ReplicationSnapshot {
    /// Valid lines across all banks.
    pub total_lines: u64,
    /// Lines whose block also resides in at least one other bank.
    pub replicated_lines: u64,
}

impl ReplicationSnapshot {
    /// Computes the snapshot over a set of LLC banks.
    pub fn capture(banks: &[SetAssocCache]) -> Self {
        let mut copies: FastHashMap<u64, u32> = FastHashMap::default();
        let mut total = 0u64;
        for bank in banks {
            for line in bank.lines() {
                *copies.entry(line.block.raw()).or_insert(0) += 1;
                total += 1;
            }
        }
        let replicated = banks
            .iter()
            .flat_map(|b| b.lines())
            .filter(|l| copies[&l.block.raw()] > 1)
            .count() as u64;
        Self {
            total_lines: total,
            replicated_lines: replicated,
        }
    }

    /// Fraction of lines replicated, in `[0, 1]`.
    pub fn replicated_fraction(&self) -> f64 {
        ratio(self.replicated_lines, self.total_lines)
    }
}

/// Per-bank, per-VM share of LLC capacity (paper Fig. 13).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct OccupancySnapshot {
    /// `share[bank][vm]` = fraction of the bank's *capacity* holding that
    /// VM's lines.
    pub share: Vec<Vec<f64>>,
}

impl OccupancySnapshot {
    /// Computes the snapshot over LLC banks for `num_vms` VMs.
    pub fn capture(banks: &[SetAssocCache], num_vms: usize) -> Self {
        let share = banks
            .iter()
            .map(|bank| {
                let mut counts = vec![0u64; num_vms];
                for line in bank.lines() {
                    let vm = line.block.vm().index();
                    if vm < num_vms {
                        counts[vm] += 1;
                    }
                }
                counts
                    .into_iter()
                    .map(|c| ratio(c, bank.capacity() as u64))
                    .collect()
            })
            .collect();
        Self { share }
    }

    /// A VM's average share of LLC capacity across all banks, in `[0, 1]`.
    pub fn vm_total_share(&self, vm: VmId) -> f64 {
        if self.share.is_empty() {
            return 0.0;
        }
        self.share.iter().map(|bank| bank[vm.index()]).sum::<f64>() / self.share.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consim_cache::{LineState, ReplacementPolicy};
    use consim_types::{BlockAddr, CacheGeometry};

    #[test]
    fn miss_source_classification() {
        assert!(MissSource::RemoteL1Dirty.is_cache_to_cache());
        assert!(MissSource::RemoteLlcClean.is_cache_to_cache());
        assert!(!MissSource::LocalLlc.is_cache_to_cache());
        assert!(!MissSource::Memory.is_cache_to_cache());
        assert!(MissSource::RemoteLlcDirty.is_dirty_transfer());
        assert!(!MissSource::RemoteL1Clean.is_dirty_transfer());
    }

    #[test]
    fn record_miss_buckets() {
        let mut m = VmMetrics::default();
        m.record_miss(MissSource::RemoteL1Dirty, 30);
        m.record_miss(MissSource::RemoteL1Clean, 20);
        m.record_miss(MissSource::LocalLlc, 10);
        m.record_miss(MissSource::Memory, 160);
        assert_eq!(m.l1_misses, 4);
        assert_eq!(m.cache_to_cache(), 2);
        assert_eq!(m.c2c_fraction(), 0.5);
        assert_eq!(m.c2c_dirty_fraction(), 0.5);
        assert_eq!(m.llc_miss_rate(), 0.25);
        assert_eq!(m.mean_miss_latency(), 55.0);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = VmMetrics::default();
        assert_eq!(m.c2c_fraction(), 0.0);
        assert_eq!(m.llc_miss_rate(), 0.0);
        assert_eq!(m.mpkr(), 0.0);
    }

    fn bank_with(blocks: &[u64]) -> SetAssocCache {
        let geom = CacheGeometry::new(64 * 64, 4, 6).unwrap();
        let mut c = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        for &b in blocks {
            c.insert(BlockAddr::new(b), LineState::Shared);
        }
        c
    }

    #[test]
    fn replication_counts_cross_bank_copies() {
        let banks = vec![bank_with(&[1, 2, 3]), bank_with(&[3, 4]), bank_with(&[3])];
        let snap = ReplicationSnapshot::capture(&banks);
        assert_eq!(snap.total_lines, 6);
        // Block 3 appears in all three banks: 3 replicated lines.
        assert_eq!(snap.replicated_lines, 3);
        assert!((snap.replicated_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn replication_zero_when_disjoint() {
        let banks = vec![bank_with(&[1]), bank_with(&[2])];
        assert_eq!(
            ReplicationSnapshot::capture(&banks).replicated_fraction(),
            0.0
        );
    }

    #[test]
    fn occupancy_attributes_lines_to_vms() {
        let geom = CacheGeometry::new(64 * 64, 4, 6).unwrap();
        let mut bank = SetAssocCache::new(geom, ReplacementPolicy::Lru);
        for i in 0..6 {
            bank.insert(BlockAddr::in_vm(VmId::new(0), i), LineState::Shared);
        }
        for i in 0..2 {
            bank.insert(BlockAddr::in_vm(VmId::new(1), i), LineState::Shared);
        }
        let snap = OccupancySnapshot::capture(&[bank], 2);
        let cap = 64.0;
        assert!((snap.share[0][0] - 6.0 / cap).abs() < 1e-12);
        assert!((snap.share[0][1] - 2.0 / cap).abs() < 1e-12);
        assert!((snap.vm_total_share(VmId::new(0)) - 6.0 / cap).abs() < 1e-12);
    }

    #[test]
    fn snapshot_round_trip_preserves_every_counter() {
        let mut m = VmMetrics {
            refs: 10,
            writes: 3,
            instructions: 25,
            invalidations_received: 2,
            completion: Some(Cycle::new(12_345)),
            ..VmMetrics::default()
        };
        m.record_miss(MissSource::Memory, 150);
        m.record_miss(MissSource::RemoteL1Dirty, 40);
        m.footprint.extend([7u64, 3, 99]);

        let mut buf = SectionBuf::new();
        m.save(&mut buf);
        // Sorted footprint serialization: identical state, identical bytes.
        let mut again = SectionBuf::new();
        m.save(&mut again);
        assert_eq!(buf.as_bytes(), again.as_bytes());

        let mut restored = VmMetrics::default();
        let mut r = SectionReader::new("metrics", buf.as_bytes());
        restored.restore(&mut r).unwrap();
        assert_eq!(restored.refs, 10);
        assert_eq!(restored.writes, 3);
        assert_eq!(restored.l1_misses, 2);
        assert_eq!(restored.memory_fetches, 1);
        assert_eq!(restored.c2c_l1_dirty, 1);
        assert_eq!(restored.completion, Some(Cycle::new(12_345)));
        assert_eq!(restored.mean_miss_latency(), m.mean_miss_latency());
        assert_eq!(restored.footprint, m.footprint);
    }

    #[test]
    fn display_is_compact() {
        let mut m = VmMetrics {
            refs: 10,
            ..VmMetrics::default()
        };
        m.record_miss(MissSource::Memory, 150);
        assert!(m.to_string().contains("llc_miss=100.0%"));
    }
}
