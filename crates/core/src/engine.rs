//! The discrete-event consolidation simulator.
//!
//! One [`Simulation`] models one experimental run: a machine configuration,
//! a scheduling policy, and a list of workload instances (VMs). In-order
//! cores alternate compute gaps and memory references; every reference
//! walks the hierarchy L0 → L1 → directory → {remote L1 (cache-to-cache),
//! LLC bank, remote LLC bank, memory}, with each protocol message routed —
//! and contended — on the mesh.
//!
//! ## Timing model
//!
//! Events are (ready-cycle, core) pairs in a binary heap; cores have one
//! outstanding miss each (matching the paper's in-order Niagara-like cores),
//! so a core's next event is scheduled at its previous access's completion.
//! Protocol state (caches, directory) is updated when the transaction is
//! processed; concurrent transactions to the same block are serialized in
//! event order. This transaction-level approximation preserves the paper's
//! measured quantities (miss classification, latency composition,
//! contention) without flit-level cost — see DESIGN.md §1.
//!
//! ## Protocol walk of one L1 miss
//!
//! 1. Control packet to the block's home directory node (striped by block
//!    address); directory-cache miss adds one off-chip latency.
//! 2. Directory classifies the request ([`consim_coherence::Directory`]):
//!    * dirty in a remote L1 → 3-hop forward, dirty cache-to-cache transfer
//!      (plus a sharing writeback to the memory controller, off the
//!      critical path);
//!    * clean in remote L1s → clean transfer from the *nearest* sharer;
//!    * otherwise → the requester's own LLC bank; on a bank miss, the
//!      nearest *other* bank holding the block serves it (and the local
//!      bank is filled — replication); on a global LLC miss, memory.
//! 3. Writes additionally invalidate every other sharer and wait for the
//!    slowest acknowledgement.
//! 4. Fills may evict: dirty L1 victims write back into the local LLC bank;
//!    dirty LLC victims write back to memory.

use crate::hierarchy::HierarchyCtx;
use crate::machine::Layout;
use crate::metrics::{OccupancySnapshot, ReplicationSnapshot, VmMetrics};
use crate::observe::{AccessStep, StepObserver, StepOutcome};
use consim_cache::{LineState, ReplacementPolicy, SetAssocCache};
use consim_coherence::{Directory, DirectoryCache, ProtocolStats};
use consim_noc::{ContentionModel, NocStats, ReservationCalendar};
use consim_sched::{place, Placement, SchedulingPolicy};
use consim_trace::{EventClass, TraceEvent, TraceSink};
use consim_types::config::MachineConfig;
use consim_types::{BankId, CoreId, Cycle, GlobalThreadId, SimError, SimRng, VmId};
use consim_workload::{MemRef, WorkloadGenerator, WorkloadProfile};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// How a simulation reports trace events.
///
/// Construct with [`TraceConfig::new`] and adjust the knobs; attach via
/// [`SimulationConfigBuilder::trace`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Destination for every event the simulation emits.
    pub sink: Arc<dyn TraceSink>,
    /// Cycle interval between time-series snapshots ([`TraceEvent::Epoch`],
    /// [`TraceEvent::EpochMachine`]) during measurement.
    pub epoch_cycles: u64,
    /// Record every Nth directory protocol action as a
    /// [`TraceEvent::Coherence`] event (volume control for the per-miss hot
    /// path).
    pub coherence_sample: u64,
}

impl TraceConfig {
    /// A configuration with the default epoch interval (100k cycles) and
    /// coherence sampling rate (1 in 64).
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Self {
            sink,
            epoch_cycles: 100_000,
            coherence_sample: 64,
        }
    }
}

/// Everything needed to run one simulation.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// The hardware.
    pub machine: MachineConfig,
    /// Thread-to-core policy.
    pub policy: SchedulingPolicy,
    /// One profile per VM, in VM order.
    pub workloads: Vec<WorkloadProfile>,
    /// Root seed; all randomness derives from it.
    pub seed: u64,
    /// Measured references per VM (the transaction quota).
    pub refs_per_vm: u64,
    /// Warmup references per VM before measurement starts.
    pub warmup_refs_per_vm: u64,
    /// Whether to track unique blocks per VM (Table II footprints).
    pub track_footprint: bool,
    /// Replacement policy of the LLC banks (the paper's machine uses
    /// vanilla LRU; the others support the DESIGN.md ablation study).
    pub llc_replacement: ReplacementPolicy,
    /// Pre-fill the LLC banks with each workload's hottest blocks before
    /// warmup, mimicking the paper's warmed checkpoints. Shortens the
    /// warmup needed to reach steady state.
    pub prewarm_llc: bool,
    /// Re-place threads onto cores every this many cycles (the paper's
    /// future-work "dynamically adjusting assignments in response to
    /// context switches"). `None` (the default) matches the paper's static
    /// binding. Each epoch re-runs the scheduling policy with a fresh
    /// random stream, so migrating threads abandon their warm caches.
    pub reschedule_every: Option<u64>,
    /// Cross-check the redundant counter paths at end of run and fail with
    /// [`SimError::AuditFailed`] on drift (see [`crate::audit`]). The audit
    /// also always runs in debug builds; it never changes results.
    pub audit: bool,
    /// Optional observability sink and its volume knobs. `None` (the
    /// default) emits nothing and costs one branch per check site.
    pub trace: Option<TraceConfig>,
}

impl SimulationConfig {
    /// Starts building a configuration.
    pub fn builder() -> SimulationConfigBuilder {
        SimulationConfigBuilder::new()
    }
}

/// Builder for [`SimulationConfig`] ([C-BUILDER]).
#[derive(Debug, Clone)]
pub struct SimulationConfigBuilder {
    machine: MachineConfig,
    policy: SchedulingPolicy,
    workloads: Vec<WorkloadProfile>,
    seed: u64,
    refs_per_vm: u64,
    warmup_refs_per_vm: u64,
    track_footprint: bool,
    llc_replacement: ReplacementPolicy,
    prewarm_llc: bool,
    reschedule_every: Option<u64>,
    audit: bool,
    trace: Option<TraceConfig>,
}

impl SimulationConfigBuilder {
    /// Starts from the paper's machine, affinity policy, no workloads.
    pub fn new() -> Self {
        Self {
            machine: MachineConfig::paper_default(),
            policy: SchedulingPolicy::Affinity,
            workloads: Vec::new(),
            seed: 0,
            refs_per_vm: 100_000,
            warmup_refs_per_vm: 50_000,
            track_footprint: false,
            llc_replacement: ReplacementPolicy::Lru,
            prewarm_llc: false,
            reschedule_every: None,
            audit: false,
            trace: None,
        }
    }

    /// Sets the machine.
    pub fn machine(&mut self, machine: MachineConfig) -> &mut Self {
        self.machine = machine;
        self
    }

    /// Sets the scheduling policy.
    pub fn policy(&mut self, policy: SchedulingPolicy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// Adds one workload instance (VM).
    pub fn workload(&mut self, profile: WorkloadProfile) -> &mut Self {
        self.workloads.push(profile);
        self
    }

    /// Adds `count` instances of the same profile.
    pub fn workload_instances(&mut self, profile: &WorkloadProfile, count: usize) -> &mut Self {
        for _ in 0..count {
            self.workloads.push(profile.clone());
        }
        self
    }

    /// Sets the root seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the measured reference quota per VM.
    pub fn refs_per_vm(&mut self, refs: u64) -> &mut Self {
        self.refs_per_vm = refs;
        self
    }

    /// Sets the warmup reference quota per VM.
    pub fn warmup_refs_per_vm(&mut self, refs: u64) -> &mut Self {
        self.warmup_refs_per_vm = refs;
        self
    }

    /// Enables or disables footprint tracking.
    pub fn track_footprint(&mut self, on: bool) -> &mut Self {
        self.track_footprint = on;
        self
    }

    /// Sets the LLC banks' replacement policy (ablation knob; the paper's
    /// machine uses LRU).
    pub fn llc_replacement(&mut self, policy: ReplacementPolicy) -> &mut Self {
        self.llc_replacement = policy;
        self
    }

    /// Enables checkpoint-style LLC prewarming (see
    /// [`SimulationConfig::prewarm_llc`]).
    pub fn prewarm_llc(&mut self, on: bool) -> &mut Self {
        self.prewarm_llc = on;
        self
    }

    /// Enables periodic dynamic rescheduling (see
    /// [`SimulationConfig::reschedule_every`]).
    pub fn reschedule_every(&mut self, cycles: u64) -> &mut Self {
        self.reschedule_every = Some(cycles);
        self
    }

    /// Enables the end-of-run counter audit (see
    /// [`SimulationConfig::audit`]).
    pub fn audit(&mut self, on: bool) -> &mut Self {
        self.audit = on;
        self
    }

    /// Attaches a trace configuration (see [`SimulationConfig::trace`]).
    pub fn trace(&mut self, trace: TraceConfig) -> &mut Self {
        self.trace = Some(trace);
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if no workloads were added, a
    /// profile is invalid, the quota is zero, or the mix oversubscribes the
    /// machine.
    pub fn build(&self) -> Result<SimulationConfig, SimError> {
        if self.workloads.is_empty() {
            return Err(SimError::invalid_config(
                "at least one workload is required",
            ));
        }
        if self.refs_per_vm == 0 {
            return Err(SimError::invalid_config("refs_per_vm must be nonzero"));
        }
        for w in &self.workloads {
            w.validate()?;
        }
        if self.reschedule_every == Some(0) {
            return Err(SimError::invalid_config(
                "reschedule interval must be nonzero",
            ));
        }
        let threads: usize = self.workloads.iter().map(|w| w.threads).sum();
        if threads > self.machine.num_cores {
            return Err(SimError::invalid_config(format!(
                "{threads} threads oversubscribe {} cores",
                self.machine.num_cores
            )));
        }
        // Way partitioning is only fully checkable once the VM count is
        // known: quota entries must match the VM list one-to-one and every
        // VM needs at least one way. (Bank associativity equals the
        // aggregate LLC associativity — banking splits sets, not ways.)
        self.machine
            .llc_partitioning
            .way_masks(self.machine.llc.associativity, self.workloads.len())?;
        Ok(SimulationConfig {
            machine: self.machine.clone(),
            policy: self.policy,
            workloads: self.workloads.clone(),
            seed: self.seed,
            refs_per_vm: self.refs_per_vm,
            warmup_refs_per_vm: self.warmup_refs_per_vm,
            track_footprint: self.track_footprint,
            llc_replacement: self.llc_replacement,
            prewarm_llc: self.prewarm_llc,
            reschedule_every: self.reschedule_every,
            audit: self.audit,
            trace: self.trace.clone(),
        })
    }
}

impl Default for SimulationConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// Per-VM metrics over the measurement interval.
    pub vm_metrics: Vec<VmMetrics>,
    /// LLC replication snapshot at measurement end (Fig. 12).
    pub replication: ReplicationSnapshot,
    /// LLC occupancy snapshot at measurement end (Fig. 13).
    pub occupancy: OccupancySnapshot,
    /// Interconnect statistics over the measurement interval.
    pub noc: NocStats,
    /// Directory protocol statistics over the measurement interval.
    pub protocol: ProtocolStats,
    /// The placement used.
    pub placement: Placement,
    /// Cycles from measurement start until the last VM completed.
    pub measured_cycles: u64,
    /// Mean directory-cache hit rate across home nodes.
    pub dircache_hit_rate: f64,
    /// Mean utilization across mesh links over the measurement interval.
    pub noc_mean_utilization: f64,
    /// Utilization of the busiest mesh link.
    pub noc_peak_utilization: f64,
}

/// One experimental run of the consolidation machine.
///
/// See the [module docs](self) for the timing model; see
/// [`SimulationConfig`] for the knobs.
#[derive(Debug)]
pub struct Simulation {
    config: SimulationConfig,
    layout: Layout,
    placement: Placement,
    /// `core_thread[core]` = the thread bound there, if any.
    core_thread: Vec<Option<GlobalThreadId>>,
    l0: Vec<SetAssocCache>,
    l1: Vec<SetAssocCache>,
    llc: Vec<SetAssocCache>,
    directory: Directory,
    dircaches: Vec<DirectoryCache>,
    noc: ContentionModel,
    /// One service calendar per memory controller (bandwidth model).
    memory_controllers: Vec<ReservationCalendar>,
    generators: Vec<WorkloadGenerator>,
    gap_rngs: Vec<SimRng>,
    metrics: Vec<VmMetrics>,
    /// Per-VM allowed-way bitmasks for LLC allocation, when
    /// [`consim_types::config::LlcPartitioning`] is active.
    llc_way_masks: Option<Vec<u64>>,
    /// Epoch counter for dynamic rescheduling.
    resched_epoch: u64,
}

impl Simulation {
    /// Builds the machine and places the mix.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the layout or placement fails.
    pub fn new(config: SimulationConfig) -> Result<Self, SimError> {
        let machine = &config.machine;
        let layout = Layout::new(machine)?;
        let root = SimRng::from_seed(config.seed);
        let vm_threads: Vec<usize> = config.workloads.iter().map(|w| w.threads).collect();
        let placement = place(config.policy, machine, &vm_threads, &root)?;

        let mut core_thread = vec![None; machine.num_cores];
        for (thread, core) in placement.iter() {
            core_thread[core.index()] = Some(thread);
        }

        let l0 = (0..machine.num_cores)
            .map(|_| SetAssocCache::new(machine.l0, ReplacementPolicy::Lru))
            .collect();
        let l1 = (0..machine.num_cores)
            .map(|_| SetAssocCache::new(machine.l1, ReplacementPolicy::Lru))
            .collect();
        let bank_geom = machine.llc_bank_geometry();
        let llc = (0..machine.llc_banks())
            .map(|_| SetAssocCache::new(bank_geom, config.llc_replacement))
            .collect();
        let llc_way_masks = machine
            .llc_partitioning
            .way_masks(bank_geom.associativity, config.workloads.len())?;
        let mut directory = Directory::new(machine.num_cores);
        let dircaches = (0..machine.num_cores)
            .map(|_| DirectoryCache::new(machine.directory_cache_entries))
            .collect::<Result<Vec<_>, _>>()?;
        let mut noc = ContentionModel::new(
            *layout.mesh(),
            machine.link_latency,
            machine.router_pipeline,
        );
        if let Some(trace) = &config.trace {
            directory.set_trace_sink(Some(trace.sink.clone()), trace.coherence_sample);
            if trace.sink.wants(EventClass::NocStall) {
                noc.set_trace_sink(Some(trace.sink.clone()));
            }
        }
        let memory_controllers =
            vec![ReservationCalendar::default(); machine.num_memory_controllers];
        let generators = config
            .workloads
            .iter()
            .enumerate()
            .map(|(vm, profile)| WorkloadGenerator::new(VmId::new(vm), profile, &root))
            .collect();
        let gap_rngs = (0..machine.num_cores)
            .map(|c| root.derive_parts("core/gaps", &[c as u64]))
            .collect();
        let metrics = config
            .workloads
            .iter()
            .map(|_| VmMetrics::default())
            .collect();

        Ok(Self {
            config,
            layout,
            placement,
            core_thread,
            l0,
            l1,
            llc,
            directory,
            dircaches,
            noc,
            memory_controllers,
            generators,
            gap_rngs,
            metrics,
            llc_way_masks,
            resched_epoch: 0,
        })
    }

    /// The placement in use.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Runs warmup then measurement; consumes the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invariant`] if internal protocol invariants break
    /// (a simulator bug).
    pub fn run(self) -> Result<SimulationOutcome, SimError> {
        self.run_with(None)
    }

    /// Like [`Simulation::run`], but notifies `observer` of every simulated
    /// memory reference (see [`crate::observe`]). Passing `None` is exactly
    /// `run`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invariant`] if internal protocol invariants break
    /// (a simulator bug).
    pub fn run_with(
        mut self,
        mut observer: Option<&mut dyn StepObserver>,
    ) -> Result<SimulationOutcome, SimError> {
        if self.config.prewarm_llc {
            self.prewarm_llc_banks(&mut observer);
        }
        let mut clock = Cycle::ZERO;
        if self.config.warmup_refs_per_vm > 0 {
            clock = self.phase(clock, self.config.warmup_refs_per_vm, false, &mut observer)?;
            self.reset_measurement_state();
        }
        let num_vms = self.config.workloads.len();
        if let Some(trace) = &self.config.trace {
            trace.sink.record(&TraceEvent::RunStarted {
                seed: self.config.seed,
                vms: num_vms as u32,
                refs_per_vm: self.config.refs_per_vm,
                warmup_refs_per_vm: self.config.warmup_refs_per_vm,
            });
        }
        let measure_start = clock;
        let end = self.phase(clock, self.config.refs_per_vm, true, &mut observer)?;

        debug_assert!(self.directory.check_invariants().is_ok());

        let replication = ReplicationSnapshot::capture(&self.llc);
        let occupancy = OccupancySnapshot::capture(&self.llc, num_vms);
        let dircache_hit_rate = self
            .dircaches
            .iter()
            .map(DirectoryCache::hit_rate)
            .sum::<f64>()
            / self.dircaches.len() as f64;
        // Completion cycles were recorded as absolute times; rebase onto the
        // measurement interval.
        for m in &mut self.metrics {
            if let Some(c) = m.completion {
                m.completion = Some(Cycle::new(c.saturating_since(measure_start)));
            }
        }
        let elapsed = end.raw().max(1);
        let seed = self.config.seed;
        let audit = self.config.audit;
        let trace = self.config.trace.clone();
        let outcome = SimulationOutcome {
            noc_mean_utilization: self.noc.mean_link_utilization(elapsed),
            noc_peak_utilization: self.noc.peak_link_utilization(elapsed),
            vm_metrics: self.metrics,
            replication,
            occupancy,
            noc: self.noc.stats().clone(),
            protocol: *self.directory.stats(),
            placement: self.placement,
            measured_cycles: end.saturating_since(measure_start),
            dircache_hit_rate,
        };
        if let Some(trace) = &trace {
            trace.sink.record(&TraceEvent::RunCompleted {
                seed,
                measured_cycles: outcome.measured_cycles,
                l1_misses: outcome.vm_metrics.iter().map(|m| m.l1_misses).sum(),
                memory_fetches: outcome.vm_metrics.iter().map(|m| m.memory_fetches).sum(),
            });
        }
        // Debug builds always audit; release builds opt in via the config.
        if audit || cfg!(debug_assertions) {
            let checks = crate::audit::audit_outcome(&outcome)?;
            if let Some(trace) = &trace {
                trace.sink.record(&TraceEvent::AuditPassed { seed, checks });
            }
        }
        Ok(outcome)
    }

    /// Runs one phase (warmup or measurement) starting at `start`: every VM
    /// issues `quota` references; cores of finished VMs keep running so the
    /// machine stays at capacity (the paper restarts finished workloads).
    /// Returns the cycle at which the last VM finished its quota.
    fn phase(
        &mut self,
        start: Cycle,
        quota: u64,
        measuring: bool,
        observer: &mut Option<&mut dyn StepObserver>,
    ) -> Result<Cycle, SimError> {
        // Epoch snapshots only apply to the measurement phase. The loop is
        // monomorphized over whether they are on: even a never-taken branch
        // whose body calls through a trace-sink vtable pessimizes the hot
        // loop's code generation by ~20%, so the untraced instantiation
        // must contain no epoch code at all.
        let epoch_trace = self
            .config
            .trace
            .clone()
            .filter(|t| measuring && t.sink.wants(EventClass::Epoch));
        match epoch_trace {
            Some(trace) => self.phase_loop::<true>(start, quota, measuring, Some(trace), observer),
            None => self.phase_loop::<false>(start, quota, measuring, None, observer),
        }
    }

    /// The event loop of one phase. `EPOCHS` compiles the epoch-snapshot
    /// check in or out; `epoch_trace` must be `Some` iff `EPOCHS`.
    fn phase_loop<const EPOCHS: bool>(
        &mut self,
        start: Cycle,
        quota: u64,
        measuring: bool,
        epoch_trace: Option<TraceConfig>,
        observer: &mut Option<&mut dyn StepObserver>,
    ) -> Result<Cycle, SimError> {
        let num_vms = self.config.workloads.len();
        let mean_gap = self.config.machine.instructions_per_memory_op;
        let track_footprint = self.config.track_footprint;
        let mut vm_refs = vec![0u64; num_vms];
        let mut vm_done = vec![false; num_vms];
        let mut remaining = num_vms;
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for core in 0..self.config.machine.num_cores {
            if self.core_thread[core].is_some() {
                heap.push(Reverse((start.raw(), core)));
            }
        }
        let mut last_completion = start;
        let mut next_resched = self
            .config
            .reschedule_every
            .map(|interval| start.raw() + interval);
        let epoch_interval = if EPOCHS {
            epoch_trace
                .as_ref()
                .map(|t| t.epoch_cycles.max(1))
                .unwrap_or(u64::MAX)
        } else {
            u64::MAX
        };
        let mut next_epoch = start.raw().saturating_add(epoch_interval);
        while let Some(Reverse((now, core))) = heap.pop() {
            if EPOCHS && now >= next_epoch {
                next_epoch =
                    self.epoch_boundary(&epoch_trace, now, start.raw(), next_epoch, epoch_interval);
            }
            if let (Some(at), Some(interval)) = (next_resched, self.config.reschedule_every) {
                if now >= at {
                    let occupied_before: Vec<bool> =
                        self.core_thread.iter().map(Option::is_some).collect();
                    self.reschedule();
                    next_resched = Some(at + interval);
                    if self
                        .core_thread
                        .iter()
                        .map(Option::is_some)
                        .ne(occupied_before.iter().copied())
                    {
                        // The set of occupied cores changed (possible under
                        // Random placement): pending events on vacated cores
                        // would orphan their issue slots and newly occupied
                        // cores would starve. Remap, then re-pop.
                        heap.push(Reverse((now, core)));
                        remap_core_events(&mut heap, &occupied_before, &self.core_thread);
                        continue;
                    }
                }
            }
            let thread = self.core_thread[core].expect("scheduled cores have threads");
            let vm = thread.vm;
            let gap = self.gap_rngs[core].positive_with_mean(mean_gap);
            let issue = Cycle::new(now) + gap;
            let mem_ref = self.generators[vm.index()].next_ref(thread.thread);
            if measuring {
                let m = &mut self.metrics[vm.index()];
                m.instructions += gap + 1;
                m.refs += 1;
                if mem_ref.is_write {
                    m.writes += 1;
                }
                if track_footprint {
                    m.footprint.insert(mem_ref.address.block().raw());
                }
            }
            let done = self.access(CoreId::new(core), vm, &mem_ref, issue, measuring, observer);

            if !vm_done[vm.index()] {
                vm_refs[vm.index()] += 1;
                if vm_refs[vm.index()] >= quota {
                    vm_done[vm.index()] = true;
                    remaining -= 1;
                    last_completion = last_completion.max(done);
                    if measuring {
                        self.metrics[vm.index()].completion = Some(done);
                    }
                    if remaining == 0 {
                        break;
                    }
                }
            }
            heap.push(Reverse((done.raw(), core)));
        }
        Ok(last_completion)
    }

    /// Handles one epoch boundary: advances `next_epoch` past `now` and
    /// emits the snapshot events. Kept out of line so the event loop only
    /// pays one comparison per event — inlining this body into `phase`
    /// measurably pessimizes the hot loop's code generation.
    #[cold]
    #[inline(never)]
    fn epoch_boundary(
        &self,
        trace: &Option<TraceConfig>,
        now: u64,
        measure_start: u64,
        mut next_epoch: u64,
        interval: u64,
    ) -> u64 {
        while now >= next_epoch {
            next_epoch = next_epoch.saturating_add(interval);
        }
        let trace = trace.as_ref().expect("epoch trace enabled");
        self.emit_epoch_snapshot(trace.sink.as_ref(), now, measure_start);
        next_epoch
    }

    /// Emits the per-VM and machine-wide time-series snapshot for one epoch
    /// boundary.
    fn emit_epoch_snapshot(&self, sink: &dyn TraceSink, cycle: u64, measure_start: u64) {
        for (vm, m) in self.metrics.iter().enumerate() {
            sink.record(&TraceEvent::Epoch {
                cycle,
                vm: vm as u32,
                refs: m.refs,
                l1_misses: m.l1_misses,
                llc_miss_rate: m.llc_miss_rate(),
                mean_miss_latency: m.mean_miss_latency(),
            });
        }
        let elapsed = cycle.saturating_sub(measure_start).max(1);
        let occupied: usize = self.llc.iter().map(SetAssocCache::occupancy).sum();
        let capacity: usize = self.llc.iter().map(SetAssocCache::capacity).sum();
        sink.record(&TraceEvent::EpochMachine {
            cycle,
            noc_mean_utilization: self.noc.mean_link_utilization(elapsed),
            noc_peak_utilization: self.noc.peak_link_utilization(elapsed),
            llc_occupancy: occupied as f64 / capacity.max(1) as f64,
        });
    }

    /// Clears statistics after warmup; cache/directory *contents* persist.
    fn reset_measurement_state(&mut self) {
        for c in self
            .l0
            .iter_mut()
            .chain(self.l1.iter_mut())
            .chain(self.llc.iter_mut())
        {
            c.reset_stats();
        }
        self.directory.reset_stats();
        self.noc.reset();
        for mc in &mut self.memory_controllers {
            *mc = ReservationCalendar::default();
        }
        for m in &mut self.metrics {
            *m = VmMetrics::default();
        }
    }

    /// Simulates one reference through the [`crate::hierarchy`] pipeline;
    /// returns its completion time.
    fn access(
        &mut self,
        core: CoreId,
        vm: VmId,
        mem_ref: &MemRef,
        issue: Cycle,
        measuring: bool,
        observer: &mut Option<&mut dyn StepObserver>,
    ) -> Cycle {
        let (completion, outcome) = self
            .hierarchy_ctx()
            .access(core, vm, mem_ref, issue, measuring);
        if observer.is_some() {
            self.notify_step(observer, core, vm, mem_ref, measuring, outcome);
        }
        completion
    }

    /// The per-access view of the machine handed to the hierarchy pipeline.
    /// Compiles down to a bundle of pointers; built fresh per reference so
    /// the engine keeps ownership of all state between events.
    #[inline]
    fn hierarchy_ctx(&mut self) -> HierarchyCtx<'_> {
        HierarchyCtx {
            machine: &self.config.machine,
            layout: &self.layout,
            l0: &mut self.l0,
            l1: &mut self.l1,
            llc: &mut self.llc,
            directory: &mut self.directory,
            dircaches: &mut self.dircaches,
            noc: &mut self.noc,
            memory_controllers: &mut self.memory_controllers,
            metrics: &mut self.metrics,
            llc_masks: self.llc_way_masks.as_deref(),
        }
    }

    /// Delivers one [`AccessStep`] to the attached observer. Out of line and
    /// cold: the common (unobserved) run pays only the `is_some` branch at
    /// the call sites.
    #[cold]
    #[inline(never)]
    fn notify_step(
        &self,
        observer: &mut Option<&mut dyn StepObserver>,
        core: CoreId,
        vm: VmId,
        mem_ref: &MemRef,
        measuring: bool,
        outcome: StepOutcome,
    ) {
        let observer = observer.as_deref_mut().expect("observer checked by caller");
        let block = mem_ref.address.block();
        let (dir_owner, dir_sharers) = self.directory.state_of(block);
        observer.on_step(&AccessStep {
            core,
            vm,
            thread: mem_ref.thread,
            block,
            is_write: mem_ref.is_write,
            measuring,
            outcome,
            dir_owner,
            dir_sharers,
        });
    }

    /// Recomputes the thread-to-core mapping with a fresh random stream
    /// (one context-switch epoch). Threads migrate; their cached data stays
    /// behind on the old cores and must be re-fetched (or transferred
    /// cache-to-cache) from the new ones.
    fn reschedule(&mut self) {
        self.resched_epoch += 1;
        let rng = SimRng::from_seed(self.config.seed)
            .derive_parts("resched/epoch", &[self.resched_epoch]);
        let vm_threads: Vec<usize> = self.config.workloads.iter().map(|w| w.threads).collect();
        if let Ok(placement) = place(self.config.policy, &self.config.machine, &vm_threads, &rng) {
            self.core_thread = vec![None; self.config.machine.num_cores];
            for (thread, core) in placement.iter() {
                self.core_thread[core.index()] = Some(thread);
            }
            self.placement = placement;
        }
    }

    /// Pre-fills each VM's LLC banks with its hottest blocks (the paper's
    /// warmed-checkpoint methodology). Each VM receives a share of each of
    /// its banks proportional to how many of the bank's cores it owns;
    /// blocks are inserted coldest-first so the hottest end up
    /// most-recently-used.
    fn prewarm_llc_banks(&mut self, observer: &mut Option<&mut dyn StepObserver>) {
        let machine = self.config.machine.clone();
        let per_bank_capacity = machine.llc_bank_geometry().num_lines();
        for vm in 0..self.config.workloads.len() {
            // Prewarm fills respect the VM's way mask, like demand fills.
            let mask = self.llc_way_masks.as_ref().map(|masks| masks[vm]);
            // Count this VM's threads per bank.
            let mut share = vec![0usize; machine.llc_banks()];
            for (thread, core) in self.placement.iter() {
                if thread.vm.index() == vm {
                    share[machine.bank_of_core(core).index()] += 1;
                }
            }
            let quotas: Vec<usize> = share
                .iter()
                .map(|&threads| per_bank_capacity * threads / machine.cores_per_bank())
                .collect();
            let total: usize = quotas.iter().sum();
            if total == 0 {
                continue;
            }
            let warm = self.generators[vm].warm_set(total);
            // Distribute hottest-first across the VM's banks round-robin,
            // then insert each bank's list in reverse (hottest becomes MRU).
            let mut per_bank: Vec<Vec<consim_types::BlockAddr>> =
                quotas.iter().map(|&q| Vec::with_capacity(q)).collect();
            let mut bank_cursor = 0usize;
            for block in warm {
                // Next bank with remaining quota.
                let mut placed = false;
                for off in 0..per_bank.len() {
                    let b = (bank_cursor + off) % per_bank.len();
                    if per_bank[b].len() < quotas[b] {
                        per_bank[b].push(block);
                        bank_cursor = b + 1;
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    break;
                }
            }
            for (b, blocks) in per_bank.into_iter().enumerate() {
                for block in blocks.into_iter().rev() {
                    match mask {
                        Some(m) => {
                            self.llc[b].insert_in_ways(block, LineState::Shared, m);
                        }
                        None => {
                            self.llc[b].insert(block, LineState::Shared);
                        }
                    }
                    if let Some(obs) = observer.as_deref_mut() {
                        obs.on_llc_prewarm(BankId::new(b), block);
                    }
                }
            }
        }
        for bank in &mut self.llc {
            bank.reset_stats();
        }
    }
}

/// Rebinds pending issue events after a reschedule that changed which cores
/// are occupied (possible under [`SchedulingPolicy::Random`]): events on
/// vacated cores are reassigned — earliest times first — to the cores that
/// became occupied, in ascending core order. Events on cores that stayed
/// occupied are untouched, so deterministic policies keep their exact
/// pre-existing schedule.
fn remap_core_events(
    heap: &mut BinaryHeap<Reverse<(u64, usize)>>,
    occupied_before: &[bool],
    core_thread: &[Option<GlobalThreadId>],
) {
    let mut kept: Vec<(u64, usize)> = Vec::with_capacity(heap.len());
    let mut orphaned: Vec<u64> = Vec::new();
    for Reverse((time, core)) in heap.drain() {
        if core_thread[core].is_some() {
            kept.push((time, core));
        } else {
            orphaned.push(time);
        }
    }
    orphaned.sort_unstable();
    let fresh_cores = (0..core_thread.len())
        .filter(|&core| core_thread[core].is_some() && !occupied_before[core]);
    heap.extend(kept.into_iter().map(Reverse));
    heap.extend(orphaned.into_iter().zip(fresh_cores).map(Reverse));
}

#[cfg(test)]
mod tests;
