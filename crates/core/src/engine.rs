//! The discrete-event consolidation simulator.
//!
//! One [`Simulation`] models one experimental run: a machine configuration,
//! a scheduling policy, and a list of workload instances (VMs). In-order
//! cores alternate compute gaps and memory references; every reference
//! walks the hierarchy L0 → L1 → directory → {remote L1 (cache-to-cache),
//! LLC bank, remote LLC bank, memory}, with each protocol message routed —
//! and contended — on the mesh.
//!
//! ## Timing model
//!
//! Events are (ready-cycle, core) pairs in a binary heap; cores have one
//! outstanding miss each (matching the paper's in-order Niagara-like cores),
//! so a core's next event is scheduled at its previous access's completion.
//! Protocol state (caches, directory) is updated when the transaction is
//! processed; concurrent transactions to the same block are serialized in
//! event order. This transaction-level approximation preserves the paper's
//! measured quantities (miss classification, latency composition,
//! contention) without flit-level cost — see DESIGN.md §1.
//!
//! ## Protocol walk of one L1 miss
//!
//! 1. Control packet to the block's home directory node (striped by block
//!    address); directory-cache miss adds one off-chip latency.
//! 2. Directory classifies the request ([`consim_coherence::Directory`]):
//!    * dirty in a remote L1 → 3-hop forward, dirty cache-to-cache transfer
//!      (plus a sharing writeback to the memory controller, off the
//!      critical path);
//!    * clean in remote L1s → clean transfer from the *nearest* sharer;
//!    * otherwise → the requester's own LLC bank; on a bank miss, the
//!      nearest *other* bank holding the block serves it (and the local
//!      bank is filled — replication); on a global LLC miss, memory.
//! 3. Writes additionally invalidate every other sharer and wait for the
//!    slowest acknowledgement.
//! 4. Fills may evict: dirty L1 victims write back into the local LLC bank;
//!    dirty LLC victims write back to memory.

use crate::machine::Layout;
use crate::metrics::{MissSource, OccupancySnapshot, ReplicationSnapshot, VmMetrics};
use crate::observe::{AccessStep, StepObserver, StepOutcome};
use consim_cache::{LineState, ReplacementPolicy, SetAssocCache};
use consim_coherence::{AccessKind, DataSource, Directory, DirectoryCache, ProtocolStats};
use consim_noc::{ContentionModel, NocStats, Packet, ReservationCalendar};
use consim_sched::{place, Placement, SchedulingPolicy};
use consim_trace::{EventClass, TraceEvent, TraceSink};
use consim_types::config::MachineConfig;
use consim_types::{BankId, BlockAddr, CoreId, Cycle, GlobalThreadId, SimError, SimRng, VmId};
use consim_workload::{MemRef, WorkloadGenerator, WorkloadProfile};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// How a simulation reports trace events.
///
/// Construct with [`TraceConfig::new`] and adjust the knobs; attach via
/// [`SimulationConfigBuilder::trace`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Destination for every event the simulation emits.
    pub sink: Arc<dyn TraceSink>,
    /// Cycle interval between time-series snapshots ([`TraceEvent::Epoch`],
    /// [`TraceEvent::EpochMachine`]) during measurement.
    pub epoch_cycles: u64,
    /// Record every Nth directory protocol action as a
    /// [`TraceEvent::Coherence`] event (volume control for the per-miss hot
    /// path).
    pub coherence_sample: u64,
}

impl TraceConfig {
    /// A configuration with the default epoch interval (100k cycles) and
    /// coherence sampling rate (1 in 64).
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Self {
            sink,
            epoch_cycles: 100_000,
            coherence_sample: 64,
        }
    }
}

/// Everything needed to run one simulation.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// The hardware.
    pub machine: MachineConfig,
    /// Thread-to-core policy.
    pub policy: SchedulingPolicy,
    /// One profile per VM, in VM order.
    pub workloads: Vec<WorkloadProfile>,
    /// Root seed; all randomness derives from it.
    pub seed: u64,
    /// Measured references per VM (the transaction quota).
    pub refs_per_vm: u64,
    /// Warmup references per VM before measurement starts.
    pub warmup_refs_per_vm: u64,
    /// Whether to track unique blocks per VM (Table II footprints).
    pub track_footprint: bool,
    /// Replacement policy of the LLC banks (the paper's machine uses
    /// vanilla LRU; the others support the DESIGN.md ablation study).
    pub llc_replacement: ReplacementPolicy,
    /// Pre-fill the LLC banks with each workload's hottest blocks before
    /// warmup, mimicking the paper's warmed checkpoints. Shortens the
    /// warmup needed to reach steady state.
    pub prewarm_llc: bool,
    /// Re-place threads onto cores every this many cycles (the paper's
    /// future-work "dynamically adjusting assignments in response to
    /// context switches"). `None` (the default) matches the paper's static
    /// binding. Each epoch re-runs the scheduling policy with a fresh
    /// random stream, so migrating threads abandon their warm caches.
    pub reschedule_every: Option<u64>,
    /// Cross-check the redundant counter paths at end of run and fail with
    /// [`SimError::AuditFailed`] on drift (see [`crate::audit`]). The audit
    /// also always runs in debug builds; it never changes results.
    pub audit: bool,
    /// Optional observability sink and its volume knobs. `None` (the
    /// default) emits nothing and costs one branch per check site.
    pub trace: Option<TraceConfig>,
}

impl SimulationConfig {
    /// Starts building a configuration.
    pub fn builder() -> SimulationConfigBuilder {
        SimulationConfigBuilder::new()
    }
}

/// Builder for [`SimulationConfig`] ([C-BUILDER]).
#[derive(Debug, Clone)]
pub struct SimulationConfigBuilder {
    machine: MachineConfig,
    policy: SchedulingPolicy,
    workloads: Vec<WorkloadProfile>,
    seed: u64,
    refs_per_vm: u64,
    warmup_refs_per_vm: u64,
    track_footprint: bool,
    llc_replacement: ReplacementPolicy,
    prewarm_llc: bool,
    reschedule_every: Option<u64>,
    audit: bool,
    trace: Option<TraceConfig>,
}

impl SimulationConfigBuilder {
    /// Starts from the paper's machine, affinity policy, no workloads.
    pub fn new() -> Self {
        Self {
            machine: MachineConfig::paper_default(),
            policy: SchedulingPolicy::Affinity,
            workloads: Vec::new(),
            seed: 0,
            refs_per_vm: 100_000,
            warmup_refs_per_vm: 50_000,
            track_footprint: false,
            llc_replacement: ReplacementPolicy::Lru,
            prewarm_llc: false,
            reschedule_every: None,
            audit: false,
            trace: None,
        }
    }

    /// Sets the machine.
    pub fn machine(&mut self, machine: MachineConfig) -> &mut Self {
        self.machine = machine;
        self
    }

    /// Sets the scheduling policy.
    pub fn policy(&mut self, policy: SchedulingPolicy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// Adds one workload instance (VM).
    pub fn workload(&mut self, profile: WorkloadProfile) -> &mut Self {
        self.workloads.push(profile);
        self
    }

    /// Adds `count` instances of the same profile.
    pub fn workload_instances(&mut self, profile: &WorkloadProfile, count: usize) -> &mut Self {
        for _ in 0..count {
            self.workloads.push(profile.clone());
        }
        self
    }

    /// Sets the root seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the measured reference quota per VM.
    pub fn refs_per_vm(&mut self, refs: u64) -> &mut Self {
        self.refs_per_vm = refs;
        self
    }

    /// Sets the warmup reference quota per VM.
    pub fn warmup_refs_per_vm(&mut self, refs: u64) -> &mut Self {
        self.warmup_refs_per_vm = refs;
        self
    }

    /// Enables or disables footprint tracking.
    pub fn track_footprint(&mut self, on: bool) -> &mut Self {
        self.track_footprint = on;
        self
    }

    /// Sets the LLC banks' replacement policy (ablation knob; the paper's
    /// machine uses LRU).
    pub fn llc_replacement(&mut self, policy: ReplacementPolicy) -> &mut Self {
        self.llc_replacement = policy;
        self
    }

    /// Enables checkpoint-style LLC prewarming (see
    /// [`SimulationConfig::prewarm_llc`]).
    pub fn prewarm_llc(&mut self, on: bool) -> &mut Self {
        self.prewarm_llc = on;
        self
    }

    /// Enables periodic dynamic rescheduling (see
    /// [`SimulationConfig::reschedule_every`]).
    pub fn reschedule_every(&mut self, cycles: u64) -> &mut Self {
        self.reschedule_every = Some(cycles);
        self
    }

    /// Enables the end-of-run counter audit (see
    /// [`SimulationConfig::audit`]).
    pub fn audit(&mut self, on: bool) -> &mut Self {
        self.audit = on;
        self
    }

    /// Attaches a trace configuration (see [`SimulationConfig::trace`]).
    pub fn trace(&mut self, trace: TraceConfig) -> &mut Self {
        self.trace = Some(trace);
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if no workloads were added, a
    /// profile is invalid, the quota is zero, or the mix oversubscribes the
    /// machine.
    pub fn build(&self) -> Result<SimulationConfig, SimError> {
        if self.workloads.is_empty() {
            return Err(SimError::invalid_config(
                "at least one workload is required",
            ));
        }
        if self.refs_per_vm == 0 {
            return Err(SimError::invalid_config("refs_per_vm must be nonzero"));
        }
        for w in &self.workloads {
            w.validate()?;
        }
        if self.reschedule_every == Some(0) {
            return Err(SimError::invalid_config(
                "reschedule interval must be nonzero",
            ));
        }
        let threads: usize = self.workloads.iter().map(|w| w.threads).sum();
        if threads > self.machine.num_cores {
            return Err(SimError::invalid_config(format!(
                "{threads} threads oversubscribe {} cores",
                self.machine.num_cores
            )));
        }
        Ok(SimulationConfig {
            machine: self.machine.clone(),
            policy: self.policy,
            workloads: self.workloads.clone(),
            seed: self.seed,
            refs_per_vm: self.refs_per_vm,
            warmup_refs_per_vm: self.warmup_refs_per_vm,
            track_footprint: self.track_footprint,
            llc_replacement: self.llc_replacement,
            prewarm_llc: self.prewarm_llc,
            reschedule_every: self.reschedule_every,
            audit: self.audit,
            trace: self.trace.clone(),
        })
    }
}

impl Default for SimulationConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// Per-VM metrics over the measurement interval.
    pub vm_metrics: Vec<VmMetrics>,
    /// LLC replication snapshot at measurement end (Fig. 12).
    pub replication: ReplicationSnapshot,
    /// LLC occupancy snapshot at measurement end (Fig. 13).
    pub occupancy: OccupancySnapshot,
    /// Interconnect statistics over the measurement interval.
    pub noc: NocStats,
    /// Directory protocol statistics over the measurement interval.
    pub protocol: ProtocolStats,
    /// The placement used.
    pub placement: Placement,
    /// Cycles from measurement start until the last VM completed.
    pub measured_cycles: u64,
    /// Mean directory-cache hit rate across home nodes.
    pub dircache_hit_rate: f64,
    /// Mean utilization across mesh links over the measurement interval.
    pub noc_mean_utilization: f64,
    /// Utilization of the busiest mesh link.
    pub noc_peak_utilization: f64,
}

/// One experimental run of the consolidation machine.
///
/// See the [module docs](self) for the timing model; see
/// [`SimulationConfig`] for the knobs.
#[derive(Debug)]
pub struct Simulation {
    config: SimulationConfig,
    layout: Layout,
    placement: Placement,
    /// `core_thread[core]` = the thread bound there, if any.
    core_thread: Vec<Option<GlobalThreadId>>,
    l0: Vec<SetAssocCache>,
    l1: Vec<SetAssocCache>,
    llc: Vec<SetAssocCache>,
    directory: Directory,
    dircaches: Vec<DirectoryCache>,
    noc: ContentionModel,
    /// One service calendar per memory controller (bandwidth model).
    memory_controllers: Vec<ReservationCalendar>,
    generators: Vec<WorkloadGenerator>,
    gap_rngs: Vec<SimRng>,
    metrics: Vec<VmMetrics>,
    /// Epoch counter for dynamic rescheduling.
    resched_epoch: u64,
}

impl Simulation {
    /// Builds the machine and places the mix.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the layout or placement fails.
    pub fn new(config: SimulationConfig) -> Result<Self, SimError> {
        let machine = &config.machine;
        let layout = Layout::new(machine)?;
        let root = SimRng::from_seed(config.seed);
        let vm_threads: Vec<usize> = config.workloads.iter().map(|w| w.threads).collect();
        let placement = place(config.policy, machine, &vm_threads, &root)?;

        let mut core_thread = vec![None; machine.num_cores];
        for (thread, core) in placement.iter() {
            core_thread[core.index()] = Some(thread);
        }

        let l0 = (0..machine.num_cores)
            .map(|_| SetAssocCache::new(machine.l0, ReplacementPolicy::Lru))
            .collect();
        let l1 = (0..machine.num_cores)
            .map(|_| SetAssocCache::new(machine.l1, ReplacementPolicy::Lru))
            .collect();
        let bank_geom = machine.llc_bank_geometry();
        let llc = (0..machine.llc_banks())
            .map(|_| SetAssocCache::new(bank_geom, config.llc_replacement))
            .collect();
        let mut directory = Directory::new(machine.num_cores);
        let dircaches = (0..machine.num_cores)
            .map(|_| DirectoryCache::new(machine.directory_cache_entries))
            .collect::<Result<Vec<_>, _>>()?;
        let mut noc = ContentionModel::new(
            *layout.mesh(),
            machine.link_latency,
            machine.router_pipeline,
        );
        if let Some(trace) = &config.trace {
            directory.set_trace_sink(Some(trace.sink.clone()), trace.coherence_sample);
            if trace.sink.wants(EventClass::NocStall) {
                noc.set_trace_sink(Some(trace.sink.clone()));
            }
        }
        let memory_controllers =
            vec![ReservationCalendar::default(); machine.num_memory_controllers];
        let generators = config
            .workloads
            .iter()
            .enumerate()
            .map(|(vm, profile)| WorkloadGenerator::new(VmId::new(vm), profile, &root))
            .collect();
        let gap_rngs = (0..machine.num_cores)
            .map(|c| root.derive_parts("core/gaps", &[c as u64]))
            .collect();
        let metrics = config
            .workloads
            .iter()
            .map(|_| VmMetrics::default())
            .collect();

        Ok(Self {
            config,
            layout,
            placement,
            core_thread,
            l0,
            l1,
            llc,
            directory,
            dircaches,
            noc,
            memory_controllers,
            generators,
            gap_rngs,
            metrics,
            resched_epoch: 0,
        })
    }

    /// The placement in use.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Runs warmup then measurement; consumes the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invariant`] if internal protocol invariants break
    /// (a simulator bug).
    pub fn run(self) -> Result<SimulationOutcome, SimError> {
        self.run_with(None)
    }

    /// Like [`Simulation::run`], but notifies `observer` of every simulated
    /// memory reference (see [`crate::observe`]). Passing `None` is exactly
    /// `run`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invariant`] if internal protocol invariants break
    /// (a simulator bug).
    pub fn run_with(
        mut self,
        mut observer: Option<&mut dyn StepObserver>,
    ) -> Result<SimulationOutcome, SimError> {
        if self.config.prewarm_llc {
            self.prewarm_llc_banks(&mut observer);
        }
        let mut clock = Cycle::ZERO;
        if self.config.warmup_refs_per_vm > 0 {
            clock = self.phase(clock, self.config.warmup_refs_per_vm, false, &mut observer)?;
            self.reset_measurement_state();
        }
        let num_vms = self.config.workloads.len();
        if let Some(trace) = &self.config.trace {
            trace.sink.record(&TraceEvent::RunStarted {
                seed: self.config.seed,
                vms: num_vms as u32,
                refs_per_vm: self.config.refs_per_vm,
                warmup_refs_per_vm: self.config.warmup_refs_per_vm,
            });
        }
        let measure_start = clock;
        let end = self.phase(clock, self.config.refs_per_vm, true, &mut observer)?;

        debug_assert!(self.directory.check_invariants().is_ok());

        let replication = ReplicationSnapshot::capture(&self.llc);
        let occupancy = OccupancySnapshot::capture(&self.llc, num_vms);
        let dircache_hit_rate = self
            .dircaches
            .iter()
            .map(DirectoryCache::hit_rate)
            .sum::<f64>()
            / self.dircaches.len() as f64;
        // Completion cycles were recorded as absolute times; rebase onto the
        // measurement interval.
        for m in &mut self.metrics {
            if let Some(c) = m.completion {
                m.completion = Some(Cycle::new(c.saturating_since(measure_start)));
            }
        }
        let elapsed = end.raw().max(1);
        let seed = self.config.seed;
        let audit = self.config.audit;
        let trace = self.config.trace.clone();
        let outcome = SimulationOutcome {
            noc_mean_utilization: self.noc.mean_link_utilization(elapsed),
            noc_peak_utilization: self.noc.peak_link_utilization(elapsed),
            vm_metrics: self.metrics,
            replication,
            occupancy,
            noc: self.noc.stats().clone(),
            protocol: *self.directory.stats(),
            placement: self.placement,
            measured_cycles: end.saturating_since(measure_start),
            dircache_hit_rate,
        };
        if let Some(trace) = &trace {
            trace.sink.record(&TraceEvent::RunCompleted {
                seed,
                measured_cycles: outcome.measured_cycles,
                l1_misses: outcome.vm_metrics.iter().map(|m| m.l1_misses).sum(),
                memory_fetches: outcome.vm_metrics.iter().map(|m| m.memory_fetches).sum(),
            });
        }
        // Debug builds always audit; release builds opt in via the config.
        if audit || cfg!(debug_assertions) {
            let checks = crate::audit::audit_outcome(&outcome)?;
            if let Some(trace) = &trace {
                trace.sink.record(&TraceEvent::AuditPassed { seed, checks });
            }
        }
        Ok(outcome)
    }

    /// Runs one phase (warmup or measurement) starting at `start`: every VM
    /// issues `quota` references; cores of finished VMs keep running so the
    /// machine stays at capacity (the paper restarts finished workloads).
    /// Returns the cycle at which the last VM finished its quota.
    fn phase(
        &mut self,
        start: Cycle,
        quota: u64,
        measuring: bool,
        observer: &mut Option<&mut dyn StepObserver>,
    ) -> Result<Cycle, SimError> {
        // Epoch snapshots only apply to the measurement phase. The loop is
        // monomorphized over whether they are on: even a never-taken branch
        // whose body calls through a trace-sink vtable pessimizes the hot
        // loop's code generation by ~20%, so the untraced instantiation
        // must contain no epoch code at all.
        let epoch_trace = self
            .config
            .trace
            .clone()
            .filter(|t| measuring && t.sink.wants(EventClass::Epoch));
        match epoch_trace {
            Some(trace) => self.phase_loop::<true>(start, quota, measuring, Some(trace), observer),
            None => self.phase_loop::<false>(start, quota, measuring, None, observer),
        }
    }

    /// The event loop of one phase. `EPOCHS` compiles the epoch-snapshot
    /// check in or out; `epoch_trace` must be `Some` iff `EPOCHS`.
    fn phase_loop<const EPOCHS: bool>(
        &mut self,
        start: Cycle,
        quota: u64,
        measuring: bool,
        epoch_trace: Option<TraceConfig>,
        observer: &mut Option<&mut dyn StepObserver>,
    ) -> Result<Cycle, SimError> {
        let num_vms = self.config.workloads.len();
        let mean_gap = self.config.machine.instructions_per_memory_op;
        let track_footprint = self.config.track_footprint;
        let mut vm_refs = vec![0u64; num_vms];
        let mut vm_done = vec![false; num_vms];
        let mut remaining = num_vms;
        let mut heap: BinaryHeap<Reverse<(u64, usize)>> = BinaryHeap::new();
        for core in 0..self.config.machine.num_cores {
            if self.core_thread[core].is_some() {
                heap.push(Reverse((start.raw(), core)));
            }
        }
        let mut last_completion = start;
        let mut next_resched = self
            .config
            .reschedule_every
            .map(|interval| start.raw() + interval);
        let epoch_interval = if EPOCHS {
            epoch_trace
                .as_ref()
                .map(|t| t.epoch_cycles.max(1))
                .unwrap_or(u64::MAX)
        } else {
            u64::MAX
        };
        let mut next_epoch = start.raw().saturating_add(epoch_interval);
        while let Some(Reverse((now, core))) = heap.pop() {
            if EPOCHS && now >= next_epoch {
                next_epoch =
                    self.epoch_boundary(&epoch_trace, now, start.raw(), next_epoch, epoch_interval);
            }
            if let (Some(at), Some(interval)) = (next_resched, self.config.reschedule_every) {
                if now >= at {
                    let occupied_before: Vec<bool> =
                        self.core_thread.iter().map(Option::is_some).collect();
                    self.reschedule();
                    next_resched = Some(at + interval);
                    if self
                        .core_thread
                        .iter()
                        .map(Option::is_some)
                        .ne(occupied_before.iter().copied())
                    {
                        // The set of occupied cores changed (possible under
                        // Random placement): pending events on vacated cores
                        // would orphan their issue slots and newly occupied
                        // cores would starve. Remap, then re-pop.
                        heap.push(Reverse((now, core)));
                        remap_core_events(&mut heap, &occupied_before, &self.core_thread);
                        continue;
                    }
                }
            }
            let thread = self.core_thread[core].expect("scheduled cores have threads");
            let vm = thread.vm;
            let gap = self.gap_rngs[core].positive_with_mean(mean_gap);
            let issue = Cycle::new(now) + gap;
            let mem_ref = self.generators[vm.index()].next_ref(thread.thread);
            if measuring {
                let m = &mut self.metrics[vm.index()];
                m.instructions += gap + 1;
                m.refs += 1;
                if mem_ref.is_write {
                    m.writes += 1;
                }
                if track_footprint {
                    m.footprint.insert(mem_ref.address.block().raw());
                }
            }
            let done = self.access(CoreId::new(core), vm, &mem_ref, issue, measuring, observer);

            if !vm_done[vm.index()] {
                vm_refs[vm.index()] += 1;
                if vm_refs[vm.index()] >= quota {
                    vm_done[vm.index()] = true;
                    remaining -= 1;
                    last_completion = last_completion.max(done);
                    if measuring {
                        self.metrics[vm.index()].completion = Some(done);
                    }
                    if remaining == 0 {
                        break;
                    }
                }
            }
            heap.push(Reverse((done.raw(), core)));
        }
        Ok(last_completion)
    }

    /// Handles one epoch boundary: advances `next_epoch` past `now` and
    /// emits the snapshot events. Kept out of line so the event loop only
    /// pays one comparison per event — inlining this body into `phase`
    /// measurably pessimizes the hot loop's code generation.
    #[cold]
    #[inline(never)]
    fn epoch_boundary(
        &self,
        trace: &Option<TraceConfig>,
        now: u64,
        measure_start: u64,
        mut next_epoch: u64,
        interval: u64,
    ) -> u64 {
        while now >= next_epoch {
            next_epoch = next_epoch.saturating_add(interval);
        }
        let trace = trace.as_ref().expect("epoch trace enabled");
        self.emit_epoch_snapshot(trace.sink.as_ref(), now, measure_start);
        next_epoch
    }

    /// Emits the per-VM and machine-wide time-series snapshot for one epoch
    /// boundary.
    fn emit_epoch_snapshot(&self, sink: &dyn TraceSink, cycle: u64, measure_start: u64) {
        for (vm, m) in self.metrics.iter().enumerate() {
            sink.record(&TraceEvent::Epoch {
                cycle,
                vm: vm as u32,
                refs: m.refs,
                l1_misses: m.l1_misses,
                llc_miss_rate: m.llc_miss_rate(),
                mean_miss_latency: m.mean_miss_latency(),
            });
        }
        let elapsed = cycle.saturating_sub(measure_start).max(1);
        let occupied: usize = self.llc.iter().map(SetAssocCache::occupancy).sum();
        let capacity: usize = self.llc.iter().map(SetAssocCache::capacity).sum();
        sink.record(&TraceEvent::EpochMachine {
            cycle,
            noc_mean_utilization: self.noc.mean_link_utilization(elapsed),
            noc_peak_utilization: self.noc.peak_link_utilization(elapsed),
            llc_occupancy: occupied as f64 / capacity.max(1) as f64,
        });
    }

    /// Clears statistics after warmup; cache/directory *contents* persist.
    fn reset_measurement_state(&mut self) {
        for c in self
            .l0
            .iter_mut()
            .chain(self.l1.iter_mut())
            .chain(self.llc.iter_mut())
        {
            c.reset_stats();
        }
        self.directory.reset_stats();
        self.noc.reset();
        for mc in &mut self.memory_controllers {
            *mc = ReservationCalendar::default();
        }
        for m in &mut self.metrics {
            *m = VmMetrics::default();
        }
    }

    /// Simulates one reference; returns its completion time.
    fn access(
        &mut self,
        core: CoreId,
        vm: VmId,
        mem_ref: &MemRef,
        issue: Cycle,
        measuring: bool,
        observer: &mut Option<&mut dyn StepObserver>,
    ) -> Cycle {
        let block = mem_ref.address.block();
        let l0_latency = self.config.machine.l0.latency;
        let l1_latency = self.config.machine.l1.latency;

        // L0.
        if let Some(state) = self.l0[core.index()].access(block) {
            if !mem_ref.is_write || state.is_writable() {
                if mem_ref.is_write {
                    self.l0[core.index()].set_state(block, LineState::Modified);
                    self.l1[core.index()].set_state(block, LineState::Modified);
                }
                if measuring {
                    self.metrics[vm.index()].l0_hits += 1;
                }
                if observer.is_some() {
                    self.notify_step(observer, core, vm, mem_ref, measuring, StepOutcome::L0Hit);
                }
                return issue + l0_latency;
            }
        }
        // L1.
        if let Some(state) = self.l1[core.index()].access(block) {
            if !mem_ref.is_write || state.is_writable() {
                let new_state = if mem_ref.is_write {
                    LineState::Modified
                } else {
                    state
                };
                if mem_ref.is_write {
                    self.l1[core.index()].set_state(block, LineState::Modified);
                }
                self.fill_l0(core, block, new_state);
                if measuring {
                    self.metrics[vm.index()].l1_hits += 1;
                }
                if observer.is_some() {
                    self.notify_step(observer, core, vm, mem_ref, measuring, StepOutcome::L1Hit);
                }
                return issue + l0_latency + l1_latency;
            }
            // Write hit on a Shared line: upgrade.
            let (completion, source) =
                self.coherence_transaction(core, vm, block, AccessKind::Upgrade, issue, measuring);
            if observer.is_some() {
                let outcome = StepOutcome::Miss(source);
                self.notify_step(observer, core, vm, mem_ref, measuring, outcome);
            }
            return completion;
        }
        let kind = if mem_ref.is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        };
        let (completion, source) =
            self.coherence_transaction(core, vm, block, kind, issue, measuring);
        if observer.is_some() {
            let outcome = StepOutcome::Miss(source);
            self.notify_step(observer, core, vm, mem_ref, measuring, outcome);
        }
        completion
    }

    /// Delivers one [`AccessStep`] to the attached observer. Out of line and
    /// cold: the common (unobserved) run pays only the `is_some` branch at
    /// the call sites.
    #[cold]
    #[inline(never)]
    fn notify_step(
        &self,
        observer: &mut Option<&mut dyn StepObserver>,
        core: CoreId,
        vm: VmId,
        mem_ref: &MemRef,
        measuring: bool,
        outcome: StepOutcome,
    ) {
        let observer = observer.as_deref_mut().expect("observer checked by caller");
        let block = mem_ref.address.block();
        let (dir_owner, dir_sharers) = self.directory.state_of(block);
        observer.on_step(&AccessStep {
            core,
            vm,
            thread: mem_ref.thread,
            block,
            is_write: mem_ref.is_write,
            measuring,
            outcome,
            dir_owner,
            dir_sharers,
        });
    }

    /// Resolves an L1 miss (or upgrade) through the directory; returns the
    /// completion time and the engine's classification of the miss.
    fn coherence_transaction(
        &mut self,
        core: CoreId,
        vm: VmId,
        block: BlockAddr,
        kind: AccessKind,
        issue: Cycle,
        measuring: bool,
    ) -> (Cycle, MissSource) {
        // Scalar reads instead of cloning the whole machine description:
        // this runs once per L1 miss.
        let l0_latency = self.config.machine.l0.latency;
        let l1_latency = self.config.machine.l1.latency;
        let memory_latency = self.config.machine.memory_latency;
        let cnode = self.layout.core_node(core);
        let home = self.directory.home_of(block);
        // Miss detected after the private lookups.
        let t0 = issue + l0_latency + l1_latency;
        // Request to the home directory.
        let mut t = self.noc.send(&Packet::control(cnode, home), t0);
        t += 1; // directory pipeline
        if !self.dircaches[home.index()].lookup(block) {
            // Fetch the entry off-chip through the block's controller.
            let (mc, _) = self.layout.memory_controller_of(block);
            let service = self.reserve_directory_refill(mc, t);
            t = service + memory_latency;
        }

        let prior_sharers = self.directory.sharers_of(block);
        let outcome = self.directory.handle(core, block, kind);

        // Invalidations fan out from the home; the requester waits for the
        // slowest acknowledgement.
        let mut ack_time = Cycle::ZERO;
        for victim in outcome.invalidate.iter() {
            let vnode = self.layout.core_node(victim);
            let arrive = self.noc.send(&Packet::control(home, vnode), t);
            self.invalidate_private(victim, block);
            if measuring {
                self.metrics[vm.index()].invalidations_received += 1;
            }
            let ack = self.noc.send(&Packet::control(vnode, cnode), arrive);
            ack_time = ack_time.max(ack);
        }

        let is_write = matches!(kind, AccessKind::Write | AccessKind::Upgrade);
        let (data_time, source) = match outcome.source {
            DataSource::DirtyCache(owner) => {
                let (t_data, src) = self.serve_from_remote_l1(
                    owner,
                    cnode,
                    block,
                    t,
                    true,
                    is_write,
                    outcome.writeback,
                );
                (t_data, src)
            }
            DataSource::CleanCache(_) => {
                // Pick the *nearest* prior sharer as the supplier.
                let supplier = prior_sharers
                    .iter()
                    .filter(|&c| c != core)
                    .min_by_key(|&c| self.layout.mesh().hops(self.layout.core_node(c), cnode))
                    .expect("clean transfer implies a sharer");
                self.serve_from_remote_l1(supplier, cnode, block, t, false, is_write, false)
            }
            DataSource::Below => self.serve_from_llc_or_memory(core, cnode, block, t, is_write),
            DataSource::None => {
                // Upgrade: permission only, no data.
                (t, MissSource::Upgrade)
            }
        };

        // Keep the LLC consistent with the new ownership: writers leave no
        // stale bank copies; read fills also allocate in the local bank
        // (mostly-inclusive L2), which is what lets read-shared lines
        // replicate across banks (paper Fig. 12).
        if is_write {
            self.invalidate_llc_copies(block);
        } else if matches!(
            source,
            MissSource::RemoteL1Dirty | MissSource::RemoteL1Clean
        ) {
            let my_bank = self.config.machine.bank_of_core(core);
            self.fill_llc(my_bank, block, LineState::Shared, data_time);
        }

        let completion = data_time.max(ack_time);
        if measuring {
            self.metrics[vm.index()].record_miss(source, completion - issue);
        }

        // Install the line in the private hierarchy.
        if source != MissSource::Upgrade {
            let new_state = if is_write {
                LineState::Modified
            } else if outcome.exclusive {
                LineState::Exclusive
            } else {
                LineState::Shared
            };
            self.fill_l1(core, block, new_state, completion);
        } else {
            self.l1[core.index()].set_state(block, LineState::Modified);
            self.l0[core.index()].set_state(block, LineState::Modified);
        }
        (completion, source)
    }

    /// Serves a miss from another core's L1 (cache-to-cache transfer).
    #[allow(clippy::too_many_arguments)] // one argument per protocol actor
    fn serve_from_remote_l1(
        &mut self,
        supplier: CoreId,
        requester_node: consim_types::NodeId,
        block: BlockAddr,
        t: Cycle,
        dirty: bool,
        is_write: bool,
        sharing_writeback: bool,
    ) -> (Cycle, MissSource) {
        let snode = self.layout.core_node(supplier);
        let home = self.directory.home_of(block);
        let fwd = self.noc.send(&Packet::control(home, snode), t);
        let access_done = fwd + self.config.machine.l1.latency;
        let data = self
            .noc
            .send(&Packet::data(snode, requester_node), access_done);

        if is_write {
            // Ownership moves wholesale; the supplier loses its copy. (For
            // dirty suppliers the directory already invalidated via
            // `outcome.invalidate`; clean suppliers may keep S only on
            // reads.)
            self.invalidate_private(supplier, block);
        } else if dirty {
            // Owner downgrades M -> S; dirty data also written back to the
            // memory controller (SGI-Origin sharing writeback), off the
            // critical path.
            self.l1[supplier.index()].set_state(block, LineState::Shared);
            self.l0[supplier.index()].set_state(block, LineState::Shared);
        }
        if sharing_writeback {
            let (mc, mcnode) = self.layout.memory_controller_of(block);
            let arrive = self.noc.send(&Packet::data(snode, mcnode), access_done);
            self.reserve_memory(mc, arrive);
        }
        let source = if dirty {
            MissSource::RemoteL1Dirty
        } else {
            MissSource::RemoteL1Clean
        };
        (data, source)
    }

    /// Serves a miss from the LLC (local bank, then nearest remote bank)
    /// or, failing both, from memory.
    fn serve_from_llc_or_memory(
        &mut self,
        core: CoreId,
        cnode: consim_types::NodeId,
        block: BlockAddr,
        t: Cycle,
        is_write: bool,
    ) -> (Cycle, MissSource) {
        let llc_latency = self.config.machine.llc.latency;
        let memory_latency = self.config.machine.memory_latency;
        let home = self.directory.home_of(block);
        let my_bank = self.config.machine.bank_of_core(core);
        // A core's own LLC bank is physically distributed across its group
        // (the paper's uniform 6-cycle L2), so the access point is the
        // requester's node; only *remote* banks cost a mesh traversal.
        let bnode = cnode;
        let at_bank = self.noc.send(&Packet::control(home, bnode), t);
        let probed = at_bank + llc_latency;

        if self.llc[my_bank.index()].access(block).is_some() {
            let data = self.noc.send(&Packet::data(bnode, cnode), probed);
            if is_write {
                // The writer's L1 copy becomes the only valid one.
                self.invalidate_llc_copies(block);
            }
            return (data, MissSource::LocalLlc);
        }

        // Nearest other bank holding the block.
        let remote = (0..self.llc.len())
            .filter(|&b| b != my_bank.index() && self.llc[b].contains(block))
            .min_by_key(|&b| {
                self.layout
                    .mesh()
                    .hops(self.layout.bank_node(BankId::new(b)), cnode)
            });
        if let Some(rb) = remote {
            let rnode = self.layout.bank_node(BankId::new(rb));
            let fwd = self.noc.send(&Packet::control(bnode, rnode), probed);
            let served = fwd + llc_latency;
            let data = self.noc.send(&Packet::data(rnode, cnode), served);
            let was_dirty = self.llc[rb]
                .probe(block)
                .map(LineState::is_dirty)
                .unwrap_or(false);
            if is_write {
                self.invalidate_llc_copies(block);
            } else {
                if was_dirty {
                    // Downgrade: push the dirty data to memory so clean
                    // copies can proliferate.
                    self.llc[rb].set_state(block, LineState::Shared);
                    let (mc, mcnode) = self.layout.memory_controller_of(block);
                    let arrive = self.noc.send(&Packet::data(rnode, mcnode), served);
                    self.reserve_memory(mc, arrive);
                }
                // Replicate into the requester's bank.
                self.fill_llc(my_bank, block, LineState::Shared, served);
            }
            let source = if was_dirty {
                MissSource::RemoteLlcDirty
            } else {
                MissSource::RemoteLlcClean
            };
            return (data, source);
        }

        // Memory: queue at the controller, then pay the DRAM latency.
        let (mc, mcnode) = self.layout.memory_controller_of(block);
        let to_mc = self.noc.send(&Packet::control(bnode, mcnode), probed);
        let service = self.reserve_memory(mc, to_mc);
        let fetched = service + memory_latency;
        let data = self.noc.send(&Packet::data(mcnode, cnode), fetched);
        if !is_write {
            self.fill_llc(my_bank, block, LineState::Shared, fetched);
        }
        (data, MissSource::Memory)
    }

    /// Installs a block into a core's L1 (and L0), handling the eviction.
    fn fill_l1(&mut self, core: CoreId, block: BlockAddr, state: LineState, now: Cycle) {
        if let Some(victim) = self.l1[core.index()].insert(block, state) {
            // Keep L0 inclusive.
            self.l0[core.index()].invalidate(victim.block);
            self.directory.evict(core, victim.block);
            if victim.state.is_dirty() {
                // Dirty victims write back into the local LLC bank, which is
                // distributed across the core's group (local delivery).
                let bank = self.config.machine.bank_of_core(core);
                let cnode = self.layout.core_node(core);
                self.noc.send(&Packet::data(cnode, cnode), now);
                self.fill_llc(bank, victim.block, LineState::Modified, now);
            }
        }
        self.fill_l0(core, block, state);
    }

    /// Mirrors a block into L0 (strictly inclusive in L1; evictions are
    /// silent because L0 state mirrors L1).
    fn fill_l0(&mut self, core: CoreId, block: BlockAddr, state: LineState) {
        self.l0[core.index()].insert(block, state);
    }

    /// Installs a block into an LLC bank, pushing dirty victims to memory.
    fn fill_llc(&mut self, bank: BankId, block: BlockAddr, state: LineState, now: Cycle) {
        if let Some(victim) = self.llc[bank.index()].insert(block, state) {
            if victim.state.is_dirty() {
                let bnode = self.layout.bank_node(bank);
                let (mc, mcnode) = self.layout.memory_controller_of(victim.block);
                let arrive = self.noc.send(&Packet::data(bnode, mcnode), now);
                self.reserve_memory(mc, arrive);
            }
        }
    }

    /// Recomputes the thread-to-core mapping with a fresh random stream
    /// (one context-switch epoch). Threads migrate; their cached data stays
    /// behind on the old cores and must be re-fetched (or transferred
    /// cache-to-cache) from the new ones.
    fn reschedule(&mut self) {
        self.resched_epoch += 1;
        let rng = SimRng::from_seed(self.config.seed)
            .derive_parts("resched/epoch", &[self.resched_epoch]);
        let vm_threads: Vec<usize> = self.config.workloads.iter().map(|w| w.threads).collect();
        if let Ok(placement) = place(self.config.policy, &self.config.machine, &vm_threads, &rng) {
            self.core_thread = vec![None; self.config.machine.num_cores];
            for (thread, core) in placement.iter() {
                self.core_thread[core.index()] = Some(thread);
            }
            self.placement = placement;
        }
    }

    /// Pre-fills each VM's LLC banks with its hottest blocks (the paper's
    /// warmed-checkpoint methodology). Each VM receives a share of each of
    /// its banks proportional to how many of the bank's cores it owns;
    /// blocks are inserted coldest-first so the hottest end up
    /// most-recently-used.
    fn prewarm_llc_banks(&mut self, observer: &mut Option<&mut dyn StepObserver>) {
        let machine = self.config.machine.clone();
        let per_bank_capacity = machine.llc_bank_geometry().num_lines();
        for vm in 0..self.config.workloads.len() {
            // Count this VM's threads per bank.
            let mut share = vec![0usize; machine.llc_banks()];
            for (thread, core) in self.placement.iter() {
                if thread.vm.index() == vm {
                    share[machine.bank_of_core(core).index()] += 1;
                }
            }
            let quotas: Vec<usize> = share
                .iter()
                .map(|&threads| per_bank_capacity * threads / machine.cores_per_bank())
                .collect();
            let total: usize = quotas.iter().sum();
            if total == 0 {
                continue;
            }
            let warm = self.generators[vm].warm_set(total);
            // Distribute hottest-first across the VM's banks round-robin,
            // then insert each bank's list in reverse (hottest becomes MRU).
            let mut per_bank: Vec<Vec<consim_types::BlockAddr>> =
                quotas.iter().map(|&q| Vec::with_capacity(q)).collect();
            let mut bank_cursor = 0usize;
            for block in warm {
                // Next bank with remaining quota.
                let mut placed = false;
                for off in 0..per_bank.len() {
                    let b = (bank_cursor + off) % per_bank.len();
                    if per_bank[b].len() < quotas[b] {
                        per_bank[b].push(block);
                        bank_cursor = b + 1;
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    break;
                }
            }
            for (b, blocks) in per_bank.into_iter().enumerate() {
                for block in blocks.into_iter().rev() {
                    self.llc[b].insert(block, LineState::Shared);
                    if let Some(obs) = observer.as_deref_mut() {
                        obs.on_llc_prewarm(BankId::new(b), block);
                    }
                }
            }
        }
        for bank in &mut self.llc {
            bank.reset_stats();
        }
    }

    /// Occupies a memory-controller service slot for one cache-line access
    /// starting no earlier than `ready`; returns when service begins.
    fn reserve_memory(&mut self, mc: consim_types::MemCtrlId, ready: Cycle) -> Cycle {
        let occupancy = self.config.machine.memory_occupancy.max(1);
        self.reserve_memory_slot(mc, ready, occupancy)
    }

    /// Occupies a *directory-entry* service slot: an 8-byte entry read costs
    /// a quarter of a cache-line transfer's bandwidth.
    fn reserve_directory_refill(&mut self, mc: consim_types::MemCtrlId, ready: Cycle) -> Cycle {
        let occupancy = (self.config.machine.memory_occupancy / 4).max(1);
        self.reserve_memory_slot(mc, ready, occupancy)
    }

    fn reserve_memory_slot(
        &mut self,
        mc: consim_types::MemCtrlId,
        ready: Cycle,
        occupancy: u64,
    ) -> Cycle {
        let prune_before = ready.raw().saturating_sub(200_000);
        let start =
            self.memory_controllers[mc.index()].reserve(ready.raw(), occupancy, prune_before);
        Cycle::new(start)
    }

    /// Removes a block from a core's private hierarchy (coherence
    /// invalidation or ownership transfer).
    fn invalidate_private(&mut self, core: CoreId, block: BlockAddr) {
        self.l1[core.index()].invalidate(block);
        self.l0[core.index()].invalidate(block);
    }

    /// Drops every LLC copy of a block (a writer took exclusive ownership).
    fn invalidate_llc_copies(&mut self, block: BlockAddr) {
        for bank in &mut self.llc {
            bank.invalidate(block);
        }
    }
}

/// Rebinds pending issue events after a reschedule that changed which cores
/// are occupied (possible under [`SchedulingPolicy::Random`]): events on
/// vacated cores are reassigned — earliest times first — to the cores that
/// became occupied, in ascending core order. Events on cores that stayed
/// occupied are untouched, so deterministic policies keep their exact
/// pre-existing schedule.
fn remap_core_events(
    heap: &mut BinaryHeap<Reverse<(u64, usize)>>,
    occupied_before: &[bool],
    core_thread: &[Option<GlobalThreadId>],
) {
    let mut kept: Vec<(u64, usize)> = Vec::with_capacity(heap.len());
    let mut orphaned: Vec<u64> = Vec::new();
    for Reverse((time, core)) in heap.drain() {
        if core_thread[core].is_some() {
            kept.push((time, core));
        } else {
            orphaned.push(time);
        }
    }
    orphaned.sort_unstable();
    let fresh_cores = (0..core_thread.len())
        .filter(|&core| core_thread[core].is_some() && !occupied_before[core]);
    heap.extend(kept.into_iter().map(Reverse));
    heap.extend(orphaned.into_iter().zip(fresh_cores).map(Reverse));
}

#[cfg(test)]
mod tests {
    use super::*;
    use consim_types::config::SharingDegree;
    use consim_workload::{WorkloadKind, WorkloadProfileBuilder};

    fn tiny_profile() -> WorkloadProfile {
        WorkloadProfileBuilder::new("tiny")
            .footprint_blocks(4_000)
            .shared_fraction(0.5)
            .shared_access_prob(0.5)
            .shared_write_prob(0.1)
            .build()
            .unwrap()
    }

    fn quick_config(
        sharing: SharingDegree,
        policy: SchedulingPolicy,
        vms: usize,
    ) -> SimulationConfig {
        let mut b = SimulationConfig::builder();
        b.machine(MachineConfig::paper_default().with_sharing(sharing))
            .policy(policy)
            .refs_per_vm(3_000)
            .warmup_refs_per_vm(1_000)
            .seed(7);
        for _ in 0..vms {
            b.workload(tiny_profile());
        }
        b.build().unwrap()
    }

    #[test]
    fn builder_rejects_empty_and_oversubscribed() {
        assert!(SimulationConfig::builder().build().is_err());
        let mut b = SimulationConfig::builder();
        for _ in 0..5 {
            b.workload(tiny_profile());
        }
        assert!(b.build().is_err(), "20 threads on 16 cores");
    }

    #[test]
    fn single_vm_runs_to_completion() {
        let cfg = quick_config(SharingDegree::SharedBy(4), SchedulingPolicy::Affinity, 1);
        let out = Simulation::new(cfg).unwrap().run().unwrap();
        let m = &out.vm_metrics[0];
        assert_eq!(m.refs, 3_000);
        assert!(m.completion.is_some());
        assert!(m.runtime_cycles() > 0);
        assert!(m.l0_hits + m.l1_hits + m.l1_misses == m.refs);
    }

    #[test]
    fn full_mix_all_vms_complete() {
        let cfg = quick_config(SharingDegree::SharedBy(4), SchedulingPolicy::RoundRobin, 4);
        let out = Simulation::new(cfg).unwrap().run().unwrap();
        assert_eq!(out.vm_metrics.len(), 4);
        for m in &out.vm_metrics {
            assert!(m.refs >= 3_000);
            assert!(m.completion.is_some());
        }
        assert!(out.measured_cycles > 0);
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let cfg = quick_config(SharingDegree::SharedBy(4), SchedulingPolicy::Random, 4);
            let out = Simulation::new(cfg).unwrap().run().unwrap();
            (
                out.measured_cycles,
                out.vm_metrics
                    .iter()
                    .map(|m| m.l1_misses)
                    .collect::<Vec<_>>(),
                out.vm_metrics
                    .iter()
                    .map(|m| m.runtime_cycles())
                    .collect::<Vec<_>>(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut cfg = quick_config(SharingDegree::SharedBy(4), SchedulingPolicy::Affinity, 2);
            cfg.seed = seed;
            Simulation::new(cfg).unwrap().run().unwrap().measured_cycles
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn miss_accounting_balances() {
        let cfg = quick_config(SharingDegree::SharedBy(4), SchedulingPolicy::Affinity, 2);
        let out = Simulation::new(cfg).unwrap().run().unwrap();
        for m in &out.vm_metrics {
            let classified = m.c2c_l1_clean
                + m.c2c_l1_dirty
                + m.llc_local_hits
                + m.llc_remote_clean
                + m.llc_remote_dirty
                + m.memory_fetches
                + m.upgrades;
            assert_eq!(classified, m.l1_misses, "{m}");
            assert!(m.llc_miss_rate() <= 1.0);
            // Any real miss takes at least the LLC latency.
            if m.l1_misses > m.upgrades {
                assert!(m.mean_miss_latency() > 6.0);
            }
        }
    }

    #[test]
    fn isolation_idles_unused_cores() {
        let cfg = quick_config(SharingDegree::SharedBy(4), SchedulingPolicy::Affinity, 1);
        let sim = Simulation::new(cfg).unwrap();
        let bound: usize = sim.core_thread.iter().flatten().count();
        assert_eq!(bound, 4);
        let out = sim.run().unwrap();
        // Only one VM's metrics exist and they account for every reference.
        assert_eq!(out.vm_metrics.len(), 1);
    }

    #[test]
    fn sharing_produces_c2c_transfers() {
        let profile = WorkloadProfileBuilder::new("sharey")
            .footprint_blocks(2_000)
            .shared_fraction(0.8)
            .shared_access_prob(0.9)
            .shared_write_prob(0.2)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.machine(MachineConfig::paper_default().with_sharing(SharingDegree::Private))
            .policy(SchedulingPolicy::RoundRobin)
            .workload(profile)
            .refs_per_vm(5_000)
            .warmup_refs_per_vm(2_000)
            .seed(3);
        let out = Simulation::new(b.build().unwrap()).unwrap().run().unwrap();
        let m = &out.vm_metrics[0];
        assert!(
            m.cache_to_cache() > 0,
            "sharing workload must transfer: {m}"
        );
        assert!(
            m.c2c_l1_dirty > 0,
            "shared writes must produce dirty transfers"
        );
    }

    #[test]
    fn private_config_replicates_more_than_shared() {
        let run = |sharing| {
            let cfg = quick_config(sharing, SchedulingPolicy::RoundRobin, 4);
            let out = Simulation::new(cfg).unwrap().run().unwrap();
            out.replication.replicated_fraction()
        };
        let private = run(SharingDegree::Private);
        let shared = run(SharingDegree::FullyShared);
        assert_eq!(shared, 0.0, "a single bank cannot replicate");
        assert!(private > 0.0, "private banks must replicate shared data");
    }

    #[test]
    fn occupancy_shares_are_sane() {
        let cfg = quick_config(SharingDegree::SharedBy(4), SchedulingPolicy::RoundRobin, 4);
        let out = Simulation::new(cfg).unwrap().run().unwrap();
        for bank in &out.occupancy.share {
            let total: f64 = bank.iter().sum();
            assert!(total <= 1.0 + 1e-9, "bank over-occupied: {total}");
        }
    }

    #[test]
    fn upgrades_happen_for_read_then_write() {
        let profile = WorkloadProfileBuilder::new("rw")
            .footprint_blocks(1_000)
            .shared_fraction(0.9)
            .shared_access_prob(0.95)
            .shared_write_prob(0.3)
            .shared_zipf(0.9)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.workload(profile)
            .refs_per_vm(5_000)
            .warmup_refs_per_vm(0)
            .seed(1);
        let out = Simulation::new(b.build().unwrap()).unwrap().run().unwrap();
        assert!(out.vm_metrics[0].upgrades > 0);
    }

    #[test]
    fn protocol_stats_exposed() {
        let cfg = quick_config(SharingDegree::SharedBy(4), SchedulingPolicy::Affinity, 2);
        let out = Simulation::new(cfg).unwrap().run().unwrap();
        assert!(out.protocol.requests > 0);
        assert!(out.noc.packets > 0);
        assert!(out.dircache_hit_rate > 0.0 && out.dircache_hit_rate <= 1.0);
    }

    #[test]
    fn footprint_tracking_approaches_profile() {
        let profile = WorkloadProfileBuilder::new("fp")
            .footprint_blocks(1_000)
            .shared_zipf(0.05)
            .private_zipf(0.05)
            .recent_reuse_prob(0.0)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.workload(profile)
            .refs_per_vm(30_000)
            .warmup_refs_per_vm(0)
            .track_footprint(true)
            .seed(5);
        let out = Simulation::new(b.build().unwrap()).unwrap().run().unwrap();
        let fp = out.vm_metrics[0].footprint_blocks();
        assert!(fp > 900, "footprint {fp} of 1000");
    }

    #[test]
    fn kinds_run_end_to_end_smoke() {
        // Short smoke run of every real profile to catch integration panics.
        for kind in WorkloadKind::PAPER_SET {
            let mut b = SimulationConfig::builder();
            b.workload(kind.profile())
                .refs_per_vm(1_000)
                .warmup_refs_per_vm(200)
                .seed(2);
            let out = Simulation::new(b.build().unwrap()).unwrap().run().unwrap();
            assert!(out.vm_metrics[0].refs >= 1_000, "{kind}");
        }
    }
}

#[cfg(test)]
mod prewarm_tests {
    use super::*;
    use consim_types::config::SharingDegree;
    use consim_workload::WorkloadProfileBuilder;

    fn config(prewarm: bool) -> SimulationConfig {
        let profile = WorkloadProfileBuilder::new("pw")
            .footprint_blocks(60_000)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.machine(MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4)))
            .policy(SchedulingPolicy::Affinity)
            .workload(profile)
            .refs_per_vm(5_000)
            .warmup_refs_per_vm(0)
            .prewarm_llc(prewarm)
            .seed(4);
        b.build().unwrap()
    }

    #[test]
    fn prewarming_cuts_cold_memory_fetches() {
        let cold = Simulation::new(config(false)).unwrap().run().unwrap();
        let warm = Simulation::new(config(true)).unwrap().run().unwrap();
        assert!(
            warm.vm_metrics[0].memory_fetches < cold.vm_metrics[0].memory_fetches / 2,
            "prewarm {} vs cold {}",
            warm.vm_metrics[0].memory_fetches,
            cold.vm_metrics[0].memory_fetches
        );
    }

    #[test]
    fn prewarm_respects_bank_ownership() {
        // With affinity, the single VM owns exactly one bank; prewarmed
        // lines must all land there.
        let sim = {
            let mut s = Simulation::new(config(true)).unwrap();
            s.prewarm_llc_banks(&mut None);
            s
        };
        let occupied: Vec<usize> = sim.llc.iter().map(|b| b.occupancy()).collect();
        let nonempty = occupied.iter().filter(|&&o| o > 0).count();
        assert_eq!(nonempty, 1, "occupancies: {occupied:?}");
    }

    #[test]
    fn prewarm_is_deterministic() {
        let a = Simulation::new(config(true)).unwrap().run().unwrap();
        let b = Simulation::new(config(true)).unwrap().run().unwrap();
        assert_eq!(a.measured_cycles, b.measured_cycles);
    }
}

#[cfg(test)]
mod resched_tests {
    use super::*;
    use consim_types::config::SharingDegree;
    use consim_workload::WorkloadKind;

    fn config(policy: SchedulingPolicy, resched: Option<u64>) -> SimulationConfig {
        let mut b = SimulationConfig::builder();
        b.machine(MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4)))
            .policy(policy)
            .refs_per_vm(6_000)
            .warmup_refs_per_vm(1_000)
            .seed(11);
        if let Some(interval) = resched {
            b.reschedule_every(interval);
        }
        for _ in 0..4 {
            b.workload(WorkloadKind::TpcH.profile());
        }
        b.build().unwrap()
    }

    #[test]
    fn zero_interval_is_rejected() {
        let mut b = SimulationConfig::builder();
        b.workload(WorkloadKind::TpcH.profile()).reschedule_every(0);
        assert!(b.build().is_err());
    }

    #[test]
    fn deterministic_policies_are_unaffected_by_rescheduling() {
        // Affinity recomputes to the identical placement each epoch, so
        // dynamic rescheduling must be a behavioral no-op.
        let stat = Simulation::new(config(SchedulingPolicy::Affinity, None))
            .unwrap()
            .run()
            .unwrap();
        let dynamic = Simulation::new(config(SchedulingPolicy::Affinity, Some(50_000)))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(stat.measured_cycles, dynamic.measured_cycles);
    }

    #[test]
    fn random_rescheduling_survives_partial_occupancy() {
        // Regression (found by consim-check differential fuzzing): with
        // Random placement and fewer threads than cores, a reschedule can
        // change *which* cores are occupied. Pending issue events must be
        // remapped onto the newly occupied cores — previously this panicked
        // ("scheduled cores have threads") when a vacated core's event was
        // popped.
        let mut b = SimulationConfig::builder();
        b.machine(MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4)))
            .policy(SchedulingPolicy::Random)
            .refs_per_vm(3_000)
            .warmup_refs_per_vm(500)
            .reschedule_every(1_000)
            .seed(3);
        for _ in 0..2 {
            b.workload(WorkloadKind::TpcH.profile());
        }
        let out = Simulation::new(b.build().unwrap()).unwrap().run().unwrap();
        for m in &out.vm_metrics {
            assert_eq!(m.l0_hits + m.l1_hits + m.l1_misses, m.refs);
        }
    }

    #[test]
    fn random_rescheduling_costs_performance() {
        // Frequent random migration abandons warm caches; the machine must
        // get slower, not faster, and metrics stay balanced.
        let stat = Simulation::new(config(SchedulingPolicy::Random, None))
            .unwrap()
            .run()
            .unwrap();
        let churn = Simulation::new(config(SchedulingPolicy::Random, Some(20_000)))
            .unwrap()
            .run()
            .unwrap();
        assert!(
            churn.measured_cycles > stat.measured_cycles,
            "churn {} vs static {}",
            churn.measured_cycles,
            stat.measured_cycles
        );
        for m in &churn.vm_metrics {
            assert_eq!(m.l0_hits + m.l1_hits + m.l1_misses, m.refs);
        }
    }
}
