//! The discrete-event consolidation simulator.
//!
//! One [`Simulation`] models one experimental run: a machine configuration,
//! a scheduling policy, and a list of workload instances (VMs). In-order
//! cores alternate compute gaps and memory references; every reference
//! walks the hierarchy L0 → L1 → directory → {remote L1 (cache-to-cache),
//! LLC bank, remote LLC bank, memory}, with each protocol message routed —
//! and contended — on the mesh.
//!
//! ## Timing model
//!
//! Events are (ready-cycle, core) pairs in a binary heap; cores have one
//! outstanding miss each (matching the paper's in-order Niagara-like cores),
//! so a core's next event is scheduled at its previous access's completion.
//! Protocol state (caches, directory) is updated when the transaction is
//! processed; concurrent transactions to the same block are serialized in
//! event order. This transaction-level approximation preserves the paper's
//! measured quantities (miss classification, latency composition,
//! contention) without flit-level cost — see DESIGN.md §1.
//!
//! ## Protocol walk of one L1 miss
//!
//! 1. Control packet to the block's home directory node (striped by block
//!    address); directory-cache miss adds one off-chip latency.
//! 2. Directory classifies the request ([`consim_coherence::Directory`]):
//!    * dirty in a remote L1 → 3-hop forward, dirty cache-to-cache transfer
//!      (plus a sharing writeback to the memory controller, off the
//!      critical path);
//!    * clean in remote L1s → clean transfer from the *nearest* sharer;
//!    * otherwise → the requester's own LLC bank; on a bank miss, the
//!      nearest *other* bank holding the block serves it (and the local
//!      bank is filled — replication); on a global LLC miss, memory.
//! 3. Writes additionally invalidate every other sharer and wait for the
//!    slowest acknowledgement.
//! 4. Fills may evict: dirty L1 victims write back into the local LLC bank;
//!    dirty LLC victims write back to memory.

use crate::churn::{epoch_draws, ChurnAction, ChurnDecision, ChurnState, ChurnStats};
use crate::hierarchy::HierarchyCtx;
use crate::machine::Layout;
use crate::metrics::{OccupancySnapshot, ReplicationSnapshot, VmMetrics};
use crate::observe::{AccessStep, StepObserver, StepOutcome};
use crate::qos::QosController;
use crate::snapshot;
use consim_cache::{LineState, ReplacementPolicy, SetAssocCache};
use consim_coherence::{AccessKind, Directory, DirectoryCache, ProtocolStats};
use consim_noc::{ContentionModel, NocStats, ReservationCalendar};
use consim_sched::{place, Placement, SchedulingPolicy};
use consim_snap::{
    restore_items, save_items, SectionBuf, SectionReader, SnapReader, SnapWriter, Snapshot,
};
use consim_trace::{EventClass, TraceEvent, TraceSink};
use consim_types::config::{LlcPartitioning, MachineConfig};
use consim_types::{
    Address, BankId, BlockAddr, CoreId, Cycle, GlobalThreadId, SimError, SimRng, SnapshotErrorKind,
    ThreadId, VmId,
};
use consim_workload::{MemRef, WorkloadGenerator, WorkloadProfile};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io::{Read, Write};
use std::sync::Arc;

/// How a simulation reports trace events.
///
/// Construct with [`TraceConfig::new`] and adjust the knobs; attach via
/// [`SimulationConfigBuilder::trace`].
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Destination for every event the simulation emits.
    pub sink: Arc<dyn TraceSink>,
    /// Cycle interval between time-series snapshots ([`TraceEvent::Epoch`],
    /// [`TraceEvent::EpochMachine`]) during measurement.
    pub epoch_cycles: u64,
    /// Record every Nth directory protocol action as a
    /// [`TraceEvent::Coherence`] event (volume control for the per-miss hot
    /// path).
    pub coherence_sample: u64,
}

impl TraceConfig {
    /// A configuration with the default epoch interval (100k cycles) and
    /// coherence sampling rate (1 in 64).
    pub fn new(sink: Arc<dyn TraceSink>) -> Self {
        Self {
            sink,
            epoch_cycles: 100_000,
            coherence_sample: 64,
        }
    }
}

/// Everything needed to run one simulation.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// The hardware.
    pub machine: MachineConfig,
    /// Thread-to-core policy.
    pub policy: SchedulingPolicy,
    /// One profile per VM, in VM order.
    pub workloads: Vec<WorkloadProfile>,
    /// Root seed; all randomness derives from it.
    pub seed: u64,
    /// Measured references per VM (the transaction quota).
    pub refs_per_vm: u64,
    /// Warmup references per VM before measurement starts.
    pub warmup_refs_per_vm: u64,
    /// Whether to track unique blocks per VM (Table II footprints).
    pub track_footprint: bool,
    /// Replacement policy of the LLC banks (the paper's machine uses
    /// vanilla LRU; the others support the DESIGN.md ablation study).
    pub llc_replacement: ReplacementPolicy,
    /// Pre-fill the LLC banks with each workload's hottest blocks before
    /// warmup, mimicking the paper's warmed checkpoints. Shortens the
    /// warmup needed to reach steady state.
    pub prewarm_llc: bool,
    /// Re-place threads onto cores every this many cycles (the paper's
    /// future-work "dynamically adjusting assignments in response to
    /// context switches"). `None` (the default) matches the paper's static
    /// binding. Each epoch re-runs the scheduling policy with a fresh
    /// random stream, so migrating threads abandon their warm caches.
    pub reschedule_every: Option<u64>,
    /// Cross-check the redundant counter paths at end of run and fail with
    /// [`SimError::AuditFailed`] on drift (see [`crate::audit`]). The audit
    /// also always runs in debug builds; it never changes results.
    pub audit: bool,
    /// Optional observability sink and its volume knobs. `None` (the
    /// default) emits nothing and costs one branch per check site.
    pub trace: Option<TraceConfig>,
}

impl SimulationConfig {
    /// Starts building a configuration.
    pub fn builder() -> SimulationConfigBuilder {
        SimulationConfigBuilder::new()
    }
}

/// Builder for [`SimulationConfig`] ([C-BUILDER]).
#[derive(Debug, Clone)]
pub struct SimulationConfigBuilder {
    machine: MachineConfig,
    policy: SchedulingPolicy,
    workloads: Vec<WorkloadProfile>,
    seed: u64,
    refs_per_vm: u64,
    warmup_refs_per_vm: u64,
    track_footprint: bool,
    llc_replacement: ReplacementPolicy,
    prewarm_llc: bool,
    reschedule_every: Option<u64>,
    audit: bool,
    trace: Option<TraceConfig>,
}

impl SimulationConfigBuilder {
    /// Starts from the paper's machine, affinity policy, no workloads.
    pub fn new() -> Self {
        Self {
            machine: MachineConfig::paper_default(),
            policy: SchedulingPolicy::Affinity,
            workloads: Vec::new(),
            seed: 0,
            refs_per_vm: 100_000,
            warmup_refs_per_vm: 50_000,
            track_footprint: false,
            llc_replacement: ReplacementPolicy::Lru,
            prewarm_llc: false,
            reschedule_every: None,
            audit: false,
            trace: None,
        }
    }

    /// Sets the machine.
    pub fn machine(&mut self, machine: MachineConfig) -> &mut Self {
        self.machine = machine;
        self
    }

    /// Sets the scheduling policy.
    pub fn policy(&mut self, policy: SchedulingPolicy) -> &mut Self {
        self.policy = policy;
        self
    }

    /// Adds one workload instance (VM).
    pub fn workload(&mut self, profile: WorkloadProfile) -> &mut Self {
        self.workloads.push(profile);
        self
    }

    /// Adds `count` instances of the same profile.
    pub fn workload_instances(&mut self, profile: &WorkloadProfile, count: usize) -> &mut Self {
        for _ in 0..count {
            self.workloads.push(profile.clone());
        }
        self
    }

    /// Sets the root seed.
    pub fn seed(&mut self, seed: u64) -> &mut Self {
        self.seed = seed;
        self
    }

    /// Sets the measured reference quota per VM.
    pub fn refs_per_vm(&mut self, refs: u64) -> &mut Self {
        self.refs_per_vm = refs;
        self
    }

    /// Sets the warmup reference quota per VM.
    pub fn warmup_refs_per_vm(&mut self, refs: u64) -> &mut Self {
        self.warmup_refs_per_vm = refs;
        self
    }

    /// Enables or disables footprint tracking.
    pub fn track_footprint(&mut self, on: bool) -> &mut Self {
        self.track_footprint = on;
        self
    }

    /// Sets the LLC banks' replacement policy (ablation knob; the paper's
    /// machine uses LRU).
    pub fn llc_replacement(&mut self, policy: ReplacementPolicy) -> &mut Self {
        self.llc_replacement = policy;
        self
    }

    /// Enables checkpoint-style LLC prewarming (see
    /// [`SimulationConfig::prewarm_llc`]).
    pub fn prewarm_llc(&mut self, on: bool) -> &mut Self {
        self.prewarm_llc = on;
        self
    }

    /// Enables periodic dynamic rescheduling (see
    /// [`SimulationConfig::reschedule_every`]).
    pub fn reschedule_every(&mut self, cycles: u64) -> &mut Self {
        self.reschedule_every = Some(cycles);
        self
    }

    /// Enables the end-of-run counter audit (see
    /// [`SimulationConfig::audit`]).
    pub fn audit(&mut self, on: bool) -> &mut Self {
        self.audit = on;
        self
    }

    /// Attaches a trace configuration (see [`SimulationConfig::trace`]).
    pub fn trace(&mut self, trace: TraceConfig) -> &mut Self {
        self.trace = Some(trace);
        self
    }

    /// Validates and builds.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if no workloads were added, a
    /// profile is invalid, the quota is zero, or the mix oversubscribes the
    /// machine.
    pub fn build(&self) -> Result<SimulationConfig, SimError> {
        if self.workloads.is_empty() {
            return Err(SimError::invalid_config(
                "at least one workload is required",
            ));
        }
        if self.refs_per_vm == 0 {
            return Err(SimError::invalid_config("refs_per_vm must be nonzero"));
        }
        for w in &self.workloads {
            w.validate()?;
        }
        if self.reschedule_every == Some(0) {
            return Err(SimError::invalid_config(
                "reschedule interval must be nonzero",
            ));
        }
        if let Some(churn) = &self.machine.churn {
            // `MachineConfig::with_churn` bypasses the machine builder, so
            // the policy's machine-independent invariants are re-checked
            // here along with everything that needs the VM count.
            churn.validate()?;
            let n = self.workloads.len();
            if churn.arrival_permille.len() != n || churn.departure_permille.len() != n {
                return Err(SimError::invalid_config(format!(
                    "churn rate vectors cover {} arrival / {} departure VMs, the mix has {n}",
                    churn.arrival_permille.len(),
                    churn.departure_permille.len(),
                )));
            }
            if churn.initial_active > n {
                return Err(SimError::invalid_config(format!(
                    "churn initial_active {} exceeds the {n}-VM mix",
                    churn.initial_active
                )));
            }
            if churn.min_active > n {
                return Err(SimError::invalid_config(format!(
                    "churn min_active {} exceeds the {n}-VM mix",
                    churn.min_active
                )));
            }
            if n == 1 && churn.departure_permille[0] > 0 {
                return Err(SimError::invalid_config(
                    "churn cannot schedule the departure of the last VM of a single-VM mix",
                ));
            }
            if let Some(targets) = &churn.migration_targets {
                if let Some(&bad) = targets.iter().find(|&&t| t >= self.machine.num_cores) {
                    return Err(SimError::invalid_config(format!(
                        "churn migration target core {bad} is outside the {}-core machine",
                        self.machine.num_cores
                    )));
                }
            }
            if self.reschedule_every.is_some() {
                return Err(SimError::invalid_config(
                    "churn and periodic rescheduling cannot be combined: both \
                     rebind threads to cores and their placements would race",
                ));
            }
        }
        let threads: usize = self.workloads.iter().map(|w| w.threads).sum();
        if threads > self.machine.num_cores {
            return Err(SimError::invalid_config(format!(
                "{threads} threads oversubscribe {} cores",
                self.machine.num_cores
            )));
        }
        // Way partitioning is only fully checkable once the VM count is
        // known: quota entries must match the VM list one-to-one and every
        // VM needs at least one way. (Bank associativity equals the
        // aggregate LLC associativity — banking splits sets, not ways.)
        self.machine
            .llc_partitioning
            .way_masks(self.machine.llc.associativity, self.workloads.len())?;
        Ok(SimulationConfig {
            machine: self.machine.clone(),
            policy: self.policy,
            workloads: self.workloads.clone(),
            seed: self.seed,
            refs_per_vm: self.refs_per_vm,
            warmup_refs_per_vm: self.warmup_refs_per_vm,
            track_footprint: self.track_footprint,
            llc_replacement: self.llc_replacement,
            prewarm_llc: self.prewarm_llc,
            reschedule_every: self.reschedule_every,
            audit: self.audit,
            trace: self.trace.clone(),
        })
    }
}

impl Default for SimulationConfigBuilder {
    fn default() -> Self {
        Self::new()
    }
}

/// Results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimulationOutcome {
    /// Per-VM metrics over the measurement interval.
    pub vm_metrics: Vec<VmMetrics>,
    /// LLC replication snapshot at measurement end (Fig. 12).
    pub replication: ReplicationSnapshot,
    /// LLC occupancy snapshot at measurement end (Fig. 13).
    pub occupancy: OccupancySnapshot,
    /// Interconnect statistics over the measurement interval.
    pub noc: NocStats,
    /// Directory protocol statistics over the measurement interval.
    pub protocol: ProtocolStats,
    /// The placement used.
    pub placement: Placement,
    /// Cycles from measurement start until the last VM completed.
    pub measured_cycles: u64,
    /// Mean directory-cache hit rate across home nodes.
    pub dircache_hit_rate: f64,
    /// Mean utilization across mesh links over the measurement interval.
    pub noc_mean_utilization: f64,
    /// Utilization of the busiest mesh link.
    pub noc_peak_utilization: f64,
    /// Lifecycle counters over the measurement interval, present iff the
    /// machine carries a [`consim_types::ChurnPolicy`].
    pub churn: Option<ChurnStats>,
}

/// Whether [`Simulation::advance`] left the run mid-flight or finished it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The access budget ran out before measurement completed; call
    /// [`Simulation::advance`] again (optionally after a
    /// [`Simulation::checkpoint`]).
    Running,
    /// Every VM met its measured quota; call [`Simulation::finish`].
    Complete,
}

/// Which phase of the run the engine is executing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PhaseKind {
    /// Cache-warming references; statistics are discarded at the end.
    Warmup,
    /// The measured interval.
    Measure,
}

/// References prefetched per thread in one generator call. Large enough to
/// amortize the per-call dispatch, small enough that the engine never holds
/// more than a scheduling quantum of lookahead per thread.
const REF_BATCH: usize = 64;

/// One thread's prefetched references (see
/// [`WorkloadGenerator::fill_batch`]): a refill buffer plus the cursor of
/// the next reference to issue. The generator's RNG stream has advanced
/// past everything in here, so checkpoints serialize the unissued tail.
#[derive(Debug, Default)]
struct RefBatch {
    refs: Vec<MemRef>,
    cursor: usize,
}

/// The event loop's mutable position within a run. Everything here is
/// serialized verbatim into checkpoints, so a resumed run re-enters the loop
/// with bit-identical state.
#[derive(Debug)]
struct RunState {
    phase: PhaseKind,
    /// Cycle at which this phase started.
    start: Cycle,
    /// References issued per VM this phase (quota progress).
    vm_refs: Vec<u64>,
    /// Whether each VM has met its quota.
    vm_done: Vec<bool>,
    /// VMs still short of quota.
    remaining: usize,
    /// Pending (ready-cycle, core) issue events. Keys are unique per core,
    /// so serializing the heap sorted and rebuilding it on restore
    /// reproduces the exact pop order.
    heap: BinaryHeap<Reverse<(u64, usize)>>,
    /// Completion cycle of the latest quota-meeting reference.
    last_completion: Cycle,
    /// Next dynamic-rescheduling boundary, if enabled.
    next_resched: Option<u64>,
    /// Next epoch-snapshot boundary (`u64::MAX` when epoch tracing is off).
    next_epoch: u64,
    /// Next dynamic-QoS repartition boundary (`u64::MAX` outside the
    /// measurement phase or when the machine is not
    /// `LlcPartitioning::Dynamic`).
    next_repart: u64,
    /// Next VM-churn boundary (`u64::MAX` outside the measurement phase or
    /// when the machine carries no churn policy).
    next_churn: u64,
    /// Measurement finished; only [`Simulation::finish`] remains.
    done: bool,
}

/// One experimental run of the consolidation machine.
///
/// See the [module docs](self) for the timing model; see
/// [`SimulationConfig`] for the knobs.
#[derive(Debug)]
pub struct Simulation {
    config: SimulationConfig,
    layout: Layout,
    placement: Placement,
    /// `core_thread[core]` = the thread bound there, if any.
    core_thread: Vec<Option<GlobalThreadId>>,
    l0: Vec<SetAssocCache>,
    l1: Vec<SetAssocCache>,
    llc: Vec<SetAssocCache>,
    directory: Directory,
    dircaches: Vec<DirectoryCache>,
    noc: ContentionModel,
    /// One service calendar per memory controller (bandwidth model).
    memory_controllers: Vec<ReservationCalendar>,
    generators: Vec<WorkloadGenerator>,
    /// First batch slot of each VM's threads (prefix sums of thread
    /// counts); slot = `thread_base[vm] + thread_index`.
    thread_base: Vec<usize>,
    /// Per-global-thread prefetched reference batches. Keyed by thread —
    /// not core — so dynamic rescheduling migrates a thread's lookahead
    /// with it.
    batches: Vec<RefBatch>,
    gap_rngs: Vec<SimRng>,
    metrics: Vec<VmMetrics>,
    /// Per-VM allowed-way bitmasks for LLC allocation, when
    /// [`consim_types::config::LlcPartitioning`] is active. Under
    /// `LlcPartitioning::Dynamic` these are live state: the QoS controller
    /// rewrites them at repartition boundaries and every subsequent fill
    /// reads the new masks.
    llc_way_masks: Option<Vec<u64>>,
    /// The dynamic repartitioning controller, present iff the machine is
    /// configured with `LlcPartitioning::Dynamic`.
    qos: Option<QosController>,
    /// The VM lifecycle state machine, present iff the machine carries a
    /// [`consim_types::ChurnPolicy`]. Under churn, `core_thread` and
    /// `placement` are live state rewritten at churn boundaries.
    churn: Option<ChurnState>,
    /// Epoch counter for dynamic rescheduling.
    resched_epoch: u64,
    /// In-flight event-loop state; `None` before the first
    /// [`Simulation::advance`] call.
    run_state: Option<RunState>,
    /// The LLC prewarm pass has run (or was skipped); guards against
    /// double-prewarming on resume.
    prewarmed: bool,
}

impl Simulation {
    /// Builds the machine and places the mix.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] if the layout or placement fails.
    pub fn new(config: SimulationConfig) -> Result<Self, SimError> {
        let machine = &config.machine;
        let layout = Layout::new(machine)?;
        let root = SimRng::from_seed(config.seed);
        let vm_threads: Vec<usize> = config.workloads.iter().map(|w| w.threads).collect();
        let placement = place(config.policy, machine, &vm_threads, &root)?;

        // Under a churn policy the initial placement still covers every VM
        // (spawn feasibility: Σ threads ≤ cores), but only the initial
        // population is actually bound; the rest arrive through the birth
        // process onto whatever cores are free then.
        let churn = machine
            .churn
            .as_ref()
            .map(|policy| ChurnState::new(policy.clone(), config.workloads.len()));
        let mut core_thread = vec![None; machine.num_cores];
        for (thread, core) in placement.iter() {
            if churn
                .as_ref()
                .is_none_or(|ch| ch.is_active(thread.vm.index()))
            {
                core_thread[core.index()] = Some(thread);
            }
        }

        let l0 = (0..machine.num_cores)
            .map(|_| SetAssocCache::new(machine.l0, ReplacementPolicy::Lru))
            .collect();
        let l1 = (0..machine.num_cores)
            .map(|_| SetAssocCache::new(machine.l1, ReplacementPolicy::Lru))
            .collect();
        let bank_geom = machine.llc_bank_geometry();
        let llc = (0..machine.llc_banks())
            .map(|_| SetAssocCache::new(bank_geom, config.llc_replacement))
            .collect();
        let llc_way_masks = machine
            .llc_partitioning
            .way_masks(bank_geom.associativity, config.workloads.len())?;
        let qos = match &machine.llc_partitioning {
            LlcPartitioning::Dynamic(policy) => Some(QosController::new(
                policy.clone(),
                bank_geom.associativity,
                config.workloads.len(),
                (machine.llc_banks() * bank_geom.num_lines()) as u64,
            )),
            _ => None,
        };
        let mut directory = Directory::new(machine.num_cores);
        let dircaches = (0..machine.num_cores)
            .map(|_| DirectoryCache::new(machine.directory_cache_entries))
            .collect::<Result<Vec<_>, _>>()?;
        let mut noc = ContentionModel::new(
            *layout.mesh(),
            machine.link_latency,
            machine.router_pipeline,
        );
        if let Some(trace) = &config.trace {
            directory.set_trace_sink(Some(trace.sink.clone()), trace.coherence_sample);
            if trace.sink.wants(EventClass::NocStall) {
                noc.set_trace_sink(Some(trace.sink.clone()));
            }
        }
        let memory_controllers =
            vec![ReservationCalendar::default(); machine.num_memory_controllers];
        let generators = config
            .workloads
            .iter()
            .enumerate()
            .map(|(vm, profile)| WorkloadGenerator::new(VmId::new(vm), profile, &root))
            .collect();
        let gap_rngs = (0..machine.num_cores)
            .map(|c| root.derive_parts("core/gaps", &[c as u64]))
            .collect();
        let mut thread_base = Vec::with_capacity(config.workloads.len());
        let mut total_threads = 0usize;
        for w in &config.workloads {
            thread_base.push(total_threads);
            total_threads += w.threads;
        }
        let batches = (0..total_threads).map(|_| RefBatch::default()).collect();
        let metrics = config
            .workloads
            .iter()
            .map(|_| VmMetrics::default())
            .collect();

        Ok(Self {
            config,
            layout,
            placement,
            core_thread,
            l0,
            l1,
            llc,
            directory,
            dircaches,
            noc,
            memory_controllers,
            generators,
            thread_base,
            batches,
            gap_rngs,
            metrics,
            llc_way_masks,
            qos,
            churn,
            resched_epoch: 0,
            run_state: None,
            prewarmed: false,
        })
    }

    /// The placement in use.
    pub fn placement(&self) -> &Placement {
        &self.placement
    }

    /// Runs warmup then measurement; consumes the simulation.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invariant`] if internal protocol invariants break
    /// (a simulator bug).
    pub fn run(self) -> Result<SimulationOutcome, SimError> {
        self.run_with(None)
    }

    /// Like [`Simulation::run`], but notifies `observer` of every simulated
    /// memory reference (see [`crate::observe`]). Passing `None` is exactly
    /// `run`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invariant`] if internal protocol invariants break
    /// (a simulator bug).
    pub fn run_with(
        mut self,
        mut observer: Option<&mut dyn StepObserver>,
    ) -> Result<SimulationOutcome, SimError> {
        loop {
            let status = match &mut observer {
                Some(obs) => self.advance(u64::MAX, Some(&mut **obs))?,
                None => self.advance(u64::MAX, None)?,
            };
            if status == RunStatus::Complete {
                break;
            }
        }
        self.finish()
    }

    /// Advances the run by at most `max_accesses` memory references
    /// (counting warmup), starting it if necessary. Returns
    /// [`RunStatus::Running`] when the budget ran out first — the simulation
    /// is then at a well-defined boundary and can be checkpointed with
    /// [`Simulation::checkpoint`] — and [`RunStatus::Complete`] once every
    /// VM has met its measured quota.
    ///
    /// `run()` is exactly `advance(u64::MAX, None)` followed by
    /// [`Simulation::finish`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invariant`] if internal protocol invariants break
    /// (a simulator bug).
    pub fn advance(
        &mut self,
        max_accesses: u64,
        mut observer: Option<&mut dyn StepObserver>,
    ) -> Result<RunStatus, SimError> {
        self.ensure_started(&mut observer);
        let mut budget = max_accesses;
        loop {
            let state = self.run_state.as_ref().expect("run started above");
            if state.done {
                return Ok(RunStatus::Complete);
            }
            let phase = state.phase;
            let (quota, measuring) = match phase {
                PhaseKind::Warmup => (self.config.warmup_refs_per_vm, false),
                PhaseKind::Measure => (self.config.refs_per_vm, true),
            };
            // Epoch snapshots and QoS repartitioning only apply to the
            // measurement phase. The loop is monomorphized over whether
            // either is on: even a never-taken branch whose body calls
            // through a trace-sink vtable pessimizes the hot loop's code
            // generation by ~20%, so the plain instantiation must contain
            // no boundary code at all.
            let epoch_trace = self.epoch_trace_for(phase);
            let qos_active = phase == PhaseKind::Measure && self.qos.is_some();
            let churn_active = phase == PhaseKind::Measure && self.churn.is_some();
            let mut st = self.run_state.take().expect("run started above");
            let result = if epoch_trace.is_some() || qos_active || churn_active {
                self.phase_loop::<true>(
                    &mut st,
                    quota,
                    measuring,
                    epoch_trace,
                    &mut budget,
                    &mut observer,
                )
            } else {
                self.phase_loop::<false>(
                    &mut st,
                    quota,
                    measuring,
                    None,
                    &mut budget,
                    &mut observer,
                )
            };
            self.run_state = Some(st);
            result?;
            let st = self.run_state.as_mut().expect("restored above");
            if st.remaining > 0 {
                return Ok(RunStatus::Running);
            }
            if measuring {
                st.done = true;
                return Ok(RunStatus::Complete);
            }
            // Warmup finished: clear statistics (cache and directory
            // *contents* persist) and enter measurement where warmup left
            // the clock.
            let clock = st.last_completion;
            self.reset_measurement_state();
            self.begin_measurement(clock);
            if budget == 0 {
                return Ok(RunStatus::Running);
            }
        }
    }

    /// Computes the paper's end-of-run outcome. The run must be complete
    /// ([`Simulation::advance`] returned [`RunStatus::Complete`]).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Invariant`] if called before the run completed,
    /// or [`SimError::AuditFailed`] if the end-of-run counter audit detects
    /// drift.
    pub fn finish(mut self) -> Result<SimulationOutcome, SimError> {
        let (measure_start, end) = match &self.run_state {
            Some(st) if st.done => (st.start, st.last_completion),
            _ => {
                return Err(SimError::invariant(
                    "finish() called before the run completed",
                ))
            }
        };
        let num_vms = self.config.workloads.len();

        debug_assert!(self.directory.check_invariants().is_ok());

        let replication = ReplicationSnapshot::capture(&self.llc);
        let occupancy = OccupancySnapshot::capture(&self.llc, num_vms);
        let dircache_hit_rate = self
            .dircaches
            .iter()
            .map(DirectoryCache::hit_rate)
            .sum::<f64>()
            / self.dircaches.len() as f64;
        // Completion cycles were recorded as absolute times; rebase onto the
        // measurement interval.
        for m in &mut self.metrics {
            if let Some(c) = m.completion {
                m.completion = Some(Cycle::new(c.saturating_since(measure_start)));
            }
        }
        let elapsed = end.raw().max(1);
        let seed = self.config.seed;
        let audit = self.config.audit;
        let trace = self.config.trace.clone();
        let outcome = SimulationOutcome {
            noc_mean_utilization: self.noc.mean_link_utilization(elapsed),
            noc_peak_utilization: self.noc.peak_link_utilization(elapsed),
            vm_metrics: self.metrics,
            replication,
            occupancy,
            noc: self.noc.stats().clone(),
            protocol: *self.directory.stats(),
            placement: self.placement,
            measured_cycles: end.saturating_since(measure_start),
            dircache_hit_rate,
            churn: self.churn.as_ref().map(|c| *c.stats()),
        };
        if let Some(trace) = &trace {
            trace.sink.record(&TraceEvent::RunCompleted {
                seed,
                measured_cycles: outcome.measured_cycles,
                l1_misses: outcome.vm_metrics.iter().map(|m| m.l1_misses).sum(),
                memory_fetches: outcome.vm_metrics.iter().map(|m| m.memory_fetches).sum(),
            });
        }
        // Debug builds always audit; release builds opt in via the config.
        if audit || cfg!(debug_assertions) {
            let checks = crate::audit::audit_outcome(&outcome)?;
            if let Some(trace) = &trace {
                trace.sink.record(&TraceEvent::AuditPassed { seed, checks });
            }
        }
        Ok(outcome)
    }

    /// Performs the one-time run setup on the first [`Simulation::advance`]
    /// call: LLC prewarming (if configured and not already done, e.g. via
    /// [`Simulation::prewarm`] or a resumed checkpoint) and entering the
    /// first phase.
    fn ensure_started(&mut self, observer: &mut Option<&mut dyn StepObserver>) {
        if self.run_state.is_some() {
            return;
        }
        if self.config.prewarm_llc && !self.prewarmed {
            self.prewarm_llc_banks(observer);
        }
        self.prewarmed = true;
        if self.config.warmup_refs_per_vm > 0 {
            self.run_state = Some(self.start_phase(PhaseKind::Warmup, Cycle::ZERO));
        } else {
            self.begin_measurement(Cycle::ZERO);
        }
    }

    /// Enters the measurement phase at `clock` and announces it on the
    /// trace. The QoS controller (if any) restarts here too: measurement
    /// counters reset at this boundary, and its epoch clock is anchored at
    /// the phase start.
    fn begin_measurement(&mut self, clock: Cycle) {
        if let Some(qos) = &mut self.qos {
            qos.begin(clock.raw());
            self.llc_way_masks = Some(qos.masks());
        }
        // Initially-absent VMs carry no measured quota; stamp their
        // completion at the phase start (rebased to zero in `finish`).
        if let Some(churn) = &self.churn {
            for vm in 0..self.config.workloads.len() {
                if !churn.is_active(vm) {
                    self.metrics[vm].completion = Some(clock);
                }
            }
        }
        if let Some(trace) = &self.config.trace {
            trace.sink.record(&TraceEvent::RunStarted {
                seed: self.config.seed,
                vms: self.config.workloads.len() as u32,
                refs_per_vm: self.config.refs_per_vm,
                warmup_refs_per_vm: self.config.warmup_refs_per_vm,
            });
        }
        self.run_state = Some(self.start_phase(PhaseKind::Measure, clock));
    }

    /// Fresh event-loop state for one phase: every VM at zero progress,
    /// every occupied core with an issue event at `start`.
    fn start_phase(&self, phase: PhaseKind, start: Cycle) -> RunState {
        let num_vms = self.config.workloads.len();
        let mut heap = BinaryHeap::new();
        for core in 0..self.config.machine.num_cores {
            if self.core_thread[core].is_some() {
                heap.push(Reverse((start.raw(), core)));
            }
        }
        let epoch_interval = self
            .epoch_trace_for(phase)
            .map(|t| t.epoch_cycles.max(1))
            .unwrap_or(u64::MAX);
        let repart_interval = match (&self.qos, phase) {
            (Some(qos), PhaseKind::Measure) => qos.interval(),
            _ => u64::MAX,
        };
        let churn_interval = match (&self.churn, phase) {
            (Some(churn), PhaseKind::Measure) => churn.interval(),
            _ => u64::MAX,
        };
        // Initially-absent VMs (under churn) issue nothing until they
        // arrive, so they carry no quota: they start the phase done. VMs
        // that arrive later generate load but never join the quota race.
        let mut vm_done = vec![false; num_vms];
        if let Some(churn) = &self.churn {
            for (vm, done) in vm_done.iter_mut().enumerate() {
                *done = !churn.is_active(vm);
            }
        }
        let remaining = vm_done.iter().filter(|&&d| !d).count();
        RunState {
            phase,
            start,
            vm_refs: vec![0; num_vms],
            vm_done,
            remaining,
            heap,
            last_completion: start,
            next_resched: self
                .config
                .reschedule_every
                .map(|interval| start.raw() + interval),
            next_epoch: start.raw().saturating_add(epoch_interval),
            next_repart: start.raw().saturating_add(repart_interval),
            next_churn: start.raw().saturating_add(churn_interval),
            done: false,
        }
    }

    /// The trace configuration for epoch snapshots, when the given phase
    /// should emit them.
    fn epoch_trace_for(&self, phase: PhaseKind) -> Option<TraceConfig> {
        self.config
            .trace
            .clone()
            .filter(|t| phase == PhaseKind::Measure && t.sink.wants(EventClass::Epoch))
    }

    /// The event loop of one phase: every VM issues `quota` references;
    /// cores of finished VMs keep running so the machine stays at capacity
    /// (the paper restarts finished workloads). Consumes up to `budget`
    /// references, leaving the phase resumable in `st` when the budget runs
    /// out first. `EPOCHS` compiles the boundary checks (epoch snapshots
    /// and QoS repartitioning) in or out; `epoch_trace` may only be `Some`
    /// under `EPOCHS` (a QoS-only run passes `EPOCHS = true` with no
    /// trace — its `next_epoch` is `u64::MAX`, so the snapshot branch
    /// never fires).
    fn phase_loop<const EPOCHS: bool>(
        &mut self,
        st: &mut RunState,
        quota: u64,
        measuring: bool,
        epoch_trace: Option<TraceConfig>,
        budget: &mut u64,
        observer: &mut Option<&mut dyn StepObserver>,
    ) -> Result<(), SimError> {
        let mean_gap = self.config.machine.instructions_per_memory_op;
        let track_footprint = self.config.track_footprint;
        let epoch_interval = if EPOCHS {
            epoch_trace
                .as_ref()
                .map(|t| t.epoch_cycles.max(1))
                .unwrap_or(u64::MAX)
        } else {
            u64::MAX
        };
        let mut budget_left = *budget;
        // The carry slot: when the reference just issued completes before
        // every pending event, its (ready-cycle, core) pair never enters the
        // heap — the next iteration consumes it directly. Pop order is
        // unchanged (tuples are unique: one event per core), so this skips
        // the push/pop pair on the common L0/L1-hit streak without touching
        // serialization. Any live carry is pushed back before the loop
        // exits, so `RunState` — and every checkpoint — is bit-identical to
        // the carry-free formulation.
        let mut carry: Option<(u64, usize)> = None;
        let result = loop {
            if budget_left == 0 {
                break Ok(());
            }
            let (now, core) = match carry.take() {
                Some(event) => event,
                None => match st.heap.pop() {
                    Some(Reverse(event)) => event,
                    None => {
                        break Err(SimError::invariant(
                            "event heap drained with unfinished VMs",
                        ))
                    }
                },
            };
            if EPOCHS && now >= st.next_epoch {
                st.next_epoch = self.epoch_boundary(
                    &epoch_trace,
                    now,
                    st.start.raw(),
                    st.next_epoch,
                    epoch_interval,
                );
            }
            if EPOCHS && now >= st.next_repart {
                st.next_repart = self.repartition_boundary(now, st.next_repart, observer);
            }
            if EPOCHS && now >= st.next_churn {
                // The boundary may retire this very core: push the popped
                // event back so the churn handler sees (and can remap or
                // drop) every pending event, then re-pop without consuming
                // budget — no reference was issued.
                st.heap.push(Reverse((now, core)));
                self.churn_boundary(now, st, observer);
                if st.remaining == 0 {
                    break Ok(());
                }
                continue;
            }
            if let (Some(at), Some(interval)) = (st.next_resched, self.config.reschedule_every) {
                if now >= at {
                    let occupied_before: Vec<bool> =
                        self.core_thread.iter().map(Option::is_some).collect();
                    self.reschedule();
                    st.next_resched = Some(at + interval);
                    if self
                        .core_thread
                        .iter()
                        .map(Option::is_some)
                        .ne(occupied_before.iter().copied())
                    {
                        // The set of occupied cores changed (possible under
                        // Random placement): pending events on vacated cores
                        // would orphan their issue slots and newly occupied
                        // cores would starve. Remap, then re-pop (without
                        // consuming budget — no reference was issued).
                        st.heap.push(Reverse((now, core)));
                        remap_core_events(&mut st.heap, &occupied_before, &self.core_thread);
                        continue;
                    }
                }
            }
            let thread = self.core_thread[core].expect("scheduled cores have threads");
            let vm = thread.vm;
            let gap = self.gap_rngs[core].positive_with_mean(mean_gap);
            let issue = Cycle::new(now) + gap;
            let mem_ref = self.next_batched_ref(thread);
            if measuring {
                let m = &mut self.metrics[vm.index()];
                m.instructions += gap + 1;
                m.refs += 1;
                if mem_ref.is_write {
                    m.writes += 1;
                }
                if track_footprint {
                    m.footprint.insert(mem_ref.address.block().raw());
                }
            }
            let done = self.access(CoreId::new(core), vm, &mem_ref, issue, measuring, observer);
            budget_left -= 1;

            if !st.vm_done[vm.index()] {
                st.vm_refs[vm.index()] += 1;
                if st.vm_refs[vm.index()] >= quota {
                    st.vm_done[vm.index()] = true;
                    st.remaining -= 1;
                    st.last_completion = st.last_completion.max(done);
                    if measuring {
                        self.metrics[vm.index()].completion = Some(done);
                    }
                    if st.remaining == 0 {
                        break Ok(());
                    }
                }
            }
            let event = (done.raw(), core);
            match st.heap.peek() {
                Some(&Reverse(top)) if event > top => st.heap.push(Reverse(event)),
                _ => carry = Some(event),
            }
        };
        if let Some(event) = carry {
            st.heap.push(Reverse(event));
        }
        *budget = budget_left;
        result
    }

    /// Handles one epoch boundary: advances `next_epoch` past `now` and
    /// emits the snapshot events. Kept out of line so the event loop only
    /// pays one comparison per event — inlining this body into `phase`
    /// measurably pessimizes the hot loop's code generation.
    #[cold]
    #[inline(never)]
    fn epoch_boundary(
        &self,
        trace: &Option<TraceConfig>,
        now: u64,
        measure_start: u64,
        mut next_epoch: u64,
        interval: u64,
    ) -> u64 {
        while now >= next_epoch {
            next_epoch = next_epoch.saturating_add(interval);
        }
        let trace = trace.as_ref().expect("epoch trace enabled");
        self.emit_epoch_snapshot(trace.sink.as_ref(), now, measure_start);
        next_epoch
    }

    /// Handles one dynamic-QoS repartition boundary: advances `next_repart`
    /// past `now` (one decision per crossing, even if the event gap spanned
    /// several intervals), gathers the controller inputs, runs the decision,
    /// and swaps the live way masks when it moved ways. Out of line and cold
    /// for the same reason as [`Simulation::epoch_boundary`].
    #[cold]
    #[inline(never)]
    fn repartition_boundary(
        &mut self,
        now: u64,
        mut next_repart: u64,
        observer: &mut Option<&mut dyn StepObserver>,
    ) -> u64 {
        let interval = self
            .qos
            .as_ref()
            .expect("repartition boundary without a QoS controller")
            .interval();
        while now >= next_repart {
            next_repart = next_repart.saturating_add(interval);
        }
        // Controller inputs: cumulative measurement counters plus the LLC's
        // actual per-VM line counts (which may transiently exceed quotas
        // while out-of-mask lines age out).
        let num_vms = self.config.workloads.len();
        let mut refs = Vec::with_capacity(num_vms);
        let mut l1_misses = Vec::with_capacity(num_vms);
        let mut memory_fetches = Vec::with_capacity(num_vms);
        for m in &self.metrics {
            refs.push(m.refs);
            l1_misses.push(m.l1_misses);
            memory_fetches.push(m.memory_fetches);
        }
        let mut occupancy = vec![0u64; num_vms];
        for bank in &self.llc {
            for line in bank.lines() {
                occupancy[line.block.vm().index()] += 1;
            }
        }
        let qos = self.qos.as_mut().expect("checked above");
        let decision = qos.decide(now, &refs, &l1_misses, &memory_fetches, &occupancy);
        if decision.changed() {
            self.llc_way_masks = Some(decision.new_masks.clone());
            if let Some(trace) = &self.config.trace {
                if trace.sink.wants(EventClass::Epoch) {
                    trace.sink.record(&TraceEvent::Repartition {
                        cycle: decision.at,
                        epoch: decision.epoch,
                        old_masks: decision.old_masks.clone(),
                        new_masks: decision.new_masks.clone(),
                        classes: decision.classes.iter().map(|c| c.label()).collect(),
                        ewma_milli: decision.ewma_milli.clone(),
                    });
                }
            }
        }
        // Every decision — changed or not — reaches the observer so an
        // external controller mirror advances its EWMA state in lockstep.
        if let Some(obs) = observer.as_deref_mut() {
            obs.on_repartition(&decision);
        }
        next_repart
    }

    /// Handles one VM-churn boundary: advances `next_churn` past `now` (one
    /// decision per crossing, even if the event gap spanned several
    /// intervals), transcribes the epoch's unconditional draws, then decides
    /// and applies at most one lifecycle action per VM in id order. Out of
    /// line and cold for the same reason as [`Simulation::epoch_boundary`]:
    /// a churn-free run must pay nothing but the `next_churn` comparison.
    ///
    /// The caller has pushed its popped event back into the heap, so every
    /// pending issue event is visible here for retirement filtering and
    /// migration remapping.
    #[cold]
    #[inline(never)]
    fn churn_boundary(
        &mut self,
        now: u64,
        st: &mut RunState,
        observer: &mut Option<&mut dyn StepObserver>,
    ) {
        let mut churn = self
            .churn
            .take()
            .expect("churn boundary without churn state");
        let interval = churn.interval();
        while now >= st.next_churn {
            st.next_churn = st.next_churn.saturating_add(interval);
        }
        let num_vms = self.config.workloads.len();
        let epoch = churn.next_epoch();
        let draws = epoch_draws(self.config.seed, epoch, num_vms);
        let mut actions = Vec::new();
        for (vm, &(d1, d2)) in draws.iter().enumerate() {
            let threads = self.config.workloads[vm].threads;
            if !churn.is_active(vm) {
                // Birth: arrive iff the draw clears the rate and the machine
                // has room right now; otherwise the VM waits for the next
                // boundary's draw.
                if d1 < churn.policy().arrival_permille[vm] {
                    let free = self.free_cores(None);
                    if free.len() >= threads {
                        let cores = free[..threads].to_vec();
                        self.spawn_vm(vm, &cores, &mut churn, now, st);
                        actions.push(ChurnAction::Spawn { vm, cores });
                    }
                }
                continue;
            }
            // Death: departures below the population floor are skipped, not
            // deferred — the draw is consumed either way.
            if d1 < churn.policy().departure_permille[vm]
                && churn.active_count() > churn.policy().min_active
            {
                let (cores, l0, l1, writebacks) = self.retire_vm(vm, now, st);
                churn.set_active(vm, false);
                let stats = churn.stats_mut();
                stats.retires += 1;
                stats.l0_lines_invalidated += l0;
                stats.l1_lines_invalidated += l1;
                stats.writebacks += writebacks.len() as u64;
                actions.push(ChurnAction::Retire {
                    vm,
                    cores,
                    invalidated_l0: l0,
                    invalidated_l1: l1,
                    writebacks,
                });
                continue;
            }
            // Live migration: needs a disjoint set of free (target) cores.
            if d2 < churn.policy().migration_permille {
                let free = self.free_cores(churn.policy().migration_targets.as_deref());
                if free.len() >= threads {
                    let to = free[..threads].to_vec();
                    let (from, l0, l1, writebacks) = self.migrate_vm(vm, &to, st);
                    let stats = churn.stats_mut();
                    stats.migrations += 1;
                    stats.l0_lines_invalidated += l0;
                    stats.l1_lines_invalidated += l1;
                    stats.writebacks += writebacks.len() as u64;
                    actions.push(ChurnAction::Migrate {
                        vm,
                        from,
                        to,
                        invalidated_l0: l0,
                        invalidated_l1: l1,
                        writebacks,
                    });
                }
            }
        }
        let decision = ChurnDecision {
            epoch,
            at: now,
            draws,
            actions,
            active_after: churn.active().to_vec(),
        };
        if let Some(trace) = &self.config.trace {
            if trace.sink.wants(EventClass::Lifecycle) {
                for action in &decision.actions {
                    trace.sink.record(&churn_trace_event(now, action));
                }
            }
        }
        // Every boundary — actions or not — reaches the observer so an
        // external lifecycle mirror advances its draw stream in lockstep.
        if let Some(obs) = observer.as_deref_mut() {
            obs.on_churn(&decision);
        }
        self.churn = Some(churn);
    }

    /// Free cores in ascending order, optionally intersected with a
    /// migration-target allowlist.
    fn free_cores(&self, targets: Option<&[usize]>) -> Vec<usize> {
        (0..self.config.machine.num_cores)
            .filter(|&core| self.core_thread[core].is_none())
            .filter(|&core| targets.is_none_or(|t| t.contains(&core)))
            .collect()
    }

    /// Binds an arriving VM to `cores` (thread `t` on `cores[t]`), restarts
    /// its generator on the arrival's derived stream, and seeds its issue
    /// events at `now`. The VM generates load from here on but never joins
    /// the quota race (its `vm_done` flag stays wherever it is).
    fn spawn_vm(
        &mut self,
        vm: usize,
        cores: &[usize],
        churn: &mut ChurnState,
        now: u64,
        st: &mut RunState,
    ) {
        churn.set_active(vm, true);
        churn.stats_mut().spawns += 1;
        let arrival = churn.next_arrival(vm);
        let root = SimRng::from_seed(self.config.seed);
        self.generators[vm].respawn(&root, arrival);
        let base = self.thread_base[vm];
        for t in 0..cores.len() {
            let batch = &mut self.batches[base + t];
            batch.refs.clear();
            batch.cursor = 0;
        }
        for (t, &core) in cores.iter().enumerate() {
            let thread = GlobalThreadId::new(VmId::new(vm), ThreadId::new(t));
            self.core_thread[core] = Some(thread);
            self.placement.rebind(thread, CoreId::new(core));
            st.heap.push(Reverse((now, core)));
        }
    }

    /// Retires an active VM: scrubs its private caches, releases its cores,
    /// drops its pending issue events, and — if it had not met its quota —
    /// completes it at the boundary (a departed VM has issued all the
    /// references it ever will).
    ///
    /// Returns (released cores ascending, L0 invalidations, L1
    /// invalidations, content-only writebacks in scrub order).
    fn retire_vm(
        &mut self,
        vm: usize,
        now: u64,
        st: &mut RunState,
    ) -> (Vec<usize>, u64, u64, Vec<(BankId, BlockAddr)>) {
        let cores = self.cores_of_vm(vm);
        let (l0, l1, writebacks) = self.scrub_private_caches(vm, &cores);
        for &core in &cores {
            self.core_thread[core] = None;
        }
        let kept: Vec<(u64, usize)> = st
            .heap
            .drain()
            .map(|Reverse(event)| event)
            .filter(|&(_, core)| !cores.contains(&core))
            .collect();
        st.heap.extend(kept.into_iter().map(Reverse));
        if !st.vm_done[vm] {
            st.vm_done[vm] = true;
            st.remaining -= 1;
            let at = Cycle::new(now);
            st.last_completion = st.last_completion.max(at);
            if st.phase == PhaseKind::Measure {
                self.metrics[vm].completion = Some(at);
            }
        }
        (cores, l0, l1, writebacks)
    }

    /// Live-migrates an active VM onto `to`: scrubs and releases the old
    /// cores, rebinds thread `t` to `to[t]`, and remaps the VM's pending
    /// issue events (earliest ready-times onto the lowest new cores, so
    /// deterministic regardless of heap iteration order).
    ///
    /// Returns (vacated cores ascending, L0 invalidations, L1
    /// invalidations, content-only writebacks in scrub order).
    fn migrate_vm(
        &mut self,
        vm: usize,
        to: &[usize],
        st: &mut RunState,
    ) -> (Vec<usize>, u64, u64, Vec<(BankId, BlockAddr)>) {
        let from = self.cores_of_vm(vm);
        let (l0, l1, writebacks) = self.scrub_private_caches(vm, &from);
        for &core in &from {
            self.core_thread[core] = None;
        }
        for (t, &core) in to.iter().enumerate() {
            let thread = GlobalThreadId::new(VmId::new(vm), ThreadId::new(t));
            self.core_thread[core] = Some(thread);
            self.placement.rebind(thread, CoreId::new(core));
        }
        let mut kept: Vec<(u64, usize)> = Vec::with_capacity(st.heap.len());
        let mut moved: Vec<u64> = Vec::with_capacity(from.len());
        for Reverse((time, core)) in st.heap.drain() {
            if from.contains(&core) {
                moved.push(time);
            } else {
                kept.push((time, core));
            }
        }
        moved.sort_unstable();
        st.heap.extend(kept.into_iter().map(Reverse));
        st.heap
            .extend(moved.into_iter().zip(to.iter().copied()).map(Reverse));
        (from, l0, l1, writebacks)
    }

    /// Cores currently bound to `vm`'s threads, ascending.
    fn cores_of_vm(&self, vm: usize) -> Vec<usize> {
        (0..self.config.machine.num_cores)
            .filter(|&core| self.core_thread[core].is_some_and(|thread| thread.vm.index() == vm))
            .collect()
    }

    /// The churn scrub (PR-7 no-flush rule applied to private caches): for
    /// each core ascending, every L1 line — blocks ascending, the canonical
    /// order the differential oracle reproduces — is invalidated with a
    /// directory eviction hint; dirty lines are first written back
    /// *content-only* into the core's local LLC bank (untimed and uncounted:
    /// churn is a reconfiguration event, not a memory access; a displaced
    /// LLC victim drops silently, its data conceptually reaching memory).
    /// L0 follows, also blocks ascending. The VM's LLC lines stay and age
    /// out through natural replacement.
    ///
    /// Returns (L0 invalidations, L1 invalidations, writebacks in order).
    fn scrub_private_caches(
        &mut self,
        vm: usize,
        cores: &[usize],
    ) -> (u64, u64, Vec<(BankId, BlockAddr)>) {
        let mut l0_count = 0u64;
        let mut l1_count = 0u64;
        let mut writebacks = Vec::new();
        for &core in cores {
            let mut l1_lines: Vec<(BlockAddr, LineState)> = self.l1[core]
                .lines()
                .map(|line| (line.block, line.state))
                .collect();
            l1_lines.sort_unstable_by_key(|&(block, _)| block.raw());
            let bank = self.config.machine.bank_of_core(CoreId::new(core));
            for (block, state) in l1_lines {
                if state.is_dirty() {
                    match self.llc_way_masks.as_ref().map(|masks| masks[vm]) {
                        Some(mask) => {
                            self.llc[bank.index()].insert_in_ways(block, LineState::Modified, mask);
                        }
                        None => {
                            self.llc[bank.index()].insert(block, LineState::Modified);
                        }
                    }
                    writebacks.push((bank, block));
                }
                self.directory.evict(CoreId::new(core), block);
                self.l1[core].invalidate(block);
                l1_count += 1;
            }
            let mut l0_blocks: Vec<BlockAddr> =
                self.l0[core].lines().map(|line| line.block).collect();
            l0_blocks.sort_unstable_by_key(|block| block.raw());
            for block in l0_blocks {
                self.l0[core].invalidate(block);
                l0_count += 1;
            }
        }
        (l0_count, l1_count, writebacks)
    }

    /// Emits the per-VM and machine-wide time-series snapshot for one epoch
    /// boundary.
    fn emit_epoch_snapshot(&self, sink: &dyn TraceSink, cycle: u64, measure_start: u64) {
        for (vm, m) in self.metrics.iter().enumerate() {
            sink.record(&TraceEvent::Epoch {
                cycle,
                vm: vm as u32,
                refs: m.refs,
                l1_misses: m.l1_misses,
                llc_miss_rate: m.llc_miss_rate(),
                mean_miss_latency: m.mean_miss_latency(),
            });
        }
        let elapsed = cycle.saturating_sub(measure_start).max(1);
        let occupied: usize = self.llc.iter().map(SetAssocCache::occupancy).sum();
        let capacity: usize = self.llc.iter().map(SetAssocCache::capacity).sum();
        sink.record(&TraceEvent::EpochMachine {
            cycle,
            noc_mean_utilization: self.noc.mean_link_utilization(elapsed),
            noc_peak_utilization: self.noc.peak_link_utilization(elapsed),
            llc_occupancy: occupied as f64 / capacity.max(1) as f64,
        });
    }

    /// Clears statistics after warmup; cache/directory *contents* persist.
    fn reset_measurement_state(&mut self) {
        for c in self
            .l0
            .iter_mut()
            .chain(self.l1.iter_mut())
            .chain(self.llc.iter_mut())
        {
            c.reset_stats();
        }
        self.directory.reset_stats();
        self.noc.reset();
        for mc in &mut self.memory_controllers {
            *mc = ReservationCalendar::default();
        }
        for m in &mut self.metrics {
            *m = VmMetrics::default();
        }
    }

    /// The next reference of `thread`'s stream: served from the thread's
    /// prefetched batch, refilled [`REF_BATCH`] at a time when drained.
    /// Handoff-boundary references (where the batch stops) are generated
    /// one at a time at their exact issue event, so the global
    /// segment-migration order is byte-identical to unbatched generation.
    #[inline]
    fn next_batched_ref(&mut self, thread: GlobalThreadId) -> MemRef {
        let slot = self.thread_base[thread.vm.index()] + thread.thread.index();
        let batch = &mut self.batches[slot];
        if batch.cursor == batch.refs.len() {
            batch.refs.clear();
            batch.cursor = 0;
            self.generators[thread.vm.index()].fill_batch(
                thread.thread,
                &mut batch.refs,
                REF_BATCH,
            );
            if batch.refs.is_empty() {
                // A handoff access is due (or the pool is exhausted for
                // this thread): the generator resolves it now, in event
                // order.
                return self.generators[thread.vm.index()].next_ref(thread.thread);
            }
        }
        let r = batch.refs[batch.cursor];
        batch.cursor += 1;
        r
    }

    /// Simulates one reference: the private-hit fast path completes it
    /// inline; anything else walks the [`crate::hierarchy`] pipeline.
    /// Returns its completion time.
    fn access(
        &mut self,
        core: CoreId,
        vm: VmId,
        mem_ref: &MemRef,
        issue: Cycle,
        measuring: bool,
        observer: &mut Option<&mut dyn StepObserver>,
    ) -> Cycle {
        let block = mem_ref.address.block();
        let (completion, outcome) = match self.private_access(
            core.index(),
            vm,
            block,
            mem_ref.is_write,
            issue,
            measuring,
        ) {
            Ok(hit) => hit,
            Err(kind) => {
                let (completion, source) = self
                    .hierarchy_ctx()
                    .coherence_transaction(core, vm, block, kind, issue, measuring);
                (completion, StepOutcome::Miss(source))
            }
        };
        if observer.is_some() {
            self.notify_step(observer, core, vm, mem_ref, measuring, outcome);
        }
        completion
    }

    /// The L0/L1 private-hit fast path: a hit with sufficient permission
    /// completes here, touching only the issuing core's private caches and
    /// the VM's metrics — no directory, NoC, LLC, or memory-controller
    /// borrows, and no [`HierarchyCtx`] construction. Everything else
    /// (miss, or write hit on a Shared line) returns `Err` with the
    /// [`AccessKind`] the coherence slow path must resolve.
    ///
    /// This is the private-level prefix of the hierarchy walk, verbatim;
    /// the differential oracle in consim-check pins its semantics against
    /// the reference model.
    #[inline]
    fn private_access(
        &mut self,
        core: usize,
        vm: VmId,
        block: BlockAddr,
        is_write: bool,
        issue: Cycle,
        measuring: bool,
    ) -> Result<(Cycle, StepOutcome), AccessKind> {
        let l0_latency = self.config.machine.l0.latency;
        let l1_latency = self.config.machine.l1.latency;

        // L0.
        if let Some(state) = self.l0[core].access(block) {
            if !is_write || state.is_writable() {
                if is_write {
                    self.l0[core].set_state(block, LineState::Modified);
                    self.l1[core].set_state(block, LineState::Modified);
                }
                if measuring {
                    self.metrics[vm.index()].l0_hits += 1;
                }
                return Ok((issue + l0_latency, StepOutcome::L0Hit));
            }
        }
        // L1.
        if let Some(state) = self.l1[core].access(block) {
            if !is_write || state.is_writable() {
                let new_state = if is_write { LineState::Modified } else { state };
                if is_write {
                    self.l1[core].set_state(block, LineState::Modified);
                }
                // Mirror into L0 (strictly inclusive; evictions silent).
                self.l0[core].insert(block, new_state);
                if measuring {
                    self.metrics[vm.index()].l1_hits += 1;
                }
                return Ok((issue + l0_latency + l1_latency, StepOutcome::L1Hit));
            }
            // Write hit on a Shared line: upgrade.
            return Err(AccessKind::Upgrade);
        }
        Err(if is_write {
            AccessKind::Write
        } else {
            AccessKind::Read
        })
    }

    /// The per-access view of the machine handed to the hierarchy pipeline.
    /// Compiles down to a bundle of pointers; built fresh per reference so
    /// the engine keeps ownership of all state between events.
    #[inline]
    fn hierarchy_ctx(&mut self) -> HierarchyCtx<'_> {
        HierarchyCtx {
            machine: &self.config.machine,
            layout: &self.layout,
            l0: &mut self.l0,
            l1: &mut self.l1,
            llc: &mut self.llc,
            directory: &mut self.directory,
            dircaches: &mut self.dircaches,
            noc: &mut self.noc,
            memory_controllers: &mut self.memory_controllers,
            metrics: &mut self.metrics,
            llc_masks: self.llc_way_masks.as_deref(),
        }
    }

    /// Delivers one [`AccessStep`] to the attached observer. Out of line and
    /// cold: the common (unobserved) run pays only the `is_some` branch at
    /// the call sites.
    #[cold]
    #[inline(never)]
    fn notify_step(
        &self,
        observer: &mut Option<&mut dyn StepObserver>,
        core: CoreId,
        vm: VmId,
        mem_ref: &MemRef,
        measuring: bool,
        outcome: StepOutcome,
    ) {
        let observer = observer.as_deref_mut().expect("observer checked by caller");
        let block = mem_ref.address.block();
        let (dir_owner, dir_sharers) = self.directory.state_of(block);
        observer.on_step(&AccessStep {
            core,
            vm,
            thread: mem_ref.thread,
            block,
            is_write: mem_ref.is_write,
            measuring,
            outcome,
            dir_owner,
            dir_sharers,
        });
    }

    /// Recomputes the thread-to-core mapping with a fresh random stream
    /// (one context-switch epoch). Threads migrate; their cached data stays
    /// behind on the old cores and must be re-fetched (or transferred
    /// cache-to-cache) from the new ones.
    fn reschedule(&mut self) {
        self.resched_epoch += 1;
        self.apply_resched_epoch(self.resched_epoch);
    }

    /// Applies the placement of one rescheduling epoch. Each epoch's random
    /// stream derives from the root seed and the epoch number alone, so a
    /// resumed simulation replays epochs `1..=resched_epoch` to land on the
    /// exact placement the checkpointed run was using.
    fn apply_resched_epoch(&mut self, epoch: u64) {
        let rng = SimRng::from_seed(self.config.seed).derive_parts("resched/epoch", &[epoch]);
        let vm_threads: Vec<usize> = self.config.workloads.iter().map(|w| w.threads).collect();
        if let Ok(placement) = place(self.config.policy, &self.config.machine, &vm_threads, &rng) {
            self.core_thread = vec![None; self.config.machine.num_cores];
            for (thread, core) in placement.iter() {
                self.core_thread[core.index()] = Some(thread);
            }
            self.placement = placement;
        }
    }

    /// Pre-fills each VM's LLC banks with its hottest blocks (the paper's
    /// warmed-checkpoint methodology). Each VM receives a share of each of
    /// its banks proportional to how many of the bank's cores it owns;
    /// blocks are inserted coldest-first so the hottest end up
    /// most-recently-used.
    fn prewarm_llc_banks(&mut self, observer: &mut Option<&mut dyn StepObserver>) {
        let machine = self.config.machine.clone();
        let per_bank_capacity = machine.llc_bank_geometry().num_lines();
        for vm in 0..self.config.workloads.len() {
            // Initially-absent VMs arrive with cold caches; nothing to warm.
            if self.churn.as_ref().is_some_and(|c| !c.is_active(vm)) {
                continue;
            }
            // Prewarm fills respect the VM's way mask, like demand fills.
            let mask = self.llc_way_masks.as_ref().map(|masks| masks[vm]);
            // Count this VM's threads per bank.
            let mut share = vec![0usize; machine.llc_banks()];
            for (thread, core) in self.placement.iter() {
                if thread.vm.index() == vm {
                    share[machine.bank_of_core(core).index()] += 1;
                }
            }
            let quotas: Vec<usize> = share
                .iter()
                .map(|&threads| per_bank_capacity * threads / machine.cores_per_bank())
                .collect();
            let total: usize = quotas.iter().sum();
            if total == 0 {
                continue;
            }
            let warm = self.generators[vm].warm_set(total);
            // Distribute hottest-first across the VM's banks round-robin,
            // then insert each bank's list in reverse (hottest becomes MRU).
            let mut per_bank: Vec<Vec<consim_types::BlockAddr>> =
                quotas.iter().map(|&q| Vec::with_capacity(q)).collect();
            let mut bank_cursor = 0usize;
            for block in warm {
                // Next bank with remaining quota.
                let mut placed = false;
                for off in 0..per_bank.len() {
                    let b = (bank_cursor + off) % per_bank.len();
                    if per_bank[b].len() < quotas[b] {
                        per_bank[b].push(block);
                        bank_cursor = b + 1;
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    break;
                }
            }
            for (b, blocks) in per_bank.into_iter().enumerate() {
                for block in blocks.into_iter().rev() {
                    match mask {
                        Some(m) => {
                            self.llc[b].insert_in_ways(block, LineState::Shared, m);
                        }
                        None => {
                            self.llc[b].insert(block, LineState::Shared);
                        }
                    }
                    if let Some(obs) = observer.as_deref_mut() {
                        obs.on_llc_prewarm(BankId::new(b), block);
                    }
                }
            }
        }
        for bank in &mut self.llc {
            bank.reset_stats();
        }
    }

    /// Runs the configured LLC prewarm pass now instead of on the first
    /// [`Simulation::advance`] call. Idempotent; a no-op when
    /// [`SimulationConfig::prewarm_llc`] is off.
    pub fn prewarm(&mut self) {
        if self.config.prewarm_llc && !self.prewarmed {
            self.prewarm_llc_banks(&mut None);
        }
        self.prewarmed = true;
    }

    /// Attaches (or replaces) the trace configuration on a live simulation.
    /// Checkpoints exclude the process-local trace sink, so a resumed run
    /// calls this to keep tracing; the directory's sampling countdown is
    /// preserved across the gap, so the resumed run samples the same
    /// protocol actions the uninterrupted run would have.
    pub fn set_trace(&mut self, trace: TraceConfig) {
        self.directory
            .set_trace_sink(Some(trace.sink.clone()), trace.coherence_sample);
        if trace.sink.wants(EventClass::NocStall) {
            self.noc.set_trace_sink(Some(trace.sink.clone()));
        }
        self.config.trace = Some(trace);
    }

    /// Replaces the run parameters of a not-yet-started simulation with
    /// those of `config`, which must agree with the current configuration on
    /// every field that shaped construction and prewarming (machine, policy,
    /// workloads, seed, LLC replacement). Used by the job layer's prewarm
    /// cache (`consim-job`) to specialize one canonical prewarmed
    /// checkpoint to each cell.
    ///
    /// # Errors
    ///
    /// Fails with [`SimError::Invariant`] when the simulation has already
    /// started running.
    pub fn adopt_config(&mut self, config: SimulationConfig) -> Result<(), SimError> {
        if self.run_state.is_some() {
            return Err(SimError::invariant(
                "cannot adopt a new configuration mid-run",
            ));
        }
        debug_assert_eq!(
            snapshot::prewarm_key(&self.config),
            snapshot::prewarm_key(&config),
            "adopted configuration describes a different prewarmed machine"
        );
        let trace = config.trace.clone();
        self.config = config;
        self.config.trace = None;
        if let Some(trace) = trace {
            self.set_trace(trace);
        }
        Ok(())
    }

    /// Writes a complete, versioned, checksummed snapshot of the simulation
    /// — configuration and all mutable state — to `writer`. Resuming it with
    /// [`Simulation::resume`] and running to completion produces results
    /// bit-identical to never having stopped.
    ///
    /// Call between [`Simulation::advance`] invocations (or before the first
    /// one); the trace sink is not serialized (reattach with
    /// [`Simulation::set_trace`] after resuming).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Snapshot`] with [`SnapshotErrorKind::Io`] if
    /// `writer` fails.
    pub fn checkpoint<W: Write>(&self, writer: &mut W) -> Result<(), SimError> {
        let mut snap = SnapWriter::new(writer)?;

        let mut buf = SectionBuf::new();
        snapshot::save_config(&self.config, &mut buf);
        snap.section("config", &buf)?;

        let mut buf = SectionBuf::new();
        self.save_engine(&mut buf);
        snap.section("engine", &buf)?;

        let mut buf = SectionBuf::new();
        save_items(&mut buf, &self.l0);
        save_items(&mut buf, &self.l1);
        save_items(&mut buf, &self.llc);
        snap.section("caches", &buf)?;

        let mut buf = SectionBuf::new();
        self.directory.save(&mut buf);
        save_items(&mut buf, &self.dircaches);
        snap.section("coherence", &buf)?;

        let mut buf = SectionBuf::new();
        self.noc.save(&mut buf);
        save_items(&mut buf, &self.memory_controllers);
        snap.section("noc", &buf)?;

        let mut buf = SectionBuf::new();
        save_items(&mut buf, &self.generators);
        snap.section("workload", &buf)?;

        let mut buf = SectionBuf::new();
        save_items(&mut buf, &self.metrics);
        snap.section("metrics", &buf)?;

        snap.finish()?;
        Ok(())
    }

    /// Rebuilds a simulation from a [`Simulation::checkpoint`] stream. The
    /// machine is constructed from the *stored* configuration, then every
    /// stateful layer is restored into it; resuming and running to
    /// completion is bit-identical to the uninterrupted run.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Snapshot`] describing the failure class (bad
    /// magic, unsupported version, truncation, checksum mismatch, corrupt
    /// payload, I/O) — never panics on malformed input.
    pub fn resume<R: Read>(reader: R) -> Result<Self, SimError> {
        let mut snap = SnapReader::from_reader(reader)?;
        let config = {
            let mut r = snap.section("config")?;
            let config = snapshot::restore_config(&mut r)?;
            finish_section(&r)?;
            config
        };
        let mut sim = Simulation::new(config)?;
        {
            let mut r = snap.section("engine")?;
            sim.restore_engine(&mut r)?;
            finish_section(&r)?;
        }
        {
            let mut r = snap.section("caches")?;
            restore_items(&mut r, &mut sim.l0)?;
            restore_items(&mut r, &mut sim.l1)?;
            restore_items(&mut r, &mut sim.llc)?;
            finish_section(&r)?;
        }
        {
            let mut r = snap.section("coherence")?;
            sim.directory.restore(&mut r)?;
            restore_items(&mut r, &mut sim.dircaches)?;
            finish_section(&r)?;
        }
        {
            let mut r = snap.section("noc")?;
            sim.noc.restore(&mut r)?;
            restore_items(&mut r, &mut sim.memory_controllers)?;
            finish_section(&r)?;
        }
        {
            let mut r = snap.section("workload")?;
            restore_items(&mut r, &mut sim.generators)?;
            finish_section(&r)?;
        }
        {
            let mut r = snap.section("metrics")?;
            restore_items(&mut r, &mut sim.metrics)?;
            finish_section(&r)?;
        }
        snap.expect_end()?;
        Ok(sim)
    }

    /// Serializes the engine-owned state: prewarm/reschedule progress, the
    /// per-core gap streams, and the event loop's position.
    fn save_engine(&self, w: &mut SectionBuf) {
        w.put_bool(self.prewarmed);
        w.put_u64(self.resched_epoch);
        save_items(w, &self.gap_rngs);
        // Prefetched-but-unissued references, per global thread. The
        // generators' RNG streams have advanced past these, so a resumed
        // run must drain them before asking the generators for more. Only
        // the unissued tail is written: a checkpoint taken mid-batch and
        // one taken after a resume at the same point produce identical
        // bytes.
        w.put_usize(self.batches.len());
        for batch in &self.batches {
            let pending = &batch.refs[batch.cursor..];
            w.put_usize(pending.len());
            for r in pending {
                w.put_u64(r.address.raw());
                w.put_bool(r.is_write);
                w.put_bool(r.is_shared_region);
            }
        }
        match &self.run_state {
            None => w.put_bool(false),
            Some(st) => {
                w.put_bool(true);
                w.put_u8(match st.phase {
                    PhaseKind::Warmup => 0,
                    PhaseKind::Measure => 1,
                });
                w.put_u64(st.start.raw());
                w.put_u64_slice(&st.vm_refs);
                w.put_usize(st.vm_done.len());
                for &done in &st.vm_done {
                    w.put_bool(done);
                }
                w.put_usize(st.remaining);
                // Heap iteration order is arbitrary; serialize sorted so
                // identical states produce identical checkpoint bytes.
                let mut events: Vec<(u64, usize)> =
                    st.heap.iter().map(|&Reverse(event)| event).collect();
                events.sort_unstable();
                w.put_usize(events.len());
                for (time, core) in events {
                    w.put_u64(time);
                    w.put_usize(core);
                }
                w.put_u64(st.last_completion.raw());
                w.put_opt_u64(st.next_resched);
                w.put_u64(st.next_epoch);
                w.put_u64(st.next_repart);
                w.put_u64(st.next_churn);
                w.put_bool(st.done);
            }
        }
        // QoS controller state (quotas, EWMA slowdowns, boundary counters);
        // presence must match the stored configuration's partitioning mode.
        match &self.qos {
            None => w.put_bool(false),
            Some(qos) => {
                w.put_bool(true);
                qos.save(w);
            }
        }
        // Churn lifecycle state. Under churn the core bindings and the
        // placement table are live state (rewritten at churn boundaries),
        // not derivable from the configuration, so both travel with the
        // checkpoint.
        match &self.churn {
            None => w.put_bool(false),
            Some(ch) => {
                w.put_bool(true);
                ch.save(w);
                w.put_usize(self.core_thread.len());
                for bound in &self.core_thread {
                    match bound {
                        None => w.put_bool(false),
                        Some(thread) => {
                            w.put_bool(true);
                            w.put_usize(thread.vm.index());
                            w.put_usize(thread.thread.index());
                        }
                    }
                }
                for vm in 0..self.placement.num_vms() {
                    let vm = VmId::new(vm);
                    for t in 0..self.placement.threads_of_vm(vm) {
                        let thread = GlobalThreadId::new(vm, ThreadId::new(t));
                        w.put_usize(self.placement.core_of(thread).index());
                    }
                }
            }
        }
    }

    /// Restores [`Simulation::save_engine`] state into a freshly built
    /// machine, replaying rescheduling epochs to recover the placement.
    fn restore_engine(&mut self, r: &mut SectionReader<'_>) -> Result<(), SimError> {
        self.prewarmed = r.get_bool()?;
        let resched_epoch = r.get_u64()?;
        for epoch in 1..=resched_epoch {
            self.apply_resched_epoch(epoch);
        }
        self.resched_epoch = resched_epoch;
        restore_items(r, &mut self.gap_rngs)?;
        r.expect_len(self.batches.len(), "thread ref batches")?;
        for (slot, batch) in self.batches.iter_mut().enumerate() {
            // Slot -> (vm, thread) via the prefix sums.
            let vm = self.thread_base.partition_point(|&b| b <= slot) - 1;
            let thread = ThreadId::new(slot - self.thread_base[vm]);
            let pending = r.get_usize()?;
            batch.cursor = 0;
            batch.refs.clear();
            for _ in 0..pending {
                let address = Address(r.get_u64()?);
                if address.vm() != VmId::new(vm) {
                    return Err(SimError::snapshot(
                        SnapshotErrorKind::Corrupt,
                        format!(
                            "prefetched reference for VM {vm} addresses {}",
                            address.vm()
                        ),
                    ));
                }
                let is_write = r.get_bool()?;
                let is_shared_region = r.get_bool()?;
                batch.refs.push(MemRef {
                    thread,
                    address,
                    is_write,
                    is_shared_region,
                });
            }
        }
        self.run_state = if r.get_bool()? {
            let num_vms = self.config.workloads.len();
            let num_cores = self.config.machine.num_cores;
            let phase = match r.get_u8()? {
                0 => PhaseKind::Warmup,
                1 => PhaseKind::Measure,
                t => {
                    return Err(SimError::snapshot(
                        SnapshotErrorKind::Corrupt,
                        format!("invalid phase tag {t}"),
                    ))
                }
            };
            let start = Cycle::new(r.get_u64()?);
            let vm_refs = r.get_u64_vec()?;
            if vm_refs.len() != num_vms {
                return Err(SimError::snapshot(
                    SnapshotErrorKind::Corrupt,
                    format!(
                        "snapshot tracks {} VMs, configuration builds {num_vms}",
                        vm_refs.len()
                    ),
                ));
            }
            r.expect_len(num_vms, "per-VM completion flags")?;
            let mut vm_done = Vec::with_capacity(num_vms);
            for _ in 0..num_vms {
                vm_done.push(r.get_bool()?);
            }
            let remaining = r.get_usize()?;
            if remaining != vm_done.iter().filter(|&&d| !d).count() {
                return Err(SimError::snapshot(
                    SnapshotErrorKind::Corrupt,
                    "remaining-VM count disagrees with completion flags",
                ));
            }
            let events = r.get_usize()?;
            let mut heap = BinaryHeap::with_capacity(events);
            for _ in 0..events {
                let time = r.get_u64()?;
                let core = r.get_usize()?;
                if core >= num_cores {
                    return Err(SimError::snapshot(
                        SnapshotErrorKind::Corrupt,
                        format!("issue event on core {core} outside the {num_cores}-core machine"),
                    ));
                }
                heap.push(Reverse((time, core)));
            }
            Some(RunState {
                phase,
                start,
                vm_refs,
                vm_done,
                remaining,
                heap,
                last_completion: Cycle::new(r.get_u64()?),
                next_resched: r.get_opt_u64()?,
                next_epoch: r.get_u64()?,
                next_repart: r.get_u64()?,
                next_churn: r.get_u64()?,
                done: r.get_bool()?,
            })
        } else {
            None
        };
        if r.get_bool()? != self.qos.is_some() {
            return Err(SimError::snapshot(
                SnapshotErrorKind::Corrupt,
                "QoS-controller presence disagrees with the stored partitioning mode",
            ));
        }
        if let Some(qos) = &mut self.qos {
            qos.restore(r)?;
            // The live masks are derived state: rebuild them from the
            // restored quotas so a checkpoint taken after a repartition
            // resumes with the repartitioned split, not the initial one.
            self.llc_way_masks = Some(qos.masks());
        }
        if r.get_bool()? != self.churn.is_some() {
            return Err(SimError::snapshot(
                SnapshotErrorKind::Corrupt,
                "churn-state presence disagrees with the stored churn policy",
            ));
        }
        if let Some(ch) = self.churn.as_mut() {
            let num_cores = self.config.machine.num_cores;
            let num_vms = self.config.workloads.len();
            ch.restore(r)?;
            r.expect_len(num_cores, "per-core thread bindings")?;
            let mut core_thread: Vec<Option<GlobalThreadId>> = Vec::with_capacity(num_cores);
            for _ in 0..num_cores {
                if r.get_bool()? {
                    let vm = r.get_usize()?;
                    let thread = r.get_usize()?;
                    if vm >= num_vms || thread >= self.config.workloads[vm].threads {
                        return Err(SimError::snapshot(
                            SnapshotErrorKind::Corrupt,
                            format!(
                                "core binding names thread {thread} of VM {vm}, outside the mix"
                            ),
                        ));
                    }
                    core_thread.push(Some(GlobalThreadId::new(
                        VmId::new(vm),
                        ThreadId::new(thread),
                    )));
                } else {
                    core_thread.push(None);
                }
            }
            let mut core_of: Vec<Vec<CoreId>> = Vec::with_capacity(num_vms);
            for profile in &self.config.workloads {
                let mut cores = Vec::with_capacity(profile.threads);
                for _ in 0..profile.threads {
                    let core = r.get_usize()?;
                    if core >= num_cores {
                        return Err(SimError::snapshot(
                            SnapshotErrorKind::Corrupt,
                            format!(
                                "placement names core {core} outside the {num_cores}-core machine"
                            ),
                        ));
                    }
                    cores.push(CoreId::new(core));
                }
                core_of.push(cores);
            }
            let placement = Placement::from_parts(core_of, self.config.policy);
            // Cross-check: every bound core must agree with the placement
            // table, and a thread may be bound at most once. (The full
            // no-core-reuse placement validation does not apply under churn:
            // retired VMs keep their stale last placement by design.)
            let mut bound = vec![false; num_vms * num_cores];
            for (core, slot) in core_thread.iter().enumerate() {
                if let Some(thread) = slot {
                    if placement.core_of(*thread).index() != core {
                        return Err(SimError::snapshot(
                            SnapshotErrorKind::Corrupt,
                            "core binding disagrees with the placement table",
                        ));
                    }
                    let key = thread.vm.index() * num_cores + thread.thread.index();
                    if std::mem::replace(&mut bound[key], true) {
                        return Err(SimError::snapshot(
                            SnapshotErrorKind::Corrupt,
                            "a thread is bound to two cores",
                        ));
                    }
                }
            }
            self.core_thread = core_thread;
            self.placement = placement;
        }
        Ok(())
    }
}

/// Maps one applied churn action to its lifecycle trace event.
fn churn_trace_event(cycle: u64, action: &ChurnAction) -> TraceEvent {
    let as_u64 = |cores: &[usize]| cores.iter().map(|&c| c as u64).collect::<Vec<u64>>();
    match action {
        ChurnAction::Spawn { vm, cores } => TraceEvent::VmSpawned {
            cycle,
            vm: *vm as u32,
            cores: as_u64(cores),
        },
        ChurnAction::Retire {
            vm,
            cores,
            invalidated_l0,
            invalidated_l1,
            writebacks,
        } => TraceEvent::VmRetired {
            cycle,
            vm: *vm as u32,
            cores: as_u64(cores),
            invalidated_l0: *invalidated_l0,
            invalidated_l1: *invalidated_l1,
            writebacks: writebacks.len() as u64,
        },
        ChurnAction::Migrate {
            vm,
            from,
            to,
            invalidated_l0,
            invalidated_l1,
            writebacks,
        } => TraceEvent::VmMigrated {
            cycle,
            vm: *vm as u32,
            from: as_u64(from),
            to: as_u64(to),
            invalidated_l0: *invalidated_l0,
            invalidated_l1: *invalidated_l1,
            writebacks: writebacks.len() as u64,
        },
    }
}

/// Rejects unconsumed bytes at the end of a section: the payload passed its
/// checksum but holds more data than this build knows how to restore.
fn finish_section(r: &SectionReader<'_>) -> Result<(), SimError> {
    if r.remaining() != 0 {
        return Err(SimError::snapshot(
            SnapshotErrorKind::Corrupt,
            format!(
                "{} unconsumed bytes at the end of section '{}'",
                r.remaining(),
                r.name()
            ),
        ));
    }
    Ok(())
}

/// Rebinds pending issue events after a reschedule that changed which cores
/// are occupied (possible under [`SchedulingPolicy::Random`]): events on
/// vacated cores are reassigned — earliest times first — to the cores that
/// became occupied, in ascending core order. Events on cores that stayed
/// occupied are untouched, so deterministic policies keep their exact
/// pre-existing schedule.
fn remap_core_events(
    heap: &mut BinaryHeap<Reverse<(u64, usize)>>,
    occupied_before: &[bool],
    core_thread: &[Option<GlobalThreadId>],
) {
    let mut kept: Vec<(u64, usize)> = Vec::with_capacity(heap.len());
    let mut orphaned: Vec<u64> = Vec::new();
    for Reverse((time, core)) in heap.drain() {
        if core_thread[core].is_some() {
            kept.push((time, core));
        } else {
            orphaned.push(time);
        }
    }
    orphaned.sort_unstable();
    let fresh_cores = (0..core_thread.len())
        .filter(|&core| core_thread[core].is_some() && !occupied_before[core]);
    heap.extend(kept.into_iter().map(Reverse));
    heap.extend(orphaned.into_iter().zip(fresh_cores).map(Reverse));
}

#[cfg(test)]
mod tests;
