//! Step-level observation of a running simulation.
//!
//! A [`StepObserver`] attached via [`Simulation::run_with`] is called once
//! per memory reference — warmup and measurement alike — with everything an
//! external model needs to replay the access: who issued it, the block, the
//! classification the engine chose, and the directory's post-access view of
//! the block. The differential oracle in `consim-check` drives a naive
//! reference implementation of the hierarchy from these callbacks and
//! cross-checks every step; other consumers can build trace exporters or
//! protocol visualizers on the same hook.
//!
//! The hook is designed to cost nothing when unused: `Simulation::run`
//! passes `None` and the engine pays a single always-false branch per
//! access (the notification body is `#[cold]`, out of the hot path).
//!
//! [`Simulation::run_with`]: crate::engine::Simulation::run_with

use crate::churn::ChurnDecision;
use crate::metrics::MissSource;
use crate::qos::RepartitionDecision;
use consim_coherence::CoreSet;
use consim_types::{BankId, BlockAddr, CoreId, ThreadId, VmId};

/// How one memory reference was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// Satisfied by the issuing core's L0.
    L0Hit,
    /// Satisfied by the issuing core's L1 (includes the L0 fill).
    L1Hit,
    /// Resolved through the directory; where the data came from.
    Miss(MissSource),
}

/// One observed memory reference, with the engine's classification and the
/// directory's state for the block *after* the access completed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessStep {
    /// The issuing core.
    pub core: CoreId,
    /// The VM the issuing thread belongs to.
    pub vm: VmId,
    /// The issuing thread within its VM.
    pub thread: ThreadId,
    /// The block accessed.
    pub block: BlockAddr,
    /// Whether the access was a store.
    pub is_write: bool,
    /// Whether the access happened during the measurement phase (as opposed
    /// to warmup).
    pub measuring: bool,
    /// The engine's hit/miss classification.
    pub outcome: StepOutcome,
    /// The directory's Modified owner of the block after the access.
    pub dir_owner: Option<CoreId>,
    /// All cores the directory tracks for the block after the access
    /// (owner included).
    pub dir_sharers: CoreSet,
}

/// Receives one callback per simulated memory reference.
///
/// Implementations must be cheap relative to a simulated access or they
/// dominate the run time; the engine calls them synchronously from the
/// event loop.
pub trait StepObserver {
    /// Called after each memory reference completes in protocol order.
    fn on_step(&mut self, step: &AccessStep);

    /// Called for every block the engine pre-fills into an LLC bank during
    /// checkpoint-style prewarming, in exact insertion order (so an observer
    /// can mirror the banks' recency state). Default: ignored.
    fn on_llc_prewarm(&mut self, bank: BankId, block: BlockAddr) {
        let _ = (bank, block);
    }

    /// Called at every dynamic-QoS repartition boundary with the full
    /// decision record — *including* decisions that left the masks unchanged
    /// — so an external model can keep its own controller mirror in exact
    /// lockstep (EWMA state advances even when no way moves). Only fires
    /// when the machine uses `LlcPartitioning::Dynamic`. Default: ignored.
    fn on_repartition(&mut self, decision: &RepartitionDecision) {
        let _ = decision;
    }

    /// Called at every VM-churn boundary with the full decision record —
    /// *including* boundaries that took no action — so an external model can
    /// transcribe the birth–death draws and lifecycle bookkeeping in exact
    /// lockstep. Only fires when the machine carries a
    /// [`ChurnPolicy`](consim_types::ChurnPolicy). Default: ignored.
    fn on_churn(&mut self, decision: &ChurnDecision) {
        let _ = decision;
    }
}
