//! Experiment orchestration: multi-seed runs, isolation baselines, sweeps.
//!
//! The figure regenerators in `consim-bench` are thin loops over this
//! module: [`ExperimentRunner::run`] executes one (mix, policy, sharing)
//! cell across the configured seeds and aggregates per-workload metrics;
//! [`ExperimentRunner::isolated`] produces the isolation baselines every
//! paper figure normalizes against.

use crate::engine::{Simulation, SimulationConfig, SimulationOutcome};
use crate::stats::Summary;
use consim_sched::SchedulingPolicy;
use consim_types::config::{MachineConfig, SharingDegree};
use consim_types::{SimError, VmId};
use consim_workload::{WorkloadKind, WorkloadProfile};

/// Run-length and replication options shared by every experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOptions {
    /// Measured references per VM.
    pub refs_per_vm: u64,
    /// Warmup references per VM.
    pub warmup_refs_per_vm: u64,
    /// Seeds to run (one simulation per seed; results aggregated).
    pub seeds: Vec<u64>,
    /// Track per-VM footprints (needed only for Table II).
    pub track_footprint: bool,
    /// Pre-fill LLC banks with each workload's hot set before warmup
    /// (checkpoint-style warm start; see
    /// [`crate::engine::SimulationConfig::prewarm_llc`]).
    pub prewarm_llc: bool,
}

impl RunOptions {
    /// Quick settings for tests and smoke benches.
    pub fn quick() -> Self {
        Self {
            refs_per_vm: 8_000,
            warmup_refs_per_vm: 4_000,
            seeds: vec![1],
            track_footprint: false,
            prewarm_llc: false,
        }
    }

    /// Settings for regenerating the paper's figures (minutes per figure).
    pub fn thorough() -> Self {
        Self {
            refs_per_vm: 120_000,
            warmup_refs_per_vm: 60_000,
            seeds: vec![1, 2, 3],
            track_footprint: false,
            prewarm_llc: true,
        }
    }

    /// Reads overrides from the environment:
    /// `CONSIM_REFS`, `CONSIM_WARMUP`, `CONSIM_SEEDS` (count).
    ///
    /// Unset or unparsable variables keep the base values.
    pub fn from_env(mut self) -> Self {
        if let Some(v) = env_u64("CONSIM_REFS") {
            self.refs_per_vm = v;
        }
        if let Some(v) = env_u64("CONSIM_WARMUP") {
            self.warmup_refs_per_vm = v;
        }
        if let Some(v) = env_u64("CONSIM_SEEDS") {
            self.seeds = (1..=v.max(1)).collect();
        }
        self
    }
}

fn env_u64(key: &str) -> Option<u64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            refs_per_vm: 40_000,
            warmup_refs_per_vm: 20_000,
            seeds: vec![1, 2],
            track_footprint: false,
            prewarm_llc: false,
        }
    }
}

/// Aggregated metrics for one VM across seeds.
#[derive(Debug, Clone)]
pub struct VmAggregate {
    /// The workload running in this VM.
    pub kind: WorkloadKind,
    /// Cycles to complete the reference quota.
    pub runtime_cycles: Summary,
    /// Off-chip fraction of LLC-level requests.
    pub llc_miss_rate: Summary,
    /// Mean L1-miss latency (cycles).
    pub miss_latency: Summary,
    /// Fraction of L1 misses served cache-to-cache.
    pub c2c_fraction: Summary,
    /// Table II's c2c share: transfers over transfers-plus-memory-fetches.
    pub c2c_of_hierarchy_misses: Summary,
    /// Dirty share of cache-to-cache transfers.
    pub c2c_dirty_fraction: Summary,
    /// Unique blocks touched (zero unless footprint tracking was on).
    pub footprint_blocks: Summary,
    /// Memory fetches per thousand references.
    pub mpkr: Summary,
}

/// Aggregated results of one (mix, policy, sharing) experiment cell.
#[derive(Debug, Clone)]
pub struct MixRun {
    /// Per-VM aggregates, in VM order.
    pub vms: Vec<VmAggregate>,
    /// LLC replication fraction.
    pub replication: Summary,
    /// Mean per-bank, per-VM occupancy share (seed-averaged).
    pub occupancy: Vec<Vec<f64>>,
    /// Mean interconnect packet latency.
    pub noc_latency: Summary,
    /// Measurement interval length.
    pub measured_cycles: Summary,
}

impl MixRun {
    /// Mean runtime of the VM at `vm`.
    pub fn runtime(&self, vm: VmId) -> f64 {
        self.vms[vm.index()].runtime_cycles.mean
    }

    /// Average of a per-VM statistic over every VM running `kind`.
    pub fn mean_over_kind(&self, kind: WorkloadKind, f: impl Fn(&VmAggregate) -> f64) -> f64 {
        let values: Vec<f64> = self
            .vms
            .iter()
            .filter(|v| v.kind == kind)
            .map(f)
            .collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }
}

/// Runs experiment cells against a base machine.
///
/// # Examples
///
/// ```
/// use consim::runner::{ExperimentRunner, RunOptions};
/// use consim_sched::SchedulingPolicy;
/// use consim_types::config::SharingDegree;
/// use consim_workload::WorkloadKind;
///
/// let runner = ExperimentRunner::new(RunOptions::quick());
/// let run = runner.isolated(
///     WorkloadKind::TpcH,
///     SchedulingPolicy::Affinity,
///     SharingDegree::SharedBy(4),
/// )?;
/// assert!(run.runtime(consim_types::VmId::new(0)) > 0.0);
/// # Ok::<(), consim_types::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    machine: MachineConfig,
    options: RunOptions,
}

impl ExperimentRunner {
    /// A runner over the paper's Table III machine.
    pub fn new(options: RunOptions) -> Self {
        Self {
            machine: MachineConfig::paper_default(),
            options,
        }
    }

    /// A runner over a custom machine.
    pub fn with_machine(machine: MachineConfig, options: RunOptions) -> Self {
        Self { machine, options }
    }

    /// The options in use.
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// Runs a mix of built-in workloads.
    ///
    /// # Errors
    ///
    /// Propagates configuration/placement errors from the engine.
    pub fn run(
        &self,
        instances: &[WorkloadKind],
        policy: SchedulingPolicy,
        sharing: SharingDegree,
    ) -> Result<MixRun, SimError> {
        let profiles: Vec<WorkloadProfile> = instances.iter().map(|k| k.profile()).collect();
        self.run_profiles(&profiles, policy, sharing)
    }

    /// Runs a mix of explicit profiles (one per VM).
    ///
    /// # Errors
    ///
    /// Propagates configuration/placement errors from the engine.
    pub fn run_profiles(
        &self,
        profiles: &[WorkloadProfile],
        policy: SchedulingPolicy,
        sharing: SharingDegree,
    ) -> Result<MixRun, SimError> {
        let outcomes: Vec<SimulationOutcome> = self
            .options
            .seeds
            .iter()
            .map(|&seed| {
                let mut b = SimulationConfig::builder();
                b.machine(self.machine.with_sharing(sharing))
                    .policy(policy)
                    .seed(seed)
                    .refs_per_vm(self.options.refs_per_vm)
                    .warmup_refs_per_vm(self.options.warmup_refs_per_vm)
                    .track_footprint(self.options.track_footprint)
                    .prewarm_llc(self.options.prewarm_llc);
                for p in profiles {
                    b.workload(p.clone());
                }
                Simulation::new(b.build()?)?.run()
            })
            .collect::<Result<_, _>>()?;
        Ok(self.aggregate(profiles, &outcomes))
    }

    /// Runs one workload in isolation: four active cores, the rest idle,
    /// the full LLC available (the paper's §V-A setup).
    ///
    /// # Errors
    ///
    /// Propagates configuration/placement errors from the engine.
    pub fn isolated(
        &self,
        kind: WorkloadKind,
        policy: SchedulingPolicy,
        sharing: SharingDegree,
    ) -> Result<MixRun, SimError> {
        self.run(&[kind], policy, sharing)
    }

    /// The paper's normalization baseline: the workload alone with the
    /// fully shared 16 MB LLC.
    ///
    /// # Errors
    ///
    /// Propagates configuration/placement errors from the engine.
    pub fn isolation_baseline(&self, kind: WorkloadKind) -> Result<MixRun, SimError> {
        self.isolated(kind, SchedulingPolicy::Affinity, SharingDegree::FullyShared)
    }

    fn aggregate(&self, profiles: &[WorkloadProfile], outcomes: &[SimulationOutcome]) -> MixRun {
        let num_vms = profiles.len();
        let vms = (0..num_vms)
            .map(|vm| {
                let collect = |f: &dyn Fn(&SimulationOutcome) -> f64| {
                    Summary::of(&outcomes.iter().map(f).collect::<Vec<_>>())
                };
                VmAggregate {
                    kind: profiles[vm].kind,
                    runtime_cycles: collect(&|o| o.vm_metrics[vm].runtime_cycles() as f64),
                    llc_miss_rate: collect(&|o| o.vm_metrics[vm].llc_miss_rate()),
                    miss_latency: collect(&|o| o.vm_metrics[vm].mean_miss_latency()),
                    c2c_fraction: collect(&|o| o.vm_metrics[vm].c2c_fraction()),
                    c2c_of_hierarchy_misses: collect(&|o| {
                        o.vm_metrics[vm].c2c_fraction_of_hierarchy_misses()
                    }),
                    c2c_dirty_fraction: collect(&|o| o.vm_metrics[vm].c2c_dirty_fraction()),
                    footprint_blocks: collect(&|o| o.vm_metrics[vm].footprint_blocks() as f64),
                    mpkr: collect(&|o| o.vm_metrics[vm].mpkr()),
                }
            })
            .collect();
        let replication = Summary::of(
            &outcomes
                .iter()
                .map(|o| o.replication.replicated_fraction())
                .collect::<Vec<_>>(),
        );
        let noc_latency = Summary::of(
            &outcomes
                .iter()
                .map(|o| o.noc.mean_latency())
                .collect::<Vec<_>>(),
        );
        let measured_cycles = Summary::of(
            &outcomes
                .iter()
                .map(|o| o.measured_cycles as f64)
                .collect::<Vec<_>>(),
        );
        // Seed-averaged occupancy grid.
        let banks = outcomes
            .first()
            .map(|o| o.occupancy.share.len())
            .unwrap_or(0);
        let occupancy = (0..banks)
            .map(|b| {
                (0..num_vms)
                    .map(|v| {
                        outcomes
                            .iter()
                            .map(|o| o.occupancy.share[b][v])
                            .sum::<f64>()
                            / outcomes.len() as f64
                    })
                    .collect()
            })
            .collect();
        MixRun {
            vms,
            replication,
            occupancy,
            noc_latency,
            measured_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consim_workload::WorkloadProfileBuilder;

    fn tiny_runner() -> ExperimentRunner {
        ExperimentRunner::new(RunOptions {
            refs_per_vm: 2_000,
            warmup_refs_per_vm: 500,
            seeds: vec![1, 2],
            track_footprint: false,
            prewarm_llc: false,
        })
    }

    fn tiny_profile(name: &str) -> WorkloadProfile {
        WorkloadProfileBuilder::new(name)
            .footprint_blocks(3_000)
            .build()
            .unwrap()
    }

    #[test]
    fn isolated_run_produces_aggregates() {
        let r = tiny_runner();
        let run = r
            .run_profiles(
                &[tiny_profile("a")],
                SchedulingPolicy::Affinity,
                SharingDegree::SharedBy(4),
            )
            .unwrap();
        assert_eq!(run.vms.len(), 1);
        assert_eq!(run.vms[0].runtime_cycles.n, 2);
        assert!(run.vms[0].runtime_cycles.mean > 0.0);
        assert!(run.vms[0].miss_latency.mean > 0.0);
        assert!(run.measured_cycles.mean > 0.0);
    }

    #[test]
    fn mix_run_aggregates_all_vms() {
        let r = tiny_runner();
        let profiles = vec![
            tiny_profile("a"),
            tiny_profile("b"),
            tiny_profile("c"),
            tiny_profile("d"),
        ];
        let run = r
            .run_profiles(&profiles, SchedulingPolicy::RoundRobin, SharingDegree::SharedBy(4))
            .unwrap();
        assert_eq!(run.vms.len(), 4);
        assert_eq!(run.occupancy.len(), 4);
        assert_eq!(run.occupancy[0].len(), 4);
        for v in &run.vms {
            assert!(v.llc_miss_rate.mean >= 0.0 && v.llc_miss_rate.mean <= 1.0);
        }
    }

    #[test]
    fn mean_over_kind_averages_instances() {
        let mut run = tiny_runner()
            .run_profiles(
                &[tiny_profile("a"), tiny_profile("b")],
                SchedulingPolicy::Affinity,
                SharingDegree::SharedBy(4),
            )
            .unwrap();
        run.vms[0].kind = WorkloadKind::TpcH;
        run.vms[1].kind = WorkloadKind::TpcH;
        let m = run.mean_over_kind(WorkloadKind::TpcH, |v| v.runtime_cycles.mean);
        let expected = (run.vms[0].runtime_cycles.mean + run.vms[1].runtime_cycles.mean) / 2.0;
        assert!((m - expected).abs() < 1e-9);
        assert_eq!(run.mean_over_kind(WorkloadKind::TpcW, |v| v.runtime_cycles.mean), 0.0);
    }

    #[test]
    fn options_from_env_parse() {
        // Set-and-restore to avoid leaking into other tests.
        std::env::set_var("CONSIM_REFS", "1234");
        std::env::set_var("CONSIM_SEEDS", "3");
        let o = RunOptions::quick().from_env();
        std::env::remove_var("CONSIM_REFS");
        std::env::remove_var("CONSIM_SEEDS");
        assert_eq!(o.refs_per_vm, 1234);
        assert_eq!(o.seeds, vec![1, 2, 3]);
    }

    #[test]
    fn quick_and_thorough_presets() {
        assert!(RunOptions::quick().refs_per_vm < RunOptions::thorough().refs_per_vm);
        assert!(RunOptions::thorough().seeds.len() >= 3);
    }
}
