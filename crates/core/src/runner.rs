//! Experiment orchestration: multi-seed runs, isolation baselines, sweeps.
//!
//! The figure regenerators in `consim-bench` are thin loops over this
//! module: [`ExperimentRunner::run`] executes one (mix, policy, sharing)
//! cell across the configured seeds and aggregates per-workload metrics;
//! [`ExperimentRunner::isolated`] produces the isolation baselines every
//! paper figure normalizes against; [`ExperimentRunner::run_cells`] executes
//! a whole batch of cells across a pool of OS threads.
//!
//! # Parallelism and determinism
//!
//! Parallelism lives *between* simulations, never inside one. Each
//! `(cell, seed)` pair builds its own [`Simulation`], which derives every
//! random stream from its own root seed — so a simulation's outcome is a
//! pure function of its configuration, independent of which thread runs it
//! or what else runs concurrently. [`ExperimentRunner::run_cells`] therefore
//! returns results bit-identical to serial execution, in submission order.
//! The worker count defaults to [`std::thread::available_parallelism`],
//! clamped by the `CONSIM_THREADS` environment variable or
//! [`ExperimentRunner::with_threads`].

use crate::engine::{RunStatus, Simulation, SimulationConfig, SimulationOutcome, TraceConfig};
use crate::stats::Summary;
use crate::{journal, snapshot};
use consim_sched::SchedulingPolicy;
use consim_trace::{EventClass, TraceEvent, TraceSink};
use consim_types::config::{MachineConfig, SharingDegree};
use consim_types::{FastHashMap, SimError, VmId};
use consim_workload::{WorkloadKind, WorkloadProfile};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Run-length and replication options shared by every experiment.
///
/// `Eq`/`Hash` let options participate in cache keys (see
/// `consim-bench`'s `BaselineCache`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunOptions {
    /// Measured references per VM.
    pub refs_per_vm: u64,
    /// Warmup references per VM.
    pub warmup_refs_per_vm: u64,
    /// Seeds to run (one simulation per seed; results aggregated).
    pub seeds: Vec<u64>,
    /// Track per-VM footprints (needed only for Table II).
    pub track_footprint: bool,
    /// Pre-fill LLC banks with each workload's hot set before warmup
    /// (checkpoint-style warm start; see
    /// [`crate::engine::SimulationConfig::prewarm_llc`]).
    pub prewarm_llc: bool,
}

impl RunOptions {
    /// Quick settings for tests and smoke benches.
    pub fn quick() -> Self {
        Self {
            refs_per_vm: 8_000,
            warmup_refs_per_vm: 4_000,
            seeds: vec![1],
            track_footprint: false,
            prewarm_llc: false,
        }
    }

    /// Settings for regenerating the paper's figures (minutes per figure).
    pub fn thorough() -> Self {
        Self {
            refs_per_vm: 120_000,
            warmup_refs_per_vm: 60_000,
            seeds: vec![1, 2, 3],
            track_footprint: false,
            prewarm_llc: true,
        }
    }

    /// Reads overrides from the environment:
    /// `CONSIM_REFS`, `CONSIM_WARMUP`, `CONSIM_SEEDS` (count).
    ///
    /// Unset or unparsable variables keep the base values.
    pub fn from_env(self) -> Self {
        self.from_env_with(|key| std::env::var(key).ok())
    }

    /// Like [`RunOptions::from_env`] but with an injectable variable lookup,
    /// so tests can exercise the parsing without mutating process-global
    /// environment state (which races against concurrently running tests).
    pub fn from_env_with(mut self, lookup: impl Fn(&str) -> Option<String>) -> Self {
        let parse = |key: &str| -> Option<u64> { parse_u64_or_warn(key, &lookup(key)?) };
        if let Some(v) = parse("CONSIM_REFS") {
            self.refs_per_vm = v;
        }
        if let Some(v) = parse("CONSIM_WARMUP") {
            self.warmup_refs_per_vm = v;
        }
        if let Some(v) = parse("CONSIM_SEEDS") {
            self.seeds = (1..=v.max(1)).collect();
        }
        self
    }
}

fn env_u64(key: &str) -> Option<u64> {
    parse_u64_or_warn(key, &std::env::var(key).ok()?)
}

/// Parses an environment override, warning on stderr instead of silently
/// falling back when the value is set but malformed (a silently ignored
/// `CONSIM_THREADS=abc` would run the wrong experiment without any
/// diagnostic).
fn parse_u64_or_warn(key: &str, raw: &str) -> Option<u64> {
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!(
                "consim: warning: ignoring {key}={raw:?}: not an unsigned integer; \
                 using the default"
            );
            None
        }
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            refs_per_vm: 40_000,
            warmup_refs_per_vm: 20_000,
            seeds: vec![1, 2],
            track_footprint: false,
            prewarm_llc: false,
        }
    }
}

/// Aggregated metrics for one VM across seeds.
#[derive(Debug, Clone)]
pub struct VmAggregate {
    /// The workload running in this VM.
    pub kind: WorkloadKind,
    /// Cycles to complete the reference quota.
    pub runtime_cycles: Summary,
    /// Off-chip fraction of LLC-level requests.
    pub llc_miss_rate: Summary,
    /// Mean L1-miss latency (cycles).
    pub miss_latency: Summary,
    /// Worst single L1-miss latency (cycles) — the latency tail, which
    /// lifecycle churn stresses through post-migration re-warming.
    pub miss_latency_max: Summary,
    /// Fraction of L1 misses served cache-to-cache.
    pub c2c_fraction: Summary,
    /// Table II's c2c share: transfers over transfers-plus-memory-fetches.
    pub c2c_of_hierarchy_misses: Summary,
    /// Dirty share of cache-to-cache transfers.
    pub c2c_dirty_fraction: Summary,
    /// Unique blocks touched (zero unless footprint tracking was on).
    pub footprint_blocks: Summary,
    /// Memory fetches per thousand references.
    pub mpkr: Summary,
}

/// Aggregated lifecycle-churn activity of one cell (all-zero summaries
/// when the machine carries no churn policy).
#[derive(Debug, Clone)]
pub struct ChurnAggregate {
    /// VMs spawned through the birth process (initial population excluded).
    pub spawns: Summary,
    /// VMs retired through the death process.
    pub retires: Summary,
    /// Live migrations performed.
    pub migrations: Summary,
    /// Dirty private-cache lines written back by retirement/migration scrubs.
    pub scrub_writebacks: Summary,
}

/// Aggregated results of one (mix, policy, sharing) experiment cell.
#[derive(Debug, Clone)]
pub struct MixRun {
    /// Per-VM aggregates, in VM order.
    pub vms: Vec<VmAggregate>,
    /// Lifecycle-churn activity across the measurement phase.
    pub churn: ChurnAggregate,
    /// LLC replication fraction.
    pub replication: Summary,
    /// Mean per-bank, per-VM occupancy share (seed-averaged).
    pub occupancy: Vec<Vec<f64>>,
    /// Mean interconnect packet latency.
    pub noc_latency: Summary,
    /// Measurement interval length.
    pub measured_cycles: Summary,
}

impl MixRun {
    /// Mean runtime of the VM at `vm`.
    pub fn runtime(&self, vm: VmId) -> f64 {
        self.vms[vm.index()].runtime_cycles.mean
    }

    /// Average of a per-VM statistic over every VM running `kind`.
    pub fn mean_over_kind(&self, kind: WorkloadKind, f: impl Fn(&VmAggregate) -> f64) -> f64 {
        let values: Vec<f64> = self.vms.iter().filter(|v| v.kind == kind).map(f).collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }
}

/// One (profiles, policy, sharing) experiment cell for batch execution.
///
/// A cell is everything that varies between grid points; run length, seeds,
/// and the base machine come from the [`ExperimentRunner`] executing it.
#[derive(Debug, Clone)]
pub struct ExperimentCell {
    /// One workload profile per VM.
    pub profiles: Vec<WorkloadProfile>,
    /// Thread-to-core scheduling policy.
    pub policy: SchedulingPolicy,
    /// LLC sharing degree.
    pub sharing: SharingDegree,
}

impl ExperimentCell {
    /// A cell over explicit profiles.
    pub fn new(
        profiles: Vec<WorkloadProfile>,
        policy: SchedulingPolicy,
        sharing: SharingDegree,
    ) -> Self {
        Self {
            profiles,
            policy,
            sharing,
        }
    }

    /// A cell over built-in workload kinds (one VM per instance).
    pub fn of_kinds(
        instances: &[WorkloadKind],
        policy: SchedulingPolicy,
        sharing: SharingDegree,
    ) -> Self {
        Self::new(
            instances.iter().map(|k| k.profile()).collect(),
            policy,
            sharing,
        )
    }
}

/// Where a job's outcome came from: freshly simulated, or loaded from a
/// journal record written by an earlier invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobSource {
    Simulated,
    Journal,
}

/// Runs experiment cells against a base machine.
///
/// # Examples
///
/// ```
/// use consim::runner::{ExperimentRunner, RunOptions};
/// use consim_sched::SchedulingPolicy;
/// use consim_types::config::SharingDegree;
/// use consim_workload::WorkloadKind;
///
/// let runner = ExperimentRunner::new(RunOptions::quick());
/// let run = runner.isolated(
///     WorkloadKind::TpcH,
///     SchedulingPolicy::Affinity,
///     SharingDegree::SharedBy(4),
/// )?;
/// assert!(run.runtime(consim_types::VmId::new(0)) > 0.0);
/// # Ok::<(), consim_types::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    machine: MachineConfig,
    options: RunOptions,
    threads: Option<usize>,
    audit: bool,
    sink: Option<Arc<dyn TraceSink>>,
    journal: Option<PathBuf>,
    checkpoint_every: Option<u64>,
    fault_after: Option<u64>,
    /// Prewarm-checkpoint cache: canonical-config digest → serialized
    /// checkpoint of a prewarmed-but-not-started simulation. Shared across
    /// clones so sweeps that retarget one configured runner still reuse it.
    prewarm_cache: Arc<Mutex<FastHashMap<u64, Arc<Vec<u8>>>>>,
}

impl ExperimentRunner {
    /// A runner over the paper's Table III machine.
    pub fn new(options: RunOptions) -> Self {
        Self {
            machine: MachineConfig::paper_default(),
            options,
            threads: None,
            audit: false,
            sink: None,
            journal: None,
            checkpoint_every: None,
            fault_after: None,
            prewarm_cache: Arc::default(),
        }
    }

    /// A runner over a custom machine.
    pub fn with_machine(machine: MachineConfig, options: RunOptions) -> Self {
        Self {
            machine,
            ..Self::new(options)
        }
    }

    /// Retargets this runner at a different machine, keeping the options,
    /// thread pinning, audit setting, and trace sink. Used for sweeps that
    /// vary the machine itself (e.g. LLC way partitioning) while sharing
    /// one configured runner.
    pub fn on_machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Pins the worker-thread count, overriding `CONSIM_THREADS` and the
    /// hardware default. `with_threads(1)` forces serial execution.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads.max(1));
        self
    }

    /// Enables the end-of-run counter audit on every simulation this runner
    /// launches. Auditing never changes results — a drift fails the run
    /// with [`SimError::AuditFailed`] instead of publishing skewed figures.
    pub fn with_audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Attaches a trace sink. Every simulation emits its lifecycle, epoch,
    /// and (if the sink's filter accepts them) coherence/stall events into
    /// it, and the runner adds per-cell wall-time and batch worker
    /// utilization events. The sink is shared: worker threads record
    /// concurrently.
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches a results journal rooted at `dir`: every completed
    /// `(cell, seed)` job is recorded on disk (atomically), and a later
    /// invocation of the same batch loads the records instead of
    /// re-simulating. Each distinct batch gets its own
    /// `batch-<config-digest>/` subdirectory, so a journal can never serve
    /// results for a different experiment (see [`crate::journal`]).
    pub fn with_journal(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal = Some(dir.into());
        self
    }

    /// Writes a mid-run checkpoint every `accesses` generator accesses, so
    /// a crash loses at most that much work per in-flight cell. Takes
    /// effect only together with [`ExperimentRunner::with_journal`] (the
    /// checkpoint lives next to the journal records). Checkpointing never
    /// changes results: a resumed run is bit-identical to an uninterrupted
    /// one.
    pub fn with_checkpoint_every(mut self, accesses: u64) -> Self {
        self.checkpoint_every = Some(accesses.max(1));
        self
    }

    /// Fault injection for crash-recovery tests: the batch aborts with an
    /// error once `jobs` jobs have completed (in-flight workers finish and
    /// journal their cells first). Exposed to the CLI as
    /// `CONSIM_FAULT=cell:K`.
    pub fn with_fault_after(mut self, jobs: u64) -> Self {
        self.fault_after = Some(jobs);
        self
    }

    /// Replaces the run options, keeping machine, threads, audit, and sink.
    pub fn with_options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// The options in use.
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// Worker threads for a batch of `jobs` simulations: the explicit
    /// [`ExperimentRunner::with_threads`] setting, else `CONSIM_THREADS`,
    /// else [`std::thread::available_parallelism`] — never more workers
    /// than jobs.
    fn worker_count(&self, jobs: usize) -> usize {
        let configured = self
            .threads
            .or_else(|| env_u64("CONSIM_THREADS").map(|v| v as usize))
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        configured.clamp(1, jobs.max(1))
    }

    /// Runs a mix of built-in workloads.
    ///
    /// # Errors
    ///
    /// Propagates configuration/placement errors from the engine.
    pub fn run(
        &self,
        instances: &[WorkloadKind],
        policy: SchedulingPolicy,
        sharing: SharingDegree,
    ) -> Result<MixRun, SimError> {
        let profiles: Vec<WorkloadProfile> = instances.iter().map(|k| k.profile()).collect();
        self.run_profiles(&profiles, policy, sharing)
    }

    /// Runs a mix of explicit profiles (one per VM), fanning seeds out
    /// across the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates configuration/placement errors from the engine.
    pub fn run_profiles(
        &self,
        profiles: &[WorkloadProfile],
        policy: SchedulingPolicy,
        sharing: SharingDegree,
    ) -> Result<MixRun, SimError> {
        let cell = ExperimentCell::new(profiles.to_vec(), policy, sharing);
        let mut runs = self.run_cells(std::slice::from_ref(&cell))?;
        Ok(runs.pop().expect("one cell in, one aggregate out"))
    }

    /// Runs a batch of experiment cells, each across every configured seed,
    /// on a pool of scoped OS threads. Results come back in submission
    /// order and are bit-identical to serial execution (see the module docs
    /// on determinism).
    ///
    /// # Errors
    ///
    /// Propagates the first configuration/placement error from the engine
    /// (in job order).
    pub fn run_cells(&self, cells: &[ExperimentCell]) -> Result<Vec<MixRun>, SimError> {
        // One job per (cell, seed). Configs are built up front so invalid
        // cells fail deterministically regardless of the worker count.
        let mut jobs: Vec<(usize, SimulationConfig)> = Vec::new();
        for (ci, cell) in cells.iter().enumerate() {
            for &seed in &self.options.seeds {
                jobs.push((ci, self.cell_config(cell, seed)?));
            }
        }

        let workers = self.worker_count(jobs.len());
        // Journal: each distinct batch owns a digest-named subdirectory.
        let batch_dir: Option<PathBuf> = match &self.journal {
            Some(root) => {
                let dir = journal::batch_dir(root, &jobs);
                std::fs::create_dir_all(&dir)
                    .map_err(|e| journal::io_error("create journal directory", &dir, e))?;
                Some(dir)
            }
            None => None,
        };
        // Runner-class telemetry: per-job wall time plus batch utilization.
        let timing_sink = self
            .sink
            .as_ref()
            .filter(|s| s.wants(EventClass::Runner))
            .map(Arc::clone);
        let busy_us = AtomicU64::new(0);
        let completed = AtomicU64::new(0);
        let faulted = AtomicBool::new(false);
        let batch_start = Instant::now();
        let run_job = |ji: usize, ci: usize, cfg: &SimulationConfig| {
            let job_start = Instant::now();
            let result = self.execute_job(batch_dir.as_deref(), ji, cfg);
            if let Ok((_, JobSource::Journal)) = &result {
                // Loaded from a previous invocation: free, and already
                // counted toward that invocation's fault threshold.
                return result.map(|(o, _)| o);
            }
            let wall = job_start.elapsed();
            busy_us.fetch_add(wall.as_micros() as u64, Ordering::Relaxed);
            if let Some(sink) = &timing_sink {
                sink.record(&TraceEvent::CellCompleted {
                    cell: ci as u32,
                    seed: cfg.seed,
                    wall_ms: wall.as_secs_f64() * 1e3,
                });
            }
            if let Some(k) = self.fault_after {
                if completed.fetch_add(1, Ordering::Relaxed) + 1 >= k {
                    faulted.store(true, Ordering::Relaxed);
                }
            }
            result.map(|(o, _)| o)
        };
        let slots: Vec<Mutex<Option<Result<SimulationOutcome, SimError>>>> =
            jobs.iter().map(|_| Mutex::new(None)).collect();
        if workers <= 1 {
            for (ji, (ci, cfg)) in jobs.iter().enumerate() {
                if faulted.load(Ordering::Relaxed) {
                    break;
                }
                *slots[ji].lock().expect("result slot poisoned") = Some(run_job(ji, *ci, cfg));
            }
        } else {
            // Work-stealing by atomic index: cells vary widely in cost, so
            // static chunking would leave workers idle.
            let next = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        if faulted.load(Ordering::Relaxed) {
                            break;
                        }
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some((ci, cfg)) = jobs.get(i) else { break };
                        *slots[i].lock().expect("result slot poisoned") =
                            Some(run_job(i, *ci, cfg));
                    });
                }
            });
        }
        if faulted.load(Ordering::Relaxed) {
            return Err(SimError::invariant(format!(
                "fault injected after {} completed jobs; finished cells are journaled",
                completed.load(Ordering::Relaxed)
            )));
        }
        let outcomes: Vec<Result<SimulationOutcome, SimError>> = slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("worker pool drained every job")
            })
            .collect();
        if let Some(sink) = &timing_sink {
            let wall_seconds = batch_start.elapsed().as_secs_f64();
            let busy_seconds = busy_us.load(Ordering::Relaxed) as f64 / 1e6;
            let capacity = workers as f64 * wall_seconds;
            sink.record(&TraceEvent::BatchCompleted {
                jobs: jobs.len() as u32,
                workers: workers as u32,
                wall_seconds,
                busy_seconds,
                worker_utilization: if capacity > 0.0 {
                    (busy_seconds / capacity).min(1.0)
                } else {
                    0.0
                },
            });
        }

        // Group per cell, preserving submission order.
        let mut per_cell: Vec<Vec<SimulationOutcome>> = cells.iter().map(|_| Vec::new()).collect();
        for ((ci, _), outcome) in jobs.iter().zip(outcomes) {
            per_cell[*ci].push(outcome?);
        }
        Ok(cells
            .iter()
            .zip(&per_cell)
            .map(|(cell, outcomes)| self.aggregate(&cell.profiles, outcomes))
            .collect())
    }

    /// Builds the simulation configuration for one (cell, seed) job.
    fn cell_config(&self, cell: &ExperimentCell, seed: u64) -> Result<SimulationConfig, SimError> {
        let mut b = SimulationConfig::builder();
        b.machine(self.machine.with_sharing(cell.sharing))
            .policy(cell.policy)
            .seed(seed)
            .refs_per_vm(self.options.refs_per_vm)
            .warmup_refs_per_vm(self.options.warmup_refs_per_vm)
            .track_footprint(self.options.track_footprint)
            .prewarm_llc(self.options.prewarm_llc)
            .audit(self.audit);
        if let Some(sink) = &self.sink {
            b.trace(TraceConfig::new(sink.clone()));
        }
        for p in &cell.profiles {
            b.workload(p.clone());
        }
        b.build()
    }

    /// Runs one `(cell, seed)` job, consulting the journal and checkpoint
    /// files when a batch directory is attached.
    ///
    /// Resolution order: a journaled outcome wins (the job already ran to
    /// completion in some invocation); otherwise a mid-run checkpoint is
    /// resumed; otherwise the simulation is built fresh (through the
    /// prewarm-checkpoint cache when the cell asks for a prewarmed LLC).
    fn execute_job(
        &self,
        batch_dir: Option<&Path>,
        ji: usize,
        cfg: &SimulationConfig,
    ) -> Result<(SimulationOutcome, JobSource), SimError> {
        if let Some(dir) = batch_dir {
            let record = journal::outcome_path(dir, ji);
            if record.exists() {
                return journal::read_outcome(&record).map(|o| (o, JobSource::Journal));
            }
        }
        let ckpt = batch_dir.map(|dir| journal::checkpoint_path(dir, ji));
        let mut sim = match ckpt.as_ref().filter(|p| p.exists()) {
            Some(path) => {
                let mut sim = journal::read_checkpoint(path)?;
                // Trace sinks are process-local and deliberately excluded
                // from checkpoints; reattach this runner's.
                if let Some(trace) = &cfg.trace {
                    sim.set_trace(trace.clone());
                }
                sim
            }
            None => self.build_sim(cfg)?,
        };
        let outcome = match (self.checkpoint_every, &ckpt) {
            (Some(every), Some(path)) => {
                loop {
                    if sim.advance(every, None)? == RunStatus::Complete {
                        break;
                    }
                    journal::write_checkpoint(path, &sim)?;
                }
                sim.finish()?
            }
            _ => sim.run()?,
        };
        if let Some(dir) = batch_dir {
            journal::write_outcome(&journal::outcome_path(dir, ji), &outcome)?;
            if let Some(path) = &ckpt {
                // The record supersedes the mid-run checkpoint.
                let _ = std::fs::remove_file(path);
            }
        }
        Ok((outcome, JobSource::Simulated))
    }

    /// Builds the simulation for a job. Cells that prewarm the LLC go
    /// through the prewarm-checkpoint cache: the (expensive) bank fill for
    /// a given canonical configuration is simulated once, checkpointed to
    /// memory, and every later job resumes that checkpoint and adopts its
    /// own run quotas — bit-identical to prewarming from scratch (the fill
    /// is deterministic in the canonical configuration).
    fn build_sim(&self, cfg: &SimulationConfig) -> Result<Simulation, SimError> {
        if !cfg.prewarm_llc {
            return Simulation::new(cfg.clone());
        }
        let key = snapshot::prewarm_key(cfg);
        let bytes = {
            let mut cache = self.prewarm_cache.lock().expect("prewarm cache poisoned");
            match cache.get(&key) {
                Some(bytes) => Arc::clone(bytes),
                None => {
                    // Built under the lock: the first job pays once and
                    // concurrent workers with the same key wait for it
                    // rather than all paying.
                    let mut sim = Simulation::new(snapshot::prewarm_canonical_config(cfg))?;
                    sim.prewarm();
                    let mut buf = Vec::new();
                    sim.checkpoint(&mut buf)?;
                    let bytes = Arc::new(buf);
                    cache.insert(key, Arc::clone(&bytes));
                    bytes
                }
            }
        };
        let mut sim = Simulation::resume(bytes.as_slice())?;
        sim.adopt_config(cfg.clone())?;
        Ok(sim)
    }

    /// Runs one workload in isolation: four active cores, the rest idle,
    /// the full LLC available (the paper's §V-A setup).
    ///
    /// # Errors
    ///
    /// Propagates configuration/placement errors from the engine.
    pub fn isolated(
        &self,
        kind: WorkloadKind,
        policy: SchedulingPolicy,
        sharing: SharingDegree,
    ) -> Result<MixRun, SimError> {
        self.run(&[kind], policy, sharing)
    }

    /// The paper's normalization baseline: the workload alone with the
    /// fully shared 16 MB LLC.
    ///
    /// # Errors
    ///
    /// Propagates configuration/placement errors from the engine.
    pub fn isolation_baseline(&self, kind: WorkloadKind) -> Result<MixRun, SimError> {
        self.isolated(kind, SchedulingPolicy::Affinity, SharingDegree::FullyShared)
    }

    fn aggregate(&self, profiles: &[WorkloadProfile], outcomes: &[SimulationOutcome]) -> MixRun {
        let num_vms = profiles.len();
        let vms = (0..num_vms)
            .map(|vm| {
                let collect = |f: &dyn Fn(&SimulationOutcome) -> f64| {
                    Summary::of(&outcomes.iter().map(f).collect::<Vec<_>>())
                };
                VmAggregate {
                    kind: profiles[vm].kind,
                    runtime_cycles: collect(&|o| o.vm_metrics[vm].runtime_cycles() as f64),
                    llc_miss_rate: collect(&|o| o.vm_metrics[vm].llc_miss_rate()),
                    miss_latency: collect(&|o| o.vm_metrics[vm].mean_miss_latency()),
                    miss_latency_max: collect(&|o| o.vm_metrics[vm].max_miss_latency()),
                    c2c_fraction: collect(&|o| o.vm_metrics[vm].c2c_fraction()),
                    c2c_of_hierarchy_misses: collect(&|o| {
                        o.vm_metrics[vm].c2c_fraction_of_hierarchy_misses()
                    }),
                    c2c_dirty_fraction: collect(&|o| o.vm_metrics[vm].c2c_dirty_fraction()),
                    footprint_blocks: collect(&|o| o.vm_metrics[vm].footprint_blocks() as f64),
                    mpkr: collect(&|o| o.vm_metrics[vm].mpkr()),
                }
            })
            .collect();
        let replication = Summary::of(
            &outcomes
                .iter()
                .map(|o| o.replication.replicated_fraction())
                .collect::<Vec<_>>(),
        );
        let noc_latency = Summary::of(
            &outcomes
                .iter()
                .map(|o| o.noc.mean_latency())
                .collect::<Vec<_>>(),
        );
        let measured_cycles = Summary::of(
            &outcomes
                .iter()
                .map(|o| o.measured_cycles as f64)
                .collect::<Vec<_>>(),
        );
        let churn_stat = |f: &dyn Fn(&crate::churn::ChurnStats) -> u64| {
            Summary::of(
                &outcomes
                    .iter()
                    .map(|o| o.churn.as_ref().map_or(0.0, |c| f(c) as f64))
                    .collect::<Vec<_>>(),
            )
        };
        let churn = ChurnAggregate {
            spawns: churn_stat(&|c| c.spawns),
            retires: churn_stat(&|c| c.retires),
            migrations: churn_stat(&|c| c.migrations),
            scrub_writebacks: churn_stat(&|c| c.writebacks),
        };
        // Seed-averaged occupancy grid.
        let banks = outcomes
            .first()
            .map(|o| o.occupancy.share.len())
            .unwrap_or(0);
        let occupancy = (0..banks)
            .map(|b| {
                (0..num_vms)
                    .map(|v| {
                        outcomes
                            .iter()
                            .map(|o| o.occupancy.share[b][v])
                            .sum::<f64>()
                            / outcomes.len() as f64
                    })
                    .collect()
            })
            .collect();
        MixRun {
            vms,
            churn,
            replication,
            occupancy,
            noc_latency,
            measured_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consim_workload::WorkloadProfileBuilder;

    fn tiny_runner() -> ExperimentRunner {
        ExperimentRunner::new(RunOptions {
            refs_per_vm: 2_000,
            warmup_refs_per_vm: 500,
            seeds: vec![1, 2],
            track_footprint: false,
            prewarm_llc: false,
        })
    }

    fn tiny_profile(name: &str) -> WorkloadProfile {
        WorkloadProfileBuilder::new(name)
            .footprint_blocks(3_000)
            .build()
            .unwrap()
    }

    #[test]
    fn isolated_run_produces_aggregates() {
        let r = tiny_runner();
        let run = r
            .run_profiles(
                &[tiny_profile("a")],
                SchedulingPolicy::Affinity,
                SharingDegree::SharedBy(4),
            )
            .unwrap();
        assert_eq!(run.vms.len(), 1);
        assert_eq!(run.vms[0].runtime_cycles.n, 2);
        assert!(run.vms[0].runtime_cycles.mean > 0.0);
        assert!(run.vms[0].miss_latency.mean > 0.0);
        assert!(run.measured_cycles.mean > 0.0);
    }

    #[test]
    fn mix_run_aggregates_all_vms() {
        let r = tiny_runner();
        let profiles = vec![
            tiny_profile("a"),
            tiny_profile("b"),
            tiny_profile("c"),
            tiny_profile("d"),
        ];
        let run = r
            .run_profiles(
                &profiles,
                SchedulingPolicy::RoundRobin,
                SharingDegree::SharedBy(4),
            )
            .unwrap();
        assert_eq!(run.vms.len(), 4);
        assert_eq!(run.occupancy.len(), 4);
        assert_eq!(run.occupancy[0].len(), 4);
        for v in &run.vms {
            assert!(v.llc_miss_rate.mean >= 0.0 && v.llc_miss_rate.mean <= 1.0);
        }
    }

    #[test]
    fn mean_over_kind_averages_instances() {
        let mut run = tiny_runner()
            .run_profiles(
                &[tiny_profile("a"), tiny_profile("b")],
                SchedulingPolicy::Affinity,
                SharingDegree::SharedBy(4),
            )
            .unwrap();
        run.vms[0].kind = WorkloadKind::TpcH;
        run.vms[1].kind = WorkloadKind::TpcH;
        let m = run.mean_over_kind(WorkloadKind::TpcH, |v| v.runtime_cycles.mean);
        let expected = (run.vms[0].runtime_cycles.mean + run.vms[1].runtime_cycles.mean) / 2.0;
        assert!((m - expected).abs() < 1e-9);
        assert_eq!(
            run.mean_over_kind(WorkloadKind::TpcW, |v| v.runtime_cycles.mean),
            0.0
        );
    }

    #[test]
    fn options_from_env_parse() {
        // Injected lookup: no process-global env mutation, so this cannot
        // race against other tests running in parallel.
        let vars = |key: &str| match key {
            "CONSIM_REFS" => Some("1234".to_string()),
            "CONSIM_SEEDS" => Some("3".to_string()),
            _ => None,
        };
        let o = RunOptions::quick().from_env_with(vars);
        assert_eq!(o.refs_per_vm, 1234);
        assert_eq!(o.seeds, vec![1, 2, 3]);
    }

    #[test]
    fn options_from_env_ignores_garbage() {
        let vars = |key: &str| match key {
            "CONSIM_REFS" => Some("not-a-number".to_string()),
            "CONSIM_WARMUP" => Some(" 77 ".to_string()),
            _ => None,
        };
        let o = RunOptions::quick().from_env_with(vars);
        assert_eq!(o.refs_per_vm, RunOptions::quick().refs_per_vm);
        assert_eq!(o.warmup_refs_per_vm, 77);
    }

    #[test]
    fn quick_and_thorough_presets() {
        assert!(RunOptions::quick().refs_per_vm < RunOptions::thorough().refs_per_vm);
        assert!(RunOptions::thorough().seeds.len() >= 3);
    }

    #[test]
    fn malformed_env_values_are_rejected_not_misparsed() {
        // `CONSIM_THREADS=abc` must fall back (with a stderr warning, which
        // we can't capture here) rather than being misread as a number.
        assert_eq!(parse_u64_or_warn("CONSIM_THREADS", "abc"), None);
        assert_eq!(parse_u64_or_warn("CONSIM_THREADS", "-4"), None);
        assert_eq!(parse_u64_or_warn("CONSIM_THREADS", "4.5"), None);
        assert_eq!(parse_u64_or_warn("CONSIM_THREADS", ""), None);
        // Valid values (with surrounding whitespace) still parse.
        assert_eq!(parse_u64_or_warn("CONSIM_THREADS", " 8 "), Some(8));
        assert_eq!(parse_u64_or_warn("CONSIM_THREADS", "1"), Some(1));
    }

    #[test]
    fn runner_sink_receives_lifecycle_and_timing_events() {
        use consim_trace::{RingBufferSink, TraceEvent};

        let sink = std::sync::Arc::new(RingBufferSink::new(4_096));
        let runs = tiny_runner()
            .with_threads(2)
            .with_audit(true)
            .with_sink(sink.clone())
            .run_cells(&[
                cell("a", SchedulingPolicy::Affinity),
                cell("b", SchedulingPolicy::RoundRobin),
            ])
            .unwrap();
        assert_eq!(runs.len(), 2);
        let events = sink.snapshot();
        let count = |f: &dyn Fn(&TraceEvent) -> bool| events.iter().filter(|e| f(e)).count();
        // 2 cells x 2 seeds = 4 simulations.
        assert_eq!(count(&|e| matches!(e, TraceEvent::RunStarted { .. })), 4);
        assert_eq!(count(&|e| matches!(e, TraceEvent::RunCompleted { .. })), 4);
        assert_eq!(count(&|e| matches!(e, TraceEvent::AuditPassed { .. })), 4);
        assert_eq!(count(&|e| matches!(e, TraceEvent::CellCompleted { .. })), 4);
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::BatchCompleted { .. })),
            1
        );
        let batch = events
            .iter()
            .find(|e| matches!(e, TraceEvent::BatchCompleted { .. }))
            .unwrap();
        if let TraceEvent::BatchCompleted {
            jobs,
            workers,
            worker_utilization,
            ..
        } = batch
        {
            assert_eq!(*jobs, 4);
            assert_eq!(*workers, 2);
            assert!((0.0..=1.0).contains(worker_utilization));
        }
    }

    #[test]
    fn tracing_does_not_change_results() {
        use consim_trace::RingBufferSink;

        let cells = vec![cell("t", SchedulingPolicy::Affinity)];
        let plain = tiny_runner().with_threads(1).run_cells(&cells).unwrap();
        let traced = tiny_runner()
            .with_threads(1)
            .with_audit(true)
            .with_sink(std::sync::Arc::new(RingBufferSink::new(1_024)))
            .run_cells(&cells)
            .unwrap();
        assert_eq!(fingerprint(&plain[0]), fingerprint(&traced[0]));
    }

    fn cell(name: &str, policy: SchedulingPolicy) -> ExperimentCell {
        ExperimentCell::new(vec![tiny_profile(name)], policy, SharingDegree::SharedBy(4))
    }

    /// Per-VM metric fingerprint with exact (bit-level) float comparison.
    fn fingerprint(run: &MixRun) -> Vec<(u64, u64, u64)> {
        run.vms
            .iter()
            .map(|v| {
                (
                    v.runtime_cycles.mean.to_bits(),
                    v.miss_latency.mean.to_bits(),
                    v.llc_miss_rate.mean.to_bits(),
                )
            })
            .collect()
    }

    #[test]
    fn run_cells_matches_serial_bit_for_bit() {
        let cells = vec![
            cell("a", SchedulingPolicy::Affinity),
            cell("b", SchedulingPolicy::RoundRobin),
            cell("c", SchedulingPolicy::RrAffinity),
        ];
        let serial = tiny_runner().with_threads(1).run_cells(&cells).unwrap();
        let parallel = tiny_runner().with_threads(4).run_cells(&cells).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(fingerprint(s), fingerprint(p));
        }
    }

    #[test]
    fn run_cells_preserves_submission_order() {
        // Distinguish cells by VM count: 1, 2, 3 VMs.
        let cells: Vec<ExperimentCell> = (1..=3)
            .map(|n| {
                ExperimentCell::new(
                    (0..n).map(|i| tiny_profile(&format!("vm{i}"))).collect(),
                    SchedulingPolicy::Affinity,
                    SharingDegree::SharedBy(4),
                )
            })
            .collect();
        let runs = tiny_runner().with_threads(3).run_cells(&cells).unwrap();
        let vm_counts: Vec<usize> = runs.iter().map(|r| r.vms.len()).collect();
        assert_eq!(vm_counts, vec![1, 2, 3]);
    }

    #[test]
    fn run_profiles_delegates_to_batch_path() {
        // The single-cell path must produce the same aggregate as run_cells.
        let r = tiny_runner().with_threads(2);
        let via_single = r
            .run_profiles(
                &[tiny_profile("x")],
                SchedulingPolicy::Affinity,
                SharingDegree::SharedBy(4),
            )
            .unwrap();
        let via_batch = &r
            .run_cells(&[cell("x", SchedulingPolicy::Affinity)])
            .unwrap()[0];
        assert_eq!(fingerprint(&via_single), fingerprint(via_batch));
    }

    /// A scratch journal root, removed on drop so test reruns start clean.
    struct ScratchDir(std::path::PathBuf);
    impl ScratchDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("consim-runner-{tag}-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
        fn path(&self) -> &std::path::Path {
            &self.0
        }
    }
    impl Drop for ScratchDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn batch_cells() -> Vec<ExperimentCell> {
        vec![
            cell("a", SchedulingPolicy::Affinity),
            cell("b", SchedulingPolicy::RoundRobin),
            cell("c", SchedulingPolicy::RrAffinity),
        ]
    }

    #[test]
    fn journaled_batch_matches_unjournaled_and_resumes_from_records() {
        let scratch = ScratchDir::new("journal");
        let cells = batch_cells();
        let plain = tiny_runner().with_threads(1).run_cells(&cells).unwrap();
        let journaled = tiny_runner()
            .with_threads(1)
            .with_journal(scratch.path())
            .run_cells(&cells)
            .unwrap();
        for (p, j) in plain.iter().zip(&journaled) {
            assert_eq!(
                fingerprint(p),
                fingerprint(j),
                "journaling must not change results"
            );
        }
        // Second invocation: every job loads from the journal. Prove it by
        // arming the fault injector so that any job that actually simulates
        // (journal loads don't count) aborts the batch.
        let resumed = tiny_runner()
            .with_threads(2)
            .with_journal(scratch.path())
            .with_fault_after(0)
            .run_cells(&cells)
            .unwrap();
        for (p, r) in plain.iter().zip(&resumed) {
            assert_eq!(
                fingerprint(p),
                fingerprint(r),
                "resume must reuse journaled outcomes"
            );
        }
    }

    #[test]
    fn fault_injection_aborts_but_journals_completed_cells() {
        let scratch = ScratchDir::new("fault");
        let cells = batch_cells();
        let err = tiny_runner()
            .with_threads(1)
            .with_journal(scratch.path())
            .with_fault_after(2)
            .run_cells(&cells)
            .unwrap_err();
        assert!(err.to_string().contains("fault injected"), "{err}");
        let batch = std::fs::read_dir(scratch.path())
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.is_dir())
            .expect("fault must leave the batch directory behind");
        let records = std::fs::read_dir(&batch)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "bin")
            })
            .count();
        assert_eq!(records, 2, "exactly the completed jobs are journaled");
        // Recovery: the same batch without the fault finishes the rest and
        // matches an uninterrupted run bit for bit.
        let plain = tiny_runner().with_threads(1).run_cells(&cells).unwrap();
        let recovered = tiny_runner()
            .with_threads(1)
            .with_journal(scratch.path())
            .run_cells(&cells)
            .unwrap();
        for (p, r) in plain.iter().zip(&recovered) {
            assert_eq!(fingerprint(p), fingerprint(r));
        }
    }

    #[test]
    fn different_batches_use_disjoint_journal_directories() {
        let scratch = ScratchDir::new("digest");
        let runner = tiny_runner().with_threads(1).with_journal(scratch.path());
        runner.run_cells(&batch_cells()).unwrap();
        runner
            .run_cells(&[cell("other", SchedulingPolicy::Affinity)])
            .unwrap();
        let batches = std::fs::read_dir(scratch.path())
            .unwrap()
            .filter(|e| e.as_ref().unwrap().path().is_dir())
            .count();
        assert_eq!(
            batches, 2,
            "a changed batch must not reuse the old directory"
        );
    }

    #[test]
    fn mid_cell_checkpoints_resume_bit_identically() {
        let scratch = ScratchDir::new("ckpt");
        let cells = vec![cell("k", SchedulingPolicy::Affinity)];
        let plain = tiny_runner().with_threads(1).run_cells(&cells).unwrap();
        // Fault with zero completed jobs allowed: the worker still finishes
        // its in-flight job, writing checkpoints along the way... instead,
        // exercise the checkpoint path directly: run with frequent
        // checkpointing, then corrupt nothing and verify identity.
        let checkpointed = tiny_runner()
            .with_threads(1)
            .with_journal(scratch.path())
            .with_checkpoint_every(700)
            .run_cells(&cells)
            .unwrap();
        assert_eq!(fingerprint(&plain[0]), fingerprint(&checkpointed[0]));
        // Now simulate a crash mid-cell: manufacture the exact on-disk
        // state the crashed invocation leaves behind (a .ckpt, no .bin)
        // and let the runner resume it to completion.
        let runner = tiny_runner().with_threads(1);
        let jobs: Vec<(usize, SimulationConfig)> = runner
            .options
            .seeds
            .iter()
            .map(|&s| (0usize, runner.cell_config(&cells[0], s).unwrap()))
            .collect();
        let batch = crate::journal::batch_dir(scratch.path(), &jobs);
        std::fs::create_dir_all(&batch).unwrap();
        for (ji, (_, cfg)) in jobs.iter().enumerate() {
            std::fs::remove_file(crate::journal::outcome_path(&batch, ji)).ok();
            let mut sim = Simulation::new(cfg.clone()).unwrap();
            assert_eq!(sim.advance(1_500, None).unwrap(), RunStatus::Running);
            crate::journal::write_checkpoint(&crate::journal::checkpoint_path(&batch, ji), &sim)
                .unwrap();
        }
        let resumed = runner
            .with_journal(scratch.path())
            .run_cells(&cells)
            .unwrap();
        assert_eq!(
            fingerprint(&plain[0]),
            fingerprint(&resumed[0]),
            "a run resumed from a mid-cell checkpoint must be bit-identical"
        );
    }

    #[test]
    fn prewarm_checkpoint_cache_is_bit_identical_to_direct_prewarm() {
        let options = RunOptions {
            refs_per_vm: 1_500,
            warmup_refs_per_vm: 300,
            seeds: vec![1, 2],
            track_footprint: false,
            prewarm_llc: true,
        };
        let cells = vec![
            cell("p", SchedulingPolicy::Affinity),
            cell("q", SchedulingPolicy::Affinity),
        ];
        let cached = ExperimentRunner::new(options.clone())
            .with_threads(1)
            .run_cells(&cells)
            .unwrap();
        // Reference: prewarm from scratch per job by bypassing the cache
        // (a fresh runner whose cache we poison with nothing — build each
        // simulation directly).
        let reference: Vec<MixRun> = {
            let runner = ExperimentRunner::new(options.clone()).with_threads(1);
            cells
                .iter()
                .map(|c| {
                    let outcomes: Vec<_> = runner
                        .options
                        .seeds
                        .iter()
                        .map(|&s| {
                            let cfg = runner.cell_config(c, s).unwrap();
                            Simulation::new(cfg).unwrap().run().unwrap()
                        })
                        .collect();
                    runner.aggregate(&c.profiles, &outcomes)
                })
                .collect()
        };
        for (c, r) in cached.iter().zip(&reference) {
            assert_eq!(
                fingerprint(c),
                fingerprint(r),
                "prewarm cache must not change results"
            );
        }
        // The cache really is shared and keyed: both cells × both seeds hit
        // distinct (profile, seed) canonical configs, so 4 entries.
        let runner = ExperimentRunner::new(options).with_threads(1);
        runner.run_cells(&cells).unwrap();
        assert_eq!(runner.prewarm_cache.lock().unwrap().len(), 4);
    }

    #[test]
    fn invalid_cell_reports_error_not_panic() {
        // 17 VMs on a 16-core machine cannot be placed.
        let too_many = ExperimentCell::new(
            (0..17).map(|i| tiny_profile(&format!("vm{i}"))).collect(),
            SchedulingPolicy::Affinity,
            SharingDegree::SharedBy(4),
        );
        assert!(tiny_runner().run_cells(&[too_many]).is_err());
    }
}
