//! Plain-text tables for figure/table regeneration output.

use std::fmt;

/// A labeled numeric table, printed in aligned plain text.
///
/// Used by the bench harness to print the same rows/series the paper's
/// figures plot.
///
/// # Examples
///
/// ```
/// use consim::report::TextTable;
///
/// let mut t = TextTable::new("Fig 2 (excerpt)", &["shared", "private"]);
/// t.row("TPC-W", &[1.0, 1.42]);
/// t.row("TPC-H", &[1.0, 1.08]);
/// let text = t.to_string();
/// assert!(text.contains("TPC-W"));
/// assert!(text.contains("1.420"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
    precision: usize,
}

impl TextTable {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            precision: 3,
        }
    }

    /// Sets the number of decimal places (default 3).
    pub fn precision(&mut self, digits: usize) -> &mut Self {
        self.precision = digits;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the value count does not match the column count.
    pub fn row(&mut self, label: impl Into<String>, values: &[f64]) -> &mut Self {
        assert_eq!(
            values.len(),
            self.columns.len(),
            "row width must match columns"
        );
        self.rows.push((label.into(), values.to_vec()));
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for TextTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let label_width = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(4))
            .max()
            .unwrap_or(4);
        let col_width = self
            .columns
            .iter()
            .map(|c| c.len())
            .max()
            .unwrap_or(8)
            .max(self.precision + 5);

        writeln!(f, "=== {} ===", self.title)?;
        write!(f, "{:label_width$}", "")?;
        for c in &self.columns {
            write!(f, " {c:>col_width$}")?;
        }
        writeln!(f)?;
        for (label, values) in &self.rows {
            write!(f, "{label:label_width$}")?;
            for v in values {
                write!(f, " {v:>col_width$.prec$}", prec = self.precision)?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = TextTable::new("T", &["a", "b"]);
        t.row("x", &[1.0, 2.0]).row("longer", &[3.5, 4.25]);
        let s = t.to_string();
        assert!(s.contains("=== T ==="));
        assert!(s.contains("1.000"));
        assert!(s.contains("4.250"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn precision_is_adjustable() {
        let mut t = TextTable::new("p", &["v"]);
        t.precision(1).row("r", &[0.123]);
        assert!(t.to_string().contains("0.1"));
        assert!(!t.to_string().contains("0.123"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        TextTable::new("T", &["a", "b"]).row("x", &[1.0]);
    }

    #[test]
    fn empty_table_renders_header_only() {
        let t = TextTable::new("empty", &["c"]);
        assert!(t.is_empty());
        assert!(t.to_string().contains("empty"));
    }
}
