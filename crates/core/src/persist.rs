//! Persistence codecs for the experiment layers: on-disk outcome records,
//! mid-run checkpoint files, and configuration content digests.
//!
//! The job execution layer (`consim-job`) stores two kinds of record per
//! job: the serialized [`SimulationOutcome`] of a completed job, and a
//! transient mid-run [`Simulation::checkpoint`] rewritten every
//! `checkpoint_every` accesses and deleted when the job completes. This
//! module owns the byte formats and the atomic commit discipline; file
//! naming and directory layout belong to the journal in `consim-job`.
//!
//! Every write goes to a uniquely named temporary sibling
//! (`<name>.tmp<N>`, preserving the record's own extension so concurrent
//! `.bin` and `.ckpt` commits for the same job can never collide) and is
//! committed with an atomic rename, so a crash can never leave a
//! half-written record that a resume would trust (a torn temporary is
//! simply ignored and swept by the journal; a torn committed record
//! cannot exist). Records are checksummed by the `consim-snap` container,
//! so bit rot is reported as [`SimError::Snapshot`] rather than read back
//! as plausible numbers.

use crate::engine::{Simulation, SimulationConfig, SimulationOutcome};
use crate::metrics::{OccupancySnapshot, ReplicationSnapshot, VmMetrics};
use crate::snapshot;
use consim_sched::Placement;
use consim_snap::{fnv1a, SectionBuf, SectionReader, SnapReader, SnapWriter, Snapshot};
use consim_types::{CoreId, GlobalThreadId, SimError, SnapshotErrorKind, ThreadId, VmId};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps an I/O failure into the snapshot error taxonomy with the path
/// that failed (bare `std::io::Error` messages omit it).
pub fn io_error(action: &str, path: &Path, err: std::io::Error) -> SimError {
    SimError::snapshot(
        SnapshotErrorKind::Io,
        format!("{action} {}: {err}", path.display()),
    )
}

/// Content digest of one job's full configuration: machine, workloads,
/// scheduling policy, seed, and run quotas — everything that shapes the
/// outcome, and nothing process-local (the trace sink is excluded by the
/// snapshot codec). Two configurations digest equal exactly when they
/// would produce bit-identical outcomes, so the digest identifies a job's
/// journal records across invocations and across differently composed
/// batches.
pub fn config_digest(config: &SimulationConfig) -> u64 {
    let mut buf = SectionBuf::new();
    snapshot::save_config(config, &mut buf);
    fnv1a(buf.as_bytes())
}

/// The prewarm-cache key of `config`: a digest over everything that
/// shapes the prewarmed machine state, ignoring run quotas (see
/// `consim-job`'s prewarm-checkpoint cache).
pub fn prewarm_key(config: &SimulationConfig) -> u64 {
    snapshot::prewarm_key(config)
}

/// The canonical configuration whose prewarmed checkpoint serves every
/// job sharing a [`prewarm_key`]: run quotas zeroed, trace detached.
pub fn prewarm_canonical_config(config: &SimulationConfig) -> SimulationConfig {
    snapshot::prewarm_canonical_config(config)
}

/// Process-unique temporary-name counter: concurrent writers staging
/// records next to each other (persistent workers journaling in parallel)
/// can never interleave bytes in a shared temporary.
static STAGE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// The staged temporary sibling for `path` under `token`: the full file
/// name plus a `.tmp<token>` suffix. Keeping the record's own extension
/// in the name is load-bearing — `Path::with_extension("tmp")` would
/// collapse `job-X.bin` and `job-X.ckpt` onto one temporary.
fn stage_path(path: &Path, token: u64) -> PathBuf {
    let mut name = path
        .file_name()
        .map(std::ffi::OsStr::to_os_string)
        .unwrap_or_default();
    name.push(format!(".tmp{token}"));
    path.with_file_name(name)
}

/// Serializes via `fill`, then commits atomically (unique tmp + rename).
fn persist(
    path: &Path,
    fill: impl FnOnce(&mut Vec<u8>) -> Result<(), SimError>,
) -> Result<(), SimError> {
    let mut bytes = Vec::new();
    fill(&mut bytes)?;
    let tmp = stage_path(path, STAGE_COUNTER.fetch_add(1, Ordering::Relaxed));
    fs::write(&tmp, &bytes).map_err(|e| io_error("write", &tmp, e))?;
    fs::rename(&tmp, path).map_err(|e| io_error("commit", path, e))
}

/// Writes a mid-run checkpoint of `sim` to `path` atomically.
///
/// # Errors
///
/// Returns [`SimError::Snapshot`] on serialization or I/O failure.
pub fn write_checkpoint(path: &Path, sim: &Simulation) -> Result<(), SimError> {
    persist(path, |bytes| sim.checkpoint(bytes))
}

/// Resumes a simulation from the checkpoint file at `path`. The trace
/// sink is process-local and excluded from checkpoints; reattach it with
/// [`Simulation::set_trace`].
///
/// # Errors
///
/// Returns [`SimError::Snapshot`] on I/O failure or a corrupt record.
pub fn read_checkpoint(path: &Path) -> Result<Simulation, SimError> {
    let bytes = fs::read(path).map_err(|e| io_error("read", path, e))?;
    Simulation::resume(bytes.as_slice())
}

/// Serializes a completed outcome into a standalone checksummed record
/// (the exact bytes [`write_outcome`] commits to disk) — the wire form a
/// result-streaming daemon ships to clients.
///
/// # Errors
///
/// Returns [`SimError::Snapshot`] on serialization failure.
pub fn outcome_to_bytes(outcome: &SimulationOutcome) -> Result<Vec<u8>, SimError> {
    let mut bytes = Vec::new();
    let mut writer = SnapWriter::new(&mut bytes)?;
    let mut buf = SectionBuf::new();
    save_outcome(outcome, &mut buf);
    writer.section("outcome", &buf)?;
    writer.finish()?;
    Ok(bytes)
}

/// Decodes an outcome record produced by [`outcome_to_bytes`] (or read
/// from a journal file).
///
/// # Errors
///
/// Returns [`SimError::Snapshot`] on a corrupt/truncated record (the
/// `consim-snap` checksum catches bit rot).
pub fn outcome_from_bytes(bytes: &[u8]) -> Result<SimulationOutcome, SimError> {
    let mut snap = SnapReader::from_bytes(bytes.to_vec())?;
    let mut r = snap.section("outcome")?;
    let outcome = restore_outcome(&mut r)?;
    if r.remaining() != 0 {
        return Err(SimError::snapshot(
            SnapshotErrorKind::Corrupt,
            format!(
                "{} unconsumed bytes at the end of a journal record",
                r.remaining()
            ),
        ));
    }
    snap.expect_end()?;
    Ok(outcome)
}

/// Serializes a full configuration into a standalone checksummed record:
/// the wire form a daemon accepts in `Submit` requests and the payload of
/// on-disk submission (`.spec`) records. The process-local trace sink is
/// excluded by the snapshot codec, so these bytes digest identically to
/// [`config_digest`] of the decoded configuration.
///
/// # Errors
///
/// Returns [`SimError::Snapshot`] on serialization failure.
pub fn config_to_bytes(config: &SimulationConfig) -> Result<Vec<u8>, SimError> {
    let mut bytes = Vec::new();
    let mut writer = SnapWriter::new(&mut bytes)?;
    let mut buf = SectionBuf::new();
    snapshot::save_config(config, &mut buf);
    writer.section("config", &buf)?;
    writer.finish()?;
    Ok(bytes)
}

/// Decodes a configuration record produced by [`config_to_bytes`].
/// Decoding goes through the validated builders, so a corrupt record
/// yields [`SimError::Snapshot`] rather than an unchecked configuration.
///
/// # Errors
///
/// Returns [`SimError::Snapshot`] on a corrupt/truncated record.
pub fn config_from_bytes(bytes: &[u8]) -> Result<SimulationConfig, SimError> {
    let mut snap = SnapReader::from_bytes(bytes.to_vec())?;
    let mut r = snap.section("config")?;
    let config = snapshot::restore_config(&mut r)?;
    if r.remaining() != 0 {
        return Err(SimError::snapshot(
            SnapshotErrorKind::Corrupt,
            format!(
                "{} unconsumed bytes at the end of a configuration record",
                r.remaining()
            ),
        ));
    }
    snap.expect_end()?;
    Ok(config)
}

/// Writes a submission (`.spec`) record to `path` atomically: the
/// experiment-cell tag plus the full configuration. A daemon journals one
/// of these *before* acknowledging a submission, so a crash between ack
/// and completion can always re-enqueue the job on restart.
///
/// # Errors
///
/// Returns [`SimError::Snapshot`] on serialization or I/O failure.
pub fn write_spec(path: &Path, cell: usize, config: &SimulationConfig) -> Result<(), SimError> {
    persist(path, |bytes| {
        let mut writer = SnapWriter::new(bytes)?;
        let mut buf = SectionBuf::new();
        buf.put_usize(cell);
        snapshot::save_config(config, &mut buf);
        writer.section("spec", &buf)?;
        writer.finish()?;
        Ok(())
    })
}

/// Reads a submission record back as `(cell, config)`.
///
/// # Errors
///
/// Returns [`SimError::Snapshot`] on I/O failure or a corrupt record.
pub fn read_spec(path: &Path) -> Result<(usize, SimulationConfig), SimError> {
    let bytes = fs::read(path).map_err(|e| io_error("read", path, e))?;
    let mut snap = SnapReader::from_bytes(bytes)?;
    let mut r = snap.section("spec")?;
    let cell = r.get_usize()?;
    let config = snapshot::restore_config(&mut r)?;
    if r.remaining() != 0 {
        return Err(SimError::snapshot(
            SnapshotErrorKind::Corrupt,
            format!(
                "{} unconsumed bytes at the end of a submission record",
                r.remaining()
            ),
        ));
    }
    snap.expect_end()?;
    Ok((cell, config))
}

/// Writes a completed-outcome record to `path` atomically.
///
/// # Errors
///
/// Returns [`SimError::Snapshot`] on serialization or I/O failure.
pub fn write_outcome(path: &Path, outcome: &SimulationOutcome) -> Result<(), SimError> {
    persist(path, |bytes| {
        *bytes = outcome_to_bytes(outcome)?;
        Ok(())
    })
}

/// Reads a completed-outcome record back.
///
/// # Errors
///
/// Returns [`SimError::Snapshot`] on I/O failure or a corrupt/truncated
/// record (the `consim-snap` checksum catches bit rot).
pub fn read_outcome(path: &Path) -> Result<SimulationOutcome, SimError> {
    let bytes = fs::read(path).map_err(|e| io_error("read", path, e))?;
    outcome_from_bytes(&bytes)
}

fn save_outcome(out: &SimulationOutcome, w: &mut SectionBuf) {
    w.put_usize(out.vm_metrics.len());
    for m in &out.vm_metrics {
        m.save(w);
    }
    w.put_u64(out.replication.total_lines);
    w.put_u64(out.replication.replicated_lines);
    w.put_usize(out.occupancy.share.len());
    for bank in &out.occupancy.share {
        w.put_usize(bank.len());
        for &share in bank {
            w.put_f64(share);
        }
    }
    out.noc.save(w);
    out.protocol.save(w);
    save_placement(&out.placement, w);
    w.put_u64(out.measured_cycles);
    w.put_f64(out.dircache_hit_rate);
    w.put_f64(out.noc_mean_utilization);
    w.put_f64(out.noc_peak_utilization);
    match &out.churn {
        None => w.put_bool(false),
        Some(s) => {
            w.put_bool(true);
            for v in [
                s.spawns,
                s.retires,
                s.migrations,
                s.l0_lines_invalidated,
                s.l1_lines_invalidated,
                s.writebacks,
            ] {
                w.put_u64(v);
            }
        }
    }
}

fn restore_outcome(r: &mut SectionReader<'_>) -> Result<SimulationOutcome, SimError> {
    let num_vms = r.get_usize()?;
    let mut vm_metrics = Vec::with_capacity(num_vms.min(1024));
    for _ in 0..num_vms {
        let mut m = VmMetrics::default();
        m.restore(r)?;
        vm_metrics.push(m);
    }
    let replication = ReplicationSnapshot {
        total_lines: r.get_u64()?,
        replicated_lines: r.get_u64()?,
    };
    let banks = r.get_usize()?;
    let mut share = Vec::with_capacity(banks.min(1024));
    for _ in 0..banks {
        let vms = r.get_usize()?;
        let mut row = Vec::with_capacity(vms.min(1024));
        for _ in 0..vms {
            row.push(r.get_f64()?);
        }
        share.push(row);
    }
    let occupancy = OccupancySnapshot { share };
    let mut noc = consim_noc::NocStats::default();
    noc.restore(r)?;
    let mut protocol = consim_coherence::ProtocolStats::default();
    protocol.restore(r)?;
    let placement = restore_placement(r)?;
    Ok(SimulationOutcome {
        vm_metrics,
        replication,
        occupancy,
        noc,
        protocol,
        placement,
        measured_cycles: r.get_u64()?,
        dircache_hit_rate: r.get_f64()?,
        noc_mean_utilization: r.get_f64()?,
        noc_peak_utilization: r.get_f64()?,
        churn: if r.get_bool()? {
            Some(crate::churn::ChurnStats {
                spawns: r.get_u64()?,
                retires: r.get_u64()?,
                migrations: r.get_u64()?,
                l0_lines_invalidated: r.get_u64()?,
                l1_lines_invalidated: r.get_u64()?,
                writebacks: r.get_u64()?,
            })
        } else {
            None
        },
    })
}

fn save_placement(p: &Placement, w: &mut SectionBuf) {
    w.put_usize(p.num_vms());
    for vm in 0..p.num_vms() {
        let vm = VmId::new(vm);
        w.put_usize(p.threads_of_vm(vm));
        for t in 0..p.threads_of_vm(vm) {
            let core = p.core_of(GlobalThreadId::new(vm, ThreadId::new(t)));
            w.put_usize(core.index());
        }
    }
    snapshot::save_policy(p.policy(), w);
}

fn restore_placement(r: &mut SectionReader<'_>) -> Result<Placement, SimError> {
    let num_vms = r.get_usize()?;
    let mut core_of = Vec::with_capacity(num_vms.min(1024));
    for _ in 0..num_vms {
        let threads = r.get_usize()?;
        let mut cores = Vec::with_capacity(threads.min(1024));
        for _ in 0..threads {
            cores.push(CoreId::new(r.get_usize()?));
        }
        core_of.push(cores);
    }
    let policy = snapshot::restore_policy(r)?;
    Ok(Placement::from_parts(core_of, policy))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SimulationConfig;
    use consim_workload::WorkloadProfileBuilder;

    fn outcome() -> SimulationOutcome {
        let profile = WorkloadProfileBuilder::new("j")
            .footprint_blocks(3_000)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.workload(profile)
            .refs_per_vm(1_500)
            .warmup_refs_per_vm(300)
            .track_footprint(true)
            .seed(12);
        Simulation::new(b.build().unwrap()).unwrap().run().unwrap()
    }

    /// Exact equality over everything the aggregator and figures consume.
    fn assert_identical(a: &SimulationOutcome, b: &SimulationOutcome) {
        assert_eq!(a.vm_metrics.len(), b.vm_metrics.len());
        for (x, y) in a.vm_metrics.iter().zip(&b.vm_metrics) {
            let mut bx = SectionBuf::new();
            let mut by = SectionBuf::new();
            x.save(&mut bx);
            y.save(&mut by);
            assert_eq!(bx.as_bytes(), by.as_bytes());
        }
        assert_eq!(a.replication.total_lines, b.replication.total_lines);
        assert_eq!(
            a.replication.replicated_lines,
            b.replication.replicated_lines
        );
        assert_eq!(a.occupancy.share, b.occupancy.share);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.measured_cycles, b.measured_cycles);
        assert_eq!(a.dircache_hit_rate.to_bits(), b.dircache_hit_rate.to_bits());
        assert_eq!(
            a.noc_mean_utilization.to_bits(),
            b.noc_mean_utilization.to_bits()
        );
        assert_eq!(
            a.noc_peak_utilization.to_bits(),
            b.noc_peak_utilization.to_bits()
        );
    }

    #[test]
    fn outcome_record_round_trips_exactly() {
        let dir = std::env::temp_dir().join(format!("consim-persist-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let out = outcome();
        let path = dir.join("job-0000000000000007.bin");
        write_outcome(&path, &out).unwrap();
        let back = read_outcome(&path).unwrap();
        assert_identical(&out, &back);
        let leftovers = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .file_name()
                    .to_string_lossy()
                    .contains(".tmp")
            })
            .count();
        assert_eq!(leftovers, 0, "commit must consume the temporary");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_record_is_a_typed_error() {
        let dir = std::env::temp_dir().join(format!("consim-persist-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("job-0000000000000000.bin");
        write_outcome(&path, &outcome()).unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = read_outcome(&path).unwrap_err();
        assert!(err.snapshot_kind().is_some(), "{err}");
        let missing = read_outcome(&dir.join("job-0000000000000063.bin")).unwrap_err();
        assert_eq!(missing.snapshot_kind(), Some(SnapshotErrorKind::Io));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn staged_temporaries_never_collide_across_record_kinds() {
        // Regression: `Path::with_extension("tmp")` mapped `job-X.bin` and
        // `job-X.ckpt` onto the *same* temporary, so a persistent worker
        // committing an outcome while another invocation checkpointed the
        // same job could rename each other's half-written bytes into place.
        let bin = Path::new("/j/job-0007.bin");
        let ckpt = Path::new("/j/job-0007.ckpt");
        assert_eq!(
            bin.with_extension("tmp"),
            ckpt.with_extension("tmp"),
            "the old scheme really did collide"
        );
        assert_ne!(stage_path(bin, 0), stage_path(ckpt, 0));
        assert_eq!(stage_path(bin, 3), Path::new("/j/job-0007.bin.tmp3"));
        // The counter makes concurrent same-record stages distinct too.
        assert_ne!(stage_path(bin, 1), stage_path(bin, 2));
    }

    #[test]
    fn config_bytes_round_trip_preserves_digest() {
        let profile = WorkloadProfileBuilder::new("w")
            .footprint_blocks(2_500)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.workload(profile)
            .refs_per_vm(400)
            .warmup_refs_per_vm(100)
            .seed(99);
        let cfg = b.build().unwrap();
        let bytes = config_to_bytes(&cfg).unwrap();
        let back = config_from_bytes(&bytes).unwrap();
        assert_eq!(config_digest(&cfg), config_digest(&back));
        assert_eq!(bytes, config_to_bytes(&back).unwrap());
        // Corruption is a typed error, never a panic or silent decode.
        let mut bad = bytes.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x10;
        assert!(config_from_bytes(&bad)
            .unwrap_err()
            .snapshot_kind()
            .is_some());
        assert!(config_from_bytes(&bytes[..bytes.len() - 3])
            .unwrap_err()
            .snapshot_kind()
            .is_some());
    }

    #[test]
    fn spec_record_round_trips_cell_and_config() {
        let dir = std::env::temp_dir().join(format!("consim-persist-spec-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let profile = WorkloadProfileBuilder::new("sp")
            .footprint_blocks(2_000)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.workload(profile).refs_per_vm(250).seed(5);
        let cfg = b.build().unwrap();
        let path = dir.join("job-00.spec");
        write_spec(&path, 7, &cfg).unwrap();
        let (cell, back) = read_spec(&path).unwrap();
        assert_eq!(cell, 7);
        assert_eq!(config_digest(&cfg), config_digest(&back));
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn outcome_bytes_match_journal_record_bytes() {
        let dir = std::env::temp_dir().join(format!("consim-persist-ob-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let out = outcome();
        let path = dir.join("job-0.bin");
        write_outcome(&path, &out).unwrap();
        assert_eq!(
            fs::read(&path).unwrap(),
            outcome_to_bytes(&out).unwrap(),
            "wire bytes and journal bytes must be the same record format"
        );
        assert_identical(
            &out,
            &outcome_from_bytes(&outcome_to_bytes(&out).unwrap()).unwrap(),
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn config_digest_tracks_configuration_content() {
        let cfg = |seed: u64| {
            let profile = WorkloadProfileBuilder::new("d")
                .footprint_blocks(2_000)
                .build()
                .unwrap();
            let mut b = SimulationConfig::builder();
            b.workload(profile).refs_per_vm(100).seed(seed);
            b.build().unwrap()
        };
        assert_eq!(
            config_digest(&cfg(1)),
            config_digest(&cfg(1)),
            "identical configurations share a digest"
        );
        assert_ne!(
            config_digest(&cfg(1)),
            config_digest(&cfg(2)),
            "a different seed must not reuse the digest"
        );
    }
}
