//! `consim` — the server-consolidation CMP simulation engine.
//!
//! This crate is the primary contribution of the reproduction: it assembles
//! the substrates (caches, mesh interconnect, directory coherence, workload
//! generators, scheduling policies) into the machine of *An Evaluation of
//! Server Consolidation Workloads for Multi-Core Designs* (IISWC 2007) and
//! runs consolidated workload mixes on it, producing the paper's metrics:
//!
//! * per-VM **runtime** (cycles to a fixed transaction quota, normalized to
//!   the same workload run in isolation);
//! * per-VM **LLC miss rate** (fraction of private-cache misses that must be
//!   satisfied off-chip);
//! * per-VM **average miss latency** (cycles to satisfy a miss to the last
//!   level of private cache);
//! * LLC **replication** and per-workload **occupancy** snapshots.
//!
//! # Architecture
//!
//! * [`machine`] — placement of LLC banks and memory controllers on the
//!   mesh, node mapping;
//! * [`engine`] — the discrete-event simulator ([`engine::Simulation`]):
//!   in-order cores issue references from their bound workload threads; each
//!   private-cache miss becomes a directory transaction with every message
//!   routed (and contended) on the mesh;
//! * [`metrics`] — per-VM counters and cache snapshots;
//! * [`mix`] — the paper's Table IV workload mixes;
//! * [`persist`] — on-disk outcome/checkpoint codecs and configuration
//!   content digests consumed by the job execution layer (`consim-job`,
//!   which hosts the `ExperimentRunner` facade: isolation baselines,
//!   homogeneous/heterogeneous mixes, sharing-degree sweeps, multi-seed
//!   statistical runs in the Alameldeen–Wood style);
//! * [`report`] — plain-text tables matching the paper's figures;
//! * [`stats`] — mean/std/confidence aggregation across seeds.
//!
//! # Examples
//!
//! Run SPECjbb and TPC-H together (2+2 instances would be the paper's
//! Mix 5; here one of each on half the machine quota for brevity):
//!
//! ```
//! use consim::engine::{Simulation, SimulationConfig};
//! use consim_sched::SchedulingPolicy;
//! use consim_types::config::{MachineConfig, SharingDegree};
//! use consim_workload::WorkloadKind;
//!
//! let config = SimulationConfig::builder()
//!     .machine(MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4)))
//!     .policy(SchedulingPolicy::Affinity)
//!     .workload(WorkloadKind::SpecJbb.profile())
//!     .workload(WorkloadKind::TpcH.profile())
//!     .refs_per_vm(2_000)
//!     .warmup_refs_per_vm(1_000)
//!     .seed(1)
//!     .build()?;
//! let outcome = Simulation::new(config)?.run()?;
//! assert_eq!(outcome.vm_metrics.len(), 2);
//! assert!(outcome.vm_metrics[0].runtime_cycles() > 0);
//! # Ok::<(), consim_types::SimError>(())
//! ```

pub mod audit;
pub mod churn;
pub mod engine;
pub mod hierarchy;
pub mod machine;
pub mod metrics;
pub mod mix;
pub mod observe;
pub mod persist;
pub mod qos;
pub mod report;
mod snapshot;
pub mod stats;

pub use audit::audit_outcome;
pub use churn::{ChurnAction, ChurnDecision, ChurnStats};
pub use engine::{
    RunStatus, Simulation, SimulationConfig, SimulationConfigBuilder, SimulationOutcome,
    TraceConfig,
};
pub use metrics::{MissSource, OccupancySnapshot, ReplicationSnapshot, VmMetrics};
pub use mix::{Mix, MixId};
pub use observe::{AccessStep, StepObserver, StepOutcome};
pub use qos::{QosController, RepartitionDecision, VmClass};
pub use stats::Summary;
