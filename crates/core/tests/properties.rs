//! Randomized tests over the full simulation engine: random small profiles,
//! every policy and sharing degree, with structural invariants checked on
//! the outcome. Configurations are drawn from seeded `SimRng` streams so
//! every run is reproducible.

use consim::engine::{Simulation, SimulationConfig};
use consim_sched::SchedulingPolicy;
use consim_types::config::{MachineConfig, SharingDegree};
use consim_types::SimRng;
use consim_workload::{WorkloadProfile, WorkloadProfileBuilder};

const POLICIES: [SchedulingPolicy; 4] = [
    SchedulingPolicy::RoundRobin,
    SchedulingPolicy::Affinity,
    SchedulingPolicy::RrAffinity,
    SchedulingPolicy::Random,
];

const SHARINGS: [SharingDegree; 5] = [
    SharingDegree::Private,
    SharingDegree::SharedBy(2),
    SharingDegree::SharedBy(4),
    SharingDegree::SharedBy(8),
    SharingDegree::FullyShared,
];

fn random_profile(rng: &mut SimRng) -> WorkloadProfile {
    let seed_tag = rng.below(1000);
    WorkloadProfileBuilder::new(format!("prop{seed_tag}"))
        .footprint_blocks(3_000 + rng.below(37_000))
        .shared_fraction(0.1 + 0.8 * rng.unit())
        .shared_access_prob(0.9 * rng.unit())
        .shared_write_prob(0.4 * rng.unit())
        .handoff_access_prob(0.5 * rng.unit())
        .handoff_segments(8)
        .handoff_segment_blocks(16)
        .build()
        .expect("generated profile in valid ranges")
}

/// Any valid (profiles, policy, sharing, seed) combination must run to
/// completion with balanced, in-range metrics.
#[test]
fn engine_invariants_hold_for_random_configs() {
    let mut rng = SimRng::from_seed(0xE61);
    for _case in 0..24 {
        let profiles: Vec<WorkloadProfile> = (0..1 + rng.index(3))
            .map(|_| random_profile(&mut rng))
            .collect();
        let policy = POLICIES[rng.index(POLICIES.len())];
        let sharing = SHARINGS[rng.index(SHARINGS.len())];
        let seed = rng.below(1_000);

        let mut b = SimulationConfig::builder();
        b.machine(MachineConfig::paper_default().with_sharing(sharing))
            .policy(policy)
            .refs_per_vm(1_500)
            .warmup_refs_per_vm(300)
            .seed(seed);
        for p in &profiles {
            b.workload(p.clone());
        }
        let out = Simulation::new(b.build().unwrap()).unwrap().run().unwrap();

        assert_eq!(out.vm_metrics.len(), profiles.len());
        for m in &out.vm_metrics {
            // Every reference is accounted for exactly once.
            assert_eq!(m.l0_hits + m.l1_hits + m.l1_misses, m.refs);
            // Every miss is classified exactly once.
            let classified = m.c2c_l1_clean
                + m.c2c_l1_dirty
                + m.llc_local_hits
                + m.llc_remote_clean
                + m.llc_remote_dirty
                + m.memory_fetches
                + m.upgrades;
            assert_eq!(classified, m.l1_misses);
            assert!(m.refs >= 1_500);
            assert!(m.completion.is_some());
            assert!(m.llc_miss_rate() >= 0.0 && m.llc_miss_rate() <= 1.0);
            assert!(m.c2c_fraction() >= 0.0 && m.c2c_fraction() <= 1.0);
            assert!(m.instructions >= m.refs);
            // Latency floor: a classified (non-upgrade) miss at least pays
            // the directory round trip.
            if m.l1_misses > m.upgrades {
                assert!(m.miss_latency.max() >= 6);
            }
        }
        // Occupancy shares are per-bank fractions.
        for bank in &out.occupancy.share {
            let sum: f64 = bank.iter().sum();
            assert!((0.0..=1.0 + 1e-9).contains(&sum));
        }
        // Replication is impossible with a single bank.
        if sharing == SharingDegree::FullyShared {
            assert_eq!(out.replication.replicated_lines, 0);
        }
        assert!(out.dircache_hit_rate >= 0.0 && out.dircache_hit_rate <= 1.0);
        assert!(out.noc_peak_utilization >= out.noc_mean_utilization);
    }
}

/// Determinism as a property: any configuration reruns bit-identically.
#[test]
fn engine_is_deterministic_for_random_configs() {
    let mut rng = SimRng::from_seed(0xE62);
    for _case in 0..12 {
        let profile = random_profile(&mut rng);
        let policy = POLICIES[rng.index(POLICIES.len())];
        let seed = rng.below(100);
        let run = || {
            let mut b = SimulationConfig::builder();
            b.machine(MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4)))
                .policy(policy)
                .workload(profile.clone())
                .refs_per_vm(1_000)
                .warmup_refs_per_vm(0)
                .seed(seed);
            let out = Simulation::new(b.build().unwrap()).unwrap().run().unwrap();
            (
                out.measured_cycles,
                out.vm_metrics[0].l1_misses,
                out.vm_metrics[0].miss_latency.total(),
                out.noc.packets,
            )
        };
        assert_eq!(run(), run());
    }
}
