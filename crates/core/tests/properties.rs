//! Property-based tests over the full simulation engine: random small
//! profiles, every policy and sharing degree, with structural invariants
//! checked on the outcome.

use consim::engine::{Simulation, SimulationConfig};
use consim_sched::SchedulingPolicy;
use consim_types::config::{MachineConfig, SharingDegree};
use consim_workload::{WorkloadProfile, WorkloadProfileBuilder};
use proptest::prelude::*;

fn any_policy() -> impl Strategy<Value = SchedulingPolicy> {
    prop_oneof![
        Just(SchedulingPolicy::RoundRobin),
        Just(SchedulingPolicy::Affinity),
        Just(SchedulingPolicy::RrAffinity),
        Just(SchedulingPolicy::Random),
    ]
}

fn any_sharing() -> impl Strategy<Value = SharingDegree> {
    prop_oneof![
        Just(SharingDegree::Private),
        Just(SharingDegree::SharedBy(2)),
        Just(SharingDegree::SharedBy(4)),
        Just(SharingDegree::SharedBy(8)),
        Just(SharingDegree::FullyShared),
    ]
}

prop_compose! {
    fn any_profile()(
        footprint in 3_000u64..40_000,
        shared_fraction in 0.1f64..0.9,
        shared_access in 0.0f64..0.9,
        shared_write in 0.0f64..0.4,
        handoff in 0.0f64..0.5,
        seed_tag in 0u32..1000,
    ) -> WorkloadProfile {
        WorkloadProfileBuilder::new(format!("prop{seed_tag}"))
            .footprint_blocks(footprint)
            .shared_fraction(shared_fraction)
            .shared_access_prob(shared_access)
            .shared_write_prob(shared_write)
            .handoff_access_prob(handoff)
            .handoff_segments(8)
            .handoff_segment_blocks(16)
            .build()
            .expect("generated profile in valid ranges")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid (profiles, policy, sharing, seed) combination must run to
    /// completion with balanced, in-range metrics.
    #[test]
    fn engine_invariants_hold_for_random_configs(
        profiles in prop::collection::vec(any_profile(), 1..4),
        policy in any_policy(),
        sharing in any_sharing(),
        seed in 0u64..1_000,
    ) {
        let mut b = SimulationConfig::builder();
        b.machine(MachineConfig::paper_default().with_sharing(sharing))
            .policy(policy)
            .refs_per_vm(1_500)
            .warmup_refs_per_vm(300)
            .seed(seed);
        for p in &profiles {
            b.workload(p.clone());
        }
        let out = Simulation::new(b.build().unwrap()).unwrap().run().unwrap();

        prop_assert_eq!(out.vm_metrics.len(), profiles.len());
        for m in &out.vm_metrics {
            // Every reference is accounted for exactly once.
            prop_assert_eq!(m.l0_hits + m.l1_hits + m.l1_misses, m.refs);
            // Every miss is classified exactly once.
            let classified = m.c2c_l1_clean
                + m.c2c_l1_dirty
                + m.llc_local_hits
                + m.llc_remote_clean
                + m.llc_remote_dirty
                + m.memory_fetches
                + m.upgrades;
            prop_assert_eq!(classified, m.l1_misses);
            prop_assert!(m.refs >= 1_500);
            prop_assert!(m.completion.is_some());
            prop_assert!(m.llc_miss_rate() >= 0.0 && m.llc_miss_rate() <= 1.0);
            prop_assert!(m.c2c_fraction() >= 0.0 && m.c2c_fraction() <= 1.0);
            prop_assert!(m.instructions >= m.refs);
            // Latency floor: a classified (non-upgrade) miss at least pays
            // the directory round trip.
            if m.l1_misses > m.upgrades {
                prop_assert!(m.miss_latency.max() >= 6);
            }
        }
        // Occupancy shares are per-bank fractions.
        for bank in &out.occupancy.share {
            let sum: f64 = bank.iter().sum();
            prop_assert!((0.0..=1.0 + 1e-9).contains(&sum));
        }
        // Replication is impossible with a single bank.
        if sharing == SharingDegree::FullyShared {
            prop_assert_eq!(out.replication.replicated_lines, 0);
        }
        prop_assert!(out.dircache_hit_rate >= 0.0 && out.dircache_hit_rate <= 1.0);
        prop_assert!(out.noc_peak_utilization >= out.noc_mean_utilization);
    }

    /// Determinism as a property: any configuration reruns bit-identically.
    #[test]
    fn engine_is_deterministic_for_random_configs(
        profile in any_profile(),
        policy in any_policy(),
        seed in 0u64..100,
    ) {
        let run = || {
            let mut b = SimulationConfig::builder();
            b.machine(MachineConfig::paper_default().with_sharing(SharingDegree::SharedBy(4)))
                .policy(policy)
                .workload(profile.clone())
                .refs_per_vm(1_000)
                .warmup_refs_per_vm(0)
                .seed(seed);
            let out = Simulation::new(b.build().unwrap()).unwrap().run().unwrap();
            (
                out.measured_cycles,
                out.vm_metrics[0].l1_misses,
                out.vm_metrics[0].miss_latency.total(),
                out.noc.packets,
            )
        };
        prop_assert_eq!(run(), run());
    }
}
