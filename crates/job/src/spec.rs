//! Job definition: one `(cell, seed)` simulation plus the bookkeeping the
//! result layer needs to rebuild deterministic ordering.

use consim::engine::SimulationConfig;
use consim::persist;

/// One schedulable unit of work: a fully built [`SimulationConfig`] with
/// its submission coordinates.
///
/// Jobs are identified on disk by a **content digest** of the
/// configuration (machine, workloads, policy, seed, run quotas —
/// everything that shapes the outcome; the process-local trace sink is
/// excluded), not by their position in a batch. A live queue can
/// therefore grow, shrink, or reorder without invalidating journal
/// records written for jobs submitted earlier, and two batches sharing a
/// job share its record.
#[derive(Debug, Clone)]
pub struct JobSpec {
    index: usize,
    cell: usize,
    config: SimulationConfig,
    digest: u64,
}

impl JobSpec {
    /// A job for `config`, submitted as overall job `index` on behalf of
    /// experiment cell `cell`.
    pub fn new(index: usize, cell: usize, config: SimulationConfig) -> Self {
        let digest = persist::config_digest(&config);
        Self {
            index,
            cell,
            config,
            digest,
        }
    }

    /// Submission index: unique within one queue, orders results.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The experiment cell this job belongs to (aggregation key).
    pub fn cell(&self) -> usize {
        self.cell
    }

    /// The simulation configuration the job executes.
    pub fn config(&self) -> &SimulationConfig {
        &self.config
    }

    /// The configuration content digest identifying this job's journal
    /// records across invocations.
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The digest in the fixed-width hex form used in journal file names.
    pub fn digest_hex(&self) -> String {
        format!("{:016x}", self.digest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(seed: u64) -> SimulationConfig {
        let profile = consim_workload::WorkloadProfileBuilder::new("s")
            .footprint_blocks(2_000)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.workload(profile).refs_per_vm(100).seed(seed);
        b.build().unwrap()
    }

    #[test]
    fn digest_depends_on_content_not_position() {
        let a = JobSpec::new(0, 0, config(1));
        let b = JobSpec::new(7, 3, config(1));
        let c = JobSpec::new(0, 0, config(2));
        assert_eq!(
            a.digest(),
            b.digest(),
            "the same configuration keeps its identity wherever it sits in a queue"
        );
        assert_ne!(a.digest(), c.digest());
        assert_eq!(a.digest_hex().len(), 16);
    }
}
