//! Result delivery: the [`ResultSink`] trait workers report into, plus a
//! [`CollectingSink`] that rebuilds deterministic submission-order
//! results from out-of-order completions.

use crate::spec::JobSpec;
use consim::engine::SimulationOutcome;
use consim_types::SimError;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Mutex;

/// Where a job's outcome came from: freshly simulated, or loaded from a
/// journal record written by an earlier invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobSource {
    /// The job ran in this invocation.
    Simulated,
    /// The outcome was loaded from a journal record (free: journal loads
    /// do not count toward wall-time telemetry or the fault threshold).
    Journal,
}

/// What became of one job.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // one value per finished job; Cancelled is rare
pub enum JobOutput {
    /// The job ran (or was loaded) to completion.
    Completed {
        /// The simulation outcome.
        outcome: SimulationOutcome,
        /// Whether it was simulated now or loaded from the journal.
        source: JobSource,
    },
    /// The job was cancelled before completing ([`crate::pool::WorkerPool::cancel`]);
    /// no outcome exists and nothing was journaled.
    Cancelled,
    /// The job was stranded in the queue when the pool wound down (a
    /// tripped fault injector or an explicit abandon) and never ran. No
    /// outcome exists, but the job itself is intact: re-submitting the
    /// same configuration — e.g. a daemon re-enqueueing journaled
    /// submission records on restart — runs it normally.
    Abandoned,
}

/// Receives finished jobs from the worker pool. Workers on different
/// threads report concurrently and in completion order, which under
/// time-slicing is *not* submission order — deterministic consumers key
/// on [`JobSpec::index`] to reassemble (see [`CollectingSink`]).
pub trait ResultSink: Send + Sync + fmt::Debug {
    /// Called exactly once per dequeued job.
    fn job_finished(&self, job: &JobSpec, result: Result<JobOutput, SimError>);
}

/// A sink that stores every result keyed by submission index. Because
/// each job's result is a pure function of its configuration, reading
/// the map back in index order yields the exact result vector serial
/// execution would have produced, whatever order completions arrived in.
#[derive(Debug, Default)]
pub struct CollectingSink {
    results: Mutex<BTreeMap<usize, Result<JobOutput, SimError>>>,
}

impl CollectingSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// Results collected so far.
    pub fn len(&self) -> usize {
        self.results.lock().expect("result sink poisoned").len()
    }

    /// Whether nothing has finished yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drains the collected results, keyed (and therefore iterated) by
    /// submission index.
    pub fn take(&self) -> BTreeMap<usize, Result<JobOutput, SimError>> {
        std::mem::take(&mut *self.results.lock().expect("result sink poisoned"))
    }
}

impl ResultSink for CollectingSink {
    fn job_finished(&self, job: &JobSpec, result: Result<JobOutput, SimError>) {
        self.results
            .lock()
            .expect("result sink poisoned")
            .insert(job.index(), result);
    }
}
