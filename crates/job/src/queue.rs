//! Job sources: the [`JobQueue`] trait plus the two built-in
//! implementations — a fixed work-stealing batch and an open-ended live
//! queue that producers feed while workers run.

use crate::spec::JobSpec;
use consim::engine::SimulationConfig;
use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// Result of a non-blocking [`JobQueue::poll`].
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // transient per-dequeue value; boxing would allocate per poll
pub enum QueuePoll {
    /// A job was dequeued; the caller owns it.
    Job(JobSpec),
    /// Nothing ready right now, but the queue may still grow.
    Pending,
    /// The queue is closed and drained; no job will ever appear.
    Closed,
}

/// Where workers pull jobs from.
///
/// A queue hands each job to exactly one caller. [`StaticQueue`] serves a
/// fixed batch; [`LiveQueue`] is open-ended (a capacity-planning daemon
/// can feed it from a socket, an autotuner from a search loop) — the
/// worker pool is agnostic.
pub trait JobQueue: Send + Sync + fmt::Debug {
    /// Dequeues without blocking.
    fn poll(&self) -> QueuePoll;

    /// Dequeues, blocking while the queue is [`QueuePoll::Pending`];
    /// `None` once it is closed and drained.
    fn recv(&self) -> Option<JobSpec>;

    /// Closes the queue: pending jobs still drain, but nothing new is
    /// admitted and blocked [`JobQueue::recv`] callers wake up. Idempotent.
    fn close(&self);
}

/// A fixed batch of jobs, served in submission order by an atomic cursor
/// (work-stealing: cells vary widely in cost, so static chunking would
/// leave workers idle).
#[derive(Debug)]
pub struct StaticQueue {
    jobs: Vec<JobSpec>,
    next: AtomicUsize,
}

impl StaticQueue {
    /// A queue over `jobs`, served in order.
    pub fn new(jobs: Vec<JobSpec>) -> Self {
        Self {
            jobs,
            next: AtomicUsize::new(0),
        }
    }

    /// Jobs originally submitted (dequeued or not).
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the batch was empty to begin with.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }
}

impl JobQueue for StaticQueue {
    fn poll(&self) -> QueuePoll {
        let i = self.next.fetch_add(1, Ordering::Relaxed);
        match self.jobs.get(i) {
            Some(job) => QueuePoll::Job(job.clone()),
            None => QueuePoll::Closed,
        }
    }

    fn recv(&self) -> Option<JobSpec> {
        match self.poll() {
            QueuePoll::Job(job) => Some(job),
            _ => None,
        }
    }

    fn close(&self) {
        self.next.fetch_max(self.jobs.len(), Ordering::Relaxed);
    }
}

#[derive(Debug, Default)]
struct LiveState {
    ready: VecDeque<JobSpec>,
    submitted: usize,
    closed: bool,
}

/// An open-ended queue: producers push jobs while workers execute, and
/// close it when no more work is coming. Submission indices are assigned
/// by the queue, so results keyed by index reassemble in push order.
#[derive(Debug, Default)]
pub struct LiveQueue {
    state: Mutex<LiveState>,
    wake: Condvar,
}

impl LiveQueue {
    /// An empty, open queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Submits a job for experiment cell `cell`, returning the submission
    /// index assigned to it. Pushes onto a closed queue are refused
    /// (`None`).
    pub fn push(&self, cell: usize, config: SimulationConfig) -> Option<usize> {
        let mut state = self.state.lock().expect("live queue poisoned");
        if state.closed {
            return None;
        }
        let index = state.submitted;
        state.submitted += 1;
        state.ready.push_back(JobSpec::new(index, cell, config));
        self.wake.notify_one();
        Some(index)
    }

    /// Jobs submitted so far (executed or not).
    pub fn submitted(&self) -> usize {
        self.state.lock().expect("live queue poisoned").submitted
    }

    /// Closes the queue *and* strands whatever was still waiting,
    /// returning the undequeued jobs so the caller can account for every
    /// one of them (journal their submission records, report them
    /// [`crate::sink::JobOutput::Abandoned`], …).
    ///
    /// This is the explicit opposite of [`JobQueue::close`]: `close`
    /// drains — workers keep dequeueing until the backlog is empty —
    /// while `abandon` is for shutdown paths that must stop *now* and
    /// hand responsibility for the backlog back to the caller. Jobs a
    /// worker already dequeued are unaffected either way: they finish
    /// their in-flight slices and journal normally.
    pub fn abandon(&self) -> Vec<JobSpec> {
        let mut state = self.state.lock().expect("live queue poisoned");
        state.closed = true;
        let stranded = state.ready.drain(..).collect();
        self.wake.notify_all();
        stranded
    }
}

impl JobQueue for LiveQueue {
    fn poll(&self) -> QueuePoll {
        let mut state = self.state.lock().expect("live queue poisoned");
        match state.ready.pop_front() {
            Some(job) => QueuePoll::Job(job),
            None if state.closed => QueuePoll::Closed,
            None => QueuePoll::Pending,
        }
    }

    fn recv(&self) -> Option<JobSpec> {
        let mut state = self.state.lock().expect("live queue poisoned");
        loop {
            if let Some(job) = state.ready.pop_front() {
                return Some(job);
            }
            if state.closed {
                return None;
            }
            state = self.wake.wait(state).expect("live queue poisoned");
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().expect("live queue poisoned");
        state.closed = true;
        self.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(seed: u64) -> SimulationConfig {
        let profile = consim_workload::WorkloadProfileBuilder::new("q")
            .footprint_blocks(2_000)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.workload(profile).refs_per_vm(100).seed(seed);
        b.build().unwrap()
    }

    #[test]
    fn static_queue_serves_each_job_once_in_order() {
        let q = StaticQueue::new(
            (0..3)
                .map(|i| JobSpec::new(i, 0, config(i as u64)))
                .collect(),
        );
        let mut seen = Vec::new();
        while let QueuePoll::Job(j) = q.poll() {
            seen.push(j.index());
        }
        assert_eq!(seen, vec![0, 1, 2]);
        assert!(matches!(q.poll(), QueuePoll::Closed));
    }

    #[test]
    fn static_queue_close_drops_undequeued_jobs() {
        let q = StaticQueue::new(
            (0..3)
                .map(|i| JobSpec::new(i, 0, config(i as u64)))
                .collect(),
        );
        assert!(matches!(q.poll(), QueuePoll::Job(_)));
        q.close();
        assert!(matches!(q.poll(), QueuePoll::Closed));
    }

    #[test]
    fn live_queue_assigns_indices_and_drains_after_close() {
        let q = LiveQueue::new();
        assert!(matches!(q.poll(), QueuePoll::Pending));
        assert_eq!(q.push(0, config(1)), Some(0));
        assert_eq!(q.push(1, config(2)), Some(1));
        q.close();
        assert_eq!(q.push(0, config(3)), None, "closed queues refuse pushes");
        assert_eq!(q.recv().map(|j| j.index()), Some(0));
        assert_eq!(q.recv().map(|j| j.index()), Some(1));
        assert_eq!(q.recv().map(|j| j.index()), None);
        assert!(matches!(q.poll(), QueuePoll::Closed));
    }

    #[test]
    fn live_queue_abandon_strands_and_returns_the_backlog() {
        let q = LiveQueue::new();
        q.push(0, config(1));
        q.push(1, config(2));
        let stranded = q.abandon();
        assert_eq!(
            stranded.iter().map(JobSpec::index).collect::<Vec<_>>(),
            vec![0, 1],
            "abandon hands the whole backlog back in submission order"
        );
        assert!(matches!(q.poll(), QueuePoll::Closed), "nothing drains");
        assert_eq!(q.push(2, config(3)), None, "abandoned queues are closed");
        assert!(
            q.abandon().is_empty(),
            "idempotent: backlog handed out once"
        );
    }

    #[test]
    fn live_queue_recv_blocks_until_push() {
        let q = std::sync::Arc::new(LiveQueue::new());
        let consumer = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.recv().map(|j| j.index()))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.push(0, config(9));
        assert_eq!(consumer.join().unwrap(), Some(0));
    }
}
