//! `consim-job` — the job execution layer of the consolidation simulator.
//!
//! The paper's methodology is a large design-space sweep (sharing degree ×
//! cache size × placement), and the layers that serve it long-running —
//! a capacity-planning daemon, an objective-driven autotuner — all need
//! the same foundation: an open-ended, resumable notion of a *job* rather
//! than a fixed batch. This crate provides that foundation as four thin
//! layers over the `consim` engine:
//!
//! * [`spec::JobSpec`] — one `(cell, seed)` simulation with its full
//!   configuration, identified on disk by a *content digest* of that
//!   configuration (not by batch position), so a queue can grow without
//!   invalidating earlier journal records;
//! * [`queue`] — the [`queue::JobQueue`] trait with a work-stealing
//!   [`queue::StaticQueue`] for batches and an open-ended
//!   [`queue::LiveQueue`] that producers feed while workers run;
//! * [`journal::JobJournal`] — job-granular crash journal: atomic,
//!   checksummed outcome records plus transient mid-run checkpoints;
//! * [`pool::WorkerPool`] — persistent workers that pull jobs and execute
//!   them in [`consim::engine::Simulation::advance`] time slices, enabling
//!   preemptive interleaving and early termination of dominated
//!   candidates;
//! * [`sink`] — the [`sink::ResultSink`] trait plus a
//!   [`sink::CollectingSink`] that rebuilds deterministic submission-order
//!   results from out-of-order completions.
//!
//! [`runner::ExperimentRunner`] is the batch facade over these layers and
//! keeps the public API the figure regenerators and tests always had.
//!
//! # Determinism
//!
//! Parallelism lives *between* simulations, never inside one: each job's
//! outcome is a pure function of its [`consim::engine::SimulationConfig`],
//! independent of worker count, time-slice length, interleaving, or
//! completion order. The sink keys results by submission index, so any
//! execution schedule reassembles into the same ordered result vector —
//! bit-identical to serial execution.

pub mod journal;
pub mod pool;
pub mod queue;
pub mod runner;
pub mod sink;
pub mod spec;

pub use journal::JobJournal;
pub use pool::{PoolConfig, PoolReport, PrewarmCache, WorkerPool};
pub use queue::{JobQueue, LiveQueue, QueuePoll, StaticQueue};
pub use runner::{
    ChurnAggregate, ExperimentCell, ExperimentRunner, MixRun, RunOptions, VmAggregate,
};
pub use sink::{CollectingSink, JobOutput, JobSource, ResultSink};
pub use spec::JobSpec;
