//! The persistent worker pool: long-lived OS threads that pull jobs from
//! a [`JobQueue`] and execute them in [`Simulation::advance`] time
//! slices.
//!
//! Time-sliced execution is what makes the pool more than a thread pool:
//!
//! * **Preemptive interleaving** — with `max_live > 1` a worker rotates
//!   several resident simulations, so one enormous job cannot starve an
//!   open-ended queue's short jobs behind it;
//! * **Early termination** — a job cancelled between slices
//!   ([`WorkerPool::cancel`]) simply stops advancing and reports
//!   [`JobOutput::Cancelled`]; dominated candidates in a search loop die
//!   cheaply without corrupting anyone else's aggregation;
//! * **Crash durability** — between slices the worker checkpoints the
//!   resident simulation into the [`JobJournal`], so a crash loses at
//!   most one slice of work per in-flight job.
//!
//! None of this can change results: each job's outcome is a pure function
//! of its configuration, and slicing a simulation is bit-transparent (the
//! checkpoint/advance contract), so worker count, slice length, and
//! interleaving are all schedule, not semantics.

use crate::journal::JobJournal;
use crate::queue::{JobQueue, QueuePoll};
use crate::sink::{JobOutput, JobSource, ResultSink};
use crate::spec::JobSpec;
use consim::engine::{RunStatus, Simulation, SimulationConfig, SimulationOutcome};
use consim::persist;
use consim_trace::{TraceEvent, TraceSink};
use consim_types::{FastHashMap, SimError};
use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Prewarm-checkpoint cache: canonical-config digest → serialized
/// checkpoint of a prewarmed-but-not-started simulation. Shared across
/// pools (and across [`crate::runner::ExperimentRunner`] clones) so
/// sweeps that retarget one configured runner still reuse it.
pub type PrewarmCache = Arc<Mutex<FastHashMap<u64, Arc<Vec<u8>>>>>;

/// Execution policy for one pool.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads to spawn.
    pub workers: usize,
    /// Accesses per [`Simulation::advance`] slice; `None` runs each job
    /// in one slice (no preemption points).
    pub time_slice: Option<u64>,
    /// Simulations a worker keeps resident and rotates between slices
    /// (`1` = run each job to completion before starting the next, the
    /// batch-runner discipline).
    pub max_live: usize,
    /// Checkpoint each in-flight job into the journal after every slice,
    /// slicing at this interval if `time_slice` is coarser. Effective
    /// only with a journal attached.
    pub checkpoint_every: Option<u64>,
    /// Fault injection for crash-recovery tests: once this many jobs have
    /// been *simulated* to completion (journal loads do not count), the
    /// pool trips its fault flag, stops admitting jobs, finishes and
    /// journals the in-flight ones, and winds down.
    pub fault_after: Option<u64>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        Self {
            workers: 1,
            time_slice: None,
            max_live: 1,
            checkpoint_every: None,
            fault_after: None,
        }
    }
}

/// What a pool did, reported by [`WorkerPool::join`].
#[derive(Debug, Clone, Copy)]
pub struct PoolReport {
    /// Jobs simulated to completion in this invocation (journal loads
    /// and cancellations excluded).
    pub simulated: u64,
    /// Whether the fault injector tripped.
    pub faulted: bool,
    /// Total worker-busy time across the pool.
    pub busy_seconds: f64,
}

/// A pool of persistent workers executing jobs from a shared queue.
#[derive(Debug)]
pub struct WorkerPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

#[derive(Debug)]
struct Shared {
    queue: Arc<dyn JobQueue>,
    sink: Arc<dyn ResultSink>,
    journal: Option<JobJournal>,
    prewarm: PrewarmCache,
    config: PoolConfig,
    /// Runner-class telemetry sink (per-job wall time); `None` when the
    /// attached trace sink filters the class out.
    timing: Option<Arc<dyn TraceSink>>,
    cancelled: Mutex<HashSet<usize>>,
    simulated: AtomicU64,
    faulted: AtomicBool,
    busy_us: AtomicU64,
}

impl WorkerPool {
    /// Spawns `config.workers` workers over `queue`, reporting into
    /// `sink`. With a `journal`, completed outcomes are recorded (and
    /// previously recorded ones served without re-simulating); `prewarm`
    /// is the shared prewarm-checkpoint cache; `timing` receives
    /// `CellCompleted` events for simulated jobs.
    pub fn start(
        config: PoolConfig,
        queue: Arc<dyn JobQueue>,
        sink: Arc<dyn ResultSink>,
        journal: Option<JobJournal>,
        prewarm: PrewarmCache,
        timing: Option<Arc<dyn TraceSink>>,
    ) -> Self {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            queue,
            sink,
            journal,
            prewarm,
            config,
            timing,
            cancelled: Mutex::new(HashSet::new()),
            simulated: AtomicU64::new(0),
            faulted: AtomicBool::new(false),
            busy_us: AtomicU64::new(0),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("consim-worker-{w}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn worker thread")
            })
            .collect();
        Self { shared, handles }
    }

    /// Marks job `index` for early termination: if still queued or
    /// resident it reports [`JobOutput::Cancelled`] at its next
    /// scheduling point instead of advancing further. Cancelling an
    /// already finished job is a no-op.
    pub fn cancel(&self, index: usize) {
        self.shared
            .cancelled
            .lock()
            .expect("cancel set poisoned")
            .insert(index);
    }

    /// Whether the fault injector has tripped.
    pub fn faulted(&self) -> bool {
        self.shared.faulted.load(Ordering::Relaxed)
    }

    /// Jobs simulated to completion so far.
    pub fn simulated(&self) -> u64 {
        self.shared.simulated.load(Ordering::Relaxed)
    }

    /// Waits for every worker to exit (the queue must eventually close or
    /// drain) and reports what the pool did.
    ///
    /// A pool that wound down early — the fault injector tripped and
    /// admission stopped — may leave dequeued-by-nobody jobs stranded in
    /// the queue. Those are drained here and reported to the sink as
    /// [`JobOutput::Abandoned`], so the sink hears about **every** job
    /// that entered the queue, exactly once: nothing is silently dropped
    /// between `close()` and `join()`.
    pub fn join(self) -> PoolReport {
        for handle in self.handles {
            handle.join().expect("worker thread panicked");
        }
        // Workers only exit on a closed queue, so this poll loop cannot
        // race a producer; on the normal path the backlog is already
        // empty and the loop is a single `Closed` poll.
        while let QueuePoll::Job(job) = self.shared.queue.poll() {
            self.shared
                .sink
                .job_finished(&job, Ok(JobOutput::Abandoned));
        }
        PoolReport {
            simulated: self.shared.simulated.load(Ordering::Relaxed),
            faulted: self.shared.faulted.load(Ordering::Relaxed),
            busy_seconds: self.shared.busy_us.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }
}

/// One resident job: its simulation plus accumulated execution time.
struct Active {
    job: JobSpec,
    sim: Simulation,
    busy: Duration,
}

/// The slice length workers advance by: the finer of the preemption and
/// checkpoint intervals, unbounded when neither is set.
fn effective_slice(config: &PoolConfig) -> u64 {
    match (config.time_slice, config.checkpoint_every) {
        (Some(t), Some(c)) => t.min(c),
        (Some(t), None) => t,
        (None, Some(c)) => c,
        (None, None) => u64::MAX,
    }
    .max(1)
}

fn worker_loop(shared: &Shared) {
    let slice = effective_slice(&shared.config);
    let width = shared.config.max_live.max(1);
    let mut live: VecDeque<Active> = VecDeque::new();
    loop {
        // Admission: refill the resident set. A tripped fault stops
        // admission but lets in-flight jobs finish and journal first
        // (the crash-recovery contract).
        let mut closed = false;
        while live.len() < width && !shared.faulted.load(Ordering::Relaxed) {
            match shared.queue.poll() {
                QueuePoll::Job(job) => {
                    if let Some(active) = admit(shared, job) {
                        live.push_back(active);
                    }
                }
                QueuePoll::Pending => {
                    if !live.is_empty() {
                        break;
                    }
                    // Nothing resident: park on the queue rather than
                    // spin. A tripping worker closes the queue, so this
                    // wakes on fault too.
                    match shared.queue.recv() {
                        Some(job) => {
                            if let Some(active) = admit(shared, job) {
                                live.push_back(active);
                            }
                        }
                        None => {
                            closed = true;
                            break;
                        }
                    }
                }
                QueuePoll::Closed => {
                    closed = true;
                    break;
                }
            }
        }
        let Some(active) = live.pop_front() else {
            if closed || shared.faulted.load(Ordering::Relaxed) {
                return;
            }
            continue;
        };
        // Scheduling point: cancellation is honored between slices.
        if is_cancelled(shared, active.job.index()) {
            shared
                .sink
                .job_finished(&active.job, Ok(JobOutput::Cancelled));
            continue;
        }
        let Active { job, mut sim, busy } = active;
        let start = Instant::now();
        match sim.advance(slice, None) {
            Ok(RunStatus::Running) => {
                let busy = busy + start.elapsed();
                if shared.config.checkpoint_every.is_some() {
                    if let Some(journal) = &shared.journal {
                        if let Err(e) = journal.store_checkpoint(&job, &sim) {
                            finish_simulated(shared, &job, Err(e), busy);
                            continue;
                        }
                    }
                }
                live.push_back(Active { job, sim, busy });
            }
            Ok(RunStatus::Complete) => {
                let result = sim.finish();
                let busy = busy + start.elapsed();
                let result = result.and_then(|outcome| {
                    if let Some(journal) = &shared.journal {
                        journal.store_outcome(&job, &outcome)?;
                        // The record supersedes the mid-run checkpoint.
                        journal.discard_checkpoint(&job);
                    }
                    Ok(outcome)
                });
                finish_simulated(shared, &job, result, busy);
            }
            Err(e) => finish_simulated(shared, &job, Err(e), busy + start.elapsed()),
        }
    }
}

fn is_cancelled(shared: &Shared, index: usize) -> bool {
    shared
        .cancelled
        .lock()
        .expect("cancel set poisoned")
        .contains(&index)
}

/// Brings a dequeued job into the resident set — unless the journal
/// already holds its outcome (served for free, bypassing timing and the
/// fault threshold: it was counted by the invocation that ran it) or it
/// was cancelled before ever running.
fn admit(shared: &Shared, job: JobSpec) -> Option<Active> {
    if is_cancelled(shared, job.index()) {
        shared.sink.job_finished(&job, Ok(JobOutput::Cancelled));
        return None;
    }
    if let Some(journal) = &shared.journal {
        match journal.load_outcome(&job) {
            Ok(Some(outcome)) => {
                shared.sink.job_finished(
                    &job,
                    Ok(JobOutput::Completed {
                        outcome,
                        source: JobSource::Journal,
                    }),
                );
                return None;
            }
            Ok(None) => {}
            Err(e) => {
                finish_simulated(shared, &job, Err(e), Duration::ZERO);
                return None;
            }
        }
        match journal.load_checkpoint(&job) {
            Ok(Some(mut sim)) => {
                // Trace sinks are process-local and deliberately excluded
                // from checkpoints; reattach this process's.
                if let Some(trace) = &job.config().trace {
                    sim.set_trace(trace.clone());
                }
                return Some(Active {
                    job,
                    sim,
                    busy: Duration::ZERO,
                });
            }
            Ok(None) => {}
            Err(e) => {
                finish_simulated(shared, &job, Err(e), Duration::ZERO);
                return None;
            }
        }
    }
    let start = Instant::now();
    match build_sim(shared, job.config()) {
        Ok(sim) => Some(Active {
            job,
            sim,
            busy: start.elapsed(),
        }),
        Err(e) => {
            finish_simulated(shared, &job, Err(e), start.elapsed());
            None
        }
    }
}

/// Final accounting for a job that actually ran in this invocation:
/// busy-time telemetry, the fault threshold, and the sink notification.
fn finish_simulated(
    shared: &Shared,
    job: &JobSpec,
    result: Result<SimulationOutcome, SimError>,
    busy: Duration,
) {
    shared
        .busy_us
        .fetch_add(busy.as_micros() as u64, Ordering::Relaxed);
    if let Some(sink) = &shared.timing {
        sink.record(&TraceEvent::CellCompleted {
            cell: job.cell() as u32,
            seed: job.config().seed,
            wall_ms: busy.as_secs_f64() * 1e3,
        });
    }
    let done = shared.simulated.fetch_add(1, Ordering::Relaxed) + 1;
    if let Some(k) = shared.config.fault_after {
        if done >= k && !shared.faulted.swap(true, Ordering::Relaxed) {
            // Unblock workers parked on an open queue so the pool can
            // wind down; their in-flight jobs still finish and journal.
            shared.queue.close();
        }
    }
    shared.sink.job_finished(
        job,
        result.map(|outcome| JobOutput::Completed {
            outcome,
            source: JobSource::Simulated,
        }),
    );
}

/// Builds the simulation for a job. Jobs that prewarm the LLC go through
/// the prewarm-checkpoint cache: the (expensive) bank fill for a given
/// canonical configuration is simulated once, checkpointed to memory,
/// and every later job resumes that checkpoint and adopts its own run
/// quotas — bit-identical to prewarming from scratch (the fill is
/// deterministic in the canonical configuration).
fn build_sim(shared: &Shared, cfg: &SimulationConfig) -> Result<Simulation, SimError> {
    if !cfg.prewarm_llc {
        return Simulation::new(cfg.clone());
    }
    let key = persist::prewarm_key(cfg);
    let bytes = {
        let mut cache = shared.prewarm.lock().expect("prewarm cache poisoned");
        match cache.get(&key) {
            Some(bytes) => Arc::clone(bytes),
            None => {
                // Built under the lock: the first job pays once and
                // concurrent workers with the same key wait for it
                // rather than all paying.
                let mut sim = Simulation::new(persist::prewarm_canonical_config(cfg))?;
                sim.prewarm();
                let mut buf = Vec::new();
                sim.checkpoint(&mut buf)?;
                let bytes = Arc::new(buf);
                cache.insert(key, Arc::clone(&bytes));
                bytes
            }
        }
    };
    let mut sim = Simulation::resume(bytes.as_slice())?;
    sim.adopt_config(cfg.clone())?;
    Ok(sim)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::LiveQueue;
    use crate::sink::CollectingSink;
    use std::path::PathBuf;

    /// Temp journal dir removed on drop (even on assertion failure).
    struct ScratchDir(PathBuf);

    impl ScratchDir {
        fn new(tag: &str) -> Self {
            let dir =
                std::env::temp_dir().join(format!("consim-pool-{tag}-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
    }

    impl Drop for ScratchDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn config(seed: u64) -> SimulationConfig {
        let profile = consim_workload::WorkloadProfileBuilder::new("p")
            .footprint_blocks(2_000)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.workload(profile).refs_per_vm(600).seed(seed);
        b.build().unwrap()
    }

    fn prewarm_cache() -> PrewarmCache {
        Arc::new(Mutex::new(FastHashMap::default()))
    }

    /// Satellite regression: `close()` while a worker holds in-flight
    /// slices is a *drain* — every queued job still finishes and
    /// journals; nothing is dropped.
    #[test]
    fn close_with_in_flight_slices_drains_the_backlog() {
        let scratch = ScratchDir::new("drain");
        let journal = JobJournal::open(&scratch.0).unwrap();
        let queue = Arc::new(LiveQueue::new());
        let sink = Arc::new(CollectingSink::new());
        let pool = WorkerPool::start(
            PoolConfig {
                workers: 1,
                time_slice: Some(100),
                max_live: 2,
                checkpoint_every: Some(200),
                fault_after: None,
            },
            Arc::clone(&queue) as Arc<dyn JobQueue>,
            Arc::clone(&sink) as Arc<dyn ResultSink>,
            Some(journal.clone()),
            prewarm_cache(),
            None,
        );
        for seed in 0..4 {
            queue.push(0, config(seed)).unwrap();
        }
        // The worker is mid-slice on the early jobs; the rest are backlog.
        queue.close();
        let report = pool.join();
        assert!(!report.faulted);
        assert_eq!(report.simulated, 4, "close() drains, it does not drop");
        let results = sink.take();
        assert_eq!(results.len(), 4);
        for (index, result) in results {
            assert!(
                matches!(result, Ok(JobOutput::Completed { .. })),
                "job {index} must complete after close()"
            );
        }
        assert_eq!(journal.completed().unwrap().len(), 4, "all journaled");
    }

    /// Satellite regression: a pool that winds down early (fault injector)
    /// reports every stranded job as `Abandoned` — the sink hears about
    /// all submissions exactly once, and the stranded jobs remain
    /// re-runnable afterwards.
    #[test]
    fn fault_reports_stranded_jobs_as_abandoned() {
        let scratch = ScratchDir::new("abandon");
        let journal = JobJournal::open(&scratch.0).unwrap();
        let queue = Arc::new(LiveQueue::new());
        // Submit the whole batch before any worker exists so the order of
        // admission (and therefore which job trips the fault) is fixed.
        for seed in 0..3 {
            queue.push(0, config(seed)).unwrap();
        }
        let sink = Arc::new(CollectingSink::new());
        let pool = WorkerPool::start(
            PoolConfig {
                workers: 1,
                fault_after: Some(1),
                ..PoolConfig::default()
            },
            Arc::clone(&queue) as Arc<dyn JobQueue>,
            Arc::clone(&sink) as Arc<dyn ResultSink>,
            Some(journal.clone()),
            prewarm_cache(),
            None,
        );
        let report = pool.join();
        assert!(report.faulted);
        assert_eq!(report.simulated, 1);
        let mut results = sink.take();
        assert_eq!(results.len(), 3, "every submission is accounted for");
        assert!(matches!(
            results.remove(&0),
            Some(Ok(JobOutput::Completed { .. }))
        ));
        for index in 1..3 {
            assert!(
                matches!(results.remove(&index), Some(Ok(JobOutput::Abandoned))),
                "stranded job {index} must be reported, not silently dropped"
            );
        }
        // Abandoned jobs lost nothing: re-enqueueing the same configs
        // completes them (job 0 served from its journal record for free).
        let queue = Arc::new(LiveQueue::new());
        for seed in 0..3 {
            queue.push(0, config(seed)).unwrap();
        }
        queue.close();
        let sink = Arc::new(CollectingSink::new());
        let pool = WorkerPool::start(
            PoolConfig::default(),
            Arc::clone(&queue) as Arc<dyn JobQueue>,
            Arc::clone(&sink) as Arc<dyn ResultSink>,
            Some(journal.clone()),
            prewarm_cache(),
            None,
        );
        let report = pool.join();
        assert!(!report.faulted);
        assert_eq!(report.simulated, 2, "only the stranded jobs re-simulate");
        assert!(sink
            .take()
            .into_values()
            .all(|r| matches!(r, Ok(JobOutput::Completed { .. }))));
    }
}
