//! Job-granular crash journal: per-job outcome records and transient
//! mid-run checkpoints, named by configuration content digest.
//!
//! Layout under the journal directory — one flat namespace, no per-batch
//! subdirectories:
//!
//! * `job-<digest>.bin` — the serialized outcome of a completed job; a
//!   resumed invocation loads it instead of re-simulating;
//! * `job-<digest>.ckpt` — a transient mid-run checkpoint, rewritten
//!   every `checkpoint_every` accesses and deleted when the job
//!   completes.
//!
//! `<digest>` is the job's [`JobSpec::digest_hex`]: a content digest of
//! the full configuration. Because the name identifies *what ran* rather
//! than *where in a batch it sat*, a grown or reordered queue keeps every
//! record it already earned, and a record can never be served to a
//! different experiment — a changed configuration simply gets a new name.
//!
//! Byte formats and the atomic tmp-plus-rename commit discipline live in
//! [`consim::persist`]; torn `.tmp` temporaries left by a crashed writer
//! are untrusted by construction and swept on [`JobJournal::open`].

use crate::spec::JobSpec;
use consim::engine::{Simulation, SimulationOutcome};
use consim::persist;
use consim_types::SimError;
use std::path::{Path, PathBuf};

/// A job-granular journal rooted at one directory.
#[derive(Debug, Clone)]
pub struct JobJournal {
    dir: PathBuf,
}

impl JobJournal {
    /// Opens (creating if needed) the journal at `dir` and sweeps any
    /// torn `.tmp` temporaries a crashed writer left behind: they were
    /// never committed, so their contents are untrusted by construction.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Snapshot`] when the directory cannot be
    /// created or listed.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, SimError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| persist::io_error("create journal directory", &dir, e))?;
        for entry in
            std::fs::read_dir(&dir).map_err(|e| persist::io_error("list journal", &dir, e))?
        {
            let entry = entry.map_err(|e| persist::io_error("list journal", &dir, e))?;
            if entry.file_name().to_string_lossy().contains(".tmp") {
                let _ = std::fs::remove_file(entry.path());
            }
        }
        Ok(Self { dir })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Completed-outcome record path for `job`.
    pub fn outcome_path(&self, job: &JobSpec) -> PathBuf {
        self.dir.join(format!("job-{}.bin", job.digest_hex()))
    }

    /// Transient mid-run checkpoint path for `job`.
    pub fn checkpoint_path(&self, job: &JobSpec) -> PathBuf {
        self.dir.join(format!("job-{}.ckpt", job.digest_hex()))
    }

    /// Loads the completed outcome of `job`, if one was journaled.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Snapshot`] naming the record path when the
    /// record exists but cannot be read or is corrupt/truncated — never a
    /// panic; the caller decides whether to delete and re-run.
    pub fn load_outcome(&self, job: &JobSpec) -> Result<Option<SimulationOutcome>, SimError> {
        let path = self.outcome_path(job);
        if !path.exists() {
            return Ok(None);
        }
        persist::read_outcome(&path)
            .map(Some)
            .map_err(|e| name_record(&path, e))
    }

    /// Journals the completed outcome of `job` (atomic commit).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Snapshot`] on serialization or I/O failure.
    pub fn store_outcome(
        &self,
        job: &JobSpec,
        outcome: &SimulationOutcome,
    ) -> Result<(), SimError> {
        persist::write_outcome(&self.outcome_path(job), outcome)
    }

    /// Resumes the mid-run checkpoint of `job`, if one exists. The trace
    /// sink is process-local and excluded from checkpoints; the caller
    /// reattaches its own via [`Simulation::set_trace`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Snapshot`] naming the checkpoint path when it
    /// exists but cannot be read or is corrupt.
    pub fn load_checkpoint(&self, job: &JobSpec) -> Result<Option<Simulation>, SimError> {
        let path = self.checkpoint_path(job);
        if !path.exists() {
            return Ok(None);
        }
        persist::read_checkpoint(&path)
            .map(Some)
            .map_err(|e| name_record(&path, e))
    }

    /// Writes (atomically replacing) the mid-run checkpoint of `job`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Snapshot`] on serialization or I/O failure.
    pub fn store_checkpoint(&self, job: &JobSpec, sim: &Simulation) -> Result<(), SimError> {
        persist::write_checkpoint(&self.checkpoint_path(job), sim)
    }

    /// Removes the mid-run checkpoint of `job` (the committed outcome
    /// record supersedes it). Missing files are fine.
    pub fn discard_checkpoint(&self, job: &JobSpec) {
        let _ = std::fs::remove_file(self.checkpoint_path(job));
    }

    /// Submission (`.spec`) record path for `job`.
    pub fn spec_path(&self, job: &JobSpec) -> PathBuf {
        self.dir.join(format!("job-{}.spec", job.digest_hex()))
    }

    /// Journals the *submission* of `job` (atomic commit): cell tag plus
    /// full configuration. A daemon writes this before acknowledging a
    /// submission, making the ack a durable promise — whatever crashes
    /// afterwards, [`JobJournal::load_specs`] can re-enqueue the job.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Snapshot`] on serialization or I/O failure.
    pub fn store_spec(&self, job: &JobSpec) -> Result<(), SimError> {
        persist::write_spec(&self.spec_path(job), job.cell(), job.config())
    }

    /// Removes the submission record of `job` (it was cancelled, or the
    /// caller no longer wants it resurrected). Missing files are fine.
    pub fn discard_spec(&self, job: &JobSpec) {
        let _ = std::fs::remove_file(self.spec_path(job));
    }

    /// Loads every journaled submission as `(cell, config)`, ordered by
    /// digest (stable across restarts, independent of directory
    /// enumeration order). A record whose configuration no longer matches
    /// the digest in its file name is corrupt and reported as a typed
    /// error naming the file — never served under the wrong identity.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Snapshot`] when the directory cannot be listed
    /// or a record is unreadable, corrupt, or misnamed.
    pub fn load_specs(&self) -> Result<Vec<(usize, consim::engine::SimulationConfig)>, SimError> {
        let mut paths = Vec::new();
        for entry in std::fs::read_dir(&self.dir)
            .map_err(|e| persist::io_error("list journal", &self.dir, e))?
        {
            let entry = entry.map_err(|e| persist::io_error("list journal", &self.dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy().to_string();
            if let Some(digest) = name
                .strip_prefix("job-")
                .and_then(|n| n.strip_suffix(".spec"))
            {
                paths.push((digest.to_string(), entry.path()));
            }
        }
        paths.sort();
        let mut specs = Vec::with_capacity(paths.len());
        for (digest, path) in paths {
            let (cell, config) = persist::read_spec(&path).map_err(|e| name_record(&path, e))?;
            let actual = format!("{:016x}", persist::config_digest(&config));
            if actual != digest {
                return Err(SimError::snapshot(
                    consim_types::SnapshotErrorKind::Corrupt,
                    format!(
                        "{}: submission record digests to {actual}, not the {digest} in its name",
                        path.display()
                    ),
                ));
            }
            specs.push((cell, config));
        }
        Ok(specs)
    }

    /// Digest hex strings of every committed outcome record, sorted — the
    /// provenance a trace manifest wants.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Snapshot`] when the directory cannot be
    /// listed.
    pub fn completed(&self) -> Result<Vec<String>, SimError> {
        let mut digests = Vec::new();
        for entry in std::fs::read_dir(&self.dir)
            .map_err(|e| persist::io_error("list journal", &self.dir, e))?
        {
            let entry = entry.map_err(|e| persist::io_error("list journal", &self.dir, e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if let Some(digest) = name
                .strip_prefix("job-")
                .and_then(|n| n.strip_suffix(".bin"))
            {
                digests.push(digest.to_string());
            }
        }
        digests.sort();
        Ok(digests)
    }
}

/// Prefixes the record path onto a decode error so a truncated or
/// bit-rotted record names the file to inspect or delete (plain I/O
/// errors already carry the path from [`persist::io_error`]).
fn name_record(path: &Path, err: SimError) -> SimError {
    match err {
        SimError::Snapshot(kind, msg) if !msg.contains(&path.display().to_string()) => {
            SimError::Snapshot(kind, format!("{}: {msg}", path.display()))
        }
        other => other,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consim::engine::SimulationConfig;

    fn config(seed: u64) -> SimulationConfig {
        let profile = consim_workload::WorkloadProfileBuilder::new("jr")
            .footprint_blocks(2_000)
            .build()
            .unwrap();
        let mut b = SimulationConfig::builder();
        b.workload(profile).refs_per_vm(300).seed(seed);
        b.build().unwrap()
    }

    #[test]
    fn spec_records_round_trip_sorted_by_digest() {
        let dir = std::env::temp_dir().join(format!("consim-journal-spec-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let journal = JobJournal::open(&dir).unwrap();
        let jobs: Vec<JobSpec> = (0..3)
            .map(|i| JobSpec::new(i, i + 10, config(i as u64)))
            .collect();
        for job in &jobs {
            journal.store_spec(job).unwrap();
        }
        let specs = journal.load_specs().unwrap();
        assert_eq!(specs.len(), 3);
        let mut expected: Vec<(String, usize)> =
            jobs.iter().map(|j| (j.digest_hex(), j.cell())).collect();
        expected.sort();
        let loaded: Vec<(String, usize)> = specs
            .iter()
            .map(|(cell, cfg)| (format!("{:016x}", persist::config_digest(cfg)), *cell))
            .collect();
        assert_eq!(loaded, expected, "digest order, cells preserved");
        journal.discard_spec(&jobs[0]);
        journal.discard_spec(&jobs[0]); // idempotent
        assert_eq!(journal.load_specs().unwrap().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn misnamed_spec_record_is_a_typed_error() {
        let dir =
            std::env::temp_dir().join(format!("consim-journal-misname-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let journal = JobJournal::open(&dir).unwrap();
        let job = JobSpec::new(0, 0, config(1));
        journal.store_spec(&job).unwrap();
        // Rename the record to a different digest: it must be refused
        // rather than resurrected under the wrong identity.
        std::fs::rename(
            journal.spec_path(&job),
            dir.join(format!("job-{:016x}.spec", 0xdead_beefu64)),
        )
        .unwrap();
        let err = journal.load_specs().unwrap_err();
        assert!(err.snapshot_kind().is_some(), "{err}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
