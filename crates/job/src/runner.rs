//! Experiment orchestration: multi-seed runs, isolation baselines, sweeps.
//!
//! The figure regenerators in `consim-bench` are thin loops over this
//! module: [`ExperimentRunner::run`] executes one (mix, policy, sharing)
//! cell across the configured seeds and aggregates per-workload metrics;
//! [`ExperimentRunner::isolated`] produces the isolation baselines every
//! paper figure normalizes against; [`ExperimentRunner::run_cells`]
//! executes a whole batch of cells across the worker pool.
//!
//! The runner is a thin facade over the crate's layers: it expands cells
//! into [`JobSpec`]s, serves them through a [`StaticQueue`] to a
//! [`WorkerPool`], collects completions in a [`CollectingSink`], and
//! aggregates per cell — everything open-ended consumers (a queue fed
//! from a socket, a search loop cancelling dominated candidates) compose
//! differently from the same parts.
//!
//! # Parallelism and determinism
//!
//! Parallelism lives *between* simulations, never inside one. Each
//! `(cell, seed)` pair builds its own [`Simulation`], which derives every
//! random stream from its own root seed — so a simulation's outcome is a
//! pure function of its configuration, independent of which worker runs
//! it or what else runs concurrently. [`ExperimentRunner::run_cells`]
//! therefore returns results bit-identical to serial execution, in
//! submission order. The worker count defaults to
//! [`std::thread::available_parallelism`], clamped by the
//! `CONSIM_THREADS` environment variable or
//! [`ExperimentRunner::with_threads`].

use crate::journal::JobJournal;
use crate::pool::{PoolConfig, PrewarmCache, WorkerPool};
use crate::queue::StaticQueue;
use crate::sink::{CollectingSink, JobOutput, ResultSink};
use crate::spec::JobSpec;
use consim::engine::{SimulationConfig, SimulationOutcome, TraceConfig};
use consim::stats::Summary;
use consim_sched::SchedulingPolicy;
use consim_trace::{EventClass, TraceEvent, TraceSink};
use consim_types::config::{MachineConfig, SharingDegree};
use consim_types::{SimError, VmId};
use consim_workload::{WorkloadKind, WorkloadProfile};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Run-length and replication options shared by every experiment.
///
/// `Eq`/`Hash` let options participate in cache keys (see
/// `consim-bench`'s `BaselineCache`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RunOptions {
    /// Measured references per VM.
    pub refs_per_vm: u64,
    /// Warmup references per VM.
    pub warmup_refs_per_vm: u64,
    /// Seeds to run (one simulation per seed; results aggregated).
    pub seeds: Vec<u64>,
    /// Track per-VM footprints (needed only for Table II).
    pub track_footprint: bool,
    /// Pre-fill LLC banks with each workload's hot set before warmup
    /// (checkpoint-style warm start; see
    /// [`consim::engine::SimulationConfig::prewarm_llc`]).
    pub prewarm_llc: bool,
}

impl RunOptions {
    /// Quick settings for tests and smoke benches.
    pub fn quick() -> Self {
        Self {
            refs_per_vm: 8_000,
            warmup_refs_per_vm: 4_000,
            seeds: vec![1],
            track_footprint: false,
            prewarm_llc: false,
        }
    }

    /// Settings for regenerating the paper's figures (minutes per figure).
    pub fn thorough() -> Self {
        Self {
            refs_per_vm: 120_000,
            warmup_refs_per_vm: 60_000,
            seeds: vec![1, 2, 3],
            track_footprint: false,
            prewarm_llc: true,
        }
    }

    /// Reads overrides from the environment:
    /// `CONSIM_REFS`, `CONSIM_WARMUP`, `CONSIM_SEEDS` (count).
    ///
    /// Unset or unparsable variables keep the base values.
    pub fn from_env(self) -> Self {
        self.from_env_with(|key| std::env::var(key).ok())
    }

    /// Like [`RunOptions::from_env`] but with an injectable variable lookup,
    /// so tests can exercise the parsing without mutating process-global
    /// environment state (which races against concurrently running tests).
    pub fn from_env_with(mut self, lookup: impl Fn(&str) -> Option<String>) -> Self {
        let parse = |key: &str| -> Option<u64> { parse_u64_or_warn(key, &lookup(key)?) };
        if let Some(v) = parse("CONSIM_REFS") {
            self.refs_per_vm = v;
        }
        if let Some(v) = parse("CONSIM_WARMUP") {
            self.warmup_refs_per_vm = v;
        }
        if let Some(v) = parse("CONSIM_SEEDS") {
            self.seeds = (1..=v.max(1)).collect();
        }
        self
    }
}

fn env_u64(key: &str) -> Option<u64> {
    parse_u64_or_warn(key, &std::env::var(key).ok()?)
}

/// Parses an environment override, warning on stderr instead of silently
/// falling back when the value is set but malformed (a silently ignored
/// `CONSIM_THREADS=abc` would run the wrong experiment without any
/// diagnostic).
fn parse_u64_or_warn(key: &str, raw: &str) -> Option<u64> {
    match raw.trim().parse() {
        Ok(v) => Some(v),
        Err(_) => {
            eprintln!(
                "consim: warning: ignoring {key}={raw:?}: not an unsigned integer; \
                 using the default"
            );
            None
        }
    }
}

/// Clamps a worker-count request of zero to one worker, warning on
/// stderr in the `parse_u64_or_warn` spirit: a silently honored request
/// for zero workers would strand every job in the queue, and silently
/// running serial instead would at least deserve a diagnostic.
fn clamp_worker_request(origin: &str, requested: usize) -> usize {
    if requested == 0 {
        eprintln!(
            "consim: warning: {origin} requested 0 workers; \
             clamping to 1 (a batch cannot run with no workers)"
        );
        1
    } else {
        requested
    }
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            refs_per_vm: 40_000,
            warmup_refs_per_vm: 20_000,
            seeds: vec![1, 2],
            track_footprint: false,
            prewarm_llc: false,
        }
    }
}

/// Aggregated metrics for one VM across seeds.
#[derive(Debug, Clone)]
pub struct VmAggregate {
    /// The workload running in this VM.
    pub kind: WorkloadKind,
    /// Cycles to complete the reference quota.
    pub runtime_cycles: Summary,
    /// Off-chip fraction of LLC-level requests.
    pub llc_miss_rate: Summary,
    /// Mean L1-miss latency (cycles).
    pub miss_latency: Summary,
    /// Worst single L1-miss latency (cycles) — the latency tail, which
    /// lifecycle churn stresses through post-migration re-warming.
    pub miss_latency_max: Summary,
    /// Fraction of L1 misses served cache-to-cache.
    pub c2c_fraction: Summary,
    /// Table II's c2c share: transfers over transfers-plus-memory-fetches.
    pub c2c_of_hierarchy_misses: Summary,
    /// Dirty share of cache-to-cache transfers.
    pub c2c_dirty_fraction: Summary,
    /// Unique blocks touched (zero unless footprint tracking was on).
    pub footprint_blocks: Summary,
    /// Memory fetches per thousand references.
    pub mpkr: Summary,
}

/// Aggregated lifecycle-churn activity of one cell (all-zero summaries
/// when the machine carries no churn policy).
#[derive(Debug, Clone)]
pub struct ChurnAggregate {
    /// VMs spawned through the birth process (initial population excluded).
    pub spawns: Summary,
    /// VMs retired through the death process.
    pub retires: Summary,
    /// Live migrations performed.
    pub migrations: Summary,
    /// Dirty private-cache lines written back by retirement/migration scrubs.
    pub scrub_writebacks: Summary,
}

/// Aggregated results of one (mix, policy, sharing) experiment cell.
#[derive(Debug, Clone)]
pub struct MixRun {
    /// Per-VM aggregates, in VM order.
    pub vms: Vec<VmAggregate>,
    /// Lifecycle-churn activity across the measurement phase.
    pub churn: ChurnAggregate,
    /// LLC replication fraction.
    pub replication: Summary,
    /// Mean per-bank, per-VM occupancy share (seed-averaged).
    pub occupancy: Vec<Vec<f64>>,
    /// Mean interconnect packet latency.
    pub noc_latency: Summary,
    /// Measurement interval length.
    pub measured_cycles: Summary,
}

impl MixRun {
    /// Mean runtime of the VM at `vm`.
    pub fn runtime(&self, vm: VmId) -> f64 {
        self.vms[vm.index()].runtime_cycles.mean
    }

    /// Average of a per-VM statistic over every VM running `kind`.
    pub fn mean_over_kind(&self, kind: WorkloadKind, f: impl Fn(&VmAggregate) -> f64) -> f64 {
        let values: Vec<f64> = self.vms.iter().filter(|v| v.kind == kind).map(f).collect();
        if values.is_empty() {
            0.0
        } else {
            values.iter().sum::<f64>() / values.len() as f64
        }
    }
}

/// One (profiles, policy, sharing) experiment cell for batch execution.
///
/// A cell is everything that varies between grid points; run length, seeds,
/// and the base machine come from the [`ExperimentRunner`] executing it.
#[derive(Debug, Clone)]
pub struct ExperimentCell {
    /// One workload profile per VM.
    pub profiles: Vec<WorkloadProfile>,
    /// Thread-to-core scheduling policy.
    pub policy: SchedulingPolicy,
    /// LLC sharing degree.
    pub sharing: SharingDegree,
}

impl ExperimentCell {
    /// A cell over explicit profiles.
    pub fn new(
        profiles: Vec<WorkloadProfile>,
        policy: SchedulingPolicy,
        sharing: SharingDegree,
    ) -> Self {
        Self {
            profiles,
            policy,
            sharing,
        }
    }

    /// A cell over built-in workload kinds (one VM per instance).
    pub fn of_kinds(
        instances: &[WorkloadKind],
        policy: SchedulingPolicy,
        sharing: SharingDegree,
    ) -> Self {
        Self::new(
            instances.iter().map(|k| k.profile()).collect(),
            policy,
            sharing,
        )
    }
}

/// Runs experiment cells against a base machine.
///
/// # Examples
///
/// ```
/// use consim_job::runner::{ExperimentRunner, RunOptions};
/// use consim_sched::SchedulingPolicy;
/// use consim_types::config::SharingDegree;
/// use consim_workload::WorkloadKind;
///
/// let runner = ExperimentRunner::new(RunOptions::quick());
/// let run = runner.isolated(
///     WorkloadKind::TpcH,
///     SchedulingPolicy::Affinity,
///     SharingDegree::SharedBy(4),
/// )?;
/// assert!(run.runtime(consim_types::VmId::new(0)) > 0.0);
/// # Ok::<(), consim_types::SimError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ExperimentRunner {
    machine: MachineConfig,
    pub(crate) options: RunOptions,
    threads: Option<usize>,
    audit: bool,
    sink: Option<Arc<dyn TraceSink>>,
    journal: Option<PathBuf>,
    checkpoint_every: Option<u64>,
    fault_after: Option<u64>,
    /// Prewarm-checkpoint cache, shared across clones so sweeps that
    /// retarget one configured runner still reuse it.
    pub(crate) prewarm_cache: PrewarmCache,
}

impl ExperimentRunner {
    /// A runner over the paper's Table III machine.
    pub fn new(options: RunOptions) -> Self {
        Self {
            machine: MachineConfig::paper_default(),
            options,
            threads: None,
            audit: false,
            sink: None,
            journal: None,
            checkpoint_every: None,
            fault_after: None,
            prewarm_cache: PrewarmCache::default(),
        }
    }

    /// A runner over a custom machine.
    pub fn with_machine(machine: MachineConfig, options: RunOptions) -> Self {
        Self {
            machine,
            ..Self::new(options)
        }
    }

    /// Retargets this runner at a different machine, keeping the options,
    /// thread pinning, audit setting, and trace sink. Used for sweeps that
    /// vary the machine itself (e.g. LLC way partitioning) while sharing
    /// one configured runner.
    pub fn on_machine(mut self, machine: MachineConfig) -> Self {
        self.machine = machine;
        self
    }

    /// Pins the worker-thread count, overriding `CONSIM_THREADS` and the
    /// hardware default. `with_threads(1)` forces serial execution;
    /// `with_threads(0)` is clamped to one worker with a stderr warning.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(clamp_worker_request("with_threads", threads));
        self
    }

    /// Enables the end-of-run counter audit on every simulation this runner
    /// launches. Auditing never changes results — a drift fails the run
    /// with [`SimError::AuditFailed`] instead of publishing skewed figures.
    pub fn with_audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Attaches a trace sink. Every simulation emits its lifecycle, epoch,
    /// and (if the sink's filter accepts them) coherence/stall events into
    /// it, and the runner adds per-cell wall-time and batch worker
    /// utilization events. The sink is shared: worker threads record
    /// concurrently.
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sink = Some(sink);
        self
    }

    /// Attaches a results journal rooted at `dir`: every completed
    /// `(cell, seed)` job is recorded on disk (atomically), and a later
    /// invocation covering the same jobs loads the records instead of
    /// re-simulating. Records are named by each job's configuration
    /// content digest (see [`JobJournal`]), so a journal can never serve
    /// results for a different experiment, and a *grown* batch keeps
    /// every record the jobs it shares already earned.
    pub fn with_journal(mut self, dir: impl Into<PathBuf>) -> Self {
        self.journal = Some(dir.into());
        self
    }

    /// Writes a mid-run checkpoint every `accesses` generator accesses, so
    /// a crash loses at most that much work per in-flight cell. Takes
    /// effect only together with [`ExperimentRunner::with_journal`] (the
    /// checkpoint lives next to the journal records). Checkpointing never
    /// changes results: a resumed run is bit-identical to an uninterrupted
    /// one.
    pub fn with_checkpoint_every(mut self, accesses: u64) -> Self {
        self.checkpoint_every = Some(accesses.max(1));
        self
    }

    /// Fault injection for crash-recovery tests: the batch aborts with an
    /// error once `jobs` jobs have completed (in-flight workers finish and
    /// journal their cells first). Exposed to the CLI as
    /// `CONSIM_FAULT=cell:K`.
    pub fn with_fault_after(mut self, jobs: u64) -> Self {
        self.fault_after = Some(jobs);
        self
    }

    /// Replaces the run options, keeping machine, threads, audit, and sink.
    pub fn with_options(mut self, options: RunOptions) -> Self {
        self.options = options;
        self
    }

    /// The options in use.
    pub fn options(&self) -> &RunOptions {
        &self.options
    }

    /// Worker threads for a batch of `jobs` simulations: the explicit
    /// [`ExperimentRunner::with_threads`] setting, else `CONSIM_THREADS`,
    /// else [`std::thread::available_parallelism`] — never more workers
    /// than jobs, never zero.
    fn worker_count(&self, jobs: usize) -> usize {
        let configured = self
            .threads
            .or_else(|| {
                env_u64("CONSIM_THREADS")
                    .map(|v| clamp_worker_request("CONSIM_THREADS", v as usize))
            })
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(std::num::NonZeroUsize::get)
                    .unwrap_or(1)
            });
        configured.clamp(1, jobs.max(1))
    }

    /// Runs a mix of built-in workloads.
    ///
    /// # Errors
    ///
    /// Propagates configuration/placement errors from the engine.
    pub fn run(
        &self,
        instances: &[WorkloadKind],
        policy: SchedulingPolicy,
        sharing: SharingDegree,
    ) -> Result<MixRun, SimError> {
        let profiles: Vec<WorkloadProfile> = instances.iter().map(|k| k.profile()).collect();
        self.run_profiles(&profiles, policy, sharing)
    }

    /// Runs a mix of explicit profiles (one per VM), fanning seeds out
    /// across the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates configuration/placement errors from the engine.
    pub fn run_profiles(
        &self,
        profiles: &[WorkloadProfile],
        policy: SchedulingPolicy,
        sharing: SharingDegree,
    ) -> Result<MixRun, SimError> {
        let cell = ExperimentCell::new(profiles.to_vec(), policy, sharing);
        let mut runs = self.run_cells(std::slice::from_ref(&cell))?;
        Ok(runs.pop().expect("one cell in, one aggregate out"))
    }

    /// Runs a batch of experiment cells, each across every configured
    /// seed, on the worker pool. Results come back in submission order
    /// and are bit-identical to serial execution (see the module docs on
    /// determinism).
    ///
    /// # Errors
    ///
    /// Propagates the first configuration/placement error from the engine
    /// (in job order).
    pub fn run_cells(&self, cells: &[ExperimentCell]) -> Result<Vec<MixRun>, SimError> {
        // One job per (cell, seed). Configs are built up front so invalid
        // cells fail deterministically regardless of the worker count.
        let mut specs: Vec<JobSpec> = Vec::new();
        for (ci, cell) in cells.iter().enumerate() {
            for &seed in &self.options.seeds {
                specs.push(JobSpec::new(specs.len(), ci, self.cell_config(cell, seed)?));
            }
        }
        let cell_of: Vec<usize> = specs.iter().map(JobSpec::cell).collect();
        let jobs = specs.len();
        let workers = self.worker_count(jobs);
        let journal = match &self.journal {
            Some(root) => Some(JobJournal::open(root)?),
            None => None,
        };
        // Runner-class telemetry: per-job wall time plus batch utilization.
        let timing = self
            .sink
            .as_ref()
            .filter(|s| s.wants(EventClass::Runner))
            .map(Arc::clone);
        let sink = Arc::new(CollectingSink::new());
        let batch_start = Instant::now();
        let pool = WorkerPool::start(
            PoolConfig {
                workers,
                time_slice: None,
                max_live: 1,
                checkpoint_every: journal.as_ref().and(self.checkpoint_every),
                fault_after: self.fault_after,
            },
            Arc::new(StaticQueue::new(specs)),
            Arc::clone(&sink) as Arc<dyn ResultSink>,
            journal,
            Arc::clone(&self.prewarm_cache),
            timing.clone(),
        );
        let report = pool.join();
        if report.faulted {
            return Err(SimError::invariant(format!(
                "fault injected after {} completed jobs; finished cells are journaled",
                report.simulated
            )));
        }
        if let Some(sink) = &timing {
            let wall_seconds = batch_start.elapsed().as_secs_f64();
            let capacity = workers as f64 * wall_seconds;
            sink.record(&TraceEvent::BatchCompleted {
                jobs: jobs as u32,
                workers: workers as u32,
                wall_seconds,
                busy_seconds: report.busy_seconds,
                worker_utilization: if capacity > 0.0 {
                    (report.busy_seconds / capacity).min(1.0)
                } else {
                    0.0
                },
            });
        }

        // Rebuild submission order from the (potentially out-of-order)
        // completions, grouping per cell.
        let mut results = sink.take();
        let mut per_cell: Vec<Vec<SimulationOutcome>> = cells.iter().map(|_| Vec::new()).collect();
        for (ji, &ci) in cell_of.iter().enumerate() {
            match results.remove(&ji).expect("worker pool drained every job") {
                Ok(JobOutput::Completed { outcome, .. }) => per_cell[ci].push(outcome),
                Ok(JobOutput::Cancelled) => {
                    return Err(SimError::invariant(
                        "a batch job was cancelled mid-run; aggregates would be incomplete",
                    ))
                }
                Ok(JobOutput::Abandoned) => {
                    return Err(SimError::invariant(
                        "a batch job was stranded by an early wind-down; aggregates would be incomplete",
                    ))
                }
                Err(e) => return Err(e),
            }
        }
        Ok(cells
            .iter()
            .zip(&per_cell)
            .map(|(cell, outcomes)| self.aggregate(&cell.profiles, outcomes))
            .collect())
    }

    /// Builds the simulation configuration for one (cell, seed) job.
    pub(crate) fn cell_config(
        &self,
        cell: &ExperimentCell,
        seed: u64,
    ) -> Result<SimulationConfig, SimError> {
        let mut b = SimulationConfig::builder();
        b.machine(self.machine.with_sharing(cell.sharing))
            .policy(cell.policy)
            .seed(seed)
            .refs_per_vm(self.options.refs_per_vm)
            .warmup_refs_per_vm(self.options.warmup_refs_per_vm)
            .track_footprint(self.options.track_footprint)
            .prewarm_llc(self.options.prewarm_llc)
            .audit(self.audit);
        if let Some(sink) = &self.sink {
            b.trace(TraceConfig::new(sink.clone()));
        }
        for p in &cell.profiles {
            b.workload(p.clone());
        }
        b.build()
    }

    /// Runs one workload in isolation: four active cores, the rest idle,
    /// the full LLC available (the paper's §V-A setup).
    ///
    /// # Errors
    ///
    /// Propagates configuration/placement errors from the engine.
    pub fn isolated(
        &self,
        kind: WorkloadKind,
        policy: SchedulingPolicy,
        sharing: SharingDegree,
    ) -> Result<MixRun, SimError> {
        self.run(&[kind], policy, sharing)
    }

    /// The paper's normalization baseline: the workload alone with the
    /// fully shared 16 MB LLC.
    ///
    /// # Errors
    ///
    /// Propagates configuration/placement errors from the engine.
    pub fn isolation_baseline(&self, kind: WorkloadKind) -> Result<MixRun, SimError> {
        self.isolated(kind, SchedulingPolicy::Affinity, SharingDegree::FullyShared)
    }

    pub(crate) fn aggregate(
        &self,
        profiles: &[WorkloadProfile],
        outcomes: &[SimulationOutcome],
    ) -> MixRun {
        let num_vms = profiles.len();
        let vms = (0..num_vms)
            .map(|vm| {
                let collect = |f: &dyn Fn(&SimulationOutcome) -> f64| {
                    Summary::of(&outcomes.iter().map(f).collect::<Vec<_>>())
                };
                VmAggregate {
                    kind: profiles[vm].kind,
                    runtime_cycles: collect(&|o| o.vm_metrics[vm].runtime_cycles() as f64),
                    llc_miss_rate: collect(&|o| o.vm_metrics[vm].llc_miss_rate()),
                    miss_latency: collect(&|o| o.vm_metrics[vm].mean_miss_latency()),
                    miss_latency_max: collect(&|o| o.vm_metrics[vm].max_miss_latency()),
                    c2c_fraction: collect(&|o| o.vm_metrics[vm].c2c_fraction()),
                    c2c_of_hierarchy_misses: collect(&|o| {
                        o.vm_metrics[vm].c2c_fraction_of_hierarchy_misses()
                    }),
                    c2c_dirty_fraction: collect(&|o| o.vm_metrics[vm].c2c_dirty_fraction()),
                    footprint_blocks: collect(&|o| o.vm_metrics[vm].footprint_blocks() as f64),
                    mpkr: collect(&|o| o.vm_metrics[vm].mpkr()),
                }
            })
            .collect();
        let replication = Summary::of(
            &outcomes
                .iter()
                .map(|o| o.replication.replicated_fraction())
                .collect::<Vec<_>>(),
        );
        let noc_latency = Summary::of(
            &outcomes
                .iter()
                .map(|o| o.noc.mean_latency())
                .collect::<Vec<_>>(),
        );
        let measured_cycles = Summary::of(
            &outcomes
                .iter()
                .map(|o| o.measured_cycles as f64)
                .collect::<Vec<_>>(),
        );
        let churn_stat = |f: &dyn Fn(&consim::churn::ChurnStats) -> u64| {
            Summary::of(
                &outcomes
                    .iter()
                    .map(|o| o.churn.as_ref().map_or(0.0, |c| f(c) as f64))
                    .collect::<Vec<_>>(),
            )
        };
        let churn = ChurnAggregate {
            spawns: churn_stat(&|c| c.spawns),
            retires: churn_stat(&|c| c.retires),
            migrations: churn_stat(&|c| c.migrations),
            scrub_writebacks: churn_stat(&|c| c.writebacks),
        };
        // Seed-averaged occupancy grid.
        let banks = outcomes
            .first()
            .map(|o| o.occupancy.share.len())
            .unwrap_or(0);
        let occupancy = (0..banks)
            .map(|b| {
                (0..num_vms)
                    .map(|v| {
                        outcomes
                            .iter()
                            .map(|o| o.occupancy.share[b][v])
                            .sum::<f64>()
                            / outcomes.len() as f64
                    })
                    .collect()
            })
            .collect();
        MixRun {
            vms,
            churn,
            replication,
            occupancy,
            noc_latency,
            measured_cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use consim::engine::{RunStatus, Simulation};
    use consim_workload::WorkloadProfileBuilder;

    fn tiny_runner() -> ExperimentRunner {
        ExperimentRunner::new(RunOptions {
            refs_per_vm: 2_000,
            warmup_refs_per_vm: 500,
            seeds: vec![1, 2],
            track_footprint: false,
            prewarm_llc: false,
        })
    }

    fn tiny_profile(name: &str) -> WorkloadProfile {
        WorkloadProfileBuilder::new(name)
            .footprint_blocks(3_000)
            .build()
            .unwrap()
    }

    #[test]
    fn isolated_run_produces_aggregates() {
        let r = tiny_runner();
        let run = r
            .run_profiles(
                &[tiny_profile("a")],
                SchedulingPolicy::Affinity,
                SharingDegree::SharedBy(4),
            )
            .unwrap();
        assert_eq!(run.vms.len(), 1);
        assert_eq!(run.vms[0].runtime_cycles.n, 2);
        assert!(run.vms[0].runtime_cycles.mean > 0.0);
        assert!(run.vms[0].miss_latency.mean > 0.0);
        assert!(run.measured_cycles.mean > 0.0);
    }

    #[test]
    fn mix_run_aggregates_all_vms() {
        let r = tiny_runner();
        let profiles = vec![
            tiny_profile("a"),
            tiny_profile("b"),
            tiny_profile("c"),
            tiny_profile("d"),
        ];
        let run = r
            .run_profiles(
                &profiles,
                SchedulingPolicy::RoundRobin,
                SharingDegree::SharedBy(4),
            )
            .unwrap();
        assert_eq!(run.vms.len(), 4);
        assert_eq!(run.occupancy.len(), 4);
        assert_eq!(run.occupancy[0].len(), 4);
        for v in &run.vms {
            assert!(v.llc_miss_rate.mean >= 0.0 && v.llc_miss_rate.mean <= 1.0);
        }
    }

    #[test]
    fn mean_over_kind_averages_instances() {
        let mut run = tiny_runner()
            .run_profiles(
                &[tiny_profile("a"), tiny_profile("b")],
                SchedulingPolicy::Affinity,
                SharingDegree::SharedBy(4),
            )
            .unwrap();
        run.vms[0].kind = WorkloadKind::TpcH;
        run.vms[1].kind = WorkloadKind::TpcH;
        let m = run.mean_over_kind(WorkloadKind::TpcH, |v| v.runtime_cycles.mean);
        let expected = (run.vms[0].runtime_cycles.mean + run.vms[1].runtime_cycles.mean) / 2.0;
        assert!((m - expected).abs() < 1e-9);
        assert_eq!(
            run.mean_over_kind(WorkloadKind::TpcW, |v| v.runtime_cycles.mean),
            0.0
        );
    }

    #[test]
    fn options_from_env_parse() {
        // Injected lookup: no process-global env mutation, so this cannot
        // race against other tests running in parallel.
        let vars = |key: &str| match key {
            "CONSIM_REFS" => Some("1234".to_string()),
            "CONSIM_SEEDS" => Some("3".to_string()),
            _ => None,
        };
        let o = RunOptions::quick().from_env_with(vars);
        assert_eq!(o.refs_per_vm, 1234);
        assert_eq!(o.seeds, vec![1, 2, 3]);
    }

    #[test]
    fn options_from_env_ignores_garbage() {
        let vars = |key: &str| match key {
            "CONSIM_REFS" => Some("not-a-number".to_string()),
            "CONSIM_WARMUP" => Some(" 77 ".to_string()),
            _ => None,
        };
        let o = RunOptions::quick().from_env_with(vars);
        assert_eq!(o.refs_per_vm, RunOptions::quick().refs_per_vm);
        assert_eq!(o.warmup_refs_per_vm, 77);
    }

    #[test]
    fn quick_and_thorough_presets() {
        assert!(RunOptions::quick().refs_per_vm < RunOptions::thorough().refs_per_vm);
        assert!(RunOptions::thorough().seeds.len() >= 3);
    }

    #[test]
    fn malformed_env_values_are_rejected_not_misparsed() {
        // `CONSIM_THREADS=abc` must fall back (with a stderr warning, which
        // we can't capture here) rather than being misread as a number.
        assert_eq!(parse_u64_or_warn("CONSIM_THREADS", "abc"), None);
        assert_eq!(parse_u64_or_warn("CONSIM_THREADS", "-4"), None);
        assert_eq!(parse_u64_or_warn("CONSIM_THREADS", "4.5"), None);
        assert_eq!(parse_u64_or_warn("CONSIM_THREADS", ""), None);
        // Valid values (with surrounding whitespace) still parse.
        assert_eq!(parse_u64_or_warn("CONSIM_THREADS", " 8 "), Some(8));
        assert_eq!(parse_u64_or_warn("CONSIM_THREADS", "1"), Some(1));
    }

    #[test]
    fn zero_workers_clamp_to_one_with_a_warning() {
        // The clamp helper itself (the stderr warning can't be captured
        // here, but the clamped value can).
        assert_eq!(clamp_worker_request("with_threads", 0), 1);
        assert_eq!(clamp_worker_request("with_threads", 3), 3);
        // `with_threads(0)` must behave exactly like `with_threads(1)` —
        // serial execution — rather than deadlocking an empty pool.
        let cells = vec![cell("z", SchedulingPolicy::Affinity)];
        let zero = tiny_runner().with_threads(0).run_cells(&cells).unwrap();
        let one = tiny_runner().with_threads(1).run_cells(&cells).unwrap();
        assert_eq!(fingerprint(&zero[0]), fingerprint(&one[0]));
        // And the environment route hits the same clamp.
        let r = tiny_runner().with_threads(0);
        assert_eq!(r.worker_count(8), 1);
    }

    #[test]
    fn runner_sink_receives_lifecycle_and_timing_events() {
        use consim_trace::{RingBufferSink, TraceEvent};

        let sink = std::sync::Arc::new(RingBufferSink::new(4_096));
        let runs = tiny_runner()
            .with_threads(2)
            .with_audit(true)
            .with_sink(sink.clone())
            .run_cells(&[
                cell("a", SchedulingPolicy::Affinity),
                cell("b", SchedulingPolicy::RoundRobin),
            ])
            .unwrap();
        assert_eq!(runs.len(), 2);
        let events = sink.snapshot();
        let count = |f: &dyn Fn(&TraceEvent) -> bool| events.iter().filter(|e| f(e)).count();
        // 2 cells x 2 seeds = 4 simulations.
        assert_eq!(count(&|e| matches!(e, TraceEvent::RunStarted { .. })), 4);
        assert_eq!(count(&|e| matches!(e, TraceEvent::RunCompleted { .. })), 4);
        assert_eq!(count(&|e| matches!(e, TraceEvent::AuditPassed { .. })), 4);
        assert_eq!(count(&|e| matches!(e, TraceEvent::CellCompleted { .. })), 4);
        assert_eq!(
            count(&|e| matches!(e, TraceEvent::BatchCompleted { .. })),
            1
        );
        let batch = events
            .iter()
            .find(|e| matches!(e, TraceEvent::BatchCompleted { .. }))
            .unwrap();
        if let TraceEvent::BatchCompleted {
            jobs,
            workers,
            worker_utilization,
            ..
        } = batch
        {
            assert_eq!(*jobs, 4);
            assert_eq!(*workers, 2);
            assert!((0.0..=1.0).contains(worker_utilization));
        }
    }

    #[test]
    fn tracing_does_not_change_results() {
        use consim_trace::RingBufferSink;

        let cells = vec![cell("t", SchedulingPolicy::Affinity)];
        let plain = tiny_runner().with_threads(1).run_cells(&cells).unwrap();
        let traced = tiny_runner()
            .with_threads(1)
            .with_audit(true)
            .with_sink(std::sync::Arc::new(RingBufferSink::new(1_024)))
            .run_cells(&cells)
            .unwrap();
        assert_eq!(fingerprint(&plain[0]), fingerprint(&traced[0]));
    }

    fn cell(name: &str, policy: SchedulingPolicy) -> ExperimentCell {
        ExperimentCell::new(vec![tiny_profile(name)], policy, SharingDegree::SharedBy(4))
    }

    /// Per-VM metric fingerprint with exact (bit-level) float comparison.
    fn fingerprint(run: &MixRun) -> Vec<(u64, u64, u64)> {
        run.vms
            .iter()
            .map(|v| {
                (
                    v.runtime_cycles.mean.to_bits(),
                    v.miss_latency.mean.to_bits(),
                    v.llc_miss_rate.mean.to_bits(),
                )
            })
            .collect()
    }

    #[test]
    fn run_cells_matches_serial_bit_for_bit() {
        let cells = vec![
            cell("a", SchedulingPolicy::Affinity),
            cell("b", SchedulingPolicy::RoundRobin),
            cell("c", SchedulingPolicy::RrAffinity),
        ];
        let serial = tiny_runner().with_threads(1).run_cells(&cells).unwrap();
        let parallel = tiny_runner().with_threads(4).run_cells(&cells).unwrap();
        assert_eq!(serial.len(), parallel.len());
        for (s, p) in serial.iter().zip(&parallel) {
            assert_eq!(fingerprint(s), fingerprint(p));
        }
    }

    #[test]
    fn run_cells_preserves_submission_order() {
        // Distinguish cells by VM count: 1, 2, 3 VMs.
        let cells: Vec<ExperimentCell> = (1..=3)
            .map(|n| {
                ExperimentCell::new(
                    (0..n).map(|i| tiny_profile(&format!("vm{i}"))).collect(),
                    SchedulingPolicy::Affinity,
                    SharingDegree::SharedBy(4),
                )
            })
            .collect();
        let runs = tiny_runner().with_threads(3).run_cells(&cells).unwrap();
        let vm_counts: Vec<usize> = runs.iter().map(|r| r.vms.len()).collect();
        assert_eq!(vm_counts, vec![1, 2, 3]);
    }

    #[test]
    fn time_sliced_execution_is_bit_identical() {
        // Drive the same jobs through the pool directly with an
        // aggressively small time slice and interleaving width: slicing
        // is schedule, not semantics.
        use crate::pool::{PoolConfig, WorkerPool};
        use crate::queue::StaticQueue;
        use crate::sink::CollectingSink;

        let runner = tiny_runner();
        let cells = vec![
            cell("a", SchedulingPolicy::Affinity),
            cell("b", SchedulingPolicy::RoundRobin),
        ];
        let reference = runner.clone().with_threads(1).run_cells(&cells).unwrap();
        let mut specs = Vec::new();
        for (ci, c) in cells.iter().enumerate() {
            for &seed in &runner.options.seeds {
                specs.push(JobSpec::new(
                    specs.len(),
                    ci,
                    runner.cell_config(c, seed).unwrap(),
                ));
            }
        }
        let cell_of: Vec<usize> = specs.iter().map(JobSpec::cell).collect();
        let sink = Arc::new(CollectingSink::new());
        let pool = WorkerPool::start(
            PoolConfig {
                workers: 2,
                time_slice: Some(700),
                max_live: 2,
                ..PoolConfig::default()
            },
            Arc::new(StaticQueue::new(specs)),
            Arc::clone(&sink) as Arc<dyn ResultSink>,
            None,
            PrewarmCache::default(),
            None,
        );
        let report = pool.join();
        assert!(!report.faulted);
        assert_eq!(report.simulated, 4);
        let mut results = sink.take();
        let mut per_cell: Vec<Vec<SimulationOutcome>> = vec![Vec::new(), Vec::new()];
        for (ji, &ci) in cell_of.iter().enumerate() {
            match results.remove(&ji).unwrap().unwrap() {
                JobOutput::Completed { outcome, .. } => per_cell[ci].push(outcome),
                other => panic!("nothing was cancelled or stranded: {other:?}"),
            }
        }
        for (ci, c) in cells.iter().enumerate() {
            let sliced = runner.aggregate(&c.profiles, &per_cell[ci]);
            assert_eq!(
                fingerprint(&reference[ci]),
                fingerprint(&sliced),
                "time-sliced interleaved execution must be bit-identical"
            );
        }
    }

    #[test]
    fn cancelled_jobs_report_cancelled_without_disturbing_the_rest() {
        use crate::pool::{PoolConfig, WorkerPool};
        use crate::queue::{JobQueue, LiveQueue};
        use crate::sink::CollectingSink;

        let runner = tiny_runner();
        let reference = runner
            .clone()
            .with_threads(1)
            .run_cells(&[cell("a", SchedulingPolicy::Affinity)])
            .unwrap();
        let queue = Arc::new(LiveQueue::new());
        let sink = Arc::new(CollectingSink::new());
        let pool = WorkerPool::start(
            PoolConfig {
                workers: 1,
                time_slice: Some(500),
                max_live: 2,
                ..PoolConfig::default()
            },
            Arc::clone(&queue) as Arc<dyn crate::queue::JobQueue>,
            Arc::clone(&sink) as Arc<dyn ResultSink>,
            None,
            PrewarmCache::default(),
            None,
        );
        // Victim first (cancelled before it can complete — its quota is
        // far beyond what survivors need), then the two real jobs.
        let mut big = runner.options.clone();
        big.refs_per_vm = 1_000_000;
        big.warmup_refs_per_vm = 1_000_000;
        let victim_cfg = ExperimentRunner::new(big)
            .cell_config(&cell("victim", SchedulingPolicy::Affinity), 1)
            .unwrap();
        let victim = queue.push(9, victim_cfg).unwrap();
        for &seed in &runner.options.seeds {
            queue.push(
                0,
                runner
                    .cell_config(&cell("a", SchedulingPolicy::Affinity), seed)
                    .unwrap(),
            );
        }
        pool.cancel(victim);
        queue.close();
        let report = pool.join();
        assert_eq!(report.simulated, 2, "only the surviving jobs simulate");
        let mut results = sink.take();
        assert!(matches!(
            results.remove(&victim),
            Some(Ok(JobOutput::Cancelled))
        ));
        let outcomes: Vec<SimulationOutcome> = (1..=2)
            .map(|ji| match results.remove(&ji).unwrap().unwrap() {
                JobOutput::Completed { outcome, .. } => outcome,
                other => panic!("survivor did not complete: {other:?}"),
            })
            .collect();
        let survivors =
            runner.aggregate(&cell("a", SchedulingPolicy::Affinity).profiles, &outcomes);
        assert_eq!(
            fingerprint(&reference[0]),
            fingerprint(&survivors),
            "a cancelled job must not corrupt the survivors' aggregation"
        );
    }

    #[test]
    fn run_profiles_delegates_to_batch_path() {
        // The single-cell path must produce the same aggregate as run_cells.
        let r = tiny_runner().with_threads(2);
        let via_single = r
            .run_profiles(
                &[tiny_profile("x")],
                SchedulingPolicy::Affinity,
                SharingDegree::SharedBy(4),
            )
            .unwrap();
        let via_batch = &r
            .run_cells(&[cell("x", SchedulingPolicy::Affinity)])
            .unwrap()[0];
        assert_eq!(fingerprint(&via_single), fingerprint(via_batch));
    }

    /// A scratch journal root, removed on drop so test reruns start clean.
    struct ScratchDir(std::path::PathBuf);
    impl ScratchDir {
        fn new(tag: &str) -> Self {
            let dir = std::env::temp_dir().join(format!("consim-job-{tag}-{}", std::process::id()));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            Self(dir)
        }
        fn path(&self) -> &std::path::Path {
            &self.0
        }
    }
    impl Drop for ScratchDir {
        fn drop(&mut self) {
            std::fs::remove_dir_all(&self.0).ok();
        }
    }

    fn batch_cells() -> Vec<ExperimentCell> {
        vec![
            cell("a", SchedulingPolicy::Affinity),
            cell("b", SchedulingPolicy::RoundRobin),
            cell("c", SchedulingPolicy::RrAffinity),
        ]
    }

    #[test]
    fn journaled_batch_matches_unjournaled_and_resumes_from_records() {
        let scratch = ScratchDir::new("journal");
        let cells = batch_cells();
        let plain = tiny_runner().with_threads(1).run_cells(&cells).unwrap();
        let journaled = tiny_runner()
            .with_threads(1)
            .with_journal(scratch.path())
            .run_cells(&cells)
            .unwrap();
        for (p, j) in plain.iter().zip(&journaled) {
            assert_eq!(
                fingerprint(p),
                fingerprint(j),
                "journaling must not change results"
            );
        }
        // Second invocation: every job loads from the journal. Prove it by
        // arming the fault injector so that any job that actually simulates
        // (journal loads don't count) aborts the batch.
        let resumed = tiny_runner()
            .with_threads(2)
            .with_journal(scratch.path())
            .with_fault_after(0)
            .run_cells(&cells)
            .unwrap();
        for (p, r) in plain.iter().zip(&resumed) {
            assert_eq!(
                fingerprint(p),
                fingerprint(r),
                "resume must reuse journaled outcomes"
            );
        }
    }

    #[test]
    fn fault_injection_aborts_but_journals_completed_cells() {
        let scratch = ScratchDir::new("fault");
        let cells = batch_cells();
        let err = tiny_runner()
            .with_threads(1)
            .with_journal(scratch.path())
            .with_fault_after(2)
            .run_cells(&cells)
            .unwrap_err();
        assert!(err.to_string().contains("fault injected"), "{err}");
        let records = std::fs::read_dir(scratch.path())
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "bin")
            })
            .count();
        assert_eq!(records, 2, "exactly the completed jobs are journaled");
        // Recovery: the same batch without the fault finishes the rest and
        // matches an uninterrupted run bit for bit.
        let plain = tiny_runner().with_threads(1).run_cells(&cells).unwrap();
        let recovered = tiny_runner()
            .with_threads(1)
            .with_journal(scratch.path())
            .run_cells(&cells)
            .unwrap();
        for (p, r) in plain.iter().zip(&recovered) {
            assert_eq!(fingerprint(p), fingerprint(r));
        }
    }

    #[test]
    fn grown_batch_reuses_per_job_records() {
        // The per-job content digest replaces the old whole-batch digest:
        // growing the batch must keep every record the shared jobs earned
        // (the old scheme started a fresh directory and re-ran everything).
        use consim_trace::{RingBufferSink, TraceEvent};

        let scratch = ScratchDir::new("grow");
        let cells = batch_cells();
        tiny_runner()
            .with_threads(1)
            .with_journal(scratch.path())
            .run_cells(&cells[..1])
            .unwrap();
        let sink = std::sync::Arc::new(RingBufferSink::new(4_096));
        let grown = tiny_runner()
            .with_threads(1)
            .with_journal(scratch.path())
            .with_sink(sink.clone())
            .run_cells(&cells)
            .unwrap();
        // Only the 2 cells x 2 seeds that were never journaled simulate
        // (journal loads emit no CellCompleted event).
        let simulated = sink
            .snapshot()
            .iter()
            .filter(|e| matches!(e, TraceEvent::CellCompleted { .. }))
            .count();
        assert_eq!(simulated, 4, "the grown batch re-runs only the new jobs");
        let plain = tiny_runner().with_threads(1).run_cells(&cells).unwrap();
        for (p, g) in plain.iter().zip(&grown) {
            assert_eq!(fingerprint(p), fingerprint(g));
        }
    }

    #[test]
    fn resumed_queue_reruns_exactly_the_missing_jobs() {
        use consim_trace::{RingBufferSink, TraceEvent};

        let scratch = ScratchDir::new("missing");
        let cells = batch_cells();
        tiny_runner()
            .with_threads(1)
            .with_journal(scratch.path())
            .run_cells(&cells)
            .unwrap();
        // Lose one record (pick deterministically: the lexicographically
        // first), then resume: exactly that job re-simulates.
        let mut records: Vec<std::path::PathBuf> = std::fs::read_dir(scratch.path())
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "bin"))
            .collect();
        records.sort();
        assert_eq!(records.len(), 6, "3 cells x 2 seeds");
        std::fs::remove_file(&records[0]).unwrap();
        let sink = std::sync::Arc::new(RingBufferSink::new(4_096));
        let plain = tiny_runner().with_threads(1).run_cells(&cells).unwrap();
        let resumed = tiny_runner()
            .with_threads(2)
            .with_journal(scratch.path())
            .with_sink(sink.clone())
            .run_cells(&cells)
            .unwrap();
        let simulated = sink
            .snapshot()
            .iter()
            .filter(|e| matches!(e, TraceEvent::CellCompleted { .. }))
            .count();
        assert_eq!(simulated, 1, "exactly the missing job re-simulates");
        for (p, r) in plain.iter().zip(&resumed) {
            assert_eq!(fingerprint(p), fingerprint(r));
        }
    }

    #[test]
    fn torn_temporaries_are_swept_on_resume() {
        let scratch = ScratchDir::new("torn");
        let cells = batch_cells();
        let plain = tiny_runner().with_threads(1).run_cells(&cells).unwrap();
        // A crashed writer leaves half-written temporaries behind; they
        // must be ignored (never parsed) and cleaned up on the next open.
        let torn = [
            scratch.path().join("job-00000000000000ab.bin.tmp3"),
            scratch.path().join("job-00000000000000ab.ckpt.tmp4"),
        ];
        for t in &torn {
            std::fs::write(t, b"\xde\xad half-written garbage").unwrap();
        }
        let resumed = tiny_runner()
            .with_threads(1)
            .with_journal(scratch.path())
            .run_cells(&cells)
            .unwrap();
        for t in &torn {
            assert!(!t.exists(), "torn temporary {t:?} must be swept");
        }
        for (p, r) in plain.iter().zip(&resumed) {
            assert_eq!(fingerprint(p), fingerprint(r));
        }
    }

    #[test]
    fn truncated_record_is_a_typed_error_naming_the_path() {
        let scratch = ScratchDir::new("trunc");
        let cells = batch_cells();
        tiny_runner()
            .with_threads(1)
            .with_journal(scratch.path())
            .run_cells(&cells)
            .unwrap();
        let mut records: Vec<std::path::PathBuf> = std::fs::read_dir(scratch.path())
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|x| x == "bin"))
            .collect();
        records.sort();
        let victim = &records[2];
        let bytes = std::fs::read(victim).unwrap();
        std::fs::write(victim, &bytes[..bytes.len() / 2]).unwrap();
        let err = tiny_runner()
            .with_threads(1)
            .with_journal(scratch.path())
            .run_cells(&cells)
            .unwrap_err();
        assert!(
            matches!(err, SimError::Snapshot(..)),
            "truncation must surface as a typed snapshot error, got {err:?}"
        );
        assert!(
            err.to_string().contains(&victim.display().to_string()),
            "the error must name the record to delete: {err}"
        );
    }

    #[test]
    fn mid_cell_checkpoints_resume_bit_identically() {
        let scratch = ScratchDir::new("ckpt");
        let cells = vec![cell("k", SchedulingPolicy::Affinity)];
        let plain = tiny_runner().with_threads(1).run_cells(&cells).unwrap();
        let checkpointed = tiny_runner()
            .with_threads(1)
            .with_journal(scratch.path())
            .with_checkpoint_every(700)
            .run_cells(&cells)
            .unwrap();
        assert_eq!(fingerprint(&plain[0]), fingerprint(&checkpointed[0]));
        // Now simulate a crash mid-cell: manufacture the exact on-disk
        // state the crashed invocation leaves behind (a .ckpt, no .bin)
        // and let the runner resume it to completion.
        let runner = tiny_runner().with_threads(1);
        let journal = JobJournal::open(scratch.path()).unwrap();
        for &seed in &runner.options.seeds {
            let spec = JobSpec::new(0, 0, runner.cell_config(&cells[0], seed).unwrap());
            std::fs::remove_file(journal.outcome_path(&spec)).ok();
            let mut sim = Simulation::new(spec.config().clone()).unwrap();
            assert_eq!(sim.advance(1_500, None).unwrap(), RunStatus::Running);
            journal.store_checkpoint(&spec, &sim).unwrap();
        }
        let resumed = runner
            .with_journal(scratch.path())
            .run_cells(&cells)
            .unwrap();
        assert_eq!(
            fingerprint(&plain[0]),
            fingerprint(&resumed[0]),
            "a run resumed from a mid-cell checkpoint must be bit-identical"
        );
    }

    #[test]
    fn prewarm_checkpoint_cache_is_bit_identical_to_direct_prewarm() {
        let options = RunOptions {
            refs_per_vm: 1_500,
            warmup_refs_per_vm: 300,
            seeds: vec![1, 2],
            track_footprint: false,
            prewarm_llc: true,
        };
        let cells = vec![
            cell("p", SchedulingPolicy::Affinity),
            cell("q", SchedulingPolicy::Affinity),
        ];
        let cached = ExperimentRunner::new(options.clone())
            .with_threads(1)
            .run_cells(&cells)
            .unwrap();
        // Reference: prewarm from scratch per job by bypassing the cache
        // (build each simulation directly).
        let reference: Vec<MixRun> = {
            let runner = ExperimentRunner::new(options.clone()).with_threads(1);
            cells
                .iter()
                .map(|c| {
                    let outcomes: Vec<_> = runner
                        .options
                        .seeds
                        .iter()
                        .map(|&s| {
                            let cfg = runner.cell_config(c, s).unwrap();
                            Simulation::new(cfg).unwrap().run().unwrap()
                        })
                        .collect();
                    runner.aggregate(&c.profiles, &outcomes)
                })
                .collect()
        };
        for (c, r) in cached.iter().zip(&reference) {
            assert_eq!(
                fingerprint(c),
                fingerprint(r),
                "prewarm cache must not change results"
            );
        }
        // The cache really is shared and keyed: both cells × both seeds hit
        // distinct (profile, seed) canonical configs, so 4 entries.
        let runner = ExperimentRunner::new(options).with_threads(1);
        runner.run_cells(&cells).unwrap();
        assert_eq!(runner.prewarm_cache.lock().unwrap().len(), 4);
    }

    #[test]
    fn invalid_cell_reports_error_not_panic() {
        // 17 VMs on a 16-core machine cannot be placed.
        let too_many = ExperimentCell::new(
            (0..17).map(|i| tiny_profile(&format!("vm{i}"))).collect(),
            SchedulingPolicy::Affinity,
            SharingDegree::SharedBy(4),
        );
        assert!(tiny_runner().run_cells(&[too_many]).is_err());
    }
}
