//! Randomized property tests for the workload generators, driven by seeded
//! `SimRng` streams so every run is reproducible.

use consim_types::{SimRng, ThreadId, VmId};
use consim_workload::{WorkloadGenerator, WorkloadProfile, WorkloadProfileBuilder};

/// Draws a valid random profile covering the whole parameter space the
/// builder accepts.
fn random_profile(rng: &mut SimRng) -> WorkloadProfile {
    WorkloadProfileBuilder::new("prop")
        .footprint_blocks(2_000 + rng.below(98_000))
        .shared_fraction(0.05 + 0.90 * rng.unit())
        .shared_access_prob(0.95 * rng.unit())
        .shared_write_prob(0.5 * rng.unit())
        .private_write_prob(0.5 * rng.unit())
        .shared_zipf(0.95 * rng.unit())
        .private_zipf(0.95 * rng.unit())
        .recent_reuse_prob(0.8 * rng.unit())
        .handoff_access_prob(0.8 * rng.unit())
        .handoff_segments(8)
        .handoff_segment_blocks(8)
        .threads(1 + rng.index(7))
        .build()
        .expect("ranges chosen to be valid")
}

/// Every generated reference stays inside its VM's footprint, and the
/// shared-region flag always matches the address.
#[test]
fn references_stay_in_bounds() {
    let mut rng = SimRng::from_seed(0xB0B1);
    for _case in 0..48 {
        let profile = random_profile(&mut rng);
        let seed = rng.below(500);
        let vm = VmId::new(3);
        let mut g = WorkloadGenerator::new(vm, &profile, &SimRng::from_seed(seed));
        let shared = profile.shared_blocks();
        for i in 0..2_000 {
            let r = g.next_ref(ThreadId::new(i % profile.threads));
            assert_eq!(r.address.vm(), vm);
            let idx = r.address.block().vm_block_index();
            assert!(idx < profile.footprint_blocks);
            assert_eq!(r.is_shared_region, idx < shared);
        }
        assert_eq!(g.refs_emitted(), 2_000);
    }
}

/// Streams are reproducible from the seed even with handoff sharing, as long
/// as the thread interleaving is identical.
#[test]
fn streams_reproducible() {
    let mut rng = SimRng::from_seed(0xB0B2);
    for _case in 0..48 {
        let profile = random_profile(&mut rng);
        let seed = rng.below(500);
        let gen_refs = || {
            let mut g = WorkloadGenerator::new(VmId::new(0), &profile, &SimRng::from_seed(seed));
            (0..1_000)
                .map(|i| g.next_ref(ThreadId::new(i % profile.threads)))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen_refs(), gen_refs());
    }
}

/// A zero-write profile never emits stores; an all-write profile always
/// does (outside the handoff machinery).
#[test]
fn write_probability_extremes() {
    let mut rng = SimRng::from_seed(0xB0B3);
    for _case in 0..24 {
        let seed = rng.below(200);
        let silent = WorkloadProfileBuilder::new("ro")
            .footprint_blocks(5_000)
            .shared_write_prob(0.0)
            .private_write_prob(0.0)
            .handoff_access_prob(0.0)
            .build()
            .unwrap();
        let mut g = WorkloadGenerator::new(VmId::new(0), &silent, &SimRng::from_seed(seed));
        for i in 0..500 {
            assert!(!g.next_ref(ThreadId::new(i % 4)).is_write);
        }

        let noisy = WorkloadProfileBuilder::new("wo")
            .footprint_blocks(5_000)
            .shared_write_prob(1.0)
            .private_write_prob(1.0)
            .handoff_access_prob(0.0)
            .recent_reuse_prob(0.0)
            .build()
            .unwrap();
        let mut g = WorkloadGenerator::new(VmId::new(0), &noisy, &SimRng::from_seed(seed));
        for i in 0..500 {
            assert!(g.next_ref(ThreadId::new(i % 4)).is_write);
        }
    }
}

/// The warm set never exceeds the requested size, has no duplicates, and
/// stays inside the footprint.
#[test]
fn warm_set_properties() {
    let mut rng = SimRng::from_seed(0xB0B4);
    for _case in 0..48 {
        let profile = random_profile(&mut rng);
        let n = 1 + rng.index(4_999);
        let g = WorkloadGenerator::new(VmId::new(1), &profile, &SimRng::from_seed(1));
        let warm = g.warm_set(n);
        assert!(warm.len() <= n);
        let unique: std::collections::HashSet<_> = warm.iter().collect();
        assert_eq!(unique.len(), warm.len());
        for b in &warm {
            assert_eq!(b.vm(), VmId::new(1));
            assert!(b.vm_block_index() < profile.footprint_blocks);
        }
    }
}
