//! Property-based tests for the workload generators.

use consim_types::{SimRng, ThreadId, VmId};
use consim_workload::{WorkloadGenerator, WorkloadProfile, WorkloadProfileBuilder};
use proptest::prelude::*;

prop_compose! {
    fn any_profile()(
        footprint in 2_000u64..100_000,
        shared_fraction in 0.05f64..0.95,
        shared_access in 0.0f64..0.95,
        shared_write in 0.0f64..0.5,
        private_write in 0.0f64..0.5,
        shared_zipf in 0.0f64..0.95,
        private_zipf in 0.0f64..0.95,
        recent in 0.0f64..0.8,
        handoff in 0.0f64..0.8,
        threads in 1usize..8,
    ) -> WorkloadProfile {
        WorkloadProfileBuilder::new("prop")
            .footprint_blocks(footprint)
            .shared_fraction(shared_fraction)
            .shared_access_prob(shared_access)
            .shared_write_prob(shared_write)
            .private_write_prob(private_write)
            .shared_zipf(shared_zipf)
            .private_zipf(private_zipf)
            .recent_reuse_prob(recent)
            .handoff_access_prob(handoff)
            .handoff_segments(8)
            .handoff_segment_blocks(8)
            .threads(threads)
            .build()
            .expect("ranges chosen to be valid")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every generated reference stays inside its VM's footprint, and the
    /// shared-region flag always matches the address.
    #[test]
    fn references_stay_in_bounds(profile in any_profile(), seed in 0u64..500) {
        let vm = VmId::new(3);
        let mut g = WorkloadGenerator::new(vm, &profile, &SimRng::from_seed(seed));
        let shared = profile.shared_blocks();
        for i in 0..2_000 {
            let r = g.next_ref(ThreadId::new(i % profile.threads));
            prop_assert_eq!(r.address.vm(), vm);
            let idx = r.address.block().vm_block_index();
            prop_assert!(idx < profile.footprint_blocks);
            prop_assert_eq!(r.is_shared_region, idx < shared);
        }
        prop_assert_eq!(g.refs_emitted(), 2_000);
    }

    /// Streams are reproducible from the seed even with handoff sharing,
    /// as long as the thread interleaving is identical.
    #[test]
    fn streams_reproducible(profile in any_profile(), seed in 0u64..500) {
        let gen_refs = || {
            let mut g = WorkloadGenerator::new(VmId::new(0), &profile, &SimRng::from_seed(seed));
            (0..1_000)
                .map(|i| g.next_ref(ThreadId::new(i % profile.threads)))
                .collect::<Vec<_>>()
        };
        prop_assert_eq!(gen_refs(), gen_refs());
    }

    /// A zero-write profile never emits stores; an all-write profile always
    /// does (outside the handoff machinery).
    #[test]
    fn write_probability_extremes(seed in 0u64..200) {
        let silent = WorkloadProfileBuilder::new("ro")
            .footprint_blocks(5_000)
            .shared_write_prob(0.0)
            .private_write_prob(0.0)
            .handoff_access_prob(0.0)
            .build()
            .unwrap();
        let mut g = WorkloadGenerator::new(VmId::new(0), &silent, &SimRng::from_seed(seed));
        for i in 0..500 {
            prop_assert!(!g.next_ref(ThreadId::new(i % 4)).is_write);
        }

        let noisy = WorkloadProfileBuilder::new("wo")
            .footprint_blocks(5_000)
            .shared_write_prob(1.0)
            .private_write_prob(1.0)
            .handoff_access_prob(0.0)
            .recent_reuse_prob(0.0)
            .build()
            .unwrap();
        let mut g = WorkloadGenerator::new(VmId::new(0), &noisy, &SimRng::from_seed(seed));
        for i in 0..500 {
            prop_assert!(g.next_ref(ThreadId::new(i % 4)).is_write);
        }
    }

    /// The warm set never exceeds the requested size, has no duplicates,
    /// and stays inside the footprint.
    #[test]
    fn warm_set_properties(profile in any_profile(), n in 1usize..5_000) {
        let g = WorkloadGenerator::new(VmId::new(1), &profile, &SimRng::from_seed(1));
        let warm = g.warm_set(n);
        prop_assert!(warm.len() <= n);
        let unique: std::collections::HashSet<_> = warm.iter().collect();
        prop_assert_eq!(unique.len(), warm.len());
        for b in &warm {
            prop_assert_eq!(b.vm(), VmId::new(1));
            prop_assert!(b.vm_block_index() < profile.footprint_blocks);
        }
    }
}
