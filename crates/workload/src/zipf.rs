//! Approximate bounded-Zipf sampling.
//!
//! Commercial-workload locality is heavy-tailed: a few blocks are touched
//! constantly, most rarely. We use the continuous-inversion approximation to
//! a bounded Zipf distribution with skew `theta` in `[0, 1)`: ranks are drawn
//! with `rank = floor(n * u^(1/(1-theta)))`, which gives
//! `P(rank < r) = (r/n)^(1-theta)` — uniform at `theta = 0`, increasingly
//! hot-biased as `theta -> 1`. This is the classic approximation used by
//! transaction-processing workload generators; exactness of the tail is
//! irrelevant here, only the hot/cold contrast matters.

use consim_types::SimRng;

/// A sampler of ranks in `[0, n)` with Zipf-like skew.
///
/// Rank 0 is the hottest item. Use [`ZipfSampler::sample`] with a
/// [`SimRng`] stream.
///
/// # Examples
///
/// ```
/// use consim_workload::ZipfSampler;
/// use consim_types::SimRng;
///
/// let sampler = ZipfSampler::new(1000, 0.8)?;
/// let mut rng = SimRng::from_seed(1);
/// let rank = sampler.sample(&mut rng);
/// assert!(rank < 1000);
/// # Ok::<(), consim_types::SimError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfSampler {
    n: u64,
    /// `1 / (1 - theta)`, precomputed.
    inv_one_minus_theta: f64,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with skew `theta`.
    ///
    /// # Errors
    ///
    /// Returns [`consim_types::SimError::InvalidConfig`] if `n` is zero or
    /// `theta` is outside `[0, 1)`.
    pub fn new(n: u64, theta: f64) -> Result<Self, consim_types::SimError> {
        if n == 0 {
            return Err(consim_types::SimError::invalid_config(
                "zipf sampler needs a nonempty domain",
            ));
        }
        if !(0.0..1.0).contains(&theta) {
            return Err(consim_types::SimError::invalid_config(format!(
                "zipf skew must be in [0, 1), got {theta}"
            )));
        }
        Ok(Self {
            n,
            inv_one_minus_theta: 1.0 / (1.0 - theta),
        })
    }

    /// Domain size.
    pub fn domain(&self) -> u64 {
        self.n
    }

    /// Draws a rank in `[0, n)`; rank 0 is hottest.
    pub fn sample(&self, rng: &mut SimRng) -> u64 {
        let u = rng.unit();
        let r = (self.n as f64 * u.powf(self.inv_one_minus_theta)) as u64;
        r.min(self.n - 1)
    }

    /// The fraction of probability mass on the hottest `k` ranks.
    pub fn mass_below(&self, k: u64) -> f64 {
        if k >= self.n {
            return 1.0;
        }
        (k as f64 / self.n as f64).powf(1.0 / self.inv_one_minus_theta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_bad_parameters() {
        assert!(ZipfSampler::new(0, 0.5).is_err());
        assert!(ZipfSampler::new(10, 1.0).is_err());
        assert!(ZipfSampler::new(10, -0.1).is_err());
        assert!(ZipfSampler::new(10, 0.0).is_ok());
    }

    #[test]
    fn samples_stay_in_domain() {
        let s = ZipfSampler::new(100, 0.9).unwrap();
        let mut rng = SimRng::from_seed(3);
        for _ in 0..10_000 {
            assert!(s.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let s = ZipfSampler::new(10, 0.0).unwrap();
        let mut rng = SimRng::from_seed(4);
        let mut counts = [0u64; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[s.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            let p = c as f64 / n as f64;
            assert!((p - 0.1).abs() < 0.01, "non-uniform bucket: {p}");
        }
    }

    #[test]
    fn higher_theta_concentrates_mass() {
        let mut rng = SimRng::from_seed(5);
        let flat = ZipfSampler::new(1000, 0.1).unwrap();
        let hot = ZipfSampler::new(1000, 0.9).unwrap();
        let head = |s: &ZipfSampler, rng: &mut SimRng| {
            let mut in_head = 0;
            for _ in 0..20_000 {
                if s.sample(rng) < 10 {
                    in_head += 1;
                }
            }
            in_head
        };
        let flat_head = head(&flat, &mut rng);
        let hot_head = head(&hot, &mut rng);
        assert!(
            hot_head > flat_head * 5,
            "hot {hot_head} should dwarf flat {flat_head}"
        );
    }

    #[test]
    fn mass_below_matches_empirical_head() {
        let s = ZipfSampler::new(1000, 0.8).unwrap();
        let mut rng = SimRng::from_seed(6);
        let k = 50;
        let expected = s.mass_below(k);
        let n = 200_000;
        let mut hits = 0;
        for _ in 0..n {
            if s.sample(&mut rng) < k {
                hits += 1;
            }
        }
        let empirical = hits as f64 / n as f64;
        assert!(
            (empirical - expected).abs() < 0.01,
            "empirical {empirical} vs analytic {expected}"
        );
    }

    /// The sampler's theoretical pmf from its own CDF:
    /// `P(rank = r) = ((r+1)/n)^(1-theta) - (r/n)^(1-theta)`.
    fn pmf(s: &ZipfSampler, r: u64) -> f64 {
        s.mass_below(r + 1) - s.mass_below(r)
    }

    #[test]
    fn empirical_frequencies_match_theoretical_pmf() {
        // Per-rank chi-squared-style check across several skews: with
        // 400k draws every rank's empirical frequency must sit within a
        // few standard errors of the analytic pmf.
        for &theta in &[0.0, 0.3, 0.6, 0.9] {
            let n_ranks = 50;
            let s = ZipfSampler::new(n_ranks, theta).unwrap();
            let mut rng = SimRng::from_seed(8);
            let draws = 400_000u64;
            let mut counts = vec![0u64; n_ranks as usize];
            for _ in 0..draws {
                counts[s.sample(&mut rng) as usize] += 1;
            }
            for (r, &c) in counts.iter().enumerate() {
                let p = pmf(&s, r as u64);
                let empirical = c as f64 / draws as f64;
                // 5 standard errors of a binomial proportion, plus a small
                // absolute floor for near-zero tail probabilities.
                let tolerance = 5.0 * (p * (1.0 - p) / draws as f64).sqrt() + 5e-4;
                assert!(
                    (empirical - p).abs() < tolerance,
                    "theta {theta} rank {r}: empirical {empirical} vs pmf {p} (tol {tolerance})"
                );
            }
            let total: f64 = (0..n_ranks).map(|r| pmf(&s, r)).sum();
            assert!((total - 1.0).abs() < 1e-9, "pmf must sum to 1, got {total}");
        }
    }

    #[test]
    fn theta_zero_is_exactly_uniform() {
        // At theta = 0 the inversion degenerates to `floor(n * u)`: the
        // sample must equal that expression bit-for-bit (same RNG stream),
        // and the analytic head mass must be exactly k/n.
        let n = 7u64;
        let s = ZipfSampler::new(n, 0.0).unwrap();
        let mut rng = SimRng::from_seed(9);
        let mut mirror = rng.clone();
        for _ in 0..10_000 {
            let expected = (n as f64 * mirror.unit()) as u64;
            assert_eq!(s.sample(&mut rng), expected.min(n - 1));
        }
        for k in 0..=n {
            assert_eq!(s.mass_below(k), k as f64 / n as f64);
        }
    }

    #[test]
    fn singleton_domain_always_zero() {
        let s = ZipfSampler::new(1, 0.5).unwrap();
        let mut rng = SimRng::from_seed(7);
        for _ in 0..100 {
            assert_eq!(s.sample(&mut rng), 0);
        }
    }
}
