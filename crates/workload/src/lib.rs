//! Synthetic commercial-workload memory-reference generators.
//!
//! The paper consolidates four multi-threaded commercial workloads — TPC-W,
//! SPECjbb, TPC-H, and SPECweb — running on real middleware stacks inside a
//! full-system simulator. Those stacks (AIX, DB2, Zeus, a JVM) cannot be run
//! here, so this crate substitutes *synthetic* generators whose memory
//! behaviour is calibrated to the statistics the paper itself reports for
//! each workload (Tables I and II):
//!
//! * footprint, in 64 B blocks (e.g. TPC-W touches 1,125 K blocks);
//! * what fraction of private-cache misses are served by cache-to-cache
//!   transfers (TPC-H 69 % … TPC-W 15 %);
//! * how many of those transfers are dirty (TPC-H 57 % … SPECjbb 6 %);
//! * four threads per workload instance.
//!
//! Each generated reference stream mixes *shared* accesses (drawn from a
//! region visible to all four threads, with a workload-specific write
//! probability producing dirty sharing) and *private* accesses (per-thread
//! regions producing capacity pressure), both with Zipf-like locality. See
//! [`profile::WorkloadProfile`] for the knobs and
//! [`generator::WorkloadGenerator`] for the stream itself.
//!
//! # Examples
//!
//! ```
//! use consim_workload::{WorkloadGenerator, WorkloadKind};
//! use consim_types::{SimRng, ThreadId, VmId};
//!
//! let profile = WorkloadKind::TpcH.profile();
//! let rng = SimRng::from_seed(7);
//! let mut generator = WorkloadGenerator::new(VmId::new(0), &profile, &rng);
//! let r = generator.next_ref(ThreadId::new(0));
//! assert_eq!(r.address.vm(), VmId::new(0));
//! ```

pub mod generator;
pub mod profile;
pub mod reference;
pub mod zipf;

pub use generator::WorkloadGenerator;
pub use profile::{LoadPhase, WorkloadKind, WorkloadProfile, WorkloadProfileBuilder};
pub use reference::MemRef;
pub use zipf::ZipfSampler;
